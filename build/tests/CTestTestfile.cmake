# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_testgen[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_ate[1]_include.cmake")
include("/root/repo/build/tests/test_fuzzy[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
