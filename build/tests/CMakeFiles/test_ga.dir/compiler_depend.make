# Empty compiler generated dependencies file for test_ga.
# This may be replaced when dependencies are built.
