file(REMOVE_RECURSE
  "CMakeFiles/test_ga.dir/ga/chromosome_test.cpp.o"
  "CMakeFiles/test_ga.dir/ga/chromosome_test.cpp.o.d"
  "CMakeFiles/test_ga.dir/ga/multi_population_test.cpp.o"
  "CMakeFiles/test_ga.dir/ga/multi_population_test.cpp.o.d"
  "CMakeFiles/test_ga.dir/ga/population_test.cpp.o"
  "CMakeFiles/test_ga.dir/ga/population_test.cpp.o.d"
  "CMakeFiles/test_ga.dir/ga/wcr_test.cpp.o"
  "CMakeFiles/test_ga.dir/ga/wcr_test.cpp.o.d"
  "test_ga"
  "test_ga.pdb"
  "test_ga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
