
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/active_learning_test.cpp" "tests/CMakeFiles/test_core.dir/core/active_learning_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/active_learning_test.cpp.o.d"
  "/root/repo/tests/core/campaign_test.cpp" "tests/CMakeFiles/test_core.dir/core/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/campaign_test.cpp.o.d"
  "/root/repo/tests/core/characterizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/characterizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/characterizer_test.cpp.o.d"
  "/root/repo/tests/core/database_test.cpp" "tests/CMakeFiles/test_core.dir/core/database_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/database_test.cpp.o.d"
  "/root/repo/tests/core/dsv_test.cpp" "tests/CMakeFiles/test_core.dir/core/dsv_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/dsv_test.cpp.o.d"
  "/root/repo/tests/core/learner_test.cpp" "tests/CMakeFiles/test_core.dir/core/learner_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/learner_test.cpp.o.d"
  "/root/repo/tests/core/model_io_test.cpp" "tests/CMakeFiles/test_core.dir/core/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_io_test.cpp.o.d"
  "/root/repo/tests/core/multi_trip_test.cpp" "tests/CMakeFiles/test_core.dir/core/multi_trip_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/multi_trip_test.cpp.o.d"
  "/root/repo/tests/core/nn_test_generator_test.cpp" "tests/CMakeFiles/test_core.dir/core/nn_test_generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nn_test_generator_test.cpp.o.d"
  "/root/repo/tests/core/optimizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/optimizer_test.cpp.o.d"
  "/root/repo/tests/core/production_test.cpp" "tests/CMakeFiles/test_core.dir/core/production_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/production_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/sample_test.cpp" "tests/CMakeFiles/test_core.dir/core/sample_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sample_test.cpp.o.d"
  "/root/repo/tests/core/spec_report_test.cpp" "tests/CMakeFiles/test_core.dir/core/spec_report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spec_report_test.cpp.o.d"
  "/root/repo/tests/core/trend_test.cpp" "tests/CMakeFiles/test_core.dir/core/trend_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trend_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cichar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ate/CMakeFiles/cichar_ate.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cichar_device.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/cichar_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cichar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/cichar_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
