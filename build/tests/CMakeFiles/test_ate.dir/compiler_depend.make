# Empty compiler generated dependencies file for test_ate.
# This may be replaced when dependencies are built.
