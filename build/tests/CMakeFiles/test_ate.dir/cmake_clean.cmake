file(REMOVE_RECURSE
  "CMakeFiles/test_ate.dir/ate/datalog_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/datalog_test.cpp.o.d"
  "CMakeFiles/test_ate.dir/ate/parameter_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/parameter_test.cpp.o.d"
  "CMakeFiles/test_ate.dir/ate/search_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/search_test.cpp.o.d"
  "CMakeFiles/test_ate.dir/ate/search_until_trip_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/search_until_trip_test.cpp.o.d"
  "CMakeFiles/test_ate.dir/ate/shmoo_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/shmoo_test.cpp.o.d"
  "CMakeFiles/test_ate.dir/ate/tester_test.cpp.o"
  "CMakeFiles/test_ate.dir/ate/tester_test.cpp.o.d"
  "test_ate"
  "test_ate.pdb"
  "test_ate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
