file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzy.dir/fuzzy/coding_test.cpp.o"
  "CMakeFiles/test_fuzzy.dir/fuzzy/coding_test.cpp.o.d"
  "CMakeFiles/test_fuzzy.dir/fuzzy/inference_test.cpp.o"
  "CMakeFiles/test_fuzzy.dir/fuzzy/inference_test.cpp.o.d"
  "CMakeFiles/test_fuzzy.dir/fuzzy/margin_test.cpp.o"
  "CMakeFiles/test_fuzzy.dir/fuzzy/margin_test.cpp.o.d"
  "CMakeFiles/test_fuzzy.dir/fuzzy/membership_test.cpp.o"
  "CMakeFiles/test_fuzzy.dir/fuzzy/membership_test.cpp.o.d"
  "CMakeFiles/test_fuzzy.dir/fuzzy/variable_test.cpp.o"
  "CMakeFiles/test_fuzzy.dir/fuzzy/variable_test.cpp.o.d"
  "test_fuzzy"
  "test_fuzzy.pdb"
  "test_fuzzy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
