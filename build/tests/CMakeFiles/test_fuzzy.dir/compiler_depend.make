# Empty compiler generated dependencies file for test_fuzzy.
# This may be replaced when dependencies are built.
