file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/ascii_test.cpp.o"
  "CMakeFiles/test_util.dir/util/ascii_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/cli_args_test.cpp.o"
  "CMakeFiles/test_util.dir/util/cli_args_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o"
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/histogram_test.cpp.o"
  "CMakeFiles/test_util.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/log_test.cpp.o"
  "CMakeFiles/test_util.dir/util/log_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/statistics_test.cpp.o"
  "CMakeFiles/test_util.dir/util/statistics_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
