
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/ascii_test.cpp" "tests/CMakeFiles/test_util.dir/util/ascii_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/ascii_test.cpp.o.d"
  "/root/repo/tests/util/cli_args_test.cpp" "tests/CMakeFiles/test_util.dir/util/cli_args_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/cli_args_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/test_util.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/statistics_test.cpp" "tests/CMakeFiles/test_util.dir/util/statistics_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/statistics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cichar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ate/CMakeFiles/cichar_ate.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cichar_device.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/cichar_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cichar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/cichar_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
