file(REMOVE_RECURSE
  "CMakeFiles/test_testgen.dir/testgen/features_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/features_test.cpp.o.d"
  "CMakeFiles/test_testgen.dir/testgen/march_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/march_test.cpp.o.d"
  "CMakeFiles/test_testgen.dir/testgen/pattern_io_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/pattern_io_test.cpp.o.d"
  "CMakeFiles/test_testgen.dir/testgen/pattern_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/pattern_test.cpp.o.d"
  "CMakeFiles/test_testgen.dir/testgen/profiles_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/profiles_test.cpp.o.d"
  "CMakeFiles/test_testgen.dir/testgen/random_gen_test.cpp.o"
  "CMakeFiles/test_testgen.dir/testgen/random_gen_test.cpp.o.d"
  "test_testgen"
  "test_testgen.pdb"
  "test_testgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
