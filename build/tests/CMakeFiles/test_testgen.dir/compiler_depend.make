# Empty compiler generated dependencies file for test_testgen.
# This may be replaced when dependencies are built.
