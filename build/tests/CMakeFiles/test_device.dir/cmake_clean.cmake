file(REMOVE_RECURSE
  "CMakeFiles/test_device.dir/device/faults_test.cpp.o"
  "CMakeFiles/test_device.dir/device/faults_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/memory_chip_test.cpp.o"
  "CMakeFiles/test_device.dir/device/memory_chip_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/presets_test.cpp.o"
  "CMakeFiles/test_device.dir/device/presets_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/process_test.cpp.o"
  "CMakeFiles/test_device.dir/device/process_test.cpp.o.d"
  "CMakeFiles/test_device.dir/device/timing_model_test.cpp.o"
  "CMakeFiles/test_device.dir/device/timing_model_test.cpp.o.d"
  "test_device"
  "test_device.pdb"
  "test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
