file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/committee_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/committee_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/ga_trainer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/ga_trainer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/weights_io_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/weights_io_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
