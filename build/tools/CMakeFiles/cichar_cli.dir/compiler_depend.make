# Empty compiler generated dependencies file for cichar_cli.
# This may be replaced when dependencies are built.
