file(REMOVE_RECURSE
  "CMakeFiles/cichar_cli.dir/cichar_cli.cpp.o"
  "CMakeFiles/cichar_cli.dir/cichar_cli.cpp.o.d"
  "cichar"
  "cichar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
