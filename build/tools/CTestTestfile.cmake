# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_selftest "/root/repo/build/tools/cichar" "selftest")
set_tests_properties(cli_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/cichar")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_shmoo "/root/repo/build/tools/cichar" "shmoo" "--tests" "20" "--csv" "cli_shmoo_test.csv")
set_tests_properties(cli_shmoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pattern_roundtrip "sh" "-c" "/root/repo/build/tools/cichar pattern --march mats+ --out cli_mats.pat && /root/repo/build/tools/cichar pattern --info cli_mats.pat")
set_tests_properties(cli_pattern_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign "/root/repo/build/tools/cichar" "campaign" "--tests" "40" "--generations" "6")
set_tests_properties(cli_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hunt_and_screen "sh" "-c" "/root/repo/build/tools/cichar hunt --seed 7 --generations 10 --populations 2 --db cli_db.txt --model cli_model.txt && /root/repo/build/tools/cichar screen --db cli_db.txt --limit 20.5 --lot 6")
set_tests_properties(cli_hunt_and_screen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
