file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_committee.dir/bench_ablation_committee.cpp.o"
  "CMakeFiles/bench_ablation_committee.dir/bench_ablation_committee.cpp.o.d"
  "bench_ablation_committee"
  "bench_ablation_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
