# Empty dependencies file for bench_ablation_committee.
# This may be replaced when dependencies are built.
