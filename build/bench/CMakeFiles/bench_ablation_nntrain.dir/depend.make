# Empty dependencies file for bench_ablation_nntrain.
# This may be replaced when dependencies are built.
