file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nntrain.dir/bench_ablation_nntrain.cpp.o"
  "CMakeFiles/bench_ablation_nntrain.dir/bench_ablation_nntrain.cpp.o.d"
  "bench_ablation_nntrain"
  "bench_ablation_nntrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nntrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
