
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cichar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ate/CMakeFiles/cichar_ate.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cichar_device.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/cichar_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cichar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/cichar_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
