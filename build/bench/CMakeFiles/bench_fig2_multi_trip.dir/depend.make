# Empty dependencies file for bench_fig2_multi_trip.
# This may be replaced when dependencies are built.
