file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_multi_trip.dir/bench_fig2_multi_trip.cpp.o"
  "CMakeFiles/bench_fig2_multi_trip.dir/bench_fig2_multi_trip.cpp.o.d"
  "bench_fig2_multi_trip"
  "bench_fig2_multi_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_multi_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
