# Empty dependencies file for bench_ablation_active.
# This may be replaced when dependencies are built.
