file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_active.dir/bench_ablation_active.cpp.o"
  "CMakeFiles/bench_ablation_active.dir/bench_ablation_active.cpp.o.d"
  "bench_ablation_active"
  "bench_ablation_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
