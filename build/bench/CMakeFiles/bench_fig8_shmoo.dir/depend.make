# Empty dependencies file for bench_fig8_shmoo.
# This may be replaced when dependencies are built.
