file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_shmoo.dir/bench_fig8_shmoo.cpp.o"
  "CMakeFiles/bench_fig8_shmoo.dir/bench_fig8_shmoo.cpp.o.d"
  "bench_fig8_shmoo"
  "bench_fig8_shmoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_shmoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
