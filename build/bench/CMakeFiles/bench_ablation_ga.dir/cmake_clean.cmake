file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ga.dir/bench_ablation_ga.cpp.o"
  "CMakeFiles/bench_ablation_ga.dir/bench_ablation_ga.cpp.o.d"
  "bench_ablation_ga"
  "bench_ablation_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
