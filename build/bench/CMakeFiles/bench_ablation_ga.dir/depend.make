# Empty dependencies file for bench_ablation_ga.
# This may be replaced when dependencies are built.
