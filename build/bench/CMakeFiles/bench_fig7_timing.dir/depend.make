# Empty dependencies file for bench_fig7_timing.
# This may be replaced when dependencies are built.
