file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_timing.dir/bench_fig7_timing.cpp.o"
  "CMakeFiles/bench_fig7_timing.dir/bench_fig7_timing.cpp.o.d"
  "bench_fig7_timing"
  "bench_fig7_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
