# Empty compiler generated dependencies file for bench_campaign_multiparam.
# This may be replaced when dependencies are built.
