file(REMOVE_RECURSE
  "CMakeFiles/bench_campaign_multiparam.dir/bench_campaign_multiparam.cpp.o"
  "CMakeFiles/bench_campaign_multiparam.dir/bench_campaign_multiparam.cpp.o.d"
  "bench_campaign_multiparam"
  "bench_campaign_multiparam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign_multiparam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
