# Empty dependencies file for bench_fig6_wcr.
# This may be replaced when dependencies are built.
