file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wcr.dir/bench_fig6_wcr.cpp.o"
  "CMakeFiles/bench_fig6_wcr.dir/bench_fig6_wcr.cpp.o.d"
  "bench_fig6_wcr"
  "bench_fig6_wcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
