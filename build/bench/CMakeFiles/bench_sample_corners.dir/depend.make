# Empty dependencies file for bench_sample_corners.
# This may be replaced when dependencies are built.
