file(REMOVE_RECURSE
  "CMakeFiles/bench_sample_corners.dir/bench_sample_corners.cpp.o"
  "CMakeFiles/bench_sample_corners.dir/bench_sample_corners.cpp.o.d"
  "bench_sample_corners"
  "bench_sample_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sample_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
