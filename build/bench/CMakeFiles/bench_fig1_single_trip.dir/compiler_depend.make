# Empty compiler generated dependencies file for bench_fig1_single_trip.
# This may be replaced when dependencies are built.
