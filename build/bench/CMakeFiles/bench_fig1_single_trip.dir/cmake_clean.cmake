file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_single_trip.dir/bench_fig1_single_trip.cpp.o"
  "CMakeFiles/bench_fig1_single_trip.dir/bench_fig1_single_trip.cpp.o.d"
  "bench_fig1_single_trip"
  "bench_fig1_single_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_single_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
