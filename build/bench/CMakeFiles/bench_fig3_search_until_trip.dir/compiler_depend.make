# Empty compiler generated dependencies file for bench_fig3_search_until_trip.
# This may be replaced when dependencies are built.
