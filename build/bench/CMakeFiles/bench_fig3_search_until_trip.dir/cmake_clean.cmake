file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_search_until_trip.dir/bench_fig3_search_until_trip.cpp.o"
  "CMakeFiles/bench_fig3_search_until_trip.dir/bench_fig3_search_until_trip.cpp.o.d"
  "bench_fig3_search_until_trip"
  "bench_fig3_search_until_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_search_until_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
