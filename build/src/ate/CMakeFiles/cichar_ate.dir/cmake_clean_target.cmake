file(REMOVE_RECURSE
  "libcichar_ate.a"
)
