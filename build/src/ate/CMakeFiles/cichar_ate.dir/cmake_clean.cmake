file(REMOVE_RECURSE
  "CMakeFiles/cichar_ate.dir/datalog.cpp.o"
  "CMakeFiles/cichar_ate.dir/datalog.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/measurement_log.cpp.o"
  "CMakeFiles/cichar_ate.dir/measurement_log.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/parameter.cpp.o"
  "CMakeFiles/cichar_ate.dir/parameter.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/search.cpp.o"
  "CMakeFiles/cichar_ate.dir/search.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/search_until_trip.cpp.o"
  "CMakeFiles/cichar_ate.dir/search_until_trip.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/shmoo.cpp.o"
  "CMakeFiles/cichar_ate.dir/shmoo.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/test_program.cpp.o"
  "CMakeFiles/cichar_ate.dir/test_program.cpp.o.d"
  "CMakeFiles/cichar_ate.dir/tester.cpp.o"
  "CMakeFiles/cichar_ate.dir/tester.cpp.o.d"
  "libcichar_ate.a"
  "libcichar_ate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_ate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
