# Empty dependencies file for cichar_ate.
# This may be replaced when dependencies are built.
