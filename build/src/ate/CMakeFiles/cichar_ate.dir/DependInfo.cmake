
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ate/datalog.cpp" "src/ate/CMakeFiles/cichar_ate.dir/datalog.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/datalog.cpp.o.d"
  "/root/repo/src/ate/measurement_log.cpp" "src/ate/CMakeFiles/cichar_ate.dir/measurement_log.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/measurement_log.cpp.o.d"
  "/root/repo/src/ate/parameter.cpp" "src/ate/CMakeFiles/cichar_ate.dir/parameter.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/parameter.cpp.o.d"
  "/root/repo/src/ate/search.cpp" "src/ate/CMakeFiles/cichar_ate.dir/search.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/search.cpp.o.d"
  "/root/repo/src/ate/search_until_trip.cpp" "src/ate/CMakeFiles/cichar_ate.dir/search_until_trip.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/search_until_trip.cpp.o.d"
  "/root/repo/src/ate/shmoo.cpp" "src/ate/CMakeFiles/cichar_ate.dir/shmoo.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/shmoo.cpp.o.d"
  "/root/repo/src/ate/test_program.cpp" "src/ate/CMakeFiles/cichar_ate.dir/test_program.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/test_program.cpp.o.d"
  "/root/repo/src/ate/tester.cpp" "src/ate/CMakeFiles/cichar_ate.dir/tester.cpp.o" "gcc" "src/ate/CMakeFiles/cichar_ate.dir/tester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cichar_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
