file(REMOVE_RECURSE
  "CMakeFiles/cichar_ga.dir/chromosome.cpp.o"
  "CMakeFiles/cichar_ga.dir/chromosome.cpp.o.d"
  "CMakeFiles/cichar_ga.dir/multi_population.cpp.o"
  "CMakeFiles/cichar_ga.dir/multi_population.cpp.o.d"
  "CMakeFiles/cichar_ga.dir/population.cpp.o"
  "CMakeFiles/cichar_ga.dir/population.cpp.o.d"
  "CMakeFiles/cichar_ga.dir/wcr.cpp.o"
  "CMakeFiles/cichar_ga.dir/wcr.cpp.o.d"
  "libcichar_ga.a"
  "libcichar_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
