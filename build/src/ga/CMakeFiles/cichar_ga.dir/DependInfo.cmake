
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/chromosome.cpp" "src/ga/CMakeFiles/cichar_ga.dir/chromosome.cpp.o" "gcc" "src/ga/CMakeFiles/cichar_ga.dir/chromosome.cpp.o.d"
  "/root/repo/src/ga/multi_population.cpp" "src/ga/CMakeFiles/cichar_ga.dir/multi_population.cpp.o" "gcc" "src/ga/CMakeFiles/cichar_ga.dir/multi_population.cpp.o.d"
  "/root/repo/src/ga/population.cpp" "src/ga/CMakeFiles/cichar_ga.dir/population.cpp.o" "gcc" "src/ga/CMakeFiles/cichar_ga.dir/population.cpp.o.d"
  "/root/repo/src/ga/wcr.cpp" "src/ga/CMakeFiles/cichar_ga.dir/wcr.cpp.o" "gcc" "src/ga/CMakeFiles/cichar_ga.dir/wcr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
