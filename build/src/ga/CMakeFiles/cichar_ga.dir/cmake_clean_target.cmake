file(REMOVE_RECURSE
  "libcichar_ga.a"
)
