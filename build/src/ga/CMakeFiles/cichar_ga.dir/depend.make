# Empty dependencies file for cichar_ga.
# This may be replaced when dependencies are built.
