file(REMOVE_RECURSE
  "libcichar_device.a"
)
