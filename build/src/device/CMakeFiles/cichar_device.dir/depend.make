# Empty dependencies file for cichar_device.
# This may be replaced when dependencies are built.
