file(REMOVE_RECURSE
  "CMakeFiles/cichar_device.dir/faults.cpp.o"
  "CMakeFiles/cichar_device.dir/faults.cpp.o.d"
  "CMakeFiles/cichar_device.dir/memory_chip.cpp.o"
  "CMakeFiles/cichar_device.dir/memory_chip.cpp.o.d"
  "CMakeFiles/cichar_device.dir/presets.cpp.o"
  "CMakeFiles/cichar_device.dir/presets.cpp.o.d"
  "CMakeFiles/cichar_device.dir/process.cpp.o"
  "CMakeFiles/cichar_device.dir/process.cpp.o.d"
  "CMakeFiles/cichar_device.dir/timing_model.cpp.o"
  "CMakeFiles/cichar_device.dir/timing_model.cpp.o.d"
  "libcichar_device.a"
  "libcichar_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
