
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/faults.cpp" "src/device/CMakeFiles/cichar_device.dir/faults.cpp.o" "gcc" "src/device/CMakeFiles/cichar_device.dir/faults.cpp.o.d"
  "/root/repo/src/device/memory_chip.cpp" "src/device/CMakeFiles/cichar_device.dir/memory_chip.cpp.o" "gcc" "src/device/CMakeFiles/cichar_device.dir/memory_chip.cpp.o.d"
  "/root/repo/src/device/presets.cpp" "src/device/CMakeFiles/cichar_device.dir/presets.cpp.o" "gcc" "src/device/CMakeFiles/cichar_device.dir/presets.cpp.o.d"
  "/root/repo/src/device/process.cpp" "src/device/CMakeFiles/cichar_device.dir/process.cpp.o" "gcc" "src/device/CMakeFiles/cichar_device.dir/process.cpp.o.d"
  "/root/repo/src/device/timing_model.cpp" "src/device/CMakeFiles/cichar_device.dir/timing_model.cpp.o" "gcc" "src/device/CMakeFiles/cichar_device.dir/timing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
