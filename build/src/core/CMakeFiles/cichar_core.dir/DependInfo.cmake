
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/cichar_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/characterizer.cpp" "src/core/CMakeFiles/cichar_core.dir/characterizer.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/characterizer.cpp.o.d"
  "/root/repo/src/core/database.cpp" "src/core/CMakeFiles/cichar_core.dir/database.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/database.cpp.o.d"
  "/root/repo/src/core/dsv.cpp" "src/core/CMakeFiles/cichar_core.dir/dsv.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/dsv.cpp.o.d"
  "/root/repo/src/core/learner.cpp" "src/core/CMakeFiles/cichar_core.dir/learner.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/learner.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/cichar_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/multi_trip.cpp" "src/core/CMakeFiles/cichar_core.dir/multi_trip.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/multi_trip.cpp.o.d"
  "/root/repo/src/core/nn_test_generator.cpp" "src/core/CMakeFiles/cichar_core.dir/nn_test_generator.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/nn_test_generator.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/cichar_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/production.cpp" "src/core/CMakeFiles/cichar_core.dir/production.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/production.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/cichar_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sample.cpp" "src/core/CMakeFiles/cichar_core.dir/sample.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/sample.cpp.o.d"
  "/root/repo/src/core/spec_report.cpp" "src/core/CMakeFiles/cichar_core.dir/spec_report.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/spec_report.cpp.o.d"
  "/root/repo/src/core/trend.cpp" "src/core/CMakeFiles/cichar_core.dir/trend.cpp.o" "gcc" "src/core/CMakeFiles/cichar_core.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/cichar_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/cichar_device.dir/DependInfo.cmake"
  "/root/repo/build/src/ate/CMakeFiles/cichar_ate.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzy/CMakeFiles/cichar_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cichar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/cichar_ga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
