file(REMOVE_RECURSE
  "CMakeFiles/cichar_core.dir/campaign.cpp.o"
  "CMakeFiles/cichar_core.dir/campaign.cpp.o.d"
  "CMakeFiles/cichar_core.dir/characterizer.cpp.o"
  "CMakeFiles/cichar_core.dir/characterizer.cpp.o.d"
  "CMakeFiles/cichar_core.dir/database.cpp.o"
  "CMakeFiles/cichar_core.dir/database.cpp.o.d"
  "CMakeFiles/cichar_core.dir/dsv.cpp.o"
  "CMakeFiles/cichar_core.dir/dsv.cpp.o.d"
  "CMakeFiles/cichar_core.dir/learner.cpp.o"
  "CMakeFiles/cichar_core.dir/learner.cpp.o.d"
  "CMakeFiles/cichar_core.dir/model_io.cpp.o"
  "CMakeFiles/cichar_core.dir/model_io.cpp.o.d"
  "CMakeFiles/cichar_core.dir/multi_trip.cpp.o"
  "CMakeFiles/cichar_core.dir/multi_trip.cpp.o.d"
  "CMakeFiles/cichar_core.dir/nn_test_generator.cpp.o"
  "CMakeFiles/cichar_core.dir/nn_test_generator.cpp.o.d"
  "CMakeFiles/cichar_core.dir/optimizer.cpp.o"
  "CMakeFiles/cichar_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/cichar_core.dir/production.cpp.o"
  "CMakeFiles/cichar_core.dir/production.cpp.o.d"
  "CMakeFiles/cichar_core.dir/report.cpp.o"
  "CMakeFiles/cichar_core.dir/report.cpp.o.d"
  "CMakeFiles/cichar_core.dir/sample.cpp.o"
  "CMakeFiles/cichar_core.dir/sample.cpp.o.d"
  "CMakeFiles/cichar_core.dir/spec_report.cpp.o"
  "CMakeFiles/cichar_core.dir/spec_report.cpp.o.d"
  "CMakeFiles/cichar_core.dir/trend.cpp.o"
  "CMakeFiles/cichar_core.dir/trend.cpp.o.d"
  "libcichar_core.a"
  "libcichar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
