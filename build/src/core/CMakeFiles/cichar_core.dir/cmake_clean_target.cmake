file(REMOVE_RECURSE
  "libcichar_core.a"
)
