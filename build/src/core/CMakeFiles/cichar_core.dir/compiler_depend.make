# Empty compiler generated dependencies file for cichar_core.
# This may be replaced when dependencies are built.
