file(REMOVE_RECURSE
  "CMakeFiles/cichar_nn.dir/committee.cpp.o"
  "CMakeFiles/cichar_nn.dir/committee.cpp.o.d"
  "CMakeFiles/cichar_nn.dir/dataset.cpp.o"
  "CMakeFiles/cichar_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/cichar_nn.dir/ga_trainer.cpp.o"
  "CMakeFiles/cichar_nn.dir/ga_trainer.cpp.o.d"
  "CMakeFiles/cichar_nn.dir/mlp.cpp.o"
  "CMakeFiles/cichar_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/cichar_nn.dir/trainer.cpp.o"
  "CMakeFiles/cichar_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/cichar_nn.dir/weights_io.cpp.o"
  "CMakeFiles/cichar_nn.dir/weights_io.cpp.o.d"
  "libcichar_nn.a"
  "libcichar_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
