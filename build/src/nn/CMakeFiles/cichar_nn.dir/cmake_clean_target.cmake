file(REMOVE_RECURSE
  "libcichar_nn.a"
)
