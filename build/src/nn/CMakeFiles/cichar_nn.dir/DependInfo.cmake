
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/committee.cpp" "src/nn/CMakeFiles/cichar_nn.dir/committee.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/committee.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/cichar_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/ga_trainer.cpp" "src/nn/CMakeFiles/cichar_nn.dir/ga_trainer.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/ga_trainer.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/cichar_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/cichar_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/trainer.cpp.o.d"
  "/root/repo/src/nn/weights_io.cpp" "src/nn/CMakeFiles/cichar_nn.dir/weights_io.cpp.o" "gcc" "src/nn/CMakeFiles/cichar_nn.dir/weights_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
