# Empty dependencies file for cichar_nn.
# This may be replaced when dependencies are built.
