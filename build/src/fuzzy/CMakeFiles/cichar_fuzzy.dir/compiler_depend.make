# Empty compiler generated dependencies file for cichar_fuzzy.
# This may be replaced when dependencies are built.
