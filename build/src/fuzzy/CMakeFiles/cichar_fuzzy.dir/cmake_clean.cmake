file(REMOVE_RECURSE
  "CMakeFiles/cichar_fuzzy.dir/coding.cpp.o"
  "CMakeFiles/cichar_fuzzy.dir/coding.cpp.o.d"
  "CMakeFiles/cichar_fuzzy.dir/inference.cpp.o"
  "CMakeFiles/cichar_fuzzy.dir/inference.cpp.o.d"
  "CMakeFiles/cichar_fuzzy.dir/margin.cpp.o"
  "CMakeFiles/cichar_fuzzy.dir/margin.cpp.o.d"
  "CMakeFiles/cichar_fuzzy.dir/membership.cpp.o"
  "CMakeFiles/cichar_fuzzy.dir/membership.cpp.o.d"
  "CMakeFiles/cichar_fuzzy.dir/variable.cpp.o"
  "CMakeFiles/cichar_fuzzy.dir/variable.cpp.o.d"
  "libcichar_fuzzy.a"
  "libcichar_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
