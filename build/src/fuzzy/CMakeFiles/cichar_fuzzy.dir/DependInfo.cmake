
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzzy/coding.cpp" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/coding.cpp.o" "gcc" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/coding.cpp.o.d"
  "/root/repo/src/fuzzy/inference.cpp" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/inference.cpp.o" "gcc" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/inference.cpp.o.d"
  "/root/repo/src/fuzzy/margin.cpp" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/margin.cpp.o" "gcc" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/margin.cpp.o.d"
  "/root/repo/src/fuzzy/membership.cpp" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/membership.cpp.o" "gcc" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/membership.cpp.o.d"
  "/root/repo/src/fuzzy/variable.cpp" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/variable.cpp.o" "gcc" "src/fuzzy/CMakeFiles/cichar_fuzzy.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
