file(REMOVE_RECURSE
  "libcichar_fuzzy.a"
)
