file(REMOVE_RECURSE
  "libcichar_util.a"
)
