file(REMOVE_RECURSE
  "CMakeFiles/cichar_util.dir/ascii.cpp.o"
  "CMakeFiles/cichar_util.dir/ascii.cpp.o.d"
  "CMakeFiles/cichar_util.dir/cli_args.cpp.o"
  "CMakeFiles/cichar_util.dir/cli_args.cpp.o.d"
  "CMakeFiles/cichar_util.dir/csv.cpp.o"
  "CMakeFiles/cichar_util.dir/csv.cpp.o.d"
  "CMakeFiles/cichar_util.dir/histogram.cpp.o"
  "CMakeFiles/cichar_util.dir/histogram.cpp.o.d"
  "CMakeFiles/cichar_util.dir/log.cpp.o"
  "CMakeFiles/cichar_util.dir/log.cpp.o.d"
  "CMakeFiles/cichar_util.dir/rng.cpp.o"
  "CMakeFiles/cichar_util.dir/rng.cpp.o.d"
  "CMakeFiles/cichar_util.dir/statistics.cpp.o"
  "CMakeFiles/cichar_util.dir/statistics.cpp.o.d"
  "libcichar_util.a"
  "libcichar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
