# Empty dependencies file for cichar_util.
# This may be replaced when dependencies are built.
