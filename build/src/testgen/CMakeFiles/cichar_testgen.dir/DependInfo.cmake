
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testgen/conditions.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/conditions.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/conditions.cpp.o.d"
  "/root/repo/src/testgen/features.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/features.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/features.cpp.o.d"
  "/root/repo/src/testgen/march.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/march.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/march.cpp.o.d"
  "/root/repo/src/testgen/pattern.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/pattern.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/pattern.cpp.o.d"
  "/root/repo/src/testgen/pattern_io.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/pattern_io.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/pattern_io.cpp.o.d"
  "/root/repo/src/testgen/profiles.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/profiles.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/profiles.cpp.o.d"
  "/root/repo/src/testgen/random_gen.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/random_gen.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/random_gen.cpp.o.d"
  "/root/repo/src/testgen/recipe.cpp" "src/testgen/CMakeFiles/cichar_testgen.dir/recipe.cpp.o" "gcc" "src/testgen/CMakeFiles/cichar_testgen.dir/recipe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cichar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
