# Empty compiler generated dependencies file for cichar_testgen.
# This may be replaced when dependencies are built.
