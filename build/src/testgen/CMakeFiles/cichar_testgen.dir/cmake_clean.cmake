file(REMOVE_RECURSE
  "CMakeFiles/cichar_testgen.dir/conditions.cpp.o"
  "CMakeFiles/cichar_testgen.dir/conditions.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/features.cpp.o"
  "CMakeFiles/cichar_testgen.dir/features.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/march.cpp.o"
  "CMakeFiles/cichar_testgen.dir/march.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/pattern.cpp.o"
  "CMakeFiles/cichar_testgen.dir/pattern.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/pattern_io.cpp.o"
  "CMakeFiles/cichar_testgen.dir/pattern_io.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/profiles.cpp.o"
  "CMakeFiles/cichar_testgen.dir/profiles.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/random_gen.cpp.o"
  "CMakeFiles/cichar_testgen.dir/random_gen.cpp.o.d"
  "CMakeFiles/cichar_testgen.dir/recipe.cpp.o"
  "CMakeFiles/cichar_testgen.dir/recipe.cpp.o.d"
  "libcichar_testgen.a"
  "libcichar_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cichar_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
