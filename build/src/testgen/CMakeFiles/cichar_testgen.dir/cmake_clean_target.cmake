file(REMOVE_RECURSE
  "libcichar_testgen.a"
)
