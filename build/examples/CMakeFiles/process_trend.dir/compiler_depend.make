# Empty compiler generated dependencies file for process_trend.
# This may be replaced when dependencies are built.
