file(REMOVE_RECURSE
  "CMakeFiles/process_trend.dir/process_trend.cpp.o"
  "CMakeFiles/process_trend.dir/process_trend.cpp.o.d"
  "process_trend"
  "process_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
