# Empty dependencies file for march_vs_random.
# This may be replaced when dependencies are built.
