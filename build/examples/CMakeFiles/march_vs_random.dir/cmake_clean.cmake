file(REMOVE_RECURSE
  "CMakeFiles/march_vs_random.dir/march_vs_random.cpp.o"
  "CMakeFiles/march_vs_random.dir/march_vs_random.cpp.o.d"
  "march_vs_random"
  "march_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/march_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
