file(REMOVE_RECURSE
  "CMakeFiles/shmoo_explorer.dir/shmoo_explorer.cpp.o"
  "CMakeFiles/shmoo_explorer.dir/shmoo_explorer.cpp.o.d"
  "shmoo_explorer"
  "shmoo_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmoo_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
