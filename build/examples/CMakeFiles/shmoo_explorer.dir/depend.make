# Empty dependencies file for shmoo_explorer.
# This may be replaced when dependencies are built.
