file(REMOVE_RECURSE
  "CMakeFiles/worst_case_hunt.dir/worst_case_hunt.cpp.o"
  "CMakeFiles/worst_case_hunt.dir/worst_case_hunt.cpp.o.d"
  "worst_case_hunt"
  "worst_case_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
