# Empty compiler generated dependencies file for worst_case_hunt.
# This may be replaced when dependencies are built.
