# Empty dependencies file for production_flow.
# This may be replaced when dependencies are built.
