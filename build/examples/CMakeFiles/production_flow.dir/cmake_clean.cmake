file(REMOVE_RECURSE
  "CMakeFiles/production_flow.dir/production_flow.cpp.o"
  "CMakeFiles/production_flow.dir/production_flow.cpp.o.d"
  "production_flow"
  "production_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
