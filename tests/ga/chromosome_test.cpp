#include "ga/chromosome.hpp"

#include <gtest/gtest.h>

namespace cichar::ga {
namespace {

TEST(ChromosomeTest, RandomGenesInUnitInterval) {
    util::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const TestChromosome c = TestChromosome::random(rng);
        for (const double g : c.sequence) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
        for (const double g : c.condition) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
    }
}

TEST(ChromosomeTest, EncodeDecodeRecipeRoundTrip) {
    testgen::PatternRecipe recipe;
    recipe.cycles = 400;
    recipe.write_fraction = 0.6;
    recipe.bank_conflict_bias = 0.8;
    recipe.seed = 777;
    testgen::TestConditions conditions;
    conditions.vdd_volts = 2.0;
    const testgen::ConditionBounds bounds;

    const TestChromosome c =
        TestChromosome::encode(recipe, conditions, bounds, 100, 1000);
    EXPECT_EQ(c.pattern_seed, 777u);

    const testgen::PatternRecipe back = c.decode_recipe(100, 1000);
    EXPECT_EQ(back.cycles, 400u);
    EXPECT_NEAR(back.write_fraction, 0.6, 1e-9);
    EXPECT_NEAR(back.bank_conflict_bias, 0.8, 1e-9);
    EXPECT_EQ(back.seed, 777u);

    const testgen::TestConditions cback = c.decode_conditions(bounds);
    EXPECT_NEAR(cback.vdd_volts, 2.0, 1e-9);
}

TEST(ChromosomeTest, CrossoverMixesParents) {
    util::Rng rng(2);
    TestChromosome a;
    a.sequence.fill(0.0);
    a.condition.fill(0.0);
    a.pattern_seed = 1;
    TestChromosome b;
    b.sequence.fill(1.0);
    b.condition.fill(1.0);
    b.pattern_seed = 2;

    bool saw_mixed = false;
    for (int i = 0; i < 50; ++i) {
        const TestChromosome child = crossover(a, b, rng);
        bool has_zero = false;
        bool has_one = false;
        for (const double g : child.sequence) {
            if (g == 0.0) has_zero = true;
            if (g == 1.0) has_one = true;
            EXPECT_TRUE(g == 0.0 || g == 1.0);  // no blending, pure mixing
        }
        if (has_zero && has_one) saw_mixed = true;
        EXPECT_TRUE(child.pattern_seed == 1 || child.pattern_seed == 2);
    }
    EXPECT_TRUE(saw_mixed);
}

TEST(ChromosomeTest, CrossoverGroupsIndependent) {
    // With one-point crossover applied per group, a child can take its
    // sequence mostly from parent A and conditions mostly from parent B.
    util::Rng rng(3);
    TestChromosome a;
    a.sequence.fill(0.0);
    a.condition.fill(0.0);
    TestChromosome b;
    b.sequence.fill(1.0);
    b.condition.fill(1.0);
    bool saw_split_loyalty = false;
    for (int i = 0; i < 200; ++i) {
        const TestChromosome child = crossover(a, b, rng);
        double seq_sum = 0.0;
        for (const double g : child.sequence) seq_sum += g;
        double cond_sum = 0.0;
        for (const double g : child.condition) cond_sum += g;
        const double seq_frac =
            seq_sum / static_cast<double>(child.sequence.size());
        const double cond_frac =
            cond_sum / static_cast<double>(child.condition.size());
        if (std::abs(seq_frac - cond_frac) > 0.7) saw_split_loyalty = true;
    }
    EXPECT_TRUE(saw_split_loyalty);
}

TEST(ChromosomeTest, MutationKeepsGenesInRange) {
    util::Rng rng(4);
    GeneticOperators ops;
    ops.mutation_rate = 1.0;  // mutate every gene
    ops.mutation_sigma = 0.5;
    for (int i = 0; i < 50; ++i) {
        TestChromosome c = TestChromosome::random(rng);
        mutate(c, ops, rng);
        for (const double g : c.sequence) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
        for (const double g : c.condition) {
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
    }
}

TEST(ChromosomeTest, ZeroRatesMutateNothing) {
    util::Rng rng(5);
    GeneticOperators ops;
    ops.mutation_rate = 0.0;
    ops.reset_rate = 0.0;
    ops.seed_mutation_rate = 0.0;
    TestChromosome c = TestChromosome::random(rng);
    const TestChromosome before = c;
    mutate(c, ops, rng);
    EXPECT_EQ(c, before);
}

TEST(ChromosomeTest, SeedMutationRedraws) {
    util::Rng rng(6);
    GeneticOperators ops;
    ops.mutation_rate = 0.0;
    ops.reset_rate = 0.0;
    ops.seed_mutation_rate = 1.0;
    TestChromosome c = TestChromosome::random(rng);
    const std::uint64_t before = c.pattern_seed;
    mutate(c, ops, rng);
    EXPECT_NE(c.pattern_seed, before);
}

TEST(ChromosomeTest, MutationPerturbsMostGenes) {
    util::Rng rng(7);
    GeneticOperators ops;
    ops.mutation_rate = 1.0;
    ops.mutation_sigma = 0.1;
    ops.reset_rate = 0.0;
    TestChromosome c;
    c.sequence.fill(0.5);
    c.condition.fill(0.5);
    mutate(c, ops, rng);
    int changed = 0;
    for (const double g : c.sequence) {
        if (g != 0.5) ++changed;
    }
    EXPECT_GE(changed, 8);
}

}  // namespace
}  // namespace cichar::ga
