#include "ga/multi_population.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cichar::ga {
namespace {

double hill(const TestChromosome& c) {
    double score = 1.0;
    for (const double g : c.sequence) {
        score -= 0.1 * (g - 0.6) * (g - 0.6);
    }
    return score;
}

MultiPopulationOptions small_options() {
    MultiPopulationOptions opts;
    opts.population.size = 12;
    opts.population.elite = 2;
    opts.populations = 3;
    opts.max_generations = 15;
    opts.stagnation_limit = 5;
    return opts;
}

TEST(MultiPopulationTest, RunsAndImproves) {
    util::Rng rng(1);
    const MultiPopulationGa driver(small_options());
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    EXPECT_GT(outcome.best_fitness, 0.97);
    EXPECT_EQ(outcome.generations_run, 15u);
    EXPECT_GT(outcome.evaluations, 36u);
    EXPECT_EQ(outcome.best_history.size(), outcome.generations_run);
}

TEST(MultiPopulationTest, HistoryMonotone) {
    util::Rng rng(2);
    const MultiPopulationGa driver(small_options());
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    for (std::size_t i = 1; i < outcome.best_history.size(); ++i) {
        EXPECT_GE(outcome.best_history[i], outcome.best_history[i - 1]);
    }
}

TEST(MultiPopulationTest, TargetFitnessStopsEarly) {
    util::Rng rng(3);
    MultiPopulationOptions opts = small_options();
    opts.target_fitness = 0.5;  // trivially reachable
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    EXPECT_TRUE(outcome.target_reached);
    EXPECT_LT(outcome.generations_run, 15u);
}

TEST(MultiPopulationTest, SeedsSpreadAcrossPopulations) {
    util::Rng rng(4);
    // A seed placed exactly at the optimum: the outcome must include it
    // immediately (dealt into some population and evaluated).
    TestChromosome perfect;
    perfect.sequence.fill(0.6);
    perfect.condition.fill(0.5);
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 0;  // no evolution, only initial evaluation
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(hill, {perfect}, rng);
    EXPECT_NEAR(outcome.best_fitness, 1.0, 1e-9);
}

TEST(MultiPopulationTest, StagnationTriggersRestarts) {
    util::Rng rng(5);
    const FitnessFn flat = [](const TestChromosome&) { return 1.0; };
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 25;
    opts.stagnation_limit = 3;
    opts.max_restarts = 4;
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(flat, {}, rng);
    EXPECT_GT(outcome.restarts, 0u);
    EXPECT_LE(outcome.restarts, 4u);
}

TEST(MultiPopulationTest, EvaluationsAccumulateAcrossPopulations) {
    util::Rng rng(6);
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 2;
    opts.stagnation_limit = 100;  // no restarts
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    // 3 pops * (12 initial + 2 gens * 10 offspring) = 96.
    EXPECT_EQ(outcome.evaluations, 3u * (12u + 2u * 10u));
}

TEST(MultiPopulationTest, MigrationInjectsGlobalBest) {
    util::Rng rng(7);
    MultiPopulationOptions opts = small_options();
    opts.migration_interval = 3;
    opts.max_generations = 9;
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    EXPECT_GT(outcome.best_fitness, 0.97);
}

TEST(MultiPopulationTest, DeterministicGivenSeed) {
    const auto run = [](std::uint64_t seed) {
        util::Rng rng(seed);
        const MultiPopulationGa driver(small_options());
        return driver.run(hill, {}, rng).best_fitness;
    };
    EXPECT_EQ(run(123), run(123));
}

TEST(MultiPopulationTest, MigrationDoesNotRemeasureCarriedElites) {
    util::Rng rng(9);
    std::size_t calls = 0;
    const FitnessFn counted = [&](const TestChromosome& c) {
        ++calls;
        return hill(c);
    };
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 6;
    opts.migration_interval = 3;
    opts.stagnation_limit = 100;  // no restarts
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(counted, {}, rng);
    // 3 pops * 12 initial + 6 gens * 3 pops * 10 offspring
    // + 2 migrations * 3 pops * 10 fresh fillers: the two migrated elites
    //   per population carry their already-measured fitness.
    EXPECT_EQ(outcome.evaluations, 36u + 180u + 60u);
    EXPECT_EQ(calls, outcome.evaluations);
}

TEST(MultiPopulationTest, BatchRunMatchesPerIndividualRun) {
    const auto run = [](const auto& fitness) {
        util::Rng rng(10);
        const MultiPopulationGa driver(small_options());
        return driver.run(fitness, {}, rng);
    };
    const MultiPopulationOutcome a = run(FitnessFn(hill));
    const MultiPopulationOutcome b = run(as_batch(hill));
    EXPECT_EQ(a.best_fitness, b.best_fitness);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.best.sequence, b.best.sequence);
    EXPECT_EQ(a.best_history, b.best_history);
}

TEST(MultiPopulationTest, SinglePopulationWorks) {
    util::Rng rng(8);
    MultiPopulationOptions opts = small_options();
    opts.populations = 1;
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome outcome = driver.run(hill, {}, rng);
    EXPECT_GT(outcome.best_fitness, 0.9);
}


TEST(MultiPopulationTest, ResumedRunMatchesUninterruptedRun) {
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 10;
    opts.migration_interval = 4;  // exercise migration across the cut

    // Uninterrupted reference run.
    util::Rng rng_ref(33);
    const MultiPopulationGa driver(opts);
    const MultiPopulationOutcome reference =
        driver.run(as_batch(hill), {}, rng_ref);

    // Interrupted run: stop after generation 4, snapshotting loop + rng.
    util::Rng rng_cut(33);
    MultiPopulationCheckpoint snapshot;
    util::Rng rng_at_cut(0);
    MultiPopulationResume hooks;
    hooks.on_generation = [&](const MultiPopulationCheckpoint& ck) {
        if (ck.next_generation == 4) {
            snapshot = ck;
            rng_at_cut = rng_cut;  // the caller checkpoints its rng too
            return false;          // simulated crash
        }
        return true;
    };
    const MultiPopulationOutcome partial =
        driver.run(as_batch(hill), {}, rng_cut, hooks);
    EXPECT_EQ(partial.generations_run, 4u);

    // Round-trip the snapshot through bytes, like a real checkpoint file.
    std::string blob;
    snapshot.save(blob);
    util::ByteReader reader(blob);
    const MultiPopulationCheckpoint restored =
        MultiPopulationCheckpoint::load(reader, opts.population);
    EXPECT_TRUE(reader.at_end());

    MultiPopulationResume resume;
    resume.resume = &restored;
    const MultiPopulationOutcome resumed =
        driver.run(as_batch(hill), {}, rng_at_cut, resume);

    EXPECT_EQ(resumed.best_fitness, reference.best_fitness);
    EXPECT_EQ(resumed.best.sequence, reference.best.sequence);
    EXPECT_EQ(resumed.best.condition, reference.best.condition);
    EXPECT_EQ(resumed.best.pattern_seed, reference.best.pattern_seed);
    EXPECT_EQ(resumed.evaluations, reference.evaluations);
    EXPECT_EQ(resumed.generations_run, reference.generations_run);
    EXPECT_EQ(resumed.restarts, reference.restarts);
    EXPECT_EQ(resumed.best_history, reference.best_history);
}

TEST(MultiPopulationTest, OnGenerationObservesEveryGeneration) {
    MultiPopulationOptions opts = small_options();
    opts.max_generations = 5;
    util::Rng rng(34);
    std::vector<std::size_t> seen;
    MultiPopulationResume hooks;
    hooks.on_generation = [&](const MultiPopulationCheckpoint& ck) {
        seen.push_back(ck.next_generation);
        return true;
    };
    const MultiPopulationGa driver(opts);
    (void)driver.run(as_batch(hill), {}, rng, hooks);
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace cichar::ga
