#include "ga/population.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cichar::ga {
namespace {

/// Smooth unimodal fitness: best at all sequence genes = 0.7.
double hill(const TestChromosome& c) {
    double score = 0.0;
    for (const double g : c.sequence) {
        score -= (g - 0.7) * (g - 0.7);
    }
    return score;
}

PopulationOptions small_options() {
    PopulationOptions opts;
    opts.size = 16;
    opts.elite = 2;
    return opts;
}

TEST(PopulationTest, FillsToSizeWithRandoms) {
    util::Rng rng(1);
    Population pop(small_options(), {}, rng);
    EXPECT_EQ(pop.size(), 16u);
    EXPECT_EQ(pop.generation(), 0u);
}

TEST(PopulationTest, SeedsIncluded) {
    util::Rng rng(2);
    TestChromosome seed;
    seed.sequence.fill(0.123);
    Population pop(small_options(), {seed}, rng);
    EXPECT_EQ(pop.individual(0).chromosome.sequence[0], 0.123);
}

TEST(PopulationTest, ExtraSeedsTruncated) {
    util::Rng rng(3);
    std::vector<TestChromosome> seeds(40, TestChromosome::random(rng));
    Population pop(small_options(), std::move(seeds), rng);
    EXPECT_EQ(pop.size(), 16u);
}

TEST(PopulationTest, EvaluateCountsOnlyUnevaluated) {
    util::Rng rng(4);
    Population pop(small_options(), {}, rng);
    EXPECT_EQ(pop.evaluate(hill), 16u);
    EXPECT_EQ(pop.evaluate(hill), 0u);  // cached
}

TEST(PopulationTest, BestThrowsBeforeEvaluation) {
    util::Rng rng(5);
    Population pop(small_options(), {}, rng);
    EXPECT_THROW((void)pop.best(), std::logic_error);
}

TEST(PopulationTest, BestIsMaximal) {
    util::Rng rng(6);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    const Individual& best = pop.best();
    for (std::size_t i = 0; i < pop.size(); ++i) {
        EXPECT_GE(best.fitness, pop.individual(i).fitness);
    }
}

TEST(PopulationTest, ElitismNeverRegresses) {
    util::Rng rng(7);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    double previous = pop.best().fitness;
    for (int gen = 0; gen < 20; ++gen) {
        (void)pop.step(hill, rng);
        EXPECT_GE(pop.best().fitness, previous - 1e-12);
        previous = pop.best().fitness;
    }
}

TEST(PopulationTest, ClimbsTheHill) {
    util::Rng rng(8);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    const double start = pop.best().fitness;
    for (int gen = 0; gen < 30; ++gen) (void)pop.step(hill, rng);
    EXPECT_GT(pop.best().fitness, start);
    EXPECT_GT(pop.best().fitness, -0.05);  // near the optimum
}

TEST(PopulationTest, GenerationCounterAdvances) {
    util::Rng rng(9);
    Population pop(small_options(), {}, rng);
    (void)pop.step(hill, rng);
    (void)pop.step(hill, rng);
    EXPECT_EQ(pop.generation(), 2u);
}

TEST(PopulationTest, StagnationGrowsOnPlateau) {
    util::Rng rng(10);
    // Constant fitness: no improvement is possible.
    const FitnessFn flat = [](const TestChromosome&) { return 1.0; };
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(flat);
    for (int gen = 0; gen < 5; ++gen) (void)pop.step(flat, rng);
    EXPECT_GE(pop.stagnation(), 4u);
}

TEST(PopulationTest, RestartResetsEverything) {
    util::Rng rng(11);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    for (int gen = 0; gen < 5; ++gen) (void)pop.step(hill, rng);
    pop.restart(rng);
    EXPECT_EQ(pop.stagnation(), 0u);
    EXPECT_THROW((void)pop.best(), std::logic_error);  // unevaluated again
    EXPECT_EQ(pop.evaluate(hill), 16u);
}

TEST(PopulationTest, StepEvaluationCountBounded) {
    util::Rng rng(12);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    // Each step creates size - elite new individuals.
    const std::size_t evals = pop.step(hill, rng);
    EXPECT_EQ(evals, 16u - 2u);
}

TEST(PopulationTest, DeterministicGivenSeed) {
    const auto run = [](std::uint64_t seed) {
        util::Rng rng(seed);
        Population pop(small_options(), {}, rng);
        (void)pop.evaluate(hill);
        for (int gen = 0; gen < 10; ++gen) (void)pop.step(hill, rng);
        return pop.best().fitness;
    };
    EXPECT_EQ(run(99), run(99));
}

TEST(PopulationTest, BatchEvaluateMatchesPerIndividual) {
    util::Rng rng_a(20);
    util::Rng rng_b(20);
    Population a(small_options(), {}, rng_a);
    Population b(small_options(), {}, rng_b);
    EXPECT_EQ(a.evaluate(hill), b.evaluate(as_batch(hill)));
    for (int gen = 0; gen < 8; ++gen) {
        EXPECT_EQ(a.step(hill, rng_a), b.step(as_batch(hill), rng_b));
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.individual(i).fitness, b.individual(i).fitness);
        EXPECT_EQ(a.individual(i).chromosome.sequence,
                  b.individual(i).chromosome.sequence);
    }
}

TEST(PopulationTest, BatchReceivesOnlyUnevaluated) {
    util::Rng rng(21);
    std::size_t seen = 0;
    const BatchFitnessFn counting =
        [&](std::span<const TestChromosome> batch) {
            seen += batch.size();
            std::vector<double> values;
            values.reserve(batch.size());
            for (const TestChromosome& c : batch) values.push_back(hill(c));
            return values;
        };
    Population pop(small_options(), {}, rng);
    EXPECT_EQ(pop.evaluate(counting), 16u);
    EXPECT_EQ(pop.evaluate(counting), 0u);  // everyone cached
    EXPECT_EQ(seen, 16u);
}

TEST(PopulationTest, BatchSizeMismatchThrows) {
    util::Rng rng(22);
    const BatchFitnessFn bad = [](std::span<const TestChromosome>) {
        return std::vector<double>{};  // wrong length on purpose
    };
    Population pop(small_options(), {}, rng);
    EXPECT_THROW((void)pop.evaluate(bad), std::logic_error);
}

TEST(PopulationTest, PreloadSkipsReEvaluation) {
    util::Rng rng(23);
    TestChromosome seed;
    seed.sequence.fill(0.7);  // the hill optimum
    Population pop(small_options(), {seed}, rng);
    pop.preload(0, 42.0);  // carried-over measurement, not hill(seed)
    EXPECT_EQ(pop.evaluate(hill), 16u - 1u);
    EXPECT_EQ(pop.individual(0).fitness, 42.0);
    EXPECT_EQ(pop.best().fitness, 42.0);
}


TEST(PopulationTest, PreloadOutOfRangeThrows) {
    util::Rng rng(21);
    Population pop(small_options(), {}, rng);
    EXPECT_THROW(pop.preload(pop.size(), 1.0), std::out_of_range);
    EXPECT_THROW(pop.preload(pop.size() + 100, 1.0), std::out_of_range);
    pop.preload(pop.size() - 1, 2.5);  // last valid index still works
    EXPECT_EQ(pop.individual(pop.size() - 1).fitness, 2.5);
}

TEST(PopulationTest, SaveLoadRoundTripsMidEvolutionState) {
    util::Rng rng(22);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    (void)pop.step(hill, rng);
    (void)pop.step(hill, rng);

    std::string blob;
    pop.save(blob);
    util::ByteReader reader(blob);
    Population restored = Population::load(reader, small_options());
    EXPECT_TRUE(reader.at_end());

    ASSERT_EQ(restored.size(), pop.size());
    for (std::size_t i = 0; i < pop.size(); ++i) {
        EXPECT_EQ(restored.individual(i).chromosome,
                  pop.individual(i).chromosome);
        EXPECT_EQ(restored.individual(i).fitness, pop.individual(i).fitness);
        EXPECT_EQ(restored.individual(i).evaluated,
                  pop.individual(i).evaluated);
    }
    EXPECT_EQ(restored.generation(), pop.generation());
    EXPECT_EQ(restored.stagnation(), pop.stagnation());
    EXPECT_EQ(restored.best().fitness, pop.best().fitness);

    // Evolution continues identically from both objects.
    util::Rng rng_a = rng;
    util::Rng rng_b = rng;
    (void)pop.step(hill, rng_a);
    (void)restored.step(hill, rng_b);
    for (std::size_t i = 0; i < pop.size(); ++i) {
        EXPECT_EQ(restored.individual(i).chromosome,
                  pop.individual(i).chromosome);
    }
}

TEST(PopulationTest, LoadRejectsTruncatedBlob) {
    util::Rng rng(23);
    Population pop(small_options(), {}, rng);
    (void)pop.evaluate(hill);
    std::string blob;
    pop.save(blob);
    util::ByteReader reader(std::string_view(blob).substr(0, blob.size() / 2));
    EXPECT_THROW((void)Population::load(reader, small_options()),
                 std::runtime_error);
}

}  // namespace
}  // namespace cichar::ga
