#include "ga/wcr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cichar::ga {
namespace {

TEST(WcrTest, PaperTable1Values) {
    // Table 1: T_DQ spec 20 ns (min limit), eq. (6).
    EXPECT_NEAR(wcr_toward_min(32.3, 20.0), 0.619, 0.001);
    EXPECT_NEAR(wcr_toward_min(28.5, 20.0), 0.701, 0.001);
    EXPECT_NEAR(wcr_toward_min(22.1, 20.0), 0.904, 0.002);
}

TEST(WcrTest, TowardMaxRatio) {
    EXPECT_DOUBLE_EQ(wcr_toward_max(50.0, 100.0), 0.5);
    EXPECT_DOUBLE_EQ(wcr_toward_max(110.0, 100.0), 1.1);
    EXPECT_DOUBLE_EQ(wcr_toward_max(-50.0, 100.0), 0.5);  // |.|
}

TEST(WcrTest, TowardMinRatio) {
    EXPECT_DOUBLE_EQ(wcr_toward_min(40.0, 20.0), 0.5);
    EXPECT_DOUBLE_EQ(wcr_toward_min(20.0, 20.0), 1.0);
    EXPECT_DOUBLE_EQ(wcr_toward_min(10.0, 20.0), 2.0);  // below spec: fail
}

TEST(WcrTest, DegenerateValuesInfinite) {
    EXPECT_TRUE(std::isinf(wcr_toward_min(0.0, 20.0)));
    EXPECT_TRUE(std::isinf(wcr_toward_max(5.0, 0.0)));
}

TEST(WcrTest, Fig6Classification) {
    EXPECT_EQ(classify(0.0), WcrClass::kPass);
    EXPECT_EQ(classify(0.5), WcrClass::kPass);
    EXPECT_EQ(classify(0.8), WcrClass::kPass);       // boundary inclusive
    EXPECT_EQ(classify(0.81), WcrClass::kWeakness);
    EXPECT_EQ(classify(1.0), WcrClass::kWeakness);   // boundary inclusive
    EXPECT_EQ(classify(1.01), WcrClass::kFail);
    EXPECT_EQ(classify(5.0), WcrClass::kFail);
}

TEST(WcrTest, CustomThresholds) {
    const WcrThresholds strict{0.6, 0.9};
    EXPECT_EQ(classify(0.7, strict), WcrClass::kWeakness);
    EXPECT_EQ(classify(0.95, strict), WcrClass::kFail);
}

TEST(WcrTest, ClassNames) {
    EXPECT_STREQ(to_string(WcrClass::kPass), "pass");
    EXPECT_STREQ(to_string(WcrClass::kWeakness), "weakness");
    EXPECT_STREQ(to_string(WcrClass::kFail), "fail");
}

TEST(WcrTrackerTest, TracksWorstAndIndex) {
    WcrTracker tracker;
    tracker.add(0.5);
    tracker.add(0.9);
    tracker.add(0.7);
    EXPECT_EQ(tracker.count(), 3u);
    EXPECT_DOUBLE_EQ(tracker.worst(), 0.9);
    EXPECT_EQ(tracker.worst_index(), 1u);
}

TEST(WcrTrackerTest, WorstCaseDetection) {
    WcrTracker tracker;
    EXPECT_FALSE(tracker.worst_case_detected());
    tracker.add(0.5);
    EXPECT_FALSE(tracker.worst_case_detected());
    tracker.add(0.85);
    EXPECT_TRUE(tracker.worst_case_detected());
}

TEST(WcrTrackerTest, FirstOfEqualWorstKept) {
    WcrTracker tracker;
    tracker.add(0.9);
    tracker.add(0.9);
    EXPECT_EQ(tracker.worst_index(), 0u);
}

// Property: classification is monotone in WCR.
class WcrMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(WcrMonotoneTest, HigherWcrNeverBetterClass) {
    const double wcr = GetParam();
    const auto rank = [](WcrClass c) { return static_cast<int>(c); };
    EXPECT_LE(rank(classify(wcr)), rank(classify(wcr + 0.05)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WcrMonotoneTest,
                         ::testing::Values(0.0, 0.3, 0.75, 0.79, 0.8, 0.95,
                                           0.99, 1.0, 1.2));

}  // namespace
}  // namespace cichar::ga
