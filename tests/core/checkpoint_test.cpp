#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace cichar::core {
namespace {

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
    const std::string payload = "hunt state \0 with embedded nul";
    const std::string blob = encode_checkpoint("hunt:dvt:seed=7", payload);
    std::string out;
    ASSERT_TRUE(decode_checkpoint(blob, "hunt:dvt:seed=7", out));
    EXPECT_EQ(out, payload);
}

TEST(CheckpointTest, RejectsWrongFingerprint) {
    const std::string blob = encode_checkpoint("hunt:dvt:seed=7", "payload");
    std::string out = "untouched";
    EXPECT_FALSE(decode_checkpoint(blob, "hunt:dvt:seed=8", out));
    EXPECT_EQ(out, "untouched");
}

TEST(CheckpointTest, RejectsCorruptionAnywhere) {
    const std::string blob =
        encode_checkpoint("fp", std::string(256, 'x') + "payload tail");
    // Flip one bit at every byte position; decode must refuse (or, for
    // flips inside the fingerprint-length prefix that keep it parseable,
    // simply mismatch) — and never crash or return wrong payload.
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::string mutated = blob;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
        std::string out;
        if (decode_checkpoint(mutated, "fp", out)) {
            // The only acceptable "success" is a flip that did not change
            // the decoded payload (impossible: checksum covers payload,
            // envelope covers fingerprint) — so reaching here is a bug.
            ADD_FAILURE() << "corrupt blob accepted at byte " << i;
        }
    }
}

TEST(CheckpointTest, RejectsTruncationAtEveryLength) {
    const std::string blob = encode_checkpoint("fp", "some payload");
    for (std::size_t len = 0; len < blob.size(); ++len) {
        std::string out;
        EXPECT_FALSE(
            decode_checkpoint(std::string_view(blob).substr(0, len), "fp", out))
            << "truncated blob accepted at length " << len;
    }
}

TEST(CheckpointTest, FileRoundTripAndMissingFile) {
    const std::string path = "checkpoint_test_roundtrip.ckpt";
    ASSERT_TRUE(write_checkpoint_file(path, "fp", "payload"));
    const auto loaded = read_checkpoint_file(path, "fp");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, "payload");
    EXPECT_FALSE(read_checkpoint_file(path, "other-fp").has_value());
    std::remove(path.c_str());
    EXPECT_FALSE(read_checkpoint_file(path, "fp").has_value());
}

}  // namespace
}  // namespace cichar::core
