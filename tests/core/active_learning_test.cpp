#include <gtest/gtest.h>

#include "core/learner.hpp"
#include "device/memory_chip.hpp"
#include "util/statistics.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

testgen::RandomGeneratorOptions nominal() {
    testgen::RandomGeneratorOptions g;
    g.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    return g;
}

LearnerOptions base_options(Acquisition acquisition) {
    LearnerOptions opts;
    opts.training_tests = 60;
    opts.additional_tests_per_round = 40;
    opts.max_rounds = 3;
    opts.min_rounds = 3;  // force refinement rounds
    opts.acquisition = acquisition;
    opts.acquisition_pool = 1200;
    opts.committee.members = 3;
    opts.committee.hidden_layers = {12};
    opts.committee.train.max_epochs = 100;
    return opts;
}

TEST(ActiveLearningTest, Names) {
    EXPECT_STREQ(to_string(Acquisition::kRandom), "random");
    EXPECT_STREQ(to_string(Acquisition::kPredictedWorst), "predicted-worst");
    EXPECT_STREQ(to_string(Acquisition::kUncertainty), "uncertainty");
}

TEST(ActiveLearningTest, MinRoundsForcesRefinement) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const CharacterizationLearner learner(base_options(Acquisition::kRandom));
    const testgen::RandomTestGenerator generator(nominal());
    util::Rng rng(1);
    const LearnResult result = learner.run(
        tester, ate::Parameter::data_valid_time(), generator, rng);
    EXPECT_EQ(result.rounds, 3u);
    EXPECT_EQ(result.tests_measured, 60u + 2u * 40u);
}

TEST(ActiveLearningTest, PredictedWorstSkewsCorpusTowardWorstCases) {
    const auto worst_measured = [](Acquisition acquisition) {
        device::MemoryTestChip chip({}, noiseless());
        ate::Tester tester(chip);
        const CharacterizationLearner learner(base_options(acquisition));
        const testgen::RandomTestGenerator generator(nominal());
        util::Rng rng(7);
        const LearnResult result = learner.run(
            tester, ate::Parameter::data_valid_time(), generator, rng);
        return result.dsv.worst().wcr;
    };
    const double random_worst = worst_measured(Acquisition::kRandom);
    const double active_worst = worst_measured(Acquisition::kPredictedWorst);
    // Targeted acquisition measures worse (higher-WCR) tests than blind
    // random sampling at the same ATE budget: the active rounds pick the
    // predicted-worst 40 out of a 1200-candidate software pool.
    EXPECT_GT(active_worst, random_worst);
}

TEST(ActiveLearningTest, UncertaintyAcquisitionRuns) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const CharacterizationLearner learner(
        base_options(Acquisition::kUncertainty));
    const testgen::RandomTestGenerator generator(nominal());
    util::Rng rng(3);
    const LearnResult result = learner.run(
        tester, ate::Parameter::data_valid_time(), generator, rng);
    EXPECT_EQ(result.tests_measured, 60u + 2u * 40u);
    EXPECT_LT(result.mean_validation_error, 0.05);
}

TEST(ActiveLearningTest, AcquiredModelStillPredictsWell) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const CharacterizationLearner learner(
        base_options(Acquisition::kPredictedWorst));
    const testgen::RandomTestGenerator generator(nominal());
    util::Rng rng(11);
    const LearnResult result = learner.run(
        tester, ate::Parameter::data_valid_time(), generator, rng);

    util::Rng eval_rng(99);
    std::vector<double> predicted;
    std::vector<double> truth;
    for (int i = 0; i < 150; ++i) {
        const testgen::Test t = generator.random_test(eval_rng);
        predicted.push_back(result.model.predict_wcr(t));
        truth.push_back(20.0 / chip.true_parameter(
                                  t, device::ParameterKind::kDataValidTime));
    }
    EXPECT_GT(util::correlation(predicted, truth), 0.75);
}

}  // namespace
}  // namespace cichar::core
