#include "core/trip_cache.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cichar::core {
namespace {

TripCacheKey make_key() {
    TripCacheKey key;
    key.recipe.cycles = 500;
    key.recipe.write_fraction = 0.5;
    key.recipe.seed = 42;
    key.conditions.vdd_volts = 1.8;
    return key;
}

TripPointRecord make_record(double trip) {
    TripPointRecord record;
    record.test_name = "t";
    record.trip_point = trip;
    record.found = true;
    record.measurements = 7;
    return record;
}

TEST(TripCacheTest, HitOnIdenticalKey) {
    TripPointCache cache(8);
    const TripCacheKey key = make_key();
    EXPECT_EQ(cache.lookup(key), nullptr);
    cache.insert(key, make_record(25.0));

    const TripPointRecord* hit = cache.lookup(make_key());
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->trip_point, 25.0);
    EXPECT_EQ(hit->measurements, 7u);
}

TEST(TripCacheTest, MissOnConditionChange) {
    TripPointCache cache(8);
    cache.insert(make_key(), make_record(25.0));

    TripCacheKey warmer = make_key();
    warmer.conditions.temperature_c += 1.0;
    EXPECT_EQ(cache.lookup(warmer), nullptr);

    TripCacheKey different_vdd = make_key();
    different_vdd.conditions.vdd_volts += 1e-12;  // bit-exact keying
    EXPECT_EQ(cache.lookup(different_vdd), nullptr);
}

TEST(TripCacheTest, MissOnRecipeOrSeedChange) {
    TripPointCache cache(8);
    cache.insert(make_key(), make_record(25.0));

    TripCacheKey longer = make_key();
    longer.recipe.cycles += 1;
    EXPECT_EQ(cache.lookup(longer), nullptr);

    TripCacheKey reseeded = make_key();
    reseeded.recipe.seed += 1;  // same statistics, different pattern
    EXPECT_EQ(cache.lookup(reseeded), nullptr);
}

TEST(TripCacheTest, CountersAreAccurate) {
    TripPointCache cache(8);
    const TripCacheKey key = make_key();
    (void)cache.lookup(key);            // miss
    cache.insert(key, make_record(1.0));
    (void)cache.lookup(key);            // hit
    (void)cache.lookup(key);            // hit
    TripCacheKey other = make_key();
    other.recipe.cycles = 900;
    (void)cache.lookup(other);          // miss

    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().lookups(), 4u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(TripCacheTest, LruEvictionAtCapacity) {
    TripPointCache cache(2);
    TripCacheKey a = make_key();
    a.recipe.cycles = 100;
    TripCacheKey b = make_key();
    b.recipe.cycles = 200;
    TripCacheKey c = make_key();
    c.recipe.cycles = 300;

    cache.insert(a, make_record(1.0));
    cache.insert(b, make_record(2.0));
    ASSERT_NE(cache.lookup(a), nullptr);  // promote a; b is now LRU
    cache.insert(c, make_record(3.0));    // evicts b

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);
}

TEST(TripCacheTest, ReinsertRefreshesInsteadOfEvicting) {
    TripPointCache cache(2);
    const TripCacheKey key = make_key();
    cache.insert(key, make_record(1.0));
    cache.insert(key, make_record(9.0));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_DOUBLE_EQ(cache.lookup(key)->trip_point, 9.0);
}

TEST(TripCacheTest, ClearKeepsStats) {
    TripPointCache cache(4);
    const TripCacheKey key = make_key();
    cache.insert(key, make_record(1.0));
    (void)cache.lookup(key);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(key), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TripCachePersistTest, SaveLoadRoundTripIsBitExact) {
    TripPointCache cache(8);
    TripCacheKey a = make_key();
    a.recipe.cycles = 100;
    a.conditions.vdd_volts = 1.62000000000000011;  // exercises bit-exactness
    TripCacheKey b = make_key();
    b.recipe.cycles = 200;
    TripPointRecord rb = make_record(31.25);
    rb.wcr = 0.640000000000000013;
    rb.wcr_class = ga::WcrClass::kWeakness;
    cache.insert(a, make_record(25.0));
    cache.insert(b, rb);

    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "die-7/tdq"));

    TripPointCache loaded(8);
    ASSERT_TRUE(loaded.load(stream, "die-7/tdq"));
    EXPECT_EQ(loaded.size(), 2u);

    const TripPointRecord* hit_a = loaded.lookup(a);
    ASSERT_NE(hit_a, nullptr);
    EXPECT_EQ(hit_a->trip_point, 25.0);
    EXPECT_EQ(hit_a->measurements, 7u);
    EXPECT_TRUE(hit_a->found);

    const TripPointRecord* hit_b = loaded.lookup(b);
    ASSERT_NE(hit_b, nullptr);
    EXPECT_EQ(hit_b->wcr, rb.wcr);  // exact, not approximate
    EXPECT_EQ(hit_b->wcr_class, ga::WcrClass::kWeakness);
    EXPECT_EQ(hit_b->test_name, "t");
}

TEST(TripCachePersistTest, LoadPreservesRecencyOrder) {
    TripPointCache cache(2);
    TripCacheKey a = make_key();
    a.recipe.cycles = 100;
    TripCacheKey b = make_key();
    b.recipe.cycles = 200;
    cache.insert(a, make_record(1.0));
    cache.insert(b, make_record(2.0));  // b most recent, a is LRU

    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "id"));
    TripPointCache loaded(2);
    ASSERT_TRUE(loaded.load(stream, "id"));

    // Inserting a third entry must evict `a` (the LRU), proving the
    // recency order survived the round trip.
    TripCacheKey c = make_key();
    c.recipe.cycles = 300;
    loaded.insert(c, make_record(3.0));
    EXPECT_EQ(loaded.lookup(a), nullptr);
    EXPECT_NE(loaded.lookup(b), nullptr);
}

TEST(TripCachePersistTest, IdentityMismatchRejectedAndCacheUntouched) {
    TripPointCache source(4);
    source.insert(make_key(), make_record(1.0));
    std::stringstream stream;
    ASSERT_TRUE(source.save(stream, "lot-A"));

    TripPointCache target(4);
    TripCacheKey existing = make_key();
    existing.recipe.cycles = 900;
    target.insert(existing, make_record(9.0));
    EXPECT_FALSE(target.load(stream, "lot-B"));
    EXPECT_EQ(target.size(), 1u);  // untouched
    EXPECT_NE(target.lookup(existing), nullptr);
}

TEST(TripCachePersistTest, CorruptOrTruncatedStreamRejected) {
    TripPointCache cache(4);
    cache.insert(make_key(), make_record(1.0));
    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "id"));
    const std::string bytes = stream.str();

    TripPointCache loaded(4);
    std::stringstream bad_magic("NOTACACHE-AT-ALL");
    EXPECT_FALSE(loaded.load(bad_magic, "id"));

    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(loaded.load(truncated, "id"));
    EXPECT_EQ(loaded.size(), 0u);
}

TEST(TripCachePersistTest, OverCapacityLoadKeepsMostRecent) {
    TripPointCache big(8);
    TripCacheKey keys[4];
    for (int i = 0; i < 4; ++i) {
        keys[i] = make_key();
        keys[i].recipe.cycles = 100 + static_cast<std::uint32_t>(i);
        big.insert(keys[i], make_record(static_cast<double>(i)));
    }
    std::stringstream stream;
    ASSERT_TRUE(big.save(stream, "id"));

    TripPointCache small(2);
    ASSERT_TRUE(small.load(stream, "id"));
    EXPECT_EQ(small.size(), 2u);
    EXPECT_EQ(small.stats().evictions, 0u);
    EXPECT_EQ(small.lookup(keys[0]), nullptr);
    EXPECT_EQ(small.lookup(keys[1]), nullptr);
    EXPECT_NE(small.lookup(keys[2]), nullptr);
    EXPECT_NE(small.lookup(keys[3]), nullptr);
}

// Fuzz-style hardening: every truncated prefix of a saved cache must be
// refused without crashing and without disturbing the live cache.
TEST(TripCachePersistTest, EveryTruncatedPrefixRejected) {
    TripPointCache cache(8);
    for (int i = 0; i < 3; ++i) {
        TripCacheKey key = make_key();
        key.recipe.cycles = 200 + static_cast<std::uint32_t>(i);
        cache.insert(key, make_record(static_cast<double>(i)));
    }
    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "id"));
    const std::string bytes = stream.str();

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        TripPointCache loaded(8);
        loaded.insert(make_key(), make_record(9.0));
        std::stringstream truncated(bytes.substr(0, cut));
        EXPECT_FALSE(loaded.load(truncated, "id")) << "prefix length " << cut;
        EXPECT_EQ(loaded.size(), 1u) << "prefix length " << cut;
        EXPECT_NE(loaded.lookup(make_key()), nullptr);
    }
}

// Any single flipped byte — payload, length field, or checksum itself —
// fails the trailing checksum and the file is treated as cold.
TEST(TripCachePersistTest, EveryByteFlipRejected) {
    TripPointCache cache(4);
    cache.insert(make_key(), make_record(1.0));
    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "id"));
    const std::string bytes = stream.str();

    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::string mutated = bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ 0x41);
        TripPointCache loaded(4);
        std::stringstream corrupt(mutated);
        EXPECT_FALSE(loaded.load(corrupt, "id")) << "byte " << pos;
        EXPECT_EQ(loaded.size(), 0u) << "byte " << pos;
    }
}

// Appending garbage past the declared entry count is corruption, not
// extra warmth.
TEST(TripCachePersistTest, TrailingGarbageRejected) {
    TripPointCache cache(4);
    cache.insert(make_key(), make_record(1.0));
    std::stringstream stream;
    ASSERT_TRUE(cache.save(stream, "id"));
    std::stringstream padded(stream.str() + "extra");
    TripPointCache loaded(4);
    EXPECT_FALSE(loaded.load(padded, "id"));
    EXPECT_EQ(loaded.size(), 0u);
}

// A version-1 file (no checksum) fails the magic check: documented
// cold-cache fallback, never a misparse.
TEST(TripCachePersistTest, OldFormatVersionStartsCold) {
    std::stringstream v1("CICHTPC1\x02\x00\x00\x00\x00\x00\x00\x00id");
    TripPointCache loaded(4);
    EXPECT_FALSE(loaded.load(v1, "id"));
    EXPECT_EQ(loaded.size(), 0u);
}

TEST(TripCacheStatsTest, MergeAccumulates) {
    TripCacheStats a{10, 5, 1};
    const TripCacheStats b{2, 3, 0};
    a.merge(b);
    EXPECT_EQ(a.hits, 12u);
    EXPECT_EQ(a.misses, 8u);
    EXPECT_EQ(a.evictions, 1u);
}

}  // namespace
}  // namespace cichar::core
