#include "core/trip_cache.hpp"

#include <gtest/gtest.h>

namespace cichar::core {
namespace {

TripCacheKey make_key() {
    TripCacheKey key;
    key.recipe.cycles = 500;
    key.recipe.write_fraction = 0.5;
    key.recipe.seed = 42;
    key.conditions.vdd_volts = 1.8;
    return key;
}

TripPointRecord make_record(double trip) {
    TripPointRecord record;
    record.test_name = "t";
    record.trip_point = trip;
    record.found = true;
    record.measurements = 7;
    return record;
}

TEST(TripCacheTest, HitOnIdenticalKey) {
    TripPointCache cache(8);
    const TripCacheKey key = make_key();
    EXPECT_EQ(cache.lookup(key), nullptr);
    cache.insert(key, make_record(25.0));

    const TripPointRecord* hit = cache.lookup(make_key());
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->trip_point, 25.0);
    EXPECT_EQ(hit->measurements, 7u);
}

TEST(TripCacheTest, MissOnConditionChange) {
    TripPointCache cache(8);
    cache.insert(make_key(), make_record(25.0));

    TripCacheKey warmer = make_key();
    warmer.conditions.temperature_c += 1.0;
    EXPECT_EQ(cache.lookup(warmer), nullptr);

    TripCacheKey different_vdd = make_key();
    different_vdd.conditions.vdd_volts += 1e-12;  // bit-exact keying
    EXPECT_EQ(cache.lookup(different_vdd), nullptr);
}

TEST(TripCacheTest, MissOnRecipeOrSeedChange) {
    TripPointCache cache(8);
    cache.insert(make_key(), make_record(25.0));

    TripCacheKey longer = make_key();
    longer.recipe.cycles += 1;
    EXPECT_EQ(cache.lookup(longer), nullptr);

    TripCacheKey reseeded = make_key();
    reseeded.recipe.seed += 1;  // same statistics, different pattern
    EXPECT_EQ(cache.lookup(reseeded), nullptr);
}

TEST(TripCacheTest, CountersAreAccurate) {
    TripPointCache cache(8);
    const TripCacheKey key = make_key();
    (void)cache.lookup(key);            // miss
    cache.insert(key, make_record(1.0));
    (void)cache.lookup(key);            // hit
    (void)cache.lookup(key);            // hit
    TripCacheKey other = make_key();
    other.recipe.cycles = 900;
    (void)cache.lookup(other);          // miss

    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().lookups(), 4u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(TripCacheTest, LruEvictionAtCapacity) {
    TripPointCache cache(2);
    TripCacheKey a = make_key();
    a.recipe.cycles = 100;
    TripCacheKey b = make_key();
    b.recipe.cycles = 200;
    TripCacheKey c = make_key();
    c.recipe.cycles = 300;

    cache.insert(a, make_record(1.0));
    cache.insert(b, make_record(2.0));
    ASSERT_NE(cache.lookup(a), nullptr);  // promote a; b is now LRU
    cache.insert(c, make_record(3.0));    // evicts b

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);
}

TEST(TripCacheTest, ReinsertRefreshesInsteadOfEvicting) {
    TripPointCache cache(2);
    const TripCacheKey key = make_key();
    cache.insert(key, make_record(1.0));
    cache.insert(key, make_record(9.0));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_DOUBLE_EQ(cache.lookup(key)->trip_point, 9.0);
}

TEST(TripCacheTest, ClearKeepsStats) {
    TripPointCache cache(4);
    const TripCacheKey key = make_key();
    cache.insert(key, make_record(1.0));
    (void)cache.lookup(key);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(key), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TripCacheStatsTest, MergeAccumulates) {
    TripCacheStats a{10, 5, 1};
    const TripCacheStats b{2, 3, 0};
    a.merge(b);
    EXPECT_EQ(a.hits, 12u);
    EXPECT_EQ(a.misses, 8u);
    EXPECT_EQ(a.evictions, 1u);
}

}  // namespace
}  // namespace cichar::core
