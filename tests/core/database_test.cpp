#include "core/database.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cichar::core {
namespace {

WorstCaseEntry entry(const std::string& name, double wcr) {
    WorstCaseEntry e;
    e.name = name;
    e.wcr = wcr;
    e.trip_point = 20.0 / wcr;
    e.wcr_class = ga::classify(wcr);
    return e;
}

TEST(DatabaseTest, EmptyState) {
    WorstCaseDatabase db;
    EXPECT_TRUE(db.empty());
    EXPECT_EQ(db.size(), 0u);
    EXPECT_THROW((void)db.worst(), std::logic_error);
}

TEST(DatabaseTest, SortedWorstFirst) {
    WorstCaseDatabase db;
    db.add(entry("a", 0.6));
    db.add(entry("b", 0.9));
    db.add(entry("c", 0.7));
    EXPECT_EQ(db.worst().name, "b");
    EXPECT_EQ(db.entries()[0].name, "b");
    EXPECT_EQ(db.entries()[1].name, "c");
    EXPECT_EQ(db.entries()[2].name, "a");
}

TEST(DatabaseTest, CapacityKeepsTop) {
    WorstCaseDatabase db(3);
    for (int i = 0; i < 10; ++i) {
        db.add(entry("e" + std::to_string(i), 0.5 + 0.01 * i));
    }
    EXPECT_EQ(db.size(), 3u);
    EXPECT_NEAR(db.worst().wcr, 0.59, 1e-12);
    EXPECT_NEAR(db.entries().back().wcr, 0.57, 1e-12);
}

TEST(DatabaseTest, FunctionalFailuresSeparate) {
    WorstCaseDatabase db(2);
    db.add(entry("a", 0.6));
    FunctionalFailureRecord failure;
    failure.name = "boom";
    failure.miscompares = 17;
    db.add_functional_failure(failure);
    EXPECT_EQ(db.size(), 1u);
    ASSERT_EQ(db.functional_failures().size(), 1u);
    EXPECT_EQ(db.functional_failures()[0].name, "boom");
    // Capacity does not trim functional failures.
    for (int i = 0; i < 5; ++i) db.add_functional_failure(failure);
    EXPECT_EQ(db.functional_failures().size(), 6u);
}

TEST(DatabaseTest, CsvExportShape) {
    WorstCaseDatabase db;
    db.add(entry("worst-1", 0.92));
    db.add(entry("also, tricky", 0.85));  // comma in the name: quoted
    std::ostringstream out;
    db.save_csv(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name,wcr,class"), std::string::npos);
    EXPECT_NE(text.find("worst-1"), std::string::npos);
    EXPECT_NE(text.find("\"also, tricky\""), std::string::npos);
    EXPECT_NE(text.find("weakness"), std::string::npos);
    std::istringstream in(text);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 3u);  // header + 2 entries
}

TEST(DatabaseTest, FunctionalCsvExport) {
    WorstCaseDatabase db;
    FunctionalFailureRecord failure;
    failure.name = "fail-A";
    failure.miscompares = 3;
    failure.first_fail_cycle = 42;
    db.add_functional_failure(failure);
    std::ostringstream out;
    db.save_functional_csv(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("fail-A"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(DatabaseTest, EqualWcrStableBehavior) {
    WorstCaseDatabase db;
    db.add(entry("first", 0.8));
    db.add(entry("second", 0.8));
    EXPECT_EQ(db.size(), 2u);
    EXPECT_DOUBLE_EQ(db.worst().wcr, 0.8);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
    WorstCaseDatabase db(16);
    WorstCaseEntry a = entry("worst one", 0.91);  // space: name escaping
    a.recipe.cycles = 321;
    a.recipe.toggle_bias = 0.625;
    a.recipe.seed = 0xDEADBEEF;
    a.conditions.vdd_volts = 1.65;
    db.add(a);
    db.add(entry("second", 0.72));
    FunctionalFailureRecord failure;
    failure.name = "boom case";
    failure.miscompares = 9;
    failure.first_fail_cycle = 1234;
    failure.recipe.seed = 42;
    db.add_functional_failure(failure);

    std::stringstream stream;
    db.save(stream);
    const WorstCaseDatabase loaded = WorstCaseDatabase::load(stream);

    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.worst().name, "worst one");
    EXPECT_DOUBLE_EQ(loaded.worst().wcr, 0.91);
    EXPECT_EQ(loaded.worst().recipe, a.recipe);
    EXPECT_EQ(loaded.worst().conditions, a.conditions);
    ASSERT_EQ(loaded.functional_failures().size(), 1u);
    EXPECT_EQ(loaded.functional_failures()[0].name, "boom case");
    EXPECT_EQ(loaded.functional_failures()[0].miscompares, 9u);
    EXPECT_EQ(loaded.functional_failures()[0].recipe.seed, 42u);
}

TEST(DatabaseTest, LoadedCapacityStillEnforced) {
    WorstCaseDatabase db(2);
    db.add(entry("a", 0.9));
    db.add(entry("b", 0.8));
    std::stringstream stream;
    db.save(stream);
    WorstCaseDatabase loaded = WorstCaseDatabase::load(stream);
    loaded.add(entry("c", 0.95));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.worst().name, "c");
}

TEST(DatabaseTest, LoadRejectsGarbage) {
    std::stringstream bad("garbage stream");
    EXPECT_THROW((void)WorstCaseDatabase::load(bad), std::runtime_error);
    std::stringstream truncated("cichar-worstcase-db 1\ncapacity 4\nentries 2\n");
    EXPECT_THROW((void)WorstCaseDatabase::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace cichar::core
