#include "core/dsv.hpp"

#include <gtest/gtest.h>

namespace cichar::core {
namespace {

TripPointRecord record(const std::string& name, double trip, double wcr,
                       bool found = true, std::size_t measurements = 10) {
    TripPointRecord r;
    r.test_name = name;
    r.trip_point = trip;
    r.wcr = wcr;
    r.wcr_class = ga::classify(wcr);
    r.found = found;
    r.measurements = measurements;
    return r;
}

TEST(WorstCaseRatioTest, MinLimitUsesEq6) {
    const ate::Parameter p = ate::Parameter::data_valid_time();  // spec 20
    EXPECT_NEAR(worst_case_ratio(p, 32.3), 0.619, 0.001);
    EXPECT_NEAR(worst_case_ratio(p, 22.1), 0.904, 0.002);
}

TEST(WorstCaseRatioTest, MaxLimitUsesEq5) {
    const ate::Parameter p = ate::Parameter::min_vdd();  // spec 1.6, max
    EXPECT_NEAR(worst_case_ratio(p, 1.2), 0.75, 1e-9);
    EXPECT_NEAR(worst_case_ratio(p, 1.7), 1.0625, 1e-9);
}

TEST(DsvTest, EmptyProperties) {
    DesignSpecVariation dsv;
    EXPECT_TRUE(dsv.empty());
    EXPECT_EQ(dsv.found_count(), 0u);
    EXPECT_EQ(dsv.trip_spread(), 0.0);
    EXPECT_THROW((void)dsv.worst(), std::logic_error);
    EXPECT_THROW((void)dsv.trip_summary(), std::logic_error);
}

TEST(DsvTest, WorstIsLargestWcr) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.66));
    dsv.add(record("b", 25.0, 0.80));
    dsv.add(record("c", 28.0, 0.71));
    EXPECT_EQ(dsv.worst().test_name, "b");
    EXPECT_EQ(dsv.size(), 3u);
}

TEST(DsvTest, UnfoundRecordsExcludedFromWorst) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.66));
    TripPointRecord missing = record("ghost", 10.0, 2.0, /*found=*/false);
    dsv.add(missing);
    EXPECT_EQ(dsv.worst().test_name, "a");
    EXPECT_EQ(dsv.found_count(), 1u);
}

TEST(DsvTest, TripSpread) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.66));
    dsv.add(record("b", 25.5, 0.78));
    dsv.add(record("c", 33.0, 0.6));
    EXPECT_NEAR(dsv.trip_spread(), 7.5, 1e-12);
}

TEST(DsvTest, SpreadIgnoresUnfound) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.66));
    dsv.add(record("x", 1.0, 0.0, /*found=*/false));
    EXPECT_DOUBLE_EQ(dsv.trip_spread(), 0.0);
}

TEST(DsvTest, SummaryStatistics) {
    DesignSpecVariation dsv;
    for (const double trip : {25.0, 27.0, 29.0, 31.0, 33.0}) {
        dsv.add(record("t", trip, 20.0 / trip));
    }
    const util::Summary s = dsv.trip_summary();
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.median, 29.0);
    EXPECT_DOUBLE_EQ(s.min, 25.0);
    EXPECT_DOUBLE_EQ(s.max, 33.0);
}

TEST(DsvTest, TotalMeasurements) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.6, true, 14));
    dsv.add(record("b", 30.0, 0.6, true, 6));
    dsv.add(record("c", 30.0, 0.6, false, 7));
    EXPECT_EQ(dsv.total_measurements(), 27u);
}

TEST(DsvTest, RecordsSpanAccess) {
    DesignSpecVariation dsv;
    dsv.add(record("a", 30.0, 0.6));
    dsv.add(record("b", 31.0, 0.58));
    const auto records = dsv.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].test_name, "b");
    EXPECT_EQ(dsv.record(0).test_name, "a");
}

}  // namespace
}  // namespace cichar::core
