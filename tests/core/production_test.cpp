#include "core/production.hpp"

#include <gtest/gtest.h>

#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

testgen::RandomGeneratorOptions nominal() {
    testgen::RandomGeneratorOptions g;
    g.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    return g;
}

WorstCaseDatabase sample_database() {
    WorstCaseDatabase db;
    testgen::RandomTestGenerator gen(nominal());
    util::Rng rng(1);
    for (int i = 0; i < 6; ++i) {
        WorstCaseEntry e;
        e.name = "wc-" + std::to_string(i);
        e.recipe = gen.random_recipe(rng);
        e.conditions = gen.random_conditions(rng);
        e.wcr = 0.90 - 0.02 * i;
        e.trip_point = 20.0 / e.wcr;
        db.add(std::move(e));
    }
    return db;
}

TEST(ProductionBuildTest, StepsFromDatabase) {
    const WorstCaseDatabase db = sample_database();
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), 21.0);
    // functional march + 3 worst-case steps by default.
    ASSERT_EQ(program.step_count(), 4u);
    EXPECT_TRUE(program.step(0).functional);
    EXPECT_EQ(program.step(1).name, "worst-case-wc-0");  // highest WCR first
    EXPECT_DOUBLE_EQ(program.step(1).limit, 21.0);
    EXPECT_FALSE(program.step(1).functional);
}

TEST(ProductionBuildTest, OptionsRespected) {
    const WorstCaseDatabase db = sample_database();
    ProductionBuildOptions opts;
    opts.worst_case_steps = 5;
    opts.include_functional_march = false;
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), 21.0, opts);
    EXPECT_EQ(program.step_count(), 5u);
    EXPECT_FALSE(program.step(0).functional);
}

TEST(ProductionBuildTest, StepCountClampedToDatabase) {
    WorstCaseDatabase tiny;
    testgen::RandomTestGenerator gen(nominal());
    util::Rng rng(2);
    WorstCaseEntry e;
    e.name = "only";
    e.recipe = gen.random_recipe(rng);
    e.wcr = 0.9;
    tiny.add(std::move(e));
    ProductionBuildOptions opts;
    opts.worst_case_steps = 10;
    opts.include_functional_march = false;
    const ate::ProductionTestProgram program = build_production_program(
        tiny, nominal(), ate::Parameter::data_valid_time(), 21.0, opts);
    EXPECT_EQ(program.step_count(), 1u);
}

TEST(ProductionRunTest, HealthyDevicePassesLooseLimit) {
    const WorstCaseDatabase db = sample_database();
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), /*limit=*/20.0);
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::ProductionOutcome outcome = program.run(tester);
    EXPECT_TRUE(outcome.pass);
    EXPECT_EQ(outcome.steps_run, program.step_count());
    EXPECT_EQ(outcome.failed_step, ate::ProductionOutcome::npos);
}

TEST(ProductionRunTest, ImpossibleLimitFailsAndStops) {
    const WorstCaseDatabase db = sample_database();
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), /*limit=*/40.0);
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::ProductionOutcome outcome = program.run(tester);
    EXPECT_FALSE(outcome.pass);
    // Step 0 is the functional march (passes); step 1 is the first
    // parametric screen at an impossible 40 ns limit.
    EXPECT_EQ(outcome.failed_step, 1u);
    EXPECT_EQ(outcome.steps_run, 2u);  // stopped on first fail
}

TEST(ProductionRunTest, ContinueOnFailRunsEverything) {
    const WorstCaseDatabase db = sample_database();
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), 40.0);
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::ProductionOutcome outcome =
        program.run(tester, /*stop_on_first_fail=*/false);
    EXPECT_FALSE(outcome.pass);
    EXPECT_EQ(outcome.steps_run, program.step_count());
    EXPECT_EQ(outcome.failed_step, 1u);  // first failure is still recorded
}

TEST(ProductionRunTest, FaultyDeviceCaughtByFunctionalStep) {
    const WorstCaseDatabase db = sample_database();
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), ate::Parameter::data_valid_time(), 20.0);
    const device::FaultSet faults(
        {device::Fault{device::FaultType::kStuckAt1, 77, 2, 0}});
    device::MemoryTestChip chip({}, noiseless(), device::TimingModel{},
                                faults);
    ate::Tester tester(chip);
    const ate::ProductionOutcome outcome = program.run(tester);
    EXPECT_FALSE(outcome.pass);
    EXPECT_EQ(outcome.failed_step, 0u);  // binned at the functional screen
}

TEST(ProductionRunTest, BatchScreeningYieldAndBins) {
    const WorstCaseDatabase db = sample_database();
    // A limit between the fast and slow corners separates the lot.
    device::ProcessVariation process;
    device::MemoryTestChip fast(process.fast_corner(4.0), noiseless());
    device::MemoryTestChip slow(process.slow_corner(4.0), noiseless());
    device::MemoryTestChip nominal_die(process.nominal(), noiseless());

    // Find the nominal worst-case trip to set a discriminating limit.
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const testgen::RandomTestGenerator gen(nominal());
    const testgen::Test worst_test = gen.make_test(
        db.entries()[0].recipe, db.entries()[0].conditions, "probe");
    const double nominal_trip = nominal_die.true_parameter(
        worst_test, device::ParameterKind::kDataValidTime);
    const ate::ProductionTestProgram program = build_production_program(
        db, nominal(), param, nominal_trip + 0.8);

    std::vector<device::MemoryTestChip*> lot{&fast, &slow, &nominal_die};
    struct Deref {
        std::vector<device::MemoryTestChip*>* chips;
        auto begin() { return chips->begin(); }
        auto end() { return chips->end(); }
    };
    ate::BinningSummary summary;
    summary.fails_per_step.assign(program.step_count(), 0);
    for (device::MemoryTestChip* chip : lot) {
        ate::Tester tester(*chip);
        const ate::ProductionOutcome outcome = program.run(tester);
        ++summary.devices;
        if (outcome.pass) {
            ++summary.passed;
        } else {
            ++summary.fails_per_step[outcome.failed_step];
        }
    }
    EXPECT_EQ(summary.devices, 3u);
    EXPECT_GE(summary.passed, 1u);   // the fast corner passes
    EXPECT_LE(summary.passed, 2u);   // the slow corner fails
    EXPECT_NEAR(summary.yield(),
                static_cast<double>(summary.passed) / 3.0, 1e-12);
}

}  // namespace
}  // namespace cichar::core
