#include "core/nn_test_generator.hpp"

#include <gtest/gtest.h>

#include "device/presets.hpp"
#include "util/statistics.hpp"
#include "util/thread_pool.hpp"

namespace cichar::core {
namespace {

struct GeneratorFixture : ::testing::Test {
    GeneratorFixture() : chip(device::presets::noiseless()), tester(chip) {}

    LearnResult learn() {
        LearnerOptions opts;
        opts.training_tests = 70;
        opts.committee.members = 3;
        opts.committee.hidden_layers = {12};
        opts.committee.train.max_epochs = 100;
        const CharacterizationLearner learner(opts);
        testgen::RandomGeneratorOptions gen;
        gen.condition_bounds = testgen::ConditionBounds::fixed_nominal();
        util::Rng rng(42);
        return learner.run(tester, ate::Parameter::data_valid_time(),
                           testgen::RandomTestGenerator(gen), rng);
    }

    device::MemoryTestChip chip;
    ate::Tester tester;
};

TEST_F(GeneratorFixture, SuggestionsSortedWorstFirst) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);
    util::Rng rng(1);
    const auto suggestions = generator.suggest(400, 10, rng);
    ASSERT_EQ(suggestions.size(), 10u);
    for (std::size_t i = 1; i < suggestions.size(); ++i) {
        EXPECT_GE(suggestions[i - 1].predicted_wcr,
                  suggestions[i].predicted_wcr);
    }
}

TEST_F(GeneratorFixture, TopKClampedToCandidates) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);
    util::Rng rng(2);
    EXPECT_EQ(generator.suggest(5, 10, rng).size(), 5u);
}

TEST_F(GeneratorFixture, SuggestionsStressDeviceMoreThanAverage) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);
    util::Rng rng(3);
    const auto suggestions = generator.suggest(600, 10, rng);

    // Ground-truth WCR of the suggested tests vs a random baseline.
    const testgen::RandomTestGenerator expand(
        learned.model.generator_options());
    util::RunningStats suggested;
    for (const TestSuggestion& s : suggestions) {
        const testgen::Test t = expand.make_test(s.recipe, s.conditions);
        suggested.add(20.0 / chip.true_parameter(
                                 t, device::ParameterKind::kDataValidTime));
    }
    util::Rng base_rng(4);
    util::RunningStats baseline;
    for (int i = 0; i < 100; ++i) {
        const testgen::Test t = expand.random_test(base_rng);
        baseline.add(20.0 / chip.true_parameter(
                                t, device::ParameterKind::kDataValidTime));
    }
    EXPECT_GT(suggested.mean(), baseline.mean() + 0.01);
}

TEST_F(GeneratorFixture, PredictionsTrackTruthOnSuggestions) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);
    util::Rng rng(5);
    const auto suggestions = generator.suggest(300, 15, rng);
    const testgen::RandomTestGenerator expand(
        learned.model.generator_options());
    for (const TestSuggestion& s : suggestions) {
        const testgen::Test t = expand.make_test(s.recipe, s.conditions);
        const double truth = 20.0 / chip.true_parameter(
                                        t, device::ParameterKind::kDataValidTime);
        EXPECT_NEAR(s.predicted_wcr, truth, 0.15);
        EXPECT_GE(s.vote_agreement, 1.0 / 3.0);
        EXPECT_LE(s.vote_agreement, 1.0);
    }
}

TEST_F(GeneratorFixture, ChromosomesRoundTripSuggestions) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);
    util::Rng rng_a(6);
    util::Rng rng_b(6);
    const auto suggestions = generator.suggest(200, 5, rng_a);
    const auto chromosomes = generator.suggest_chromosomes(200, 5, rng_b);
    ASSERT_EQ(chromosomes.size(), suggestions.size());
    const auto& opts = learned.model.generator_options();
    for (std::size_t i = 0; i < chromosomes.size(); ++i) {
        const testgen::PatternRecipe decoded =
            chromosomes[i].decode_recipe(opts.min_cycles, opts.max_cycles);
        EXPECT_EQ(decoded.seed, suggestions[i].recipe.seed);
        EXPECT_EQ(decoded.cycles, suggestions[i].recipe.cycles);
        EXPECT_NEAR(decoded.bank_conflict_bias,
                    suggestions[i].recipe.bank_conflict_bias, 1e-6);
    }
}

TEST_F(GeneratorFixture, TopKIdenticalAtEveryBatchAndJobsCombination) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);

    // Reference: serial scoring one candidate per batch.
    ScoringOptions reference_options;
    reference_options.jobs = 1;
    reference_options.batch = 1;
    util::Rng reference_rng(11);
    const auto reference =
        generator.suggest(300, 12, reference_rng, reference_options);
    ASSERT_EQ(reference.size(), 12u);

    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
        for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            ScoringOptions options;
            options.jobs = jobs;
            options.batch = batch;
            util::Rng rng(11);
            const auto got = generator.suggest(300, 12, rng, options);
            ASSERT_EQ(got.size(), reference.size())
                << "batch " << batch << " jobs " << jobs;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].recipe, reference[i].recipe);
                EXPECT_EQ(got[i].conditions, reference[i].conditions);
                EXPECT_EQ(got[i].predicted_wcr, reference[i].predicted_wcr)
                    << "batch " << batch << " jobs " << jobs << " rank " << i;
                EXPECT_EQ(got[i].vote_agreement, reference[i].vote_agreement);
            }
        }
    }
}

TEST_F(GeneratorFixture, CallerOwnedPoolReusedAcrossRounds) {
    const LearnResult learned = learn();
    const NnTestGenerator generator(learned.model);

    util::ThreadPool pool(4);
    ScoringOptions options;
    options.jobs = 4;
    options.batch = 32;
    options.pool = &pool;

    util::Rng pooled_rng(13);
    util::Rng serial_rng(13);
    for (int round = 0; round < 3; ++round) {
        const auto pooled = generator.suggest(150, 6, pooled_rng, options);
        const auto serial = generator.suggest(150, 6, serial_rng);
        ASSERT_EQ(pooled.size(), serial.size());
        for (std::size_t i = 0; i < pooled.size(); ++i) {
            EXPECT_EQ(pooled[i].predicted_wcr, serial[i].predicted_wcr);
            EXPECT_EQ(pooled[i].recipe, serial[i].recipe);
        }
    }
}

TEST_F(GeneratorFixture, SoftwareOnlyNoAteMeasurements) {
    const LearnResult learned = learn();
    const std::uint64_t before = tester.log().total().applications;
    const NnTestGenerator generator(learned.model);
    util::Rng rng(7);
    (void)generator.suggest(500, 10, rng);
    EXPECT_EQ(tester.log().total().applications, before)
        << "NN test generation must cost zero ATE measurements";
}

}  // namespace
}  // namespace cichar::core
