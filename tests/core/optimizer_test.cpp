#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

LearnerOptions fast_learner() {
    LearnerOptions opts;
    opts.training_tests = 60;
    opts.committee.members = 3;
    opts.committee.hidden_layers = {12};
    opts.committee.train.max_epochs = 120;
    return opts;
}

OptimizerOptions fast_optimizer() {
    OptimizerOptions opts;
    opts.ga.population.size = 12;
    opts.ga.populations = 2;
    opts.ga.max_generations = 14;
    opts.ga.max_restarts = 2;
    opts.nn_candidates = 300;
    opts.nn_seed_count = 8;
    return opts;
}

testgen::RandomGeneratorOptions nominal_generator() {
    testgen::RandomGeneratorOptions g;
    g.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    return g;
}

struct OptimizerFixture : ::testing::Test {
    OptimizerFixture()
        : chip({}, noiseless()),
          tester(chip),
          parameter(ate::Parameter::data_valid_time()) {}

    LearnResult learn() {
        util::Rng rng(42);
        const CharacterizationLearner learner(fast_learner());
        const testgen::RandomTestGenerator generator(nominal_generator());
        return learner.run(tester, parameter, generator, rng);
    }

    device::MemoryTestChip chip;
    ate::Tester tester;
    ate::Parameter parameter;
};

TEST_F(OptimizerFixture, FindsWorseTestsThanRandomLearning) {
    const LearnResult learned = learn();
    const double learned_worst = learned.dsv.worst().wcr;

    util::Rng rng(7);
    const WorstCaseOptimizer optimizer(fast_optimizer());
    const WorstCaseReport report = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng);

    EXPECT_GT(report.outcome.best_fitness, learned_worst + 0.05);
    EXPECT_GT(report.outcome.best_fitness, 0.8);  // weakness band reached
    ASSERT_TRUE(report.worst_record.found);
    EXPECT_LT(report.worst_record.trip_point, 25.0);
}

TEST_F(OptimizerFixture, DatabasePopulatedAndSorted) {
    const LearnResult learned = learn();
    util::Rng rng(8);
    const WorstCaseOptimizer optimizer(fast_optimizer());
    const WorstCaseReport report = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng);
    ASSERT_FALSE(report.database.empty());
    const auto& entries = report.database.entries();
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i - 1].wcr, entries[i].wcr);
    }
    EXPECT_NEAR(report.database.worst().wcr, report.outcome.best_fitness,
                0.05);
}

TEST_F(OptimizerFixture, WorstTestReproducible) {
    const LearnResult learned = learn();
    util::Rng rng(9);
    const WorstCaseOptimizer optimizer(fast_optimizer());
    const WorstCaseReport report = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng);

    // The stored recipe re-expands to the identical pattern.
    const testgen::RandomTestGenerator generator(
        learned.model.generator_options());
    const auto& opts = learned.model.generator_options();
    const testgen::PatternRecipe recipe =
        report.outcome.best.decode_recipe(opts.min_cycles, opts.max_cycles);
    const testgen::TestPattern again = generator.expand(recipe, "worst-case");
    EXPECT_EQ(again, report.worst_test.pattern);
}

TEST_F(OptimizerFixture, MeasurementsAccounted) {
    const LearnResult learned = learn();
    util::Rng rng(10);
    const WorstCaseOptimizer optimizer(fast_optimizer());
    const WorstCaseReport report = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng);
    EXPECT_GT(report.ate_measurements, report.outcome.evaluations);
    EXPECT_GT(tester.log().phase_counters("ga-optimization").applications, 0u);
}

TEST_F(OptimizerFixture, UnseededRunWorks) {
    util::Rng rng(11);
    const WorstCaseOptimizer optimizer(fast_optimizer());
    const WorstCaseReport report = optimizer.run_unseeded(
        tester, parameter, nominal_generator(), Objective::kDriftToMinimum,
        rng);
    EXPECT_GT(report.outcome.best_fitness, 0.7);
    ASSERT_TRUE(report.worst_record.found);
}

TEST_F(OptimizerFixture, TargetFitnessStops) {
    const LearnResult learned = learn();
    util::Rng rng(12);
    OptimizerOptions opts = fast_optimizer();
    opts.ga.target_fitness = 0.75;  // easily reached
    const WorstCaseOptimizer optimizer(opts);
    const WorstCaseReport report = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng);
    EXPECT_TRUE(report.outcome.target_reached);
}

TEST_F(OptimizerFixture, CacheFileWarmStartsSecondHunt) {
    const LearnResult learned = learn();
    const std::string cache_file =
        ::testing::TempDir() + "optimizer_trip_cache.bin";
    std::remove(cache_file.c_str());

    OptimizerOptions opts = fast_optimizer();
    opts.cache.enabled = true;
    opts.cache.file = cache_file;
    const WorstCaseOptimizer optimizer(opts);

    util::Rng cold_rng(21);
    const WorstCaseReport cold = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, cold_rng);
    EXPECT_EQ(cold.cache_preloaded, 0u);

    // Same seed again: the second hunt replays the same decoded tests, so
    // the preloaded cache answers searches the cold run had to measure.
    util::Rng warm_rng(21);
    const WorstCaseReport warm = optimizer.run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, warm_rng);
    EXPECT_GT(warm.cache_preloaded, 0u);
    EXPECT_GT(warm.cache_stats.hits, cold.cache_stats.hits);
    EXPECT_LT(warm.cache_stats.misses, cold.cache_stats.misses);
    EXPECT_LT(warm.ate_measurements, cold.ate_measurements);

    // A different identity must not warm from the same file.
    OptimizerOptions other = opts;
    other.cache.identity = "some-other-device";
    util::Rng other_rng(21);
    const WorstCaseReport mismatched = WorstCaseOptimizer(other).run(
        tester, parameter, learned.model, Objective::kDriftToMinimum,
        other_rng);
    EXPECT_EQ(mismatched.cache_preloaded, 0u);
    std::remove(cache_file.c_str());
}

TEST_F(OptimizerFixture, BatchKnobDoesNotChangeTheHunt) {
    const LearnResult learned = learn();
    OptimizerOptions small = fast_optimizer();
    small.nn_score_batch = 1;
    OptimizerOptions large = fast_optimizer();
    large.nn_score_batch = 128;

    util::Rng rng_a(31);
    const WorstCaseReport a = WorstCaseOptimizer(small).run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng_a);
    util::Rng rng_b(31);
    const WorstCaseReport b = WorstCaseOptimizer(large).run(
        tester, parameter, learned.model, Objective::kDriftToMinimum, rng_b);

    EXPECT_EQ(a.outcome.best_fitness, b.outcome.best_fitness);
    EXPECT_EQ(a.outcome.evaluations, b.outcome.evaluations);
    EXPECT_EQ(a.worst_record.trip_point, b.worst_record.trip_point);
}

TEST(ObjectiveTest, NamesAndDefaults) {
    EXPECT_STREQ(to_string(Objective::kDriftToMinimum), "drift-to-minimum");
    EXPECT_STREQ(to_string(Objective::kDriftToMaximum), "drift-to-maximum");
    EXPECT_EQ(objective_for(ate::Parameter::data_valid_time()),
              Objective::kDriftToMinimum);
    EXPECT_EQ(objective_for(ate::Parameter::min_vdd()),
              Objective::kDriftToMaximum);
}

TEST(ObjectiveTest, MaximizationObjectiveOnVmin) {
    // Hunting the *maximum* Vmin (worst supply sensitivity) exercises
    // eq. (5) and the reversed search direction together.
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    util::Rng rng(13);
    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 1;
    opts.ga.max_generations = 5;
    const WorstCaseOptimizer optimizer(opts);
    testgen::RandomGeneratorOptions gen;
    gen.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const WorstCaseReport report = optimizer.run_unseeded(
        tester, ate::Parameter::min_vdd(), gen, Objective::kDriftToMaximum,
        rng);
    ASSERT_TRUE(report.worst_record.found);
    // Vmin worst case: the GA pushes vmin upward (toward the 1.6 V spec).
    EXPECT_GT(report.outcome.best_fitness, 0.75);
    EXPECT_LT(report.outcome.best_fitness, 1.1);
}

}  // namespace
}  // namespace cichar::core
