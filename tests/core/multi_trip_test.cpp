#include "core/multi_trip.hpp"

#include <gtest/gtest.h>

#include "ate/tester.hpp"
#include "device/memory_chip.hpp"
#include "testgen/random_gen.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

std::vector<testgen::Test> random_tests(std::size_t n, std::uint64_t seed) {
    testgen::RandomTestGenerator gen;
    util::Rng rng(seed);
    std::vector<testgen::Test> tests;
    for (std::size_t i = 0; i < n; ++i) {
        tests.push_back(gen.random_test(rng, "t" + std::to_string(i)));
    }
    return tests;
}

TEST(TripSessionTest, FirstMeasurementEstablishesRtp) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    TripSession session(tester, ate::Parameter::data_valid_time(),
                        MultiTripOptions{});
    EXPECT_FALSE(session.has_reference());
    EXPECT_THROW((void)session.reference_trip_point(), std::logic_error);

    const auto tests = random_tests(1, 1);
    const TripPointRecord first = session.measure(tests[0]);
    ASSERT_TRUE(first.found);
    EXPECT_TRUE(session.has_reference());
    EXPECT_NEAR(session.reference_trip_point(), first.trip_point, 0.11);
}

TEST(TripSessionTest, TripPointsMatchDeviceTruth) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    TripSession session(tester, param, MultiTripOptions{});
    for (const testgen::Test& test : random_tests(10, 2)) {
        const TripPointRecord record = session.measure(test);
        ASSERT_TRUE(record.found) << test.name;
        const double truth = chip.true_parameter(
            test, device::ParameterKind::kDataValidTime);
        EXPECT_NEAR(record.trip_point, truth, 2.0 * param.resolution)
            << test.name;
    }
}

TEST(TripSessionTest, FollowerCheaperThanFirst) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    TripSession session(tester, ate::Parameter::data_valid_time(),
                        MultiTripOptions{});
    const auto tests = random_tests(6, 3);
    const TripPointRecord first = session.measure(tests[0]);
    for (std::size_t i = 1; i < tests.size(); ++i) {
        const TripPointRecord follow = session.measure(tests[i]);
        EXPECT_LT(follow.measurements, first.measurements) << i;
    }
}

TEST(TripSessionTest, WcrFilledFromParameterSpec) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    TripSession session(tester, param, MultiTripOptions{});
    const auto tests = random_tests(1, 4);
    const TripPointRecord r = session.measure(tests[0]);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.wcr, 20.0 / r.trip_point, 1e-9);
    EXPECT_EQ(r.wcr_class, ga::classify(r.wcr));
}

TEST(MultiTripTest, CharacterizeProducesFullDsv) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const MultiTripCharacterizer characterizer;
    const auto tests = random_tests(8, 5);
    const DesignSpecVariation dsv = characterizer.characterize(
        tester, ate::Parameter::data_valid_time(), tests);
    EXPECT_EQ(dsv.size(), 8u);
    EXPECT_EQ(dsv.found_count(), 8u);
    EXPECT_GT(dsv.trip_spread(), 0.5);  // trip points ARE test dependent
}

TEST(MultiTripTest, LedgerPhaseIsMultiTrip) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const MultiTripCharacterizer characterizer;
    const auto tests = random_tests(3, 6);
    (void)characterizer.characterize(tester,
                                     ate::Parameter::data_valid_time(), tests);
    EXPECT_GT(tester.log().phase_counters("multi-trip").applications, 0u);
}

TEST(MultiTripTest, MinVddDirectionWorksToo) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const MultiTripCharacterizer characterizer;
    const auto tests = random_tests(5, 7);
    const DesignSpecVariation dsv = characterizer.characterize(
        tester, ate::Parameter::min_vdd(), tests);
    EXPECT_EQ(dsv.found_count(), 5u);
    for (const TripPointRecord& r : dsv.records()) {
        EXPECT_GT(r.trip_point, 1.0);
        EXPECT_LT(r.trip_point, 1.6);
    }
}

TEST(MultiTripTest, FullSearchOnMissRecovers) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    MultiTripOptions opts;
    opts.follow.max_iterations = 2;  // tiny window: far trips will miss
    opts.follow.search_factor = 0.05;
    opts.full_search_on_miss = true;
    const ate::Parameter param = ate::Parameter::data_valid_time();
    TripSession session(tester, param, opts);

    // First test: benign (high trip point). Second: heavily stressed
    // pattern with a much lower trip point, outside the tiny window.
    testgen::RandomTestGenerator gen;
    testgen::PatternRecipe calm;
    calm.cycles = 300;
    calm.write_fraction = 0.2;
    calm.seed = 1;
    testgen::PatternRecipe stressed;
    stressed.cycles = 300;
    stressed.write_fraction = 0.6;
    stressed.toggle_bias = 0.6;
    stressed.alternating_data_bias = 0.4;
    stressed.bank_conflict_bias = 0.9;
    stressed.seed = 2;
    const testgen::Test calm_test = gen.make_test(calm, {}, "calm");
    const testgen::Test hot_test = gen.make_test(stressed, {}, "hot");

    (void)session.measure(calm_test);
    const TripPointRecord hot = session.measure(hot_test);
    ASSERT_TRUE(hot.found);
    const double truth = chip.true_parameter(
        hot_test, device::ParameterKind::kDataValidTime);
    EXPECT_NEAR(hot.trip_point, truth, 0.3);
}

TEST(MultiTripTest, WithoutFallbackMissReported) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    MultiTripOptions opts;
    opts.follow.max_iterations = 1;
    opts.follow.search_factor = 0.01;
    opts.full_search_on_miss = false;
    TripSession session(tester, ate::Parameter::data_valid_time(), opts);

    testgen::RandomTestGenerator gen;
    testgen::PatternRecipe calm;
    calm.cycles = 300;
    calm.write_fraction = 0.2;
    calm.seed = 1;
    testgen::PatternRecipe stressed = calm;
    stressed.write_fraction = 0.6;
    stressed.toggle_bias = 0.6;
    stressed.alternating_data_bias = 0.4;
    stressed.bank_conflict_bias = 0.9;
    stressed.seed = 2;

    (void)session.measure(gen.make_test(calm, {}, "calm"));
    const TripPointRecord hot =
        session.measure(gen.make_test(stressed, {}, "hot"));
    EXPECT_FALSE(hot.found);
}

}  // namespace
}  // namespace cichar::core
