#include "core/spec_report.hpp"

#include <gtest/gtest.h>

namespace cichar::core {
namespace {

TripPointRecord record(double trip) {
    TripPointRecord r;
    r.test_name = "t";
    r.trip_point = trip;
    r.found = true;
    return r;
}

DesignSpecVariation dsv_of(std::initializer_list<double> trips) {
    DesignSpecVariation dsv;
    for (const double t : trips) dsv.add(record(t));
    return dsv;
}

TEST(SpecReportTest, MinLimitProposal) {
    const ate::Parameter p = ate::Parameter::data_valid_time();  // >= 20 ns
    const DesignSpecVariation dsv = dsv_of({28.0, 30.0, 26.0, 33.0});
    const SpecProposal proposal = propose_spec(p, dsv, 0.10);
    EXPECT_DOUBLE_EQ(proposal.observed_worst, 26.0);
    EXPECT_DOUBLE_EQ(proposal.observed_best, 33.0);
    EXPECT_NEAR(proposal.guard_band, 2.6, 1e-9);
    EXPECT_NEAR(proposal.proposed_limit, 23.4, 0.05 + 1e-9);
    EXPECT_TRUE(proposal.meets_target);  // 23.4 >= 20
    EXPECT_EQ(proposal.tests, 4u);
}

TEST(SpecReportTest, MinLimitViolatedWhenWorstTooClose) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    const DesignSpecVariation dsv = dsv_of({21.0, 25.0});
    const SpecProposal proposal = propose_spec(p, dsv, 0.10);
    EXPECT_FALSE(proposal.meets_target);  // 21 * 0.9 = 18.9 < 20
}

TEST(SpecReportTest, MaxLimitProposal) {
    const ate::Parameter p = ate::Parameter::min_vdd();  // <= 1.6 V
    const DesignSpecVariation dsv = dsv_of({1.30, 1.35, 1.28});
    const SpecProposal proposal = propose_spec(p, dsv, 0.05);
    EXPECT_DOUBLE_EQ(proposal.observed_worst, 1.35);  // largest vmin
    EXPECT_DOUBLE_EQ(proposal.observed_best, 1.28);
    EXPECT_NEAR(proposal.proposed_limit, 1.35 * 1.05, 0.005 + 1e-9);
    EXPECT_TRUE(proposal.meets_target);
}

TEST(SpecReportTest, MaxLimitViolated) {
    const ate::Parameter p = ate::Parameter::min_vdd();
    const DesignSpecVariation dsv = dsv_of({1.58});
    const SpecProposal proposal = propose_spec(p, dsv, 0.05);
    EXPECT_FALSE(proposal.meets_target);  // 1.58 * 1.05 > 1.6
}

TEST(SpecReportTest, ZeroGuardBandUsesWorstDirectly) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    const DesignSpecVariation dsv = dsv_of({26.13, 30.0});
    const SpecProposal proposal = propose_spec(p, dsv, 0.0);
    // Quantized to the 0.1 ns resolution grid.
    EXPECT_NEAR(proposal.proposed_limit, 26.1, 1e-9);
}

TEST(SpecReportTest, EmptyDsvThrows) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    DesignSpecVariation empty;
    EXPECT_THROW((void)propose_spec(p, empty), std::invalid_argument);
    TripPointRecord unfound;
    unfound.found = false;
    empty.add(unfound);
    EXPECT_THROW((void)propose_spec(p, empty), std::invalid_argument);
}

TEST(SpecReportTest, NegativeGuardBandThrows) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    const DesignSpecVariation dsv = dsv_of({25.0});
    EXPECT_THROW((void)propose_spec(p, dsv, -0.1), std::invalid_argument);
}

TEST(SpecReportTest, RenderMentionsEverything) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    const DesignSpecVariation dsv = dsv_of({26.0, 30.0});
    const SpecProposal proposal = propose_spec(p, dsv, 0.10);
    const std::string text = proposal.render();
    EXPECT_NE(text.find("T_DQ"), std::string::npos);
    EXPECT_NE(text.find("guard band"), std::string::npos);
    EXPECT_NE(text.find("meets target"), std::string::npos);
}

}  // namespace
}  // namespace cichar::core
