#include "core/trend.hpp"

#include "testgen/random_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cichar::core {
namespace {

LotSummary lot(const std::string& id, double median, double min_trip,
               double max_trip, double worst_wcr) {
    LotSummary l;
    l.lot_id = id;
    l.dies = 4;
    l.trips.count = 20;
    l.trips.median = median;
    l.trips.mean = median;
    l.trips.min = min_trip;
    l.trips.max = max_trip;
    l.worst_wcr = worst_wcr;
    return l;
}

TEST(LinearSlopeTest, KnownSlopes) {
    const std::vector<double> flat{3.0, 3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(linear_slope(flat), 0.0);
    const std::vector<double> rising{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(linear_slope(rising), 1.0);
    const std::vector<double> falling{10.0, 8.0, 6.0};
    EXPECT_DOUBLE_EQ(linear_slope(falling), -2.0);
}

TEST(LinearSlopeTest, DegenerateInputs) {
    EXPECT_DOUBLE_EQ(linear_slope(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(linear_slope(std::vector<double>{5.0}), 0.0);
}

TEST(TrendTest, StableProcessNoAlarm) {
    TrendMonitor monitor(ate::Parameter::data_valid_time());
    for (int i = 0; i < 5; ++i) {
        monitor.add(lot("L" + std::to_string(i), 30.0, 28.0, 32.0, 0.71));
    }
    EXPECT_NEAR(monitor.median_slope(), 0.0, 1e-12);
    EXPECT_FALSE(monitor.drifting_toward_spec(0.05));
    EXPECT_TRUE(std::isinf(monitor.lots_until_spec_violation()));
}

TEST(TrendTest, ShrinkingMarginDetected) {
    // Each lot's worst trip drops 0.4 ns: margin eroding toward 20 ns.
    TrendMonitor monitor(ate::Parameter::data_valid_time());
    for (int i = 0; i < 5; ++i) {
        const double shift = 0.4 * i;
        monitor.add(lot("L" + std::to_string(i), 30.0 - shift, 28.0 - shift,
                        32.0 - shift, 0.71 + 0.01 * i));
    }
    EXPECT_NEAR(monitor.worst_slope(), -0.4, 1e-9);
    EXPECT_NEAR(monitor.median_slope(), -0.4, 1e-9);
    EXPECT_GT(monitor.wcr_slope(), 0.0);
    EXPECT_TRUE(monitor.drifting_toward_spec(0.1));
    // Last worst = 26.4; distance to spec 6.4; closing 0.4/lot -> 16 lots.
    EXPECT_NEAR(monitor.lots_until_spec_violation(), 16.0, 0.01);
}

TEST(TrendTest, ImprovingProcessNotFlagged) {
    TrendMonitor monitor(ate::Parameter::data_valid_time());
    for (int i = 0; i < 4; ++i) {
        monitor.add(lot("L" + std::to_string(i), 30.0 + 0.3 * i,
                        28.0 + 0.3 * i, 32.0 + 0.3 * i, 0.71 - 0.01 * i));
    }
    EXPECT_FALSE(monitor.drifting_toward_spec(0.05));
    EXPECT_TRUE(std::isinf(monitor.lots_until_spec_violation()));
}

TEST(TrendTest, MaxLimitDirectionReversed) {
    // Vmin spec is a max limit: drift toward spec = worst (max) rising.
    TrendMonitor monitor(ate::Parameter::min_vdd());
    for (int i = 0; i < 4; ++i) {
        monitor.add(lot("L" + std::to_string(i), 1.30 + 0.02 * i,
                        1.25 + 0.02 * i, 1.40 + 0.02 * i, 0.85 + 0.01 * i));
    }
    EXPECT_TRUE(monitor.drifting_toward_spec(0.01));
    // Last worst (max) = 1.46; spec 1.6; closing 0.02 -> 7 lots.
    EXPECT_NEAR(monitor.lots_until_spec_violation(), 7.0, 0.01);
}

TEST(TrendTest, TooFewLotsNeverAlarm) {
    TrendMonitor monitor(ate::Parameter::data_valid_time());
    monitor.add(lot("A", 30.0, 28.0, 32.0, 0.7));
    monitor.add(lot("B", 25.0, 23.0, 27.0, 0.85));
    EXPECT_FALSE(monitor.drifting_toward_spec(0.01));
    EXPECT_TRUE(std::isinf(monitor.lots_until_spec_violation()));
}

TEST(TrendTest, RenderShowsLotsAndProjection) {
    TrendMonitor monitor(ate::Parameter::data_valid_time());
    for (int i = 0; i < 4; ++i) {
        const double shift = 0.5 * i;
        monitor.add(lot("LOT-" + std::to_string(i), 30.0 - shift,
                        28.0 - shift, 32.0 - shift, 0.71));
    }
    const std::string text = monitor.render();
    EXPECT_NE(text.find("LOT-3"), std::string::npos);
    EXPECT_NE(text.find("worst slope"), std::string::npos);
    EXPECT_NE(text.find("projected spec violation"), std::string::npos);
}

TEST(TrendTest, SummarizeLotFromSample) {
    // End-to-end: run a tiny sample campaign and fold it into a summary.
    SampleOptions opts;
    opts.dies = 3;
    opts.chip.noise_sigma_ns = 0.0;
    const SampleCharacterizer characterizer(opts);
    testgen::RandomGeneratorOptions gen;
    gen.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    testgen::RandomTestGenerator generator(gen);
    util::Rng rng(5);
    std::vector<testgen::Test> tests;
    for (int i = 0; i < 4; ++i) {
        tests.push_back(generator.random_test(rng, "t" + std::to_string(i)));
    }
    const SampleResult sample =
        characterizer.run(ate::Parameter::data_valid_time(), tests, rng);
    const LotSummary summary = summarize_lot("LOT-X", sample);
    EXPECT_EQ(summary.lot_id, "LOT-X");
    EXPECT_EQ(summary.dies, 3u);
    EXPECT_EQ(summary.trips.count, 12u);
    EXPECT_GT(summary.worst_wcr, 0.5);
}

}  // namespace
}  // namespace cichar::core
