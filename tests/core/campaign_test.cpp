#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    o.noise_sigma_mhz = 0.0;
    o.noise_sigma_v = 0.0;
    return o;
}

CharacterizerOptions fast_options() {
    CharacterizerOptions opts;
    opts.generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    opts.learner.training_tests = 50;
    opts.learner.committee.members = 2;
    opts.learner.committee.hidden_layers = {10};
    opts.learner.committee.train.max_epochs = 80;
    opts.optimizer.ga.population.size = 10;
    opts.optimizer.ga.populations = 2;
    opts.optimizer.ga.max_generations = 8;
    opts.optimizer.nn_candidates = 200;
    opts.optimizer.nn_seed_count = 6;
    return opts;
}

struct CampaignFixture : ::testing::Test {
    CampaignFixture() : chip({}, noiseless()), tester(chip) {}
    device::MemoryTestChip chip;
    ate::Tester tester;
};

TEST_F(CampaignFixture, RunsPerParameter) {
    const CharacterizationCampaign campaign(
        tester,
        {ate::Parameter::data_valid_time(), ate::Parameter::max_frequency()},
        fast_options());
    util::Rng rng(1);
    const std::vector<ParameterCampaign> results = campaign.run(rng);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].parameter.name, "T_DQ");
    EXPECT_EQ(results[1].parameter.name, "Fmax");
    for (const ParameterCampaign& c : results) {
        // Each parameter gets its own committee (the paper's per-parameter
        // NN recommendation).
        EXPECT_GE(c.learned.model.committee().member_count(), 2u);
        EXPECT_TRUE(c.report.worst_record.found);
        EXPECT_GT(c.proposal.proposed_limit, 0.0);
        EXPECT_GE(c.margin_risk, 0.0);
        EXPECT_LE(c.margin_risk, 1.0);
        EXPECT_FALSE(c.risk_label.empty());
    }
}

TEST_F(CampaignFixture, ReversedParameterWorksInCampaign) {
    const CharacterizationCampaign campaign(
        tester, {ate::Parameter::min_vdd()}, fast_options());
    util::Rng rng(2);
    const std::vector<ParameterCampaign> results = campaign.run(rng);
    ASSERT_EQ(results.size(), 1u);
    const ParameterCampaign& vmin = results[0];
    EXPECT_GT(vmin.report.worst_record.trip_point, 1.0);
    EXPECT_LT(vmin.report.worst_record.trip_point, 1.6);
    // Max-limit spec: the proposal adds guard band above the worst.
    EXPECT_GT(vmin.proposal.proposed_limit, vmin.proposal.observed_worst);
}

TEST_F(CampaignFixture, RenderProducesTable) {
    const CharacterizationCampaign campaign(
        tester, {ate::Parameter::data_valid_time()}, fast_options());
    util::Rng rng(3);
    const auto results = campaign.run(rng);
    const std::string table = CharacterizationCampaign::render(results);
    EXPECT_NE(table.find("T_DQ"), std::string::npos);
    EXPECT_NE(table.find("proposed limit"), std::string::npos);
    EXPECT_NE(table.find("risk"), std::string::npos);
}

TEST_F(CampaignFixture, SpecProposalCoversWorstCase) {
    const CharacterizationCampaign campaign(
        tester, {ate::Parameter::data_valid_time()}, fast_options());
    util::Rng rng(4);
    const auto results = campaign.run(rng);
    const ParameterCampaign& tdq = results[0];
    // The proposal's observed worst includes the GA's find, so it is at
    // least as bad as anything in the learning DSV.
    EXPECT_LE(tdq.proposal.observed_worst,
              tdq.learned.dsv.worst().trip_point + 1e-9);
    EXPECT_LE(tdq.proposal.observed_worst,
              tdq.report.worst_record.trip_point + 1e-9);
}

TEST_F(CampaignFixture, DeterministicGivenSeed) {
    const CharacterizationCampaign campaign(
        tester, {ate::Parameter::data_valid_time()}, fast_options());
    // Note: the shared device is stateless between campaigns when drift is
    // off and the rng is re-seeded, so identical seeds reproduce.
    util::Rng a(9);
    util::Rng b(9);
    const auto ra = campaign.run(a);
    const auto rb = campaign.run(b);
    EXPECT_DOUBLE_EQ(ra[0].report.outcome.best_fitness,
                     rb[0].report.outcome.best_fitness);
}

}  // namespace
}  // namespace cichar::core
