#include "core/sample.hpp"

#include <gtest/gtest.h>

#include "testgen/random_gen.hpp"

namespace cichar::core {
namespace {

std::vector<testgen::Test> random_tests(std::size_t n) {
    testgen::RandomGeneratorOptions opts;
    opts.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    testgen::RandomTestGenerator gen(opts);
    util::Rng rng(3);
    std::vector<testgen::Test> tests;
    for (std::size_t i = 0; i < n; ++i) {
        tests.push_back(gen.random_test(rng, "t" + std::to_string(i)));
    }
    return tests;
}

SampleOptions small_sample() {
    SampleOptions opts;
    opts.dies = 5;
    opts.chip.noise_sigma_ns = 0.0;
    return opts;
}

TEST(SampleTest, OneCampaignPerDie) {
    const SampleCharacterizer characterizer(small_sample());
    util::Rng rng(1);
    const SampleResult result = characterizer.run(
        ate::Parameter::data_valid_time(), random_tests(6), rng);
    ASSERT_EQ(result.dies.size(), 5u);
    for (const DieCampaign& die : result.dies) {
        EXPECT_EQ(die.dsv.size(), 6u);
        EXPECT_GT(die.measurements, 0u);
    }
    EXPECT_EQ(result.per_die_worst().size(), 5u);
    EXPECT_GT(result.total_measurements(), 5u * 6u);
}

TEST(SampleTest, DiesActuallyDiffer) {
    const SampleCharacterizer characterizer(small_sample());
    util::Rng rng(2);
    const SampleResult result = characterizer.run(
        ate::Parameter::data_valid_time(), random_tests(4), rng);
    const auto worsts = result.per_die_worst();
    double lo = worsts[0];
    double hi = worsts[0];
    for (const double w : worsts) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    EXPECT_GT(hi - lo, 0.1);  // process variation visible
}

TEST(SampleTest, WorstDieHasHighestWcr) {
    const SampleCharacterizer characterizer(small_sample());
    util::Rng rng(3);
    const SampleResult result = characterizer.run(
        ate::Parameter::data_valid_time(), random_tests(4), rng);
    const DieCampaign& worst = result.worst_die();
    for (const DieCampaign& die : result.dies) {
        EXPECT_LE(die.dsv.worst().wcr, worst.dsv.worst().wcr + 1e-12);
    }
}

TEST(SampleTest, PooledDsvHasAllRecords) {
    const SampleCharacterizer characterizer(small_sample());
    util::Rng rng(4);
    const SampleResult result = characterizer.run(
        ate::Parameter::data_valid_time(), random_tests(3), rng);
    EXPECT_EQ(result.pooled().size(), 5u * 3u);
}

TEST(SampleTest, EnvironmentGridMultipliesTests) {
    SampleOptions opts = small_sample();
    opts.dies = 2;
    opts.environment_grid = {{1.6, 85.0}, {2.0, -40.0}};
    const SampleCharacterizer characterizer(opts);
    util::Rng rng(5);
    const SampleResult result = characterizer.run(
        ate::Parameter::data_valid_time(), random_tests(3), rng);
    EXPECT_EQ(result.dies[0].dsv.size(), 3u * 2u);
}

TEST(SampleTest, LowVddEnvironmentWorse) {
    SampleOptions opts = small_sample();
    opts.dies = 1;
    opts.process.window_sigma_ns = 0.0;  // isolate the environment effect
    opts.process.sensitivity_sigma = 0.0;

    const auto worst_at = [&](double vdd) {
        SampleOptions env_opts = opts;
        env_opts.environment_grid = {{vdd, 25.0}};
        const SampleCharacterizer characterizer(env_opts);
        util::Rng rng(6);
        const SampleResult result = characterizer.run(
            ate::Parameter::data_valid_time(), random_tests(4), rng);
        return result.dies[0].dsv.worst().trip_point;
    };
    EXPECT_LT(worst_at(1.5), worst_at(2.1));
}

TEST(SampleTest, SpecProposalFromPooledSample) {
    const SampleCharacterizer characterizer(small_sample());
    util::Rng rng(7);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const SampleResult result =
        characterizer.run(param, random_tests(5), rng);
    const SpecProposal proposal = propose_spec(param, result.pooled(), 0.05);
    EXPECT_EQ(proposal.tests, result.pooled().found_count());
    EXPECT_LT(proposal.proposed_limit, proposal.observed_worst);
    EXPECT_TRUE(proposal.meets_target);
}

TEST(SampleTest, DeterministicGivenSeed) {
    const SampleCharacterizer characterizer(small_sample());
    const auto run = [&](std::uint64_t seed) {
        util::Rng rng(seed);
        return characterizer
            .run(ate::Parameter::data_valid_time(), random_tests(3), rng)
            .worst_die()
            .dsv.worst()
            .trip_point;
    };
    EXPECT_EQ(run(11), run(11));
}

TEST(SampleTest, EmptyResultThrowsOnWorstDie) {
    SampleResult empty;
    EXPECT_THROW((void)empty.worst_die(), std::logic_error);
}

}  // namespace
}  // namespace cichar::core
