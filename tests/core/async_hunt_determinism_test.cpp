// The async pipeline's determinism contract: with `inflight > 1` the
// hunt overlaps chromosome decoding and scoring with pending tester
// requests, yet the rendered report, the measurement ledger, the final
// checkpoint blob and the persisted trip-cache file must be
// byte-identical to the blocking replica path at any jobs x inflight
// combination — including a hunt killed with requests in flight and
// resumed under a different inflight depth.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

struct HuntConfig {
    std::size_t jobs = 1;
    std::size_t inflight = 1;
    /// Warm replica slab size (kAutoSlab = jobs x inflight, 0 = cold
    /// clones) — a pure perf knob the identity matrix sweeps too.
    std::size_t replica_slab = HuntParallelOptions::kAutoSlab;
    double realtime_fraction = 0.0;
    std::string cache_file;
    std::string resume_blob;
    std::size_t abort_after_generation = 0;
};

struct HuntResult {
    WorstCaseReport report;
    std::string rendered;
    std::uint64_t applications = 0;
    std::string last_checkpoint;
};

OptimizerOptions hunt_options(const HuntConfig& config) {
    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 2;
    opts.ga.max_generations = 8;
    opts.ga.stagnation_limit = 4;
    opts.ga.max_restarts = 2;
    opts.ga.migration_interval = 3;
    // Blocking reference runs use the replica path too (parallel enabled
    // at inflight 1): the CLI-style serial in-situ hunt is a different
    // measurement discipline and differs by design.
    opts.parallel.enabled = true;
    opts.parallel.jobs = config.jobs;
    opts.parallel.inflight = config.inflight;
    opts.parallel.replica_slab = config.replica_slab;
    opts.cache.enabled = true;
    opts.cache.file = config.cache_file;
    opts.checkpoint.resume_blob = config.resume_blob;
    opts.checkpoint.abort_after_generation = config.abort_after_generation;
    return opts;
}

HuntResult run_hunt(const HuntConfig& config) {
    HuntResult result;
    OptimizerOptions opts = hunt_options(config);
    opts.checkpoint.save = [&result](const std::string& blob) {
        result.last_checkpoint = blob;
    };

    device::MemoryTestChip chip({}, noiseless());
    ate::TesterOptions tester_options;
    tester_options.realtime_fraction = config.realtime_fraction;
    ate::Tester tester(chip, tester_options);
    util::Rng rng(2005);
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const WorstCaseOptimizer optimizer(opts);

    result.report = optimizer.run_unseeded(tester,
                                           ate::Parameter::data_valid_time(),
                                           generator,
                                           Objective::kDriftToMinimum, rng);
    ReportInputs inputs;
    inputs.seed = 2005;
    inputs.hunt = &result.report;
    result.rendered = render_report(inputs);
    result.applications = tester.log().total().applications;
    return result;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string fresh_cache_path(const std::string& tag) {
    const std::string path = ::testing::TempDir() + "async_hunt_" + tag +
                             ".tripcache";
    std::remove(path.c_str());
    return path;
}

// Compares everything the byte-identity contract covers. Checkpoint
// blobs are only required to match between *cold* runs: a resumed leg
// re-serializes from restored state, which the existing checkpoint
// contract (HuntCheckpointTest) does not promise to be blob-identical —
// only result-identical.
void expect_identical(const HuntResult& actual, const HuntResult& reference,
                      bool compare_checkpoint = true) {
    EXPECT_EQ(actual.report.outcome.best_fitness,
              reference.report.outcome.best_fitness);
    EXPECT_EQ(actual.report.outcome.best.sequence,
              reference.report.outcome.best.sequence);
    EXPECT_EQ(actual.report.outcome.best.condition,
              reference.report.outcome.best.condition);
    EXPECT_EQ(actual.report.outcome.evaluations,
              reference.report.outcome.evaluations);
    EXPECT_EQ(actual.report.outcome.best_history,
              reference.report.outcome.best_history);
    EXPECT_EQ(actual.report.ate_measurements, reference.report.ate_measurements);
    EXPECT_EQ(actual.report.cache_stats.hits, reference.report.cache_stats.hits);
    EXPECT_EQ(actual.report.cache_stats.misses,
              reference.report.cache_stats.misses);
    EXPECT_EQ(actual.rendered, reference.rendered);
    EXPECT_EQ(actual.applications, reference.applications);
    if (compare_checkpoint) {
        EXPECT_EQ(actual.last_checkpoint, reference.last_checkpoint);
    }
}

TEST(AsyncHuntDeterminismTest, ByteIdenticalAcrossJobsAndInflight) {
    HuntConfig reference_config;
    reference_config.jobs = 1;
    reference_config.inflight = 1;  // blocking replica path
    reference_config.cache_file = fresh_cache_path("ref");
    const HuntResult reference = run_hunt(reference_config);
    ASSERT_FALSE(reference.last_checkpoint.empty());
    const std::string reference_cache = slurp(reference_config.cache_file);
    EXPECT_FALSE(reference_cache.empty());

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        for (const std::size_t inflight :
             {std::size_t{4}, std::size_t{16}}) {
            HuntConfig config;
            config.jobs = jobs;
            config.inflight = inflight;
            config.cache_file = fresh_cache_path(
                "j" + std::to_string(jobs) + "i" + std::to_string(inflight));
            const HuntResult async = run_hunt(config);
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " inflight=" + std::to_string(inflight));
            expect_identical(async, reference);
            EXPECT_EQ(async.report.inflight, inflight);
            // The persisted trip cache is part of the contract too: same
            // entries, same bytes.
            EXPECT_EQ(slurp(config.cache_file), reference_cache);
        }
    }
}

TEST(AsyncHuntDeterminismTest, ByteIdenticalAcrossReplicaSlabSizes) {
    // The slab dimension of the identity matrix: forced cold clones
    // (slab 0), a deliberately undersized slab (2: recycles + transient
    // misses), and a roomy one (8) must all match the blocking cold-clone
    // reference — at inflight 1 and 16, jobs 1 and 4.
    HuntConfig reference_config;
    reference_config.jobs = 1;
    reference_config.inflight = 1;
    reference_config.replica_slab = 0;  // the pre-slab measurement path
    reference_config.cache_file = fresh_cache_path("slab_ref");
    const HuntResult reference = run_hunt(reference_config);
    const std::string reference_cache = slurp(reference_config.cache_file);

    for (const std::size_t slab :
         {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
        for (const std::size_t inflight : {std::size_t{1}, std::size_t{16}}) {
            for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
                HuntConfig config;
                config.jobs = jobs;
                config.inflight = inflight;
                config.replica_slab = slab;
                config.cache_file = fresh_cache_path(
                    "s" + std::to_string(slab) + "i" +
                    std::to_string(inflight) + "j" + std::to_string(jobs));
                const HuntResult warm = run_hunt(config);
                SCOPED_TRACE("slab=" + std::to_string(slab) +
                             " inflight=" + std::to_string(inflight) +
                             " jobs=" + std::to_string(jobs));
                expect_identical(warm, reference);
                EXPECT_EQ(slurp(config.cache_file), reference_cache);
                if (slab > 0) {
                    EXPECT_GT(warm.report.slab.recycles, 0u);
                }
            }
        }
    }
}

TEST(AsyncHuntDeterminismTest, KillAndResumeAcrossInflightDepths) {
    // Kill the async hunt with requests pending at snapshot time, then
    // resume under a *different* inflight depth: the checkpoint
    // fingerprint deliberately excludes inflight (drain-before-checkpoint
    // means the blob never holds queue state), so the resumed hunt must
    // still finish byte-identical to an uninterrupted blocking run.
    HuntConfig reference_config;
    reference_config.jobs = 2;
    reference_config.inflight = 1;
    const HuntResult reference = run_hunt(reference_config);
    EXPECT_FALSE(reference.report.aborted);

    HuntConfig abort_config;
    abort_config.jobs = 2;
    abort_config.inflight = 8;
    abort_config.abort_after_generation = 3;
    const HuntResult aborted = run_hunt(abort_config);
    EXPECT_TRUE(aborted.report.aborted);
    ASSERT_FALSE(aborted.last_checkpoint.empty());

    HuntConfig resume_config;
    resume_config.jobs = 2;
    resume_config.inflight = 4;
    resume_config.resume_blob = aborted.last_checkpoint;
    const HuntResult resumed = run_hunt(resume_config);
    EXPECT_FALSE(resumed.report.aborted);
    expect_identical(resumed, reference, /*compare_checkpoint=*/false);
}

TEST(AsyncHuntDeterminismTest, KillAndResumeAcrossSlabSizes) {
    // A hunt killed mid-flight on one slab size and resumed on another
    // (including slab off entirely) finishes byte-identical to an
    // uninterrupted run: the slab holds no hunt state a checkpoint would
    // need to carry.
    HuntConfig reference_config;
    reference_config.jobs = 2;
    reference_config.inflight = 1;
    const HuntResult reference = run_hunt(reference_config);

    HuntConfig abort_config;
    abort_config.jobs = 2;
    abort_config.inflight = 8;
    abort_config.replica_slab = 8;
    abort_config.abort_after_generation = 3;
    const HuntResult aborted = run_hunt(abort_config);
    EXPECT_TRUE(aborted.report.aborted);
    ASSERT_FALSE(aborted.last_checkpoint.empty());

    for (const std::size_t slab : {std::size_t{0}, std::size_t{2}}) {
        HuntConfig resume_config;
        resume_config.jobs = 2;
        resume_config.inflight = 4;
        resume_config.replica_slab = slab;
        resume_config.resume_blob = aborted.last_checkpoint;
        const HuntResult resumed = run_hunt(resume_config);
        SCOPED_TRACE("resume slab=" + std::to_string(slab));
        EXPECT_FALSE(resumed.report.aborted);
        expect_identical(resumed, reference, /*compare_checkpoint=*/false);
    }
}

TEST(AsyncHuntDeterminismTest, EmulatedLatencyDoesNotChangeResults) {
    // A small nonzero realtime_fraction exercises the deadline machinery
    // (the blocking path sleeps inline, the async path schedules
    // completion deadlines); neither may perturb the hunt.
    HuntConfig blocking;
    blocking.jobs = 2;
    blocking.inflight = 1;
    const HuntResult reference = run_hunt(blocking);

    HuntConfig emulated;
    emulated.jobs = 2;
    emulated.inflight = 8;
    emulated.realtime_fraction = 1e-4;
    const HuntResult async = run_hunt(emulated);
    expect_identical(async, reference);
}

}  // namespace
}  // namespace cichar::core
