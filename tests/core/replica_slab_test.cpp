#include "core/replica_slab.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "ate/tester.hpp"
#include "device/memory_chip.hpp"
#include "testgen/march.hpp"

namespace cichar::core {
namespace {

testgen::Test slab_test() {
    testgen::TestPattern p("slab");
    for (std::uint32_t i = 0; i < 100; ++i) {
        if (i % 2 == 0) {
            p.write(i % 32, static_cast<std::uint16_t>(i));
        } else {
            p.read((i - 1) % 32);
        }
    }
    return testgen::make_test(std::move(p));
}

/// A replicable chip whose clones refuse reset_warm (the DeviceUnderTest
/// default) — exercises the slab's cold-rebuild fallback for DUTs
/// without warm-reset support. Wraps a real MemoryTestChip because the
/// concrete chip is final.
class NoWarmChip : public device::DeviceUnderTest {
public:
    NoWarmChip(device::DieParameters die, device::MemoryChipOptions options)
        : die_(die), options_(options), inner_(die, options) {}

    [[nodiscard]] bool passes(const testgen::Test& test,
                              device::ParameterKind parameter,
                              double setting) override {
        return inner_.passes(test, parameter, setting);
    }
    [[nodiscard]] device::FunctionalResult run_functional(
        const testgen::Test& test) override {
        return inner_.run_functional(test);
    }
    void settle() override { inner_.settle(); }

    [[nodiscard]] std::unique_ptr<device::DeviceUnderTest> clone_cold(
        std::uint64_t noise_seed) const override {
        device::MemoryChipOptions options = options_;
        options.seed = noise_seed;
        return std::make_unique<NoWarmChip>(die_, options);
    }

private:
    device::DieParameters die_;
    device::MemoryChipOptions options_;
    device::MemoryTestChip inner_;
};

TEST(ReplicaSlab, RecyclesPooledReplicasAcrossAcquires) {
    device::MemoryTestChip chip({}, {});
    ate::Tester source(chip);
    ReplicaSlab slab(source, 2);

    for (std::uint64_t i = 0; i < 10; ++i) {
        ReplicaSlab::Lease lease = slab.acquire(i + 1, /*inline_latency=*/true);
        ASSERT_TRUE(lease);
        (void)lease.tester().dut();
    }
    const ReplicaSlabStats stats = slab.stats();
    EXPECT_EQ(stats.acquires, 10u);
    EXPECT_EQ(stats.recycles, 10u);       // every lease reused a pooled slot
    EXPECT_EQ(stats.cold_clones, 2u);     // only the pre-fill cloned
    EXPECT_EQ(stats.misses, 0u);
}

TEST(ReplicaSlab, LeasedReplicaMeasuresIdenticallyToColdClone) {
    device::MemoryChipOptions noisy;  // default options: noise on
    device::MemoryTestChip chip({}, noisy);
    ate::Tester source(chip);
    ReplicaSlab slab(source, 1);
    const testgen::Test t = slab_test();
    const ate::Parameter tdq = ate::Parameter::data_valid_time();

    const std::uint64_t seed = 0xFEED;
    // Dirty the pooled slot first so the recycle has real state to clear.
    {
        ReplicaSlab::Lease dirty = slab.acquire(7, true);
        for (int i = 0; i < 25; ++i) {
            (void)dirty.tester().apply(t, tdq, 28.0 + 0.1 * i);
        }
        (void)dirty.tester().run_functional(t);
    }

    const auto cold_dut = chip.clone_cold(seed);
    ate::Tester cold(*cold_dut, source.options());
    ReplicaSlab::Lease lease = slab.acquire(seed, true);
    EXPECT_EQ(slab.stats().recycles, 2u);
    for (int i = 0; i < 40; ++i) {
        const double setting = 26.0 + 0.15 * i;
        ASSERT_EQ(lease.tester().apply(t, tdq, setting),
                  cold.apply(t, tdq, setting))
            << "measurement " << i << " diverged from a cold clone";
    }
    EXPECT_EQ(lease.tester().log().total().applications,
              cold.log().total().applications);
}

TEST(ReplicaSlab, ExhaustedFreeListFallsBackToTransientClone) {
    device::MemoryTestChip chip({}, {});
    ate::Tester source(chip);
    ReplicaSlab slab(source, 1);

    ReplicaSlab::Lease first = slab.acquire(1, true);
    ReplicaSlab::Lease second = slab.acquire(2, true);  // free list empty
    ASSERT_TRUE(first);
    ASSERT_TRUE(second);
    (void)second.tester().dut();  // transient lease is fully usable
    EXPECT_EQ(slab.stats().misses, 1u);

    first.reset();
    second.reset();
    ReplicaSlab::Lease third = slab.acquire(3, true);  // pooled slot back
    ASSERT_TRUE(third);
    EXPECT_EQ(slab.stats().misses, 1u);
}

TEST(ReplicaSlab, ResetWarmUnsupportedFallsBackToColdRebuilds) {
    NoWarmChip chip({}, {});
    ate::Tester source(chip);
    ReplicaSlab slab(source, 1);

    for (std::uint64_t i = 0; i < 5; ++i) {
        ReplicaSlab::Lease lease = slab.acquire(i + 1, true);
        ASSERT_TRUE(lease);
    }
    const ReplicaSlabStats stats = slab.stats();
    EXPECT_EQ(stats.recycles, 0u);
    EXPECT_EQ(stats.cold_clones, 6u);  // pre-fill + one rebuild per lease
    EXPECT_EQ(stats.misses, 0u);
}

TEST(ReplicaSlab, LatencyFlavorFollowsTheLease) {
    device::MemoryTestChip chip({}, {});
    ate::TesterOptions realtime;
    realtime.realtime_fraction = 0.25;
    ate::Tester source(chip, realtime);
    ReplicaSlab slab(source, 1);

    {
        ReplicaSlab::Lease inline_lease = slab.acquire(1, true);
        EXPECT_EQ(inline_lease.tester().options().realtime_fraction, 0.25);
    }
    {
        // Async flavor: the completion deadline carries the latency, the
        // replica tester must not sleep it again.
        ReplicaSlab::Lease deadline_lease = slab.acquire(2, false);
        EXPECT_EQ(deadline_lease.tester().options().realtime_fraction, 0.0);
    }
    {
        ReplicaSlab::Lease back = slab.acquire(3, true);
        EXPECT_EQ(back.tester().options().realtime_fraction, 0.25);
    }
}

TEST(ReplicaSlab, LeaseStartsWithEmptyLedgerAndNoInjector) {
    device::MemoryTestChip chip({}, {});
    ate::Tester source(chip);
    ReplicaSlab slab(source, 1);
    const testgen::Test t = slab_test();
    const ate::Parameter tdq = ate::Parameter::data_valid_time();

    {
        ReplicaSlab::Lease lease = slab.acquire(1, true);
        for (int i = 0; i < 10; ++i) {
            (void)lease.tester().apply(t, tdq, 30.0);
        }
        EXPECT_GT(lease.tester().log().total().applications, 0u);
    }
    ReplicaSlab::Lease fresh = slab.acquire(2, true);
    EXPECT_EQ(fresh.tester().log().total().applications, 0u);
}

}  // namespace
}  // namespace cichar::core
