// Determinism and cache-efficiency tests for the parallel worst-case
// hunt: one seed must produce a byte-identical hunt report at any worker
// count, and the trip-point cache must cut live ATE measurements without
// changing the hunt's outcome on a noiseless DUT.
#include <string>

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

OptimizerOptions parallel_options(std::size_t jobs, bool cache) {
    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 3;
    opts.ga.max_generations = 10;
    opts.ga.stagnation_limit = 6;
    opts.ga.max_restarts = 2;
    opts.ga.migration_interval = 4;
    // Calm operators (as in bench_hunt_scaling) so the GA re-emits enough
    // duplicate chromosomes to exercise the cache-hit path.
    opts.ga.population.operators.crossover_rate = 0.8;
    opts.ga.population.operators.mutation_rate = 0.10;
    opts.ga.population.operators.reset_rate = 0.01;
    opts.ga.population.operators.seed_mutation_rate = 0.05;
    opts.parallel.enabled = true;
    opts.parallel.jobs = jobs;
    opts.cache.enabled = cache;
    return opts;
}

struct HuntResult {
    WorstCaseReport report;
    std::string rendered;
    std::uint64_t applications = 0;
};

HuntResult run_hunt(std::size_t jobs, bool cache) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    util::Rng rng(2005);
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const WorstCaseOptimizer optimizer(parallel_options(jobs, cache));

    HuntResult result;
    result.report = optimizer.run_unseeded(
        tester, ate::Parameter::data_valid_time(), generator,
        Objective::kDriftToMinimum, rng);
    ReportInputs inputs;
    inputs.seed = 2005;
    inputs.hunt = &result.report;
    result.rendered = render_report(inputs);
    result.applications = tester.log().total().applications;
    return result;
}

TEST(ParallelHuntTest, ReportByteIdenticalAtJobs128) {
    const HuntResult j1 = run_hunt(1, true);
    const HuntResult j2 = run_hunt(2, true);
    const HuntResult j8 = run_hunt(8, true);

    EXPECT_EQ(j1.report.outcome.best_fitness, j2.report.outcome.best_fitness);
    EXPECT_EQ(j1.report.outcome.best_fitness, j8.report.outcome.best_fitness);
    EXPECT_EQ(j1.report.outcome.best.sequence, j8.report.outcome.best.sequence);
    EXPECT_EQ(j1.report.outcome.best.condition, j8.report.outcome.best.condition);
    EXPECT_EQ(j1.rendered, j2.rendered);
    EXPECT_EQ(j1.rendered, j8.rendered);
    // Same number of live measurements too, not merely the same winner.
    EXPECT_EQ(j1.applications, j2.applications);
    EXPECT_EQ(j1.applications, j8.applications);
}

TEST(ParallelHuntTest, CacheCutsMeasurementsWithoutChangingOutcome) {
    const HuntResult cached = run_hunt(2, true);
    const HuntResult uncached = run_hunt(2, false);

    EXPECT_GT(cached.report.cache_stats.hits, 0u);
    EXPECT_GT(cached.report.cache_stats.misses, 0u);
    EXPECT_LT(cached.applications, uncached.applications);
    EXPECT_LT(cached.report.ate_measurements, uncached.report.ate_measurements);
    // A hit replays the measured record; with a noiseless DUT that equals
    // what a re-measurement would have returned, so the hunt trajectory
    // (and thus the winner) is unchanged.
    EXPECT_EQ(cached.report.outcome.best_fitness,
              uncached.report.outcome.best_fitness);
    EXPECT_EQ(uncached.report.cache_stats.lookups(), 0u);
}

TEST(ParallelHuntTest, CacheStatsSurfaceInReport) {
    const HuntResult cached = run_hunt(2, true);
    EXPECT_NE(cached.rendered.find("trip cache:"), std::string::npos);
    const HuntResult uncached = run_hunt(2, false);
    EXPECT_EQ(uncached.rendered.find("trip cache:"), std::string::npos);
}

}  // namespace
}  // namespace cichar::core
