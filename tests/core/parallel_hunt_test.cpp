// Determinism and cache-efficiency tests for the parallel worst-case
// hunt: one seed must produce a byte-identical hunt report at any worker
// count, and the trip-point cache must cut live ATE measurements without
// changing the hunt's outcome on a noiseless DUT.
#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

OptimizerOptions parallel_options(std::size_t jobs, bool cache) {
    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 3;
    opts.ga.max_generations = 10;
    opts.ga.stagnation_limit = 6;
    opts.ga.max_restarts = 2;
    opts.ga.migration_interval = 4;
    // Calm operators (as in bench_hunt_scaling) so the GA re-emits enough
    // duplicate chromosomes to exercise the cache-hit path.
    opts.ga.population.operators.crossover_rate = 0.8;
    opts.ga.population.operators.mutation_rate = 0.10;
    opts.ga.population.operators.reset_rate = 0.01;
    opts.ga.population.operators.seed_mutation_rate = 0.05;
    opts.parallel.enabled = true;
    opts.parallel.jobs = jobs;
    opts.cache.enabled = cache;
    return opts;
}

struct HuntResult {
    WorstCaseReport report;
    std::string rendered;
    std::uint64_t applications = 0;
};

HuntResult run_hunt(std::size_t jobs, bool cache) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    util::Rng rng(2005);
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const WorstCaseOptimizer optimizer(parallel_options(jobs, cache));

    HuntResult result;
    result.report = optimizer.run_unseeded(
        tester, ate::Parameter::data_valid_time(), generator,
        Objective::kDriftToMinimum, rng);
    ReportInputs inputs;
    inputs.seed = 2005;
    inputs.hunt = &result.report;
    result.rendered = render_report(inputs);
    result.applications = tester.log().total().applications;
    return result;
}

TEST(ParallelHuntTest, ReportByteIdenticalAtJobs128) {
    const HuntResult j1 = run_hunt(1, true);
    const HuntResult j2 = run_hunt(2, true);
    const HuntResult j8 = run_hunt(8, true);

    EXPECT_EQ(j1.report.outcome.best_fitness, j2.report.outcome.best_fitness);
    EXPECT_EQ(j1.report.outcome.best_fitness, j8.report.outcome.best_fitness);
    EXPECT_EQ(j1.report.outcome.best.sequence, j8.report.outcome.best.sequence);
    EXPECT_EQ(j1.report.outcome.best.condition, j8.report.outcome.best.condition);
    EXPECT_EQ(j1.rendered, j2.rendered);
    EXPECT_EQ(j1.rendered, j8.rendered);
    // Same number of live measurements too, not merely the same winner.
    EXPECT_EQ(j1.applications, j2.applications);
    EXPECT_EQ(j1.applications, j8.applications);
}

TEST(ParallelHuntTest, CacheCutsMeasurementsWithoutChangingOutcome) {
    const HuntResult cached = run_hunt(2, true);
    const HuntResult uncached = run_hunt(2, false);

    EXPECT_GT(cached.report.cache_stats.hits, 0u);
    EXPECT_GT(cached.report.cache_stats.misses, 0u);
    EXPECT_LT(cached.applications, uncached.applications);
    EXPECT_LT(cached.report.ate_measurements, uncached.report.ate_measurements);
    // A hit replays the measured record; with a noiseless DUT that equals
    // what a re-measurement would have returned, so the hunt trajectory
    // (and thus the winner) is unchanged.
    EXPECT_EQ(cached.report.outcome.best_fitness,
              uncached.report.outcome.best_fitness);
    EXPECT_EQ(uncached.report.cache_stats.lookups(), 0u);
}

TEST(ParallelHuntTest, CacheStatsSurfaceInReport) {
    const HuntResult cached = run_hunt(2, true);
    EXPECT_NE(cached.rendered.find("trip cache:"), std::string::npos);
    const HuntResult uncached = run_hunt(2, false);
    EXPECT_EQ(uncached.rendered.find("trip cache:"), std::string::npos);
}

TEST(ParallelHuntTest, WarmSlabMatchesColdClonesAtAnySize) {
    // The slab is a pure perf layer: forced cold clones (slab 0), an
    // undersized slab (every lease a transient miss beyond slot 1), and
    // the auto slab must render the same report from the same seed.
    const auto run_with_slab = [](std::size_t slab) {
        device::MemoryTestChip chip({}, noiseless());
        ate::Tester tester(chip);
        util::Rng rng(2005);
        testgen::RandomGeneratorOptions generator;
        generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
        OptimizerOptions opts = parallel_options(4, true);
        opts.parallel.replica_slab = slab;
        const WorstCaseOptimizer optimizer(opts);
        HuntResult result;
        result.report = optimizer.run_unseeded(
            tester, ate::Parameter::data_valid_time(), generator,
            Objective::kDriftToMinimum, rng);
        ReportInputs inputs;
        inputs.seed = 2005;
        inputs.hunt = &result.report;
        result.rendered = render_report(inputs);
        return result;
    };
    const HuntResult cold = run_with_slab(0);
    const HuntResult tiny = run_with_slab(1);
    const HuntResult automatic =
        run_with_slab(HuntParallelOptions::kAutoSlab);

    EXPECT_EQ(cold.rendered, tiny.rendered);
    EXPECT_EQ(cold.rendered, automatic.rendered);
    EXPECT_EQ(cold.report.slab.acquires, 0u);  // slab disabled: no leases
    // Every lease was either a warm recycle or a cold rebuild (transient
    // misses included); the pre-fill accounts for the extra cold clones.
    EXPECT_GT(tiny.report.slab.acquires, 0u);
    EXPECT_EQ(tiny.report.slab.recycles + tiny.report.slab.cold_clones,
              tiny.report.slab.acquires + 1u);  // capacity-1 pre-fill
    EXPECT_GT(automatic.report.slab.recycles, 0u);
    EXPECT_EQ(automatic.report.slab.misses, 0u);
}

/// A chip that refuses replication: clone_cold returns nullptr (the
/// DeviceUnderTest default), so every parallel/async/slab configuration
/// must fall back to the classic serial in-situ hunt (optimizer.cpp's
/// clone_cold gate). Delegates measurements to a real MemoryTestChip so
/// the serial hunt itself is unchanged.
class UnclonableChip : public device::DeviceUnderTest {
public:
    UnclonableChip(device::DieParameters die,
                   device::MemoryChipOptions options)
        : inner_(die, options) {}

    [[nodiscard]] bool passes(const testgen::Test& test,
                              device::ParameterKind parameter,
                              double setting) override {
        return inner_.passes(test, parameter, setting);
    }
    [[nodiscard]] device::FunctionalResult run_functional(
        const testgen::Test& test) override {
        return inner_.run_functional(test);
    }
    void settle() override { inner_.settle(); }

private:
    device::MemoryTestChip inner_;
};

TEST(ParallelHuntTest, UnclonableDutFallsBackToSerialUnderAsyncAndSlab) {
    const auto run_on = [](device::DeviceUnderTest& chip,
                           OptimizerOptions opts) {
        ate::Tester tester(chip);
        util::Rng rng(2005);
        testgen::RandomGeneratorOptions generator;
        generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
        const WorstCaseOptimizer optimizer(opts);
        HuntResult result;
        result.report = optimizer.run_unseeded(
            tester, ate::Parameter::data_valid_time(), generator,
            Objective::kDriftToMinimum, rng);
        ReportInputs inputs;
        inputs.seed = 2005;
        inputs.hunt = &result.report;
        result.rendered = render_report(inputs);
        result.applications = tester.log().total().applications;
        return result;
    };

    device::MemoryTestChip serial_chip({}, noiseless());
    OptimizerOptions serial_opts = parallel_options(1, true);
    serial_opts.parallel.enabled = false;
    const HuntResult serial = run_on(serial_chip, serial_opts);

    // --jobs 4 --inflight 16 --replica-slab 8 on an unclonable DUT.
    UnclonableChip async_chip({}, noiseless());
    OptimizerOptions async_opts = parallel_options(4, true);
    async_opts.parallel.inflight = 16;
    async_opts.parallel.replica_slab = 8;
    const HuntResult fallback = run_on(async_chip, async_opts);
    EXPECT_EQ(fallback.report.jobs, 1u);
    EXPECT_EQ(fallback.report.slab.acquires, 0u);
    EXPECT_EQ(fallback.rendered, serial.rendered);
    EXPECT_EQ(fallback.applications, serial.applications);

    // Blocking replica configuration (inflight 1) falls back the same way.
    UnclonableChip blocking_chip({}, noiseless());
    OptimizerOptions blocking_opts = parallel_options(4, true);
    blocking_opts.parallel.replica_slab = 8;
    const HuntResult blocking = run_on(blocking_chip, blocking_opts);
    EXPECT_EQ(blocking.report.jobs, 1u);
    EXPECT_EQ(blocking.rendered, serial.rendered);
}

}  // namespace
}  // namespace cichar::core
