#include "core/learner.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "device/memory_chip.hpp"
#include "nn/weights_io.hpp"
#include "util/statistics.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

LearnerOptions fast_learner() {
    LearnerOptions opts;
    opts.training_tests = 60;
    opts.additional_tests_per_round = 30;
    opts.max_rounds = 2;
    opts.committee.members = 3;
    opts.committee.hidden_layers = {12};
    opts.committee.train.max_epochs = 120;
    return opts;
}

testgen::RandomGeneratorOptions nominal_generator() {
    testgen::RandomGeneratorOptions g;
    g.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    return g;
}

struct LearnFixture : ::testing::Test {
    LearnFixture()
        : chip({}, noiseless()),
          tester(chip),
          parameter(ate::Parameter::data_valid_time()),
          generator(nominal_generator()) {}

    LearnResult run(LearnerOptions opts = fast_learner()) {
        util::Rng rng(42);
        const CharacterizationLearner learner(opts);
        return learner.run(tester, parameter, generator, rng);
    }

    device::MemoryTestChip chip;
    ate::Tester tester;
    ate::Parameter parameter;
    testgen::RandomTestGenerator generator;
};

TEST_F(LearnFixture, ConvergesOnLearnableDevice) {
    const LearnResult result = run();
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.rounds, 1u);
    EXPECT_EQ(result.tests_measured, 60u);
    EXPECT_EQ(result.dsv.size(), 60u);
    EXPECT_LT(result.mean_validation_error, 0.04);
    EXPECT_EQ(result.model.committee().member_count(), 3u);
}

TEST_F(LearnFixture, PredictionCorrelatesWithTruth) {
    const LearnResult result = run();
    util::Rng rng(99);
    std::vector<double> predicted;
    std::vector<double> truth;
    for (int i = 0; i < 120; ++i) {
        const testgen::Test t = generator.random_test(rng);
        predicted.push_back(result.model.predict_wcr(t));
        truth.push_back(20.0 / chip.true_parameter(
                                  t, device::ParameterKind::kDataValidTime));
    }
    EXPECT_GT(util::correlation(predicted, truth), 0.8);
}

TEST_F(LearnFixture, NumericCodingAlsoWorks) {
    LearnerOptions opts = fast_learner();
    opts.coding = fuzzy::CodingScheme::kNumeric;
    const LearnResult result = run(opts);
    EXPECT_EQ(result.model.coder().scheme(), fuzzy::CodingScheme::kNumeric);
    EXPECT_EQ(result.model.coder().output_count(), 1u);
    util::Rng rng(7);
    const testgen::Test t = generator.random_test(rng);
    const double wcr = result.model.predict_wcr(t);
    EXPECT_GT(wcr, 0.3);
    EXPECT_LT(wcr, 1.1);
}

TEST_F(LearnFixture, LedgerUsesLearningPhase) {
    (void)run();
    EXPECT_GT(tester.log().phase_counters("learning").applications, 100u);
}

TEST_F(LearnFixture, VoteExposesAgreement) {
    const LearnResult result = run();
    util::Rng rng(3);
    const testgen::Test t = generator.random_test(rng);
    const nn::VoteResult vote = result.model.vote(t);
    EXPECT_GE(vote.agreement, 1.0 / 3.0);
    EXPECT_LE(vote.agreement, 1.0);
    EXPECT_EQ(vote.mean_output.size(), result.model.coder().output_count());
}

TEST_F(LearnFixture, FeaturesHaveExpectedWidth) {
    const LearnResult result = run();
    util::Rng rng(4);
    const testgen::Test t = generator.random_test(rng);
    EXPECT_EQ(result.model.features_of(t).size(), testgen::kFeatureCount);
}

TEST_F(LearnFixture, WeightFileRoundTripKeepsPredictions) {
    const LearnResult result = run();
    std::stringstream stream;
    nn::save_committee(stream, result.model.committee());
    const nn::VotingCommittee loaded = nn::load_committee(stream);

    const LearnedModel restored(loaded, result.model.coder(),
                                result.model.generator_options(),
                                result.model.parameter());
    util::Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        const testgen::Test t = generator.random_test(rng);
        EXPECT_DOUBLE_EQ(result.model.predict_wcr(t),
                         restored.predict_wcr(t));
    }
}

TEST_F(LearnFixture, UnlearnableTargetsTriggerRetryRounds) {
    // A committee that is far too small to learn, with strict thresholds:
    // every round fails the learnability/generalization check and the
    // learner keeps measuring more tests (Fig. 4's go-back-to-step-1).
    LearnerOptions opts = fast_learner();
    opts.committee.hidden_layers = {1};
    opts.committee.train.max_epochs = 2;
    opts.committee.train.learnability_mse = 1e-9;
    opts.committee.train.generalization_mse = 1e-9;
    opts.max_rounds = 2;
    const LearnResult result = run(opts);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.rounds, 2u);
    EXPECT_EQ(result.tests_measured, 60u + 30u);
}

}  // namespace
}  // namespace cichar::core
