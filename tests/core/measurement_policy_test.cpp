#include "core/measurement_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ate/fault_injector.hpp"
#include "ate/search.hpp"
#include "ate/tester.hpp"
#include "core/multi_trip.hpp"
#include "device/memory_chip.hpp"
#include "testgen/random_gen.hpp"

namespace cichar::core {
namespace {

MeasurementPolicyOptions enabled_options() {
    MeasurementPolicyOptions o;
    o.enabled = true;
    return o;
}

/// Noiseless synthetic oracle: pass strictly on the pass side of `trip`.
ate::Oracle truth_oracle(const ate::Parameter& parameter, double trip) {
    const double toward_fail = parameter.toward_fail();
    return [toward_fail, trip](double setting) {
        return (setting - trip) * toward_fail <= 0.0;
    };
}

/// A search result consistent with `truth_oracle` at `trip`.
ate::SearchResult consistent_result(const ate::Parameter& parameter,
                                    double trip) {
    ate::SearchResult result;
    result.trip_point = trip;
    result.found = true;
    const double toward_fail = parameter.toward_fail();
    result.probe(trip - toward_fail, true);
    result.probe(trip + toward_fail, false);
    return result;
}

TEST(MeasurementPolicyTest, DisabledPolicyRunsAttemptOnceUntouched) {
    MeasurementPolicy policy;  // default: disabled
    EXPECT_FALSE(policy.enabled());
    const ate::Parameter param = ate::Parameter::data_valid_time();

    std::size_t attempts = 0;
    ate::SearchResult bogus;  // implausible: trip far outside the range
    bogus.trip_point = 1e9;
    bogus.found = true;
    const ate::SearchResult out = policy.screen(
        [&] {
            ++attempts;
            return bogus;
        },
        truth_oracle(param, 30.0), param);
    EXPECT_EQ(attempts, 1u);  // no screening, no re-search
    EXPECT_EQ(out.trip_point, 1e9);
    EXPECT_FALSE(policy.counters().any());
    EXPECT_EQ(policy.counters().describe(), "clean");
}

TEST(MeasurementPolicyTest, GuardAbsorbsTransientTimeouts) {
    MeasurementPolicy policy(enabled_options());
    std::size_t calls = 0;
    const ate::Oracle guarded = policy.guard([&](double) -> bool {
        if (++calls < 3) throw ate::MeasurementTimeout();
        return true;
    });
    EXPECT_TRUE(guarded(1.0));
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(policy.counters().timeouts_absorbed, 2u);
    EXPECT_EQ(policy.counters().retried_measurements, 2u);
    EXPECT_EQ(policy.counters().abandoned_measurements, 0u);
    EXPECT_GT(policy.counters().backoff_seconds, 0.0);
}

TEST(MeasurementPolicyTest, GuardBackoffGrowsExponentially) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.backoff_jitter = 0.0;  // deterministic schedule for the assert
    opts.timeout_retries = 3;
    MeasurementPolicy policy(opts);
    std::size_t calls = 0;
    const ate::Oracle guarded = policy.guard([&](double) -> bool {
        if (++calls < 4) throw ate::MeasurementTimeout();
        return true;
    });
    EXPECT_TRUE(guarded(1.0));
    // 0.25 * (2^0 + 2^1 + 2^2) = 1.75 accounted seconds.
    EXPECT_NEAR(policy.counters().backoff_seconds, 1.75, 1e-12);
}

TEST(MeasurementPolicyTest, GuardRethrowsWhenRetryBudgetExhausted) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.timeout_retries = 2;
    MeasurementPolicy policy(opts);
    const ate::Oracle guarded = policy.guard(
        [](double) -> bool { throw ate::MeasurementTimeout(); });
    EXPECT_THROW((void)guarded(1.0), ate::MeasurementTimeout);
    EXPECT_EQ(policy.counters().abandoned_measurements, 1u);
    EXPECT_EQ(policy.counters().retried_measurements, 2u);
}

TEST(MeasurementPolicyTest, GuardNeverSwallowsSiteDeath) {
    MeasurementPolicy policy(enabled_options());
    const ate::Oracle guarded = policy.guard(
        [](double) -> bool { throw ate::SiteDeadError(); });
    EXPECT_THROW((void)guarded(1.0), ate::SiteDeadError);
    EXPECT_EQ(policy.counters().retried_measurements, 0u);
}

TEST(MeasurementPolicyTest, ScreenAcceptsCleanResultWithoutIntervention) {
    MeasurementPolicy policy(enabled_options());
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const double trip = 30.0;
    const ate::SearchResult out = policy.screen(
        [&] { return consistent_result(param, trip); },
        truth_oracle(param, trip), param);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(out.trip_point, trip);
    // A clean first attempt counts as neither recovery nor intervention.
    EXPECT_EQ(policy.counters().recovered_trips, 0u);
    EXPECT_FALSE(policy.counters().any());
}

TEST(MeasurementPolicyTest, ScreenRejectsTripOutsideCharacterizationRange) {
    MeasurementPolicy policy(enabled_options());
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const double trip = 30.0;
    std::size_t attempts = 0;
    const ate::SearchResult out = policy.screen(
        [&] {
            // First search is steered way off by a fault; later ones are fine.
            ++attempts;
            if (attempts == 1) {
                ate::SearchResult bad = consistent_result(param, trip);
                bad.trip_point = param.search_end +
                                 10.0 * param.characterization_range();
                bad.trace.clear();
                return bad;
            }
            return consistent_result(param, trip);
        },
        truth_oracle(param, trip), param);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(out.trip_point, trip);
    EXPECT_EQ(policy.counters().implausible_trips, 1u);
    EXPECT_EQ(policy.counters().researches, 1u);
    EXPECT_EQ(policy.counters().recovered_trips, 1u);
}

TEST(MeasurementPolicyTest, ScreenRejectsInternallyInconsistentTrace) {
    MeasurementPolicy policy(enabled_options());
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const double trip = 30.0;
    const double margin =
        param.resolution * enabled_options().confirm_margin_resolutions;
    std::size_t attempts = 0;
    const ate::SearchResult out = policy.screen(
        [&] {
            ++attempts;
            ate::SearchResult r = consistent_result(param, trip);
            if (attempts == 1) {
                // A "fail" reading deep on the pass side: the search was
                // steered by a transient and its window is untrustworthy.
                r.probe(trip - param.toward_fail() * 5.0 * margin, false);
            }
            return r;
        },
        truth_oracle(param, trip), param);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(policy.counters().implausible_trips, 1u);
    EXPECT_EQ(policy.counters().recovered_trips, 1u);
}

TEST(MeasurementPolicyTest, ScreenRejectsTripTheOracleDisowns) {
    MeasurementPolicy policy(enabled_options());
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const double true_trip = 30.0;
    const double bogus_trip = 36.0;  // plausible range, wrong place
    std::size_t attempts = 0;
    const ate::SearchResult out = policy.screen(
        [&] {
            ++attempts;
            if (attempts == 1) {
                ate::SearchResult bad;
                bad.trip_point = bogus_trip;
                bad.found = true;  // empty trace: nothing to contradict
                return bad;
            }
            return consistent_result(param, true_trip);
        },
        truth_oracle(param, true_trip), param);
    ASSERT_TRUE(out.found);
    EXPECT_EQ(out.trip_point, true_trip);
    EXPECT_EQ(policy.counters().confirm_rejections, 1u);
    EXPECT_EQ(policy.counters().recovered_trips, 1u);
}

TEST(MeasurementPolicyTest, ExhaustedAttemptsReportNotFound) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.search_attempts = 3;
    MeasurementPolicy policy(opts);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    std::size_t attempts = 0;
    const ate::SearchResult out = policy.screen(
        [&] {
            ++attempts;
            ate::SearchResult bad;
            bad.found = false;
            return bad;
        },
        truth_oracle(param, 30.0), param);
    EXPECT_FALSE(out.found);
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(policy.counters().unrecovered_trips, 1u);
    EXPECT_EQ(policy.counters().researches, 2u);
}

TEST(MeasurementPolicyTest, QuarantineAfterConsecutiveUnrecoverableTests) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.search_attempts = 1;
    opts.quarantine_after = 2;
    MeasurementPolicy policy(opts);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const auto hopeless = [] {
        ate::SearchResult bad;
        bad.found = false;
        return bad;
    };
    const ate::Oracle oracle = truth_oracle(param, 30.0);

    EXPECT_FALSE(policy.screen(hopeless, oracle, param).found);
    EXPECT_THROW((void)policy.screen(hopeless, oracle, param),
                 SiteQuarantinedError);
}

TEST(MeasurementPolicyTest, SuccessResetsQuarantineCount) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.search_attempts = 1;
    opts.quarantine_after = 2;
    MeasurementPolicy policy(opts);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    const double trip = 30.0;
    const auto hopeless = [] {
        ate::SearchResult bad;
        bad.found = false;
        return bad;
    };
    const ate::Oracle oracle = truth_oracle(param, trip);

    EXPECT_FALSE(policy.screen(hopeless, oracle, param).found);
    EXPECT_TRUE(policy
                    .screen([&] { return consistent_result(param, trip); },
                            oracle, param)
                    .found);
    // The failure streak restarted: one more failure does not quarantine.
    EXPECT_FALSE(policy.screen(hopeless, oracle, param).found);
    EXPECT_THROW((void)policy.screen(hopeless, oracle, param),
                 SiteQuarantinedError);
}

TEST(MeasurementPolicyTest, SaveLoadRoundTripsDynamicState) {
    MeasurementPolicyOptions opts = enabled_options();
    opts.timeout_retries = 5;
    MeasurementPolicy policy(opts);
    std::size_t calls = 0;
    const ate::Oracle guarded = policy.guard([&](double) -> bool {
        if (++calls % 2 == 0) throw ate::MeasurementTimeout();
        return true;
    });
    (void)guarded(1.0);
    (void)guarded(2.0);
    (void)guarded(3.0);

    std::string blob;
    policy.save(blob);

    MeasurementPolicy restored(opts);
    util::ByteReader reader(blob);
    restored.load(reader);
    EXPECT_TRUE(reader.at_end());
    EXPECT_EQ(restored.counters(), policy.counters());

    // The jitter stream continues identically from the snapshot point.
    std::size_t calls_a = 0;
    std::size_t calls_b = 0;
    const ate::Oracle ga = policy.guard([&](double) -> bool {
        if (++calls_a < 2) throw ate::MeasurementTimeout();
        return true;
    });
    const ate::Oracle gb = restored.guard([&](double) -> bool {
        if (++calls_b < 2) throw ate::MeasurementTimeout();
        return true;
    });
    (void)ga(1.0);
    (void)gb(1.0);
    EXPECT_EQ(restored.counters().backoff_seconds,
              policy.counters().backoff_seconds);
}

TEST(MeasurementPolicyTest, FaultCountersMergeAndDescribe) {
    FaultCounters a;
    a.timeouts_absorbed = 2;
    a.backoff_seconds = 1.5;
    FaultCounters b;
    b.timeouts_absorbed = 1;
    b.researches = 3;
    b.backoff_seconds = 0.5;
    a.merge(b);
    EXPECT_EQ(a.timeouts_absorbed, 3u);
    EXPECT_EQ(a.researches, 3u);
    EXPECT_NEAR(a.backoff_seconds, 2.0, 1e-12);
    EXPECT_EQ(a.describe(), "timeouts=3 researches=3");
    EXPECT_EQ(FaultCounters{}.describe(), "clean");
}

// End-to-end recovery: a TripSession measured through a transiently faulty
// tester with the policy on lands on the same trip points (within a small
// tolerance) as a fault-free session.
TEST(MeasurementPolicyTest, FaultedSessionRecoversFaultFreeTripPoints) {
    const ate::Parameter param = ate::Parameter::data_valid_time();
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;

    testgen::RandomTestGenerator gen;
    util::Rng test_rng(77);
    std::vector<testgen::Test> tests;
    for (std::size_t i = 0; i < 12; ++i) {
        tests.push_back(gen.random_test(test_rng, "t" + std::to_string(i)));
    }

    // Clean reference run.
    device::MemoryTestChip clean_chip({}, chip_opts);
    ate::Tester clean_tester(clean_chip);
    TripSession clean_session(clean_tester, param, MultiTripOptions{});
    std::vector<double> clean_trips;
    for (const testgen::Test& test : tests) {
        const TripPointRecord r = clean_session.measure(test);
        ASSERT_TRUE(r.found) << test.name;
        clean_trips.push_back(r.trip_point);
    }

    // Faulted run: 5% transients + occasional timeouts, policy on.
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    ate::FaultProfile profile;
    profile.transient_rate = 0.05;
    profile.transient_span_fraction = 0.3;  // gross errors, easy to screen
    profile.timeout_rate = 0.01;
    profile.seed = 99;
    ate::FaultInjector injector(profile);
    tester.attach_fault_injector(&injector);

    MultiTripOptions opts;
    opts.policy = enabled_options();
    TripSession session(tester, param, opts);
    std::size_t recovered = 0;
    for (std::size_t i = 0; i < tests.size(); ++i) {
        const TripPointRecord r = session.measure(tests[i]);
        ASSERT_TRUE(r.found) << tests[i].name;
        if (std::abs(r.trip_point - clean_trips[i]) <= 3.0 * param.resolution) {
            ++recovered;
        }
    }
    EXPECT_EQ(recovered, tests.size());
    EXPECT_GT(injector.stats().injected(), 0u);
}

}  // namespace
}  // namespace cichar::core
