#include "core/characterizer.hpp"

#include <gtest/gtest.h>

#include "device/presets.hpp"
#include "testgen/march.hpp"
#include "testgen/profiles.hpp"

namespace cichar::core {
namespace {

CharacterizerOptions fast_options() {
    CharacterizerOptions opts;
    opts.generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    opts.learner.training_tests = 40;
    opts.learner.committee.members = 2;
    opts.learner.committee.train.max_epochs = 50;
    opts.optimizer.ga.population.size = 10;
    opts.optimizer.ga.populations = 1;
    opts.optimizer.ga.max_generations = 5;
    opts.optimizer.nn_candidates = 80;
    return opts;
}

struct CharacterizerFixture : ::testing::Test {
    CharacterizerFixture()
        : chip(device::presets::noiseless()),
          tester(chip),
          characterizer(tester, ate::Parameter::data_valid_time(),
                        fast_options()) {}

    device::MemoryTestChip chip;
    ate::Tester tester;
    DeviceCharacterizer characterizer;
};

TEST_F(CharacterizerFixture, SingleTripMatchesPaperMarchRow) {
    const TripPointRecord record = characterizer.single_trip(
        testgen::make_test(testgen::march_c_minus().expand()));
    ASSERT_TRUE(record.found);
    EXPECT_NEAR(record.trip_point, 32.3, 0.15);
    EXPECT_NEAR(record.wcr, 0.619, 0.005);
    EXPECT_EQ(record.wcr_class, ga::WcrClass::kPass);
    EXPECT_GT(tester.log().phase_counters("single-trip").applications, 0u);
}

TEST_F(CharacterizerFixture, CharacterizeExplicitTests) {
    // The traffic-profile suite as an explicit characterization set.
    const testgen::RandomTestGenerator generator(
        characterizer.options().generator);
    std::vector<testgen::Test> tests;
    for (const testgen::TrafficProfile& p : testgen::all_profiles()) {
        tests.push_back(generator.make_test(p.recipe, {}, p.name));
    }
    const DesignSpecVariation dsv = characterizer.characterize(tests);
    EXPECT_EQ(dsv.size(), tests.size());
    EXPECT_EQ(dsv.found_count(), tests.size());
    // Profile names propagate into the records.
    EXPECT_EQ(dsv.record(0).test_name, "code-fetch");
    // All realistic profiles stay in the pass band.
    for (const TripPointRecord& r : dsv.records()) {
        EXPECT_EQ(r.wcr_class, ga::WcrClass::kPass) << r.test_name;
    }
}

TEST_F(CharacterizerFixture, CharacterizeRandomCountsAndNames) {
    util::Rng rng(3);
    const DesignSpecVariation dsv = characterizer.characterize_random(7, rng);
    EXPECT_EQ(dsv.size(), 7u);
    EXPECT_EQ(dsv.record(0).test_name, "rand-0");
    EXPECT_EQ(dsv.record(6).test_name, "rand-6");
}

TEST_F(CharacterizerFixture, ObjectiveDefaultsToParameterDirection) {
    util::Rng rng(4);
    const LearnResult learned = characterizer.learn(rng);
    const WorstCaseReport report = characterizer.optimize(learned.model, rng);
    EXPECT_EQ(report.objective, Objective::kDriftToMinimum);
}

TEST_F(CharacterizerFixture, AccessorsExposeConfiguration) {
    EXPECT_EQ(characterizer.parameter().name, "T_DQ");
    EXPECT_EQ(characterizer.options().learner.training_tests, 40u);
    EXPECT_EQ(&characterizer.tester(), &tester);
}

TEST(CharacterizerMaxLimitTest, VminFacadeEndToEnd) {
    device::MemoryTestChip chip = device::presets::noiseless();
    ate::Tester tester(chip);
    CharacterizerOptions opts = fast_options();
    DeviceCharacterizer characterizer(tester, ate::Parameter::min_vdd(), opts);
    util::Rng rng(5);
    const WorstCaseReport report = characterizer.run_full(rng);
    ASSERT_TRUE(report.worst_record.found);
    EXPECT_EQ(report.objective, Objective::kDriftToMaximum);
    // Worst Vmin is the highest one: it sits above the median random Vmin.
    const DesignSpecVariation dsv = characterizer.characterize_random(10, rng);
    EXPECT_GE(report.worst_record.trip_point, dsv.trip_summary().median);
}

TEST(CharacterizerMarginalDieTest, HuntFindsSpecViolation) {
    // On the marginal preset the worst case crosses WCR = 1 — the paper's
    // "fail" classification and the reason characterization exists.
    device::MemoryTestChip chip = device::presets::marginal();
    ate::Tester tester(chip);
    CharacterizerOptions opts = fast_options();
    opts.optimizer.ga.population.size = 16;
    opts.optimizer.ga.max_generations = 30;
    opts.optimizer.ga.populations = 2;
    opts.optimizer.ga.target_fitness = 1.005;  // stop once the fail band
                                               // is reached (WCR theorem)
    opts.optimizer.nn_candidates = 300;
    DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), opts);
    util::Rng rng(6);
    const WorstCaseReport report = characterizer.run_full(rng);
    EXPECT_GT(report.outcome.best_fitness, 1.0);
    EXPECT_EQ(ga::classify(report.outcome.best_fitness), ga::WcrClass::kFail);
}

}  // namespace
}  // namespace cichar::core
