#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/characterizer.hpp"
#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

struct ReportFixture : ::testing::Test {
    ReportFixture() : chip({}, chip_options()), tester(chip) {}

    static device::MemoryChipOptions chip_options() {
        device::MemoryChipOptions o;
        o.noise_sigma_ns = 0.0;
        return o;
    }

    core::CharacterizerOptions options() {
        CharacterizerOptions opts;
        opts.generator.condition_bounds =
            testgen::ConditionBounds::fixed_nominal();
        opts.learner.training_tests = 40;
        opts.learner.committee.members = 2;
        opts.learner.committee.train.max_epochs = 40;
        opts.optimizer.ga.population.size = 8;
        opts.optimizer.ga.populations = 1;
        opts.optimizer.ga.max_generations = 4;
        opts.optimizer.nn_candidates = 60;
        return opts;
    }

    device::MemoryTestChip chip;
    ate::Tester tester;
};

TEST_F(ReportFixture, FullReportContainsEverySection) {
    const DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), options());
    util::Rng rng(6);
    const LearnResult learned = characterizer.learn(rng);
    const WorstCaseReport hunt = characterizer.optimize(learned.model, rng);
    DesignSpecVariation pooled = learned.dsv;
    if (hunt.worst_record.found) pooled.add(hunt.worst_record);
    const SpecProposal proposal =
        propose_spec(ate::Parameter::data_valid_time(), pooled);

    ReportInputs inputs;
    inputs.device_name = "unit-test-die";
    inputs.seed = 6;
    inputs.learned = &learned;
    inputs.hunt = &hunt;
    inputs.proposal = &proposal;
    inputs.ledger = &tester.log();

    const std::string text = render_report(inputs);
    EXPECT_NE(text.find("# Characterization report: unit-test-die"),
              std::string::npos);
    EXPECT_NE(text.find("## Learning (Fig. 4)"), std::string::npos);
    EXPECT_NE(text.find("## Worst-case hunt (Fig. 5)"), std::string::npos);
    EXPECT_NE(text.find("### Top"), std::string::npos);
    EXPECT_NE(text.find("## Specification proposal"), std::string::npos);
    EXPECT_NE(text.find("## Tester activity"), std::string::npos);
    EXPECT_NE(text.find("seed: 6"), std::string::npos);
}

TEST_F(ReportFixture, PartialInputsRenderPartialReport) {
    ReportInputs inputs;
    inputs.device_name = "bare";
    const std::string text = render_report(inputs);
    EXPECT_NE(text.find("# Characterization report: bare"),
              std::string::npos);
    EXPECT_EQ(text.find("## Learning"), std::string::npos);
    EXPECT_EQ(text.find("## Worst-case hunt"), std::string::npos);
}

TEST_F(ReportFixture, TopEntriesLimited) {
    const DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), options());
    util::Rng rng(8);
    const LearnResult learned = characterizer.learn(rng);
    const WorstCaseReport hunt = characterizer.optimize(learned.model, rng);

    ReportInputs inputs;
    inputs.hunt = &hunt;
    inputs.top_entries = 2;
    const std::string text = render_report(inputs);
    EXPECT_NE(text.find("### Top 2 worst-case tests"), std::string::npos);
}

TEST_F(ReportFixture, WriteReportStreams) {
    ReportInputs inputs;
    std::ostringstream out;
    write_report(out, inputs);
    EXPECT_FALSE(out.str().empty());
}

}  // namespace
}  // namespace cichar::core
