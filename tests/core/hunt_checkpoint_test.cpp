// Crash-safe hunt checkpointing: a hunt aborted mid-run (deterministic
// stand-in for SIGKILL) and resumed from its checkpoint blob must finish
// byte-identical to a hunt that was never interrupted — including live
// measurement counts, cache statistics, fault/policy counters, and the
// rendered report.
#include <string>

#include <gtest/gtest.h>

#include "ate/fault_injector.hpp"
#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

OptimizerOptions hunt_options(bool parallel) {
    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 2;
    opts.ga.max_generations = 8;
    opts.ga.stagnation_limit = 4;
    opts.ga.max_restarts = 2;
    opts.ga.migration_interval = 3;
    opts.parallel.enabled = parallel;
    opts.parallel.jobs = 2;
    opts.cache.enabled = true;
    return opts;
}

ate::FaultProfile mild_profile() {
    ate::FaultProfile profile;
    profile.transient_rate = 0.02;
    profile.transient_span_fraction = 0.2;
    profile.timeout_rate = 0.005;
    profile.seed = 7;
    return profile;
}

struct HuntLeg {
    WorstCaseReport report;
    std::string rendered;
    std::uint64_t applications = 0;
    std::string last_checkpoint;
};

HuntLeg run_leg(OptimizerOptions opts, bool faults,
                const std::string& resume_blob,
                std::size_t abort_after_generation) {
    HuntLeg leg;
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    ate::FaultInjector injector(faults ? mild_profile()
                                       : ate::FaultProfile::none());
    if (faults) {
        tester.attach_fault_injector(&injector);
        opts.trip.policy.enabled = true;
    }
    opts.checkpoint.resume_blob = resume_blob;
    opts.checkpoint.abort_after_generation = abort_after_generation;
    opts.checkpoint.save = [&leg](const std::string& blob) {
        leg.last_checkpoint = blob;
    };

    util::Rng rng(2005);
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const WorstCaseOptimizer optimizer(opts);
    leg.report = optimizer.run_unseeded(tester,
                                        ate::Parameter::data_valid_time(),
                                        generator,
                                        Objective::kDriftToMinimum, rng);
    ReportInputs inputs;
    inputs.seed = 2005;
    inputs.hunt = &leg.report;
    leg.rendered = render_report(inputs);
    leg.applications = tester.log().total().applications;
    return leg;
}

void expect_identical(const HuntLeg& resumed, const HuntLeg& reference) {
    EXPECT_EQ(resumed.report.outcome.best_fitness,
              reference.report.outcome.best_fitness);
    EXPECT_EQ(resumed.report.outcome.best.sequence,
              reference.report.outcome.best.sequence);
    EXPECT_EQ(resumed.report.outcome.best.condition,
              reference.report.outcome.best.condition);
    EXPECT_EQ(resumed.report.outcome.best.pattern_seed,
              reference.report.outcome.best.pattern_seed);
    EXPECT_EQ(resumed.report.outcome.evaluations,
              reference.report.outcome.evaluations);
    EXPECT_EQ(resumed.report.outcome.best_history,
              reference.report.outcome.best_history);
    EXPECT_EQ(resumed.report.worst_record.trip_point,
              reference.report.worst_record.trip_point);
    EXPECT_EQ(resumed.report.worst_record.measurements,
              reference.report.worst_record.measurements);
    EXPECT_EQ(resumed.report.ate_measurements,
              reference.report.ate_measurements);
    EXPECT_EQ(resumed.report.cache_stats.hits, reference.report.cache_stats.hits);
    EXPECT_EQ(resumed.report.cache_stats.misses,
              reference.report.cache_stats.misses);
    EXPECT_EQ(resumed.report.faults, reference.report.faults);
    EXPECT_EQ(resumed.report.injected, reference.report.injected);
    EXPECT_EQ(resumed.report.database.size(), reference.report.database.size());
    EXPECT_EQ(resumed.rendered, reference.rendered);
    EXPECT_EQ(resumed.applications, reference.applications);
}

TEST(HuntCheckpointTest, SerialKillAndResumeMatchesUninterrupted) {
    const OptimizerOptions opts = hunt_options(/*parallel=*/false);
    const HuntLeg reference = run_leg(opts, false, "", 0);
    EXPECT_FALSE(reference.report.aborted);
    EXPECT_FALSE(reference.last_checkpoint.empty());

    HuntLeg aborted = run_leg(opts, false, "", 3);
    EXPECT_TRUE(aborted.report.aborted);
    ASSERT_FALSE(aborted.last_checkpoint.empty());

    const HuntLeg resumed = run_leg(opts, false, aborted.last_checkpoint, 0);
    EXPECT_FALSE(resumed.report.aborted);
    expect_identical(resumed, reference);
}

TEST(HuntCheckpointTest, ParallelFaultedKillAndResumeMatchesUninterrupted) {
    const OptimizerOptions opts = hunt_options(/*parallel=*/true);
    const HuntLeg reference = run_leg(opts, true, "", 0);
    EXPECT_FALSE(reference.report.aborted);

    HuntLeg aborted = run_leg(opts, true, "", 4);
    EXPECT_TRUE(aborted.report.aborted);
    ASSERT_FALSE(aborted.last_checkpoint.empty());

    const HuntLeg resumed = run_leg(opts, true, aborted.last_checkpoint, 0);
    EXPECT_FALSE(resumed.report.aborted);
    expect_identical(resumed, reference);
    // The faulted leg really saw faults; the policy really intervened.
    EXPECT_GT(resumed.report.injected.measurements, 0u);
}

TEST(HuntCheckpointTest, AbortedReportIsPartial) {
    const HuntLeg aborted = run_leg(hunt_options(false), false, "", 2);
    EXPECT_TRUE(aborted.report.aborted);
    EXPECT_EQ(aborted.report.outcome.generations_run, 2u);
    // The final re-measure is skipped on abort.
    EXPECT_EQ(aborted.report.worst_record.measurements, 0u);
}

TEST(HuntCheckpointTest, ResumeRejectsMismatchedConfiguration) {
    const OptimizerOptions opts = hunt_options(false);
    HuntLeg aborted = run_leg(opts, false, "", 2);
    ASSERT_FALSE(aborted.last_checkpoint.empty());

    // Resuming a no-fault checkpoint into a faulted run must throw, not
    // silently mix states.
    EXPECT_THROW((void)run_leg(opts, true, aborted.last_checkpoint, 0),
                 std::runtime_error);
}

}  // namespace
}  // namespace cichar::core
