#include "core/model_io.hpp"

#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "device/memory_chip.hpp"

namespace cichar::core {
namespace {

LearnResult trained_model(fuzzy::CodingScheme coding,
                          ate::Tester& tester) {
    LearnerOptions opts;
    opts.training_tests = 50;
    opts.coding = coding;
    opts.committee.members = 2;
    opts.committee.hidden_layers = {8};
    opts.committee.train.max_epochs = 60;
    const CharacterizationLearner learner(opts);
    testgen::RandomGeneratorOptions gen;
    gen.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    util::Rng rng(42);
    return learner.run(tester, ate::Parameter::data_valid_time(),
                       testgen::RandomTestGenerator(gen), rng);
}

TEST(ModelIoTest, RoundTripPreservesPredictions) {
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    const LearnResult learned =
        trained_model(fuzzy::CodingScheme::kFuzzy, tester);

    std::stringstream stream;
    save_model(stream, learned.model);
    const LearnedModel loaded = load_model(stream);

    EXPECT_EQ(loaded.parameter().name, "T_DQ");
    EXPECT_EQ(loaded.coder().scheme(), fuzzy::CodingScheme::kFuzzy);
    EXPECT_EQ(loaded.committee().member_count(), 2u);

    const testgen::RandomTestGenerator gen(loaded.generator_options());
    util::Rng rng(9);
    for (int i = 0; i < 10; ++i) {
        const testgen::Test t = gen.random_test(rng);
        EXPECT_DOUBLE_EQ(learned.model.predict_wcr(t), loaded.predict_wcr(t));
    }
}

TEST(ModelIoTest, NumericCodingRoundTrip) {
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    const LearnResult learned =
        trained_model(fuzzy::CodingScheme::kNumeric, tester);
    std::stringstream stream;
    save_model(stream, learned.model);
    const LearnedModel loaded = load_model(stream);
    EXPECT_EQ(loaded.coder().scheme(), fuzzy::CodingScheme::kNumeric);
    EXPECT_EQ(loaded.coder().output_count(), 1u);
}

TEST(ModelIoTest, GeneratorContextPreserved) {
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    const LearnResult learned =
        trained_model(fuzzy::CodingScheme::kFuzzy, tester);
    std::stringstream stream;
    save_model(stream, learned.model);
    const LearnedModel loaded = load_model(stream);
    const auto& b = loaded.generator_options().condition_bounds;
    EXPECT_DOUBLE_EQ(b.vdd_min, 1.8);  // fixed_nominal collapsed bounds
    EXPECT_DOUBLE_EQ(b.vdd_max, 1.8);
    EXPECT_EQ(loaded.generator_options().min_cycles, 100u);
    EXPECT_EQ(loaded.generator_options().max_cycles, 1000u);
}

TEST(ModelIoTest, MalformedInputsThrow) {
    std::stringstream bad("nope");
    EXPECT_THROW((void)load_model(bad), std::runtime_error);
    std::stringstream bad_coding(
        "cichar-learned-model 1\n"
        "parameter T_DQ ns 0 20 0 1 15 45 0.1\n"
        "coding hexagonal\n");
    EXPECT_THROW((void)load_model(bad_coding), std::runtime_error);
    std::stringstream truncated(
        "cichar-learned-model 1\n"
        "parameter T_DQ ns 0 20 0 1 15 45 0.1\n"
        "coding fuzzy\ngenerator 100 1000\n");
    EXPECT_THROW((void)load_model(truncated), std::runtime_error);
}

TEST(ModelIoTest, FileRoundTrip) {
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    const LearnResult learned =
        trained_model(fuzzy::CodingScheme::kFuzzy, tester);
    const std::string path = ::testing::TempDir() + "/cichar_model_test.model";
    save_model_file(path, learned.model);
    const LearnedModel loaded = load_model_file(path);
    EXPECT_EQ(loaded.parameter().spec, 20.0);
    std::remove(path.c_str());
}

TEST(ModelIoTest, LoadedModelDrivesOptimizer) {
    // The paper's split-session flow: persist after learning, reload, and
    // run the optimization phase from the file alone.
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    const LearnResult learned =
        trained_model(fuzzy::CodingScheme::kFuzzy, tester);
    std::stringstream stream;
    save_model(stream, learned.model);
    const LearnedModel loaded = load_model(stream);

    OptimizerOptions opts;
    opts.ga.population.size = 10;
    opts.ga.populations = 1;
    opts.ga.max_generations = 4;
    opts.nn_candidates = 100;
    opts.nn_seed_count = 4;
    const WorstCaseOptimizer optimizer(opts);
    util::Rng rng(5);
    const WorstCaseReport report =
        optimizer.run(tester, loaded.parameter(), loaded,
                      Objective::kDriftToMinimum, rng);
    EXPECT_TRUE(report.worst_record.found);
    EXPECT_GT(report.outcome.best_fitness, 0.6);
}

}  // namespace
}  // namespace cichar::core
