#include "testgen/features.hpp"

#include <gtest/gtest.h>

#include "testgen/address_map.hpp"

namespace cichar::testgen {
namespace {

TEST(FeaturesTest, EmptyPatternAllZero) {
    const FeatureVector fv = extract_pattern_features(TestPattern{});
    for (std::size_t i = 0; i < kPatternFeatureCount; ++i) {
        EXPECT_EQ(fv[i], 0.0) << FeatureVector::name(i);
    }
}

TEST(FeaturesTest, AllFeaturesInUnitInterval) {
    TestPattern p("mixed");
    for (std::uint32_t i = 0; i < 64; ++i) {
        if (i % 3 == 0) {
            p.write(i * 37 % AddressMap::kWords,
                    static_cast<std::uint16_t>(i * 0x1357));
        } else if (i % 3 == 1) {
            p.read(i * 91 % AddressMap::kWords, i % 2 == 0);
        } else {
            p.nop();
        }
    }
    const FeatureVector fv = extract_pattern_features(p);
    for (std::size_t i = 0; i < kPatternFeatureCount; ++i) {
        EXPECT_GE(fv[i], 0.0) << FeatureVector::name(i);
        EXPECT_LE(fv[i], 1.0) << FeatureVector::name(i);
    }
}

TEST(FeaturesTest, ToggleDensityFullForComplementWrites) {
    TestPattern p("toggle");
    for (int i = 0; i < 32; ++i) {
        p.write(0, i % 2 == 0 ? std::uint16_t{0x0000} : std::uint16_t{0xFFFF});
    }
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kToggleDensity], 1.0);
}

TEST(FeaturesTest, ToggleDensityZeroForConstantWrites) {
    TestPattern p("const");
    for (int i = 0; i < 32; ++i) p.write(0, 0x1234);
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kToggleDensity], 0.0);
}

TEST(FeaturesTest, AlternatingDataDetected) {
    TestPattern p("alt");
    for (int i = 0; i < 16; ++i) {
        p.write(0, i % 2 == 0 ? std::uint16_t{0x5555} : std::uint16_t{0xAAAA});
    }
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kAlternatingData], 1.0);
    // 0x5555 <-> 0xAAAA flips every bit: toggle density is also 1.
    EXPECT_DOUBLE_EQ(fv[kToggleDensity], 1.0);
}

TEST(FeaturesTest, BankConflictDetected) {
    TestPattern p("conflict");
    // Same bank (0), alternating rows: every transition is a conflict.
    for (std::uint32_t i = 0; i < 32; ++i) {
        p.read(AddressMap::compose(0, i % 2 == 0 ? 3 : 9, 0));
    }
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kBankConflictRate], 1.0);
    EXPECT_DOUBLE_EQ(fv[kRowLocality], 0.0);
}

TEST(FeaturesTest, RowLocalityDetected) {
    TestPattern p("local");
    // Same bank and row, hopping columns only.
    for (std::uint32_t i = 0; i < 32; ++i) {
        p.read(AddressMap::compose(1, 5, i % AddressMap::kColumns));
    }
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kRowLocality], 1.0);
    EXPECT_DOUBLE_EQ(fv[kBankConflictRate], 0.0);
}

TEST(FeaturesTest, ReadWriteFractions) {
    TestPattern p("rw");
    for (int i = 0; i < 10; ++i) p.read(0);
    for (int i = 0; i < 30; ++i) p.write(0, 0);
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kReadFraction], 0.25);
    EXPECT_DOUBLE_EQ(fv[kWriteFraction], 0.75);
}

TEST(FeaturesTest, RwSwitchRateAlternating) {
    TestPattern p("switch");
    for (int i = 0; i < 20; ++i) {
        if (i % 2 == 0) {
            p.write(0, 0);
        } else {
            p.read(0);
        }
    }
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kRwSwitchRate], 1.0);
}

TEST(FeaturesTest, NopsBreakNothingButCountInDenominator) {
    TestPattern p("nops");
    p.write(0, 0);
    p.nop();
    p.nop();
    p.write(0, 0);
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kWriteFraction], 0.5);
}

TEST(FeaturesTest, ControlActivityCountsToggles) {
    TestPattern p("ctl");
    // write() asserts CE and deasserts OE; read() asserts OE: the OE line
    // toggles on every write<->read boundary.
    p.write(0, 0);
    p.read(0);
    p.write(0, 0);
    p.read(0);
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_NEAR(fv[kControlActivity], 3.0 / 4.0, 1e-12);
}

TEST(FeaturesTest, BurstinessCountsBurstFlags) {
    TestPattern p("burst");
    p.read(0, false);
    p.read(1, true);
    p.read(2, true);
    p.read(3, false);
    const FeatureVector fv = extract_pattern_features(p);
    EXPECT_DOUBLE_EQ(fv[kBurstiness], 0.5);
}

TEST(FeaturesTest, ConditionNormalization) {
    cichar::testgen::Test t;
    t.pattern.write(0, 0);
    ConditionBounds bounds;  // vdd 1.4..2.2
    t.conditions.vdd_volts = 1.8;
    t.conditions.temperature_c = bounds.temperature_min;
    t.conditions.clock_period_ns = bounds.clock_period_max_ns;
    t.conditions.output_load_pf = 30.0;
    const FeatureVector fv = extract_features(t, bounds);
    EXPECT_NEAR(fv[kVddNorm], 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(fv[kTemperatureNorm], 0.0);
    EXPECT_DOUBLE_EQ(fv[kClockPeriodNorm], 1.0);
    EXPECT_NEAR(fv[kOutputLoadNorm], 0.5, 1e-12);
}

TEST(FeaturesTest, CollapsedBoundsMapToHalf) {
    cichar::testgen::Test t;
    t.pattern.write(0, 0);
    const FeatureVector fv =
        extract_features(t, ConditionBounds::fixed_nominal());
    EXPECT_DOUBLE_EQ(fv[kVddNorm], 0.5);
    EXPECT_DOUBLE_EQ(fv[kTemperatureNorm], 0.5);
}

TEST(FeaturesTest, NamesExist) {
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
        EXPECT_NE(FeatureVector::name(i), "unknown");
    }
    EXPECT_EQ(FeatureVector::name(kFeatureCount), "unknown");
}

TEST(FeaturesTest, DeterministicForSamePattern) {
    TestPattern p("det");
    for (std::uint32_t i = 0; i < 100; ++i) {
        p.write(i * 7 % AddressMap::kWords,
                static_cast<std::uint16_t>(i * 31));
    }
    const FeatureVector a = extract_pattern_features(p);
    const FeatureVector b = extract_pattern_features(p);
    EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace cichar::testgen
