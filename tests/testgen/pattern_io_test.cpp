#include "testgen/pattern_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "testgen/march.hpp"
#include "testgen/random_gen.hpp"
#include "util/rng.hpp"

namespace cichar::testgen {
namespace {

TestPattern sample_pattern() {
    TestPattern p("sample pattern");  // space exercises name escaping
    p.write(0x01F, 0x5555);
    p.read(0x01F, /*burst=*/true);
    p.nop();
    p.write(0xFFF, 0xABCD);
    return p;
}

TEST(PatternIoTest, RoundTripExact) {
    const TestPattern original = sample_pattern();
    std::stringstream stream;
    save_pattern(stream, original);
    const TestPattern loaded = load_pattern(stream);
    EXPECT_EQ(original, loaded);
    EXPECT_EQ(loaded.name(), "sample pattern");
}

TEST(PatternIoTest, RandomPatternRoundTrip) {
    RandomTestGenerator gen;
    util::Rng rng(1);
    const PatternRecipe recipe = gen.random_recipe(rng);
    const TestPattern original = gen.expand(recipe, "rnd");
    std::stringstream stream;
    save_pattern(stream, original);
    EXPECT_EQ(load_pattern(stream), original);
}

TEST(PatternIoTest, MarchPatternRoundTrip) {
    const TestPattern original = mats_plus().expand();
    std::stringstream stream;
    save_pattern(stream, original);
    EXPECT_EQ(load_pattern(stream), original);
}

TEST(PatternIoTest, EmptyPatternRoundTrip) {
    TestPattern empty("empty");
    std::stringstream stream;
    save_pattern(stream, empty);
    const TestPattern loaded = load_pattern(stream);
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.name(), "empty");
}

TEST(PatternIoTest, FormatIsHumanReadable) {
    std::stringstream stream;
    save_pattern(stream, sample_pattern());
    const std::string text = stream.str();
    EXPECT_NE(text.find("cichar-pattern 1"), std::string::npos);
    EXPECT_NE(text.find("WR 0x01F 0x5555 1 0 0"), std::string::npos);
    EXPECT_NE(text.find("RD 0x01F 0x0000 1 1 1"), std::string::npos);
    EXPECT_NE(text.find("NOP"), std::string::npos);
    EXPECT_NE(text.find("sample%20pattern"), std::string::npos);
}

TEST(PatternIoTest, CommentsAndBlankLinesIgnored) {
    std::stringstream stream(
        "cichar-pattern 1\nname x\ncycles 1\n"
        "# a comment\n\nWR 0x001 0x0001 1 0 0\n");
    const TestPattern p = load_pattern(stream);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].data, 0x0001);
}

TEST(PatternIoTest, BadMagicThrows) {
    std::stringstream stream("not-a-pattern 1\n");
    EXPECT_THROW((void)load_pattern(stream), std::runtime_error);
}

TEST(PatternIoTest, TruncatedThrows) {
    std::stringstream stream(
        "cichar-pattern 1\nname x\ncycles 3\nWR 0x001 0x0001 1 0 0\n");
    EXPECT_THROW((void)load_pattern(stream), std::runtime_error);
}

TEST(PatternIoTest, BadOpThrows) {
    std::stringstream stream(
        "cichar-pattern 1\nname x\ncycles 1\nZAP 0x001 0x0001 1 0 0\n");
    EXPECT_THROW((void)load_pattern(stream), std::runtime_error);
}

TEST(PatternIoTest, BadNumberThrows) {
    std::stringstream stream(
        "cichar-pattern 1\nname x\ncycles 1\nWR zz 0x0001 1 0 0\n");
    EXPECT_THROW((void)load_pattern(stream), std::runtime_error);
}

TEST(PatternIoTest, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/cichar_pattern_test.pat";
    save_pattern_file(path, sample_pattern());
    EXPECT_EQ(load_pattern_file(path), sample_pattern());
    std::remove(path.c_str());
}

TEST(PatternIoTest, MissingFileThrows) {
    EXPECT_THROW((void)load_pattern_file("/nonexistent/p.pat"),
                 std::ios_base::failure);
}

}  // namespace
}  // namespace cichar::testgen
