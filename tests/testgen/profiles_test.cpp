#include "testgen/profiles.hpp"

#include <gtest/gtest.h>

#include <set>

#include "device/memory_chip.hpp"
#include "testgen/features.hpp"
#include "testgen/random_gen.hpp"

namespace cichar::testgen {
namespace {

TEST(ProfilesTest, AllPresentWithUniqueNames) {
    const auto profiles = all_profiles();
    EXPECT_EQ(profiles.size(), 5u);
    std::set<std::string> names;
    for (const TrafficProfile& p : profiles) names.insert(p.name);
    EXPECT_EQ(names.size(), profiles.size());
}

TEST(ProfilesTest, RecipesWithinGeneratorBounds) {
    const RandomTestGenerator gen;
    for (const TrafficProfile& p : all_profiles()) {
        EXPECT_GE(p.recipe.cycles, gen.options().min_cycles) << p.name;
        EXPECT_LE(p.recipe.cycles, gen.options().max_cycles) << p.name;
        EXPECT_GE(p.recipe.write_fraction, 0.0) << p.name;
        EXPECT_LE(p.recipe.write_fraction, 1.0) << p.name;
        EXPECT_LE(p.recipe.alternating_data_bias + p.recipe.solid_data_bias +
                      p.recipe.toggle_bias,
                  1.0 + 1e-12)
            << p.name;
    }
}

TEST(ProfilesTest, ExpansionDeterministic) {
    const RandomTestGenerator gen;
    for (const TrafficProfile& p : all_profiles()) {
        EXPECT_EQ(gen.expand(p.recipe, p.name), gen.expand(p.recipe, p.name))
            << p.name;
    }
}

TEST(ProfilesTest, ProfilesMatchTheirCharacter) {
    const RandomTestGenerator gen;
    const auto features_of = [&](const TrafficProfile& p) {
        return extract_pattern_features(gen.expand(p.recipe, p.name));
    };
    const FeatureVector fetch = features_of(profile_code_fetch());
    const FeatureVector packet = features_of(profile_packet_buffer());
    const FeatureVector frame = features_of(profile_framebuffer());
    const FeatureVector control = features_of(profile_control_plane());

    // Code fetch: read-dominated, long bursts, few conflicts.
    EXPECT_GT(fetch[kReadFraction], 0.8);
    EXPECT_GT(fetch[kBurstiness], 0.6);
    EXPECT_LT(fetch[kBankConflictRate], packet[kBankConflictRate]);
    // Packet buffer: bank interleaving pressure.
    EXPECT_GT(packet[kBankConflictRate], 0.2);
    // Framebuffer: write-dominated.
    EXPECT_GT(frame[kWriteFraction], 0.6);
    // Control plane: the noisiest control signals.
    EXPECT_GT(control[kControlActivity], fetch[kControlActivity]);
}

TEST(ProfilesTest, StressOrderingOnDevice) {
    // Packet-buffer style traffic (conflicts + turnarounds) must stress
    // the device more than sequential code fetch.
    device::MemoryChipOptions chip_opts;
    chip_opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_opts);
    const RandomTestGenerator gen;
    const auto tdq_of = [&](const TrafficProfile& p) {
        const testgen::Test t = gen.make_test(p.recipe, {}, p.name);
        return chip.true_parameter(t, device::ParameterKind::kDataValidTime);
    };
    EXPECT_LT(tdq_of(profile_packet_buffer()), tdq_of(profile_code_fetch()));
    // And none of the realistic profiles reaches the adversarial pocket.
    for (const TrafficProfile& p : all_profiles()) {
        EXPECT_GT(tdq_of(p), 25.0) << p.name;
    }
}

}  // namespace
}  // namespace cichar::testgen
