#include "testgen/march.hpp"

#include <gtest/gtest.h>

#include "testgen/address_map.hpp"

namespace cichar::testgen {
namespace {

constexpr std::uint32_t kWords = AddressMap::kWords;

TEST(MarchTest, MarchCMinusComplexity) {
    const MarchAlgorithm algo = march_c_minus();
    EXPECT_EQ(algo.ops_per_address(), 10u);  // the classical 10N
    const TestPattern p = algo.expand();
    EXPECT_EQ(p.size(), 10u * kWords);
    EXPECT_EQ(p.name(), "MarchC-");
}

TEST(MarchTest, MatsPlusComplexity) {
    EXPECT_EQ(mats_plus().ops_per_address(), 5u);
    EXPECT_EQ(mats_plus().expand().size(), 5u * kWords);
}

TEST(MarchTest, MarchXComplexity) {
    EXPECT_EQ(march_x().ops_per_address(), 6u);
}

TEST(MarchTest, MarchYComplexity) {
    EXPECT_EQ(march_y().ops_per_address(), 8u);
}

TEST(MarchTest, MarchBComplexity) {
    EXPECT_EQ(march_b().ops_per_address(), 17u);  // the classical 17N
    EXPECT_EQ(march_b().expand().size(),
              17u * AddressMap::kWords);
}

TEST(MarchTest, FirstElementWritesBackgroundEverywhere) {
    const TestPattern p = march_c_minus().expand(0x00FF);
    for (std::uint32_t i = 0; i < kWords; ++i) {
        EXPECT_EQ(p[i].op, BusOp::kWrite);
        EXPECT_EQ(p[i].data, 0x00FF);
        EXPECT_EQ(p[i].address, i);  // ascending order
    }
}

TEST(MarchTest, SecondElementReadsThenWritesComplement) {
    const TestPattern p = march_c_minus().expand(0x0000);
    // Element 2 starts at offset kWords: (r0, w1) per address ascending.
    const std::size_t base = kWords;
    EXPECT_EQ(p[base].op, BusOp::kRead);
    EXPECT_EQ(p[base].address, 0u);
    EXPECT_EQ(p[base + 1].op, BusOp::kWrite);
    EXPECT_EQ(p[base + 1].data, 0xFFFF);
    EXPECT_EQ(p[base + 1].address, 0u);
}

TEST(MarchTest, DescendingElementsDescend) {
    const TestPattern p = march_c_minus().expand();
    // Element 4 (index 3) is descending (r0, w1); it begins after
    // elements of sizes N, 2N, 2N.
    const std::size_t base = kWords + 2 * kWords + 2 * kWords;
    EXPECT_EQ(p[base].address, kWords - 1);
    EXPECT_EQ(p[base + 2].address, kWords - 2);
}

TEST(MarchTest, EveryAddressTouchedByEachElement) {
    const TestPattern p = mats_plus().expand();
    std::vector<int> touched(kWords, 0);
    for (std::uint32_t i = 0; i < kWords; ++i) {
        ++touched[p[i].address];  // first element
    }
    for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(CheckerboardTest, SizeAndPhases) {
    const TestPattern p = checkerboard();
    EXPECT_EQ(p.size(), 4u * kWords);
    // First phase writes then reads.
    EXPECT_EQ(p[0].op, BusOp::kWrite);
    EXPECT_EQ(p[kWords].op, BusOp::kRead);
}

TEST(CheckerboardTest, AdjacentCellsOpposite) {
    const TestPattern p = checkerboard();
    // Two row-adjacent addresses in the same bank/column have opposite
    // checkerboard words.
    const std::uint32_t a = AddressMap::compose(0, 0, 0);
    const std::uint32_t b = AddressMap::compose(0, 1, 0);
    const std::uint16_t wa = p[a].data;
    const std::uint16_t wb = p[b].data;
    EXPECT_EQ(static_cast<std::uint16_t>(wa ^ wb), 0xFFFF);
}

TEST(CheckerboardTest, SecondPhaseInverted) {
    const TestPattern p = checkerboard();
    const std::uint32_t a = AddressMap::compose(0, 0, 0);
    const std::uint16_t first = p[a].data;
    const std::uint16_t second = p[2 * kWords + a].data;
    EXPECT_EQ(static_cast<std::uint16_t>(first ^ second), 0xFFFF);
}

TEST(DeterministicSuiteTest, AllPresentAndNamed) {
    const auto suite = deterministic_suite();
    ASSERT_EQ(suite.size(), 6u);
    EXPECT_EQ(suite[0].name(), "MarchC-");
    EXPECT_EQ(suite[1].name(), "MATS+");
    EXPECT_EQ(suite[2].name(), "MarchX");
    EXPECT_EQ(suite[3].name(), "MarchY");
    EXPECT_EQ(suite[4].name(), "MarchB");
    EXPECT_EQ(suite[5].name(), "Checkerboard");
    for (const TestPattern& p : suite) EXPECT_FALSE(p.empty());
}

TEST(MarchTest, ExpansionDeterministic) {
    EXPECT_EQ(march_c_minus().expand(), march_c_minus().expand());
}

}  // namespace
}  // namespace cichar::testgen
