#include "testgen/pattern.hpp"

#include <gtest/gtest.h>

#include "testgen/address_map.hpp"
#include "testgen/conditions.hpp"
#include "testgen/test.hpp"

namespace cichar::testgen {
namespace {

TEST(VectorCycleTest, Equality) {
    VectorCycle a{.address = 1, .data = 2, .op = BusOp::kWrite};
    VectorCycle b = a;
    EXPECT_EQ(a, b);
    b.data = 3;
    EXPECT_NE(a, b);
}

TEST(BusOpTest, Names) {
    EXPECT_STREQ(to_string(BusOp::kNop), "NOP");
    EXPECT_STREQ(to_string(BusOp::kRead), "RD");
    EXPECT_STREQ(to_string(BusOp::kWrite), "WR");
}

TEST(TestPatternTest, BuildersSetFields) {
    TestPattern p("demo");
    p.write(5, 0xABCD);
    p.read(6);
    p.nop();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].op, BusOp::kWrite);
    EXPECT_EQ(p[0].address, 5u);
    EXPECT_EQ(p[0].data, 0xABCD);
    EXPECT_FALSE(p[0].output_enable);
    EXPECT_EQ(p[1].op, BusOp::kRead);
    EXPECT_TRUE(p[1].output_enable);
    EXPECT_EQ(p[2].op, BusOp::kNop);
    EXPECT_FALSE(p[2].chip_enable);
}

TEST(TestPatternTest, AppendConcatenates) {
    TestPattern a("a");
    a.write(1, 1);
    TestPattern b("b");
    b.read(2);
    b.read(3);
    a.append(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[1].address, 2u);
    EXPECT_EQ(a.name(), "a");
}

TEST(TestPatternTest, EqualityIncludesCycles) {
    TestPattern a("x");
    a.write(1, 2);
    TestPattern b("x");
    b.write(1, 2);
    EXPECT_EQ(a, b);
    b.read(0);
    EXPECT_NE(a, b);
}

TEST(TestPatternTest, BurstFlagPreserved) {
    TestPattern p("burst");
    p.read(0, /*burst=*/true);
    EXPECT_TRUE(p[0].burst);
}

TEST(AddressMapTest, RoundTrip) {
    for (std::uint32_t bank = 0; bank < AddressMap::kBanks; ++bank) {
        for (std::uint32_t row : {0u, 31u, AddressMap::kRows - 1}) {
            for (std::uint32_t col : {0u, AddressMap::kColumns - 1}) {
                const std::uint32_t a = AddressMap::compose(bank, row, col);
                EXPECT_EQ(AddressMap::bank_of(a), bank);
                EXPECT_EQ(AddressMap::row_of(a), row);
                EXPECT_EQ(AddressMap::column_of(a), col);
                EXPECT_LT(a, AddressMap::kWords);
            }
        }
    }
}

TEST(AddressMapTest, WrapStaysInRange) {
    EXPECT_EQ(AddressMap::wrap(AddressMap::kWords), 0u);
    EXPECT_EQ(AddressMap::wrap(AddressMap::kWords + 5), 5u);
}

TEST(AddressMapTest, SizesConsistent) {
    EXPECT_EQ(AddressMap::kWords,
              AddressMap::kBanks * AddressMap::kRows * AddressMap::kColumns);
}

TEST(MakeTestTest, NameFromPattern) {
    TestPattern p("named-pattern");
    p.write(0, 0);
    const testgen::Test t = make_test(std::move(p));
    EXPECT_EQ(t.name, "named-pattern");
    EXPECT_EQ(t.pattern.size(), 1u);
    EXPECT_DOUBLE_EQ(t.conditions.vdd_volts, 1.8);
}

TEST(ConditionBoundsTest, DecodeEncodesRoundTrip) {
    ConditionBounds bounds;
    const TestConditions c = bounds.decode(0.25, 0.5, 0.75, 1.0);
    double g0 = 0.0;
    double g1 = 0.0;
    double g2 = 0.0;
    double g3 = 0.0;
    bounds.encode(c, g0, g1, g2, g3);
    EXPECT_NEAR(g0, 0.25, 1e-12);
    EXPECT_NEAR(g1, 0.5, 1e-12);
    EXPECT_NEAR(g2, 0.75, 1e-12);
    EXPECT_NEAR(g3, 1.0, 1e-12);
}

TEST(ConditionBoundsTest, DecodeClampsGenes) {
    ConditionBounds bounds;
    const TestConditions lo = bounds.decode(-1.0, -1.0, -1.0, -1.0);
    EXPECT_DOUBLE_EQ(lo.vdd_volts, bounds.vdd_min);
    const TestConditions hi = bounds.decode(2.0, 2.0, 2.0, 2.0);
    EXPECT_DOUBLE_EQ(hi.vdd_volts, bounds.vdd_max);
}

TEST(ConditionBoundsTest, FixedNominalCollapses) {
    const ConditionBounds b = ConditionBounds::fixed_nominal();
    const TestConditions a = b.decode(0.0, 0.0, 0.0, 0.0);
    const TestConditions z = b.decode(1.0, 1.0, 1.0, 1.0);
    EXPECT_EQ(a, z);
    EXPECT_DOUBLE_EQ(a.vdd_volts, 1.8);
    EXPECT_DOUBLE_EQ(a.temperature_c, 25.0);
}

TEST(ConditionBoundsTest, EncodeDegenerateBoundIsZero) {
    const ConditionBounds b = ConditionBounds::fixed_nominal();
    double g0 = 9.0;
    double g1 = 9.0;
    double g2 = 9.0;
    double g3 = 9.0;
    b.encode(TestConditions{}, g0, g1, g2, g3);
    EXPECT_EQ(g0, 0.0);  // collapsed range: defined as 0
}

}  // namespace
}  // namespace cichar::testgen
