#include "testgen/random_gen.hpp"

#include <gtest/gtest.h>

#include "testgen/features.hpp"

namespace cichar::testgen {
namespace {

TEST(RecipeTest, DecodeClampsAndRanges) {
    std::array<double, kSequenceGeneCount> genes{};
    genes.fill(0.0);
    const PatternRecipe lo = PatternRecipe::decode(genes, 100, 1000);
    EXPECT_EQ(lo.cycles, 100u);
    EXPECT_DOUBLE_EQ(lo.write_fraction, 0.0);
    EXPECT_DOUBLE_EQ(lo.burst_length, 1.0);

    genes.fill(1.0);
    const PatternRecipe hi = PatternRecipe::decode(genes, 100, 1000);
    EXPECT_EQ(hi.cycles, 1000u);
    EXPECT_DOUBLE_EQ(hi.burst_length, 16.0);
    // Data-mode shares renormalized to sum <= 1.
    EXPECT_LE(hi.alternating_data_bias + hi.solid_data_bias + hi.toggle_bias,
              1.0 + 1e-12);
}

TEST(RecipeTest, DecodeOutOfRangeGenesClamped) {
    std::array<double, kSequenceGeneCount> genes{};
    genes.fill(5.0);
    const PatternRecipe r = PatternRecipe::decode(genes, 100, 1000);
    EXPECT_EQ(r.cycles, 1000u);
    genes.fill(-5.0);
    const PatternRecipe r2 = PatternRecipe::decode(genes, 100, 1000);
    EXPECT_EQ(r2.cycles, 100u);
}

TEST(RecipeTest, EncodeDecodeRoundTrip) {
    PatternRecipe r;
    r.cycles = 500;
    r.write_fraction = 0.4;
    r.nop_fraction = 0.12;
    r.burst_length = 7.0;
    r.row_locality = 0.3;
    r.bank_conflict_bias = 0.25;
    r.alternating_data_bias = 0.2;
    r.solid_data_bias = 0.1;
    r.toggle_bias = 0.3;
    r.control_activity = 0.05;
    const auto genes = r.encode(100, 1000);
    const PatternRecipe back = PatternRecipe::decode(genes, 100, 1000);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_NEAR(back.write_fraction, r.write_fraction, 1e-9);
    EXPECT_NEAR(back.nop_fraction, r.nop_fraction, 1e-9);
    EXPECT_NEAR(back.burst_length, r.burst_length, 1e-9);
    EXPECT_NEAR(back.toggle_bias, r.toggle_bias, 1e-9);
}

TEST(RecipeTest, DescribeMentionsFields) {
    PatternRecipe r;
    r.cycles = 321;
    const std::string d = r.describe();
    EXPECT_NE(d.find("cycles=321"), std::string::npos);
    EXPECT_NE(d.find("seed="), std::string::npos);
}

TEST(RandomGenTest, CycleCountWithinPaperBounds) {
    RandomTestGenerator gen;
    util::Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const testgen::Test t = gen.random_test(rng);
        EXPECT_GE(t.pattern.size(), 100u);
        EXPECT_LE(t.pattern.size(), 1000u);
    }
}

TEST(RandomGenTest, ExpansionDeterministicForRecipe) {
    RandomTestGenerator gen;
    util::Rng rng(2);
    const PatternRecipe recipe = gen.random_recipe(rng);
    const TestPattern a = gen.expand(recipe);
    const TestPattern b = gen.expand(recipe);
    EXPECT_EQ(a, b);
}

TEST(RandomGenTest, DifferentSeedsDifferentPatterns) {
    RandomTestGenerator gen;
    util::Rng rng(3);
    PatternRecipe recipe = gen.random_recipe(rng);
    const TestPattern a = gen.expand(recipe);
    recipe.seed ^= 0xDEADBEEF;
    const TestPattern b = gen.expand(recipe);
    EXPECT_NE(a, b);
}

TEST(RandomGenTest, ConditionsWithinBounds) {
    RandomTestGenerator gen;
    util::Rng rng(4);
    const ConditionBounds& b = gen.options().condition_bounds;
    for (int i = 0; i < 100; ++i) {
        const TestConditions c = gen.random_conditions(rng);
        EXPECT_GE(c.vdd_volts, b.vdd_min);
        EXPECT_LE(c.vdd_volts, b.vdd_max);
        EXPECT_GE(c.temperature_c, b.temperature_min);
        EXPECT_LE(c.temperature_c, b.temperature_max);
    }
}

TEST(RandomGenTest, WriteFractionControlsWrites) {
    RandomGeneratorOptions opts;
    RandomTestGenerator gen(opts);
    PatternRecipe r;
    r.cycles = 1000;
    r.nop_fraction = 0.0;
    r.write_fraction = 1.0;
    r.seed = 5;
    const FeatureVector all_writes =
        extract_pattern_features(gen.expand(r));
    EXPECT_GT(all_writes[kWriteFraction], 0.99);

    r.write_fraction = 0.0;
    const FeatureVector all_reads = extract_pattern_features(gen.expand(r));
    EXPECT_GT(all_reads[kReadFraction], 0.99);
}

TEST(RandomGenTest, NopFractionRespected) {
    RandomTestGenerator gen;
    PatternRecipe r;
    r.cycles = 1000;
    r.nop_fraction = 0.3;
    r.seed = 6;
    const TestPattern p = gen.expand(r);
    std::size_t nops = 0;
    for (const VectorCycle& vc : p.cycles()) {
        if (vc.op == BusOp::kNop) ++nops;
    }
    EXPECT_NEAR(static_cast<double>(nops) / 1000.0, 0.3, 0.06);
}

TEST(RandomGenTest, BankConflictBiasRaisesConflicts) {
    RandomTestGenerator gen;
    PatternRecipe calm;
    calm.cycles = 1000;
    calm.bank_conflict_bias = 0.0;
    calm.row_locality = 0.0;
    calm.burst_length = 1.0;
    calm.seed = 7;
    PatternRecipe hot = calm;
    hot.bank_conflict_bias = 0.95;
    const double calm_rate =
        extract_pattern_features(gen.expand(calm))[kBankConflictRate];
    const double hot_rate =
        extract_pattern_features(gen.expand(hot))[kBankConflictRate];
    EXPECT_GT(hot_rate, calm_rate + 0.3);
}

TEST(RandomGenTest, RowLocalityRaisesLocality) {
    RandomTestGenerator gen;
    PatternRecipe base;
    base.cycles = 1000;
    base.row_locality = 0.0;
    base.burst_length = 1.0;
    base.seed = 8;
    PatternRecipe local = base;
    local.row_locality = 0.95;
    const double lo = extract_pattern_features(gen.expand(base))[kRowLocality];
    const double hi = extract_pattern_features(gen.expand(local))[kRowLocality];
    EXPECT_GT(hi, lo + 0.3);
}

TEST(RandomGenTest, BurstLengthRaisesBurstiness) {
    RandomTestGenerator gen;
    PatternRecipe base;
    base.cycles = 1000;
    base.burst_length = 1.0;
    base.seed = 9;
    PatternRecipe bursty = base;
    bursty.burst_length = 12.0;
    const double lo = extract_pattern_features(gen.expand(base))[kBurstiness];
    const double hi = extract_pattern_features(gen.expand(bursty))[kBurstiness];
    EXPECT_GT(hi, lo + 0.4);
}

TEST(RandomGenTest, ToggleChainLocksIntoAlternating) {
    // toggle_bias with occasional alternating writes locks the data chain
    // into {0x5555, 0xAAAA}: both toggle density and the alternating
    // fraction end up high (the worst-case pocket entrance).
    RandomTestGenerator gen;
    PatternRecipe r;
    r.cycles = 1000;
    r.write_fraction = 0.7;
    r.nop_fraction = 0.0;
    r.toggle_bias = 0.65;
    r.alternating_data_bias = 0.3;
    r.solid_data_bias = 0.0;
    r.seed = 10;
    const FeatureVector fv = extract_pattern_features(gen.expand(r));
    EXPECT_GT(fv[kToggleDensity], 0.7);
    EXPECT_GT(fv[kAlternatingData], 0.7);
}

TEST(RandomGenTest, MakeTestCarriesNameAndConditions) {
    RandomTestGenerator gen;
    PatternRecipe r;
    r.cycles = 200;
    r.seed = 11;
    TestConditions c;
    c.vdd_volts = 2.0;
    const testgen::Test t = gen.make_test(r, c, "my-test");
    EXPECT_EQ(t.name, "my-test");
    EXPECT_EQ(t.pattern.name(), "my-test");
    EXPECT_DOUBLE_EQ(t.conditions.vdd_volts, 2.0);
    EXPECT_EQ(t.pattern.size(), 200u);
}

TEST(RandomGenTest, CustomCycleBounds) {
    RandomGeneratorOptions opts;
    opts.min_cycles = 50;
    opts.max_cycles = 60;
    RandomTestGenerator gen(opts);
    util::Rng rng(12);
    for (int i = 0; i < 20; ++i) {
        const testgen::Test t = gen.random_test(rng);
        EXPECT_GE(t.pattern.size(), 50u);
        EXPECT_LE(t.pattern.size(), 60u);
    }
}

}  // namespace
}  // namespace cichar::testgen
