#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cichar::nn {
namespace {

Dataset xor_dataset() {
    Dataset data(2, 1);
    data.add({0.0, 0.0}, {0.0});
    data.add({0.0, 1.0}, {1.0});
    data.add({1.0, 0.0}, {1.0});
    data.add({1.0, 1.0}, {0.0});
    return data;
}

/// y = sin-free smooth function of two inputs, for regression tests.
Dataset smooth_dataset(std::size_t n, util::Rng& rng) {
    Dataset data(2, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        data.add({a, b}, {0.25 + 0.5 * (a * (1.0 - b))});
    }
    return data;
}

TEST(TrainerTest, LearnsXor) {
    const std::vector<std::size_t> sizes{2, 8, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(1);
    net.init_weights(rng);
    TrainOptions opts;
    opts.max_epochs = 2000;
    opts.learning_rate = 0.5;
    opts.patience = 0;
    const Dataset data = xor_dataset();
    const TrainReport report = Trainer(opts).train(net, data, Dataset{}, rng);
    EXPECT_TRUE(report.learned);
    EXPECT_LT(report.final_train_mse, 0.02);
    EXPECT_GT(net.forward(std::vector<double>{0.0, 1.0})[0], 0.7);
    EXPECT_LT(net.forward(std::vector<double>{1.0, 1.0})[0], 0.3);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
    const std::vector<std::size_t> sizes{2, 6, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(2);
    net.init_weights(rng);
    TrainOptions opts;
    opts.max_epochs = 100;
    opts.patience = 0;
    Dataset data = smooth_dataset(100, rng);
    const TrainReport report = Trainer(opts).train(net, data, Dataset{}, rng);
    ASSERT_GE(report.history.size(), 10u);
    EXPECT_LT(report.history.back().train_mse,
              report.history.front().train_mse);
}

TEST(TrainerTest, GeneralizesOnSmoothFunction) {
    const std::vector<std::size_t> sizes{2, 10, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(3);
    net.init_weights(rng);
    Dataset train = smooth_dataset(300, rng);
    Dataset val = smooth_dataset(100, rng);
    TrainOptions opts;
    opts.max_epochs = 300;
    const TrainReport report = Trainer(opts).train(net, train, val, rng);
    EXPECT_TRUE(report.learned);
    EXPECT_TRUE(report.generalizes);
    EXPECT_LT(report.final_validation_mse, 0.01);
}

TEST(TrainerTest, EarlyStopOnTargetMse) {
    const std::vector<std::size_t> sizes{1, 4, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kLinear);
    util::Rng rng(4);
    net.init_weights(rng);
    Dataset data(1, 1);
    for (int i = 0; i < 20; ++i) {
        const double x = i / 20.0;
        data.add({x}, {0.5 * x});
    }
    TrainOptions opts;
    opts.max_epochs = 5000;
    opts.target_train_mse = 1e-4;
    opts.lr_decay = 1.0;
    opts.patience = 0;
    const TrainReport report = Trainer(opts).train(net, data, Dataset{}, rng);
    EXPECT_LT(report.epochs_run, 5000u);
    EXPECT_LE(report.final_train_mse, 1e-3);
}

TEST(TrainerTest, PatienceStopsStaleTraining) {
    const std::vector<std::size_t> sizes{2, 4, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(5);
    net.init_weights(rng);
    // Pure-noise targets: validation cannot improve for long.
    Dataset train(2, 1);
    Dataset val(2, 1);
    for (int i = 0; i < 60; ++i) {
        train.add({rng.uniform(), rng.uniform()}, {rng.uniform()});
        val.add({rng.uniform(), rng.uniform()}, {rng.uniform()});
    }
    TrainOptions opts;
    opts.max_epochs = 4000;
    opts.patience = 15;
    const TrainReport report = Trainer(opts).train(net, train, val, rng);
    EXPECT_LT(report.epochs_run, 2000u);
}

TEST(TrainerTest, NotLearnableReported) {
    // A linear single-layer net cannot learn XOR.
    const std::vector<std::size_t> sizes{2, 1};
    Mlp net(sizes, Activation::kLinear, Activation::kSigmoid);
    util::Rng rng(6);
    net.init_weights(rng);
    TrainOptions opts;
    opts.max_epochs = 500;
    opts.learnability_mse = 0.02;
    opts.patience = 0;
    const Dataset data = xor_dataset();
    const TrainReport report = Trainer(opts).train(net, data, Dataset{}, rng);
    EXPECT_FALSE(report.learned);
}

TEST(TrainerTest, BestValidationWeightsRestored) {
    const std::vector<std::size_t> sizes{2, 8, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(7);
    net.init_weights(rng);
    Dataset train = smooth_dataset(60, rng);
    Dataset val = smooth_dataset(40, rng);
    TrainOptions opts;
    opts.max_epochs = 200;
    opts.patience = 200;  // never stop early
    const TrainReport report = Trainer(opts).train(net, train, val, rng);
    // The restored net's validation error equals the best epoch in the
    // history (within re-evaluation tolerance).
    double best = 1e9;
    for (const EpochStats& e : report.history) {
        best = std::min(best, e.validation_mse);
    }
    EXPECT_NEAR(report.final_validation_mse, best, 1e-9);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
    const std::vector<std::size_t> sizes{2, 4, 1};
    const Dataset data = xor_dataset();
    TrainOptions opts;
    opts.max_epochs = 50;
    opts.patience = 0;

    const auto run = [&]() {
        Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
        util::Rng rng(42);
        net.init_weights(rng);
        (void)Trainer(opts).train(net, data, Dataset{}, rng);
        return net;
    };
    EXPECT_EQ(run(), run());
}

TEST(EvaluateTest, MseOfPerfectNetZero) {
    const std::vector<std::size_t> sizes{1, 1};
    Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    net.layer(0).weight(0, 0) = 2.0;
    Dataset data(1, 1);
    data.add({1.0}, {2.0});
    data.add({2.0}, {4.0});
    EXPECT_DOUBLE_EQ(evaluate_mse(net, data), 0.0);
}

TEST(EvaluateTest, EmptyDatasetZero) {
    const std::vector<std::size_t> sizes{1, 1};
    const Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    EXPECT_DOUBLE_EQ(evaluate_mse(net, Dataset{}), 0.0);
    EXPECT_DOUBLE_EQ(evaluate_class_accuracy(net, Dataset{}), 0.0);
}

TEST(EvaluateTest, ClassAccuracyCountsArgmax) {
    const std::vector<std::size_t> sizes{2, 2};
    Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    // Identity-ish: output0 = x0, output1 = x1.
    net.layer(0).weight(0, 0) = 1.0;
    net.layer(0).weight(1, 1) = 1.0;
    Dataset data(2, 2);
    data.add({1.0, 0.0}, {1.0, 0.0});  // correct
    data.add({0.0, 1.0}, {1.0, 0.0});  // wrong
    EXPECT_DOUBLE_EQ(evaluate_class_accuracy(net, data), 0.5);
}

}  // namespace
}  // namespace cichar::nn
