#include "nn/committee.hpp"

#include <gtest/gtest.h>

namespace cichar::nn {
namespace {

/// Two-class problem: class 0 when x0 < 0.5, class 1 otherwise.
Dataset two_class(std::size_t n, util::Rng& rng) {
    Dataset data(2, 2);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform();
        const double x1 = rng.uniform();
        if (x0 < 0.5) {
            data.add({x0, x1}, {1.0, 0.0});
        } else {
            data.add({x0, x1}, {0.0, 1.0});
        }
    }
    return data;
}

CommitteeOptions small_committee() {
    CommitteeOptions opts;
    opts.members = 3;
    opts.subset_fraction = 0.7;
    opts.hidden_layers = {8};
    opts.train.max_epochs = 150;
    return opts;
}

TEST(CommitteeTest, TrainsRequestedMembers) {
    util::Rng rng(1);
    const Dataset train = two_class(200, rng);
    const Dataset val = two_class(60, rng);
    VotingCommittee committee;
    const auto reports = committee.train(train, val, small_committee(), rng);
    EXPECT_EQ(committee.member_count(), 3u);
    EXPECT_EQ(reports.size(), 3u);
    EXPECT_EQ(committee.member_validation_errors().size(), 3u);
}

TEST(CommitteeTest, MembersDiffer) {
    util::Rng rng(2);
    const Dataset train = two_class(200, rng);
    const Dataset val = two_class(50, rng);
    VotingCommittee committee;
    (void)committee.train(train, val, small_committee(), rng);
    EXPECT_NE(committee.member(0), committee.member(1));
    EXPECT_NE(committee.member(1), committee.member(2));
}

TEST(CommitteeTest, VoteAgreesOnEasyPoints) {
    util::Rng rng(3);
    const Dataset train = two_class(300, rng);
    const Dataset val = two_class(80, rng);
    VotingCommittee committee;
    (void)committee.train(train, val, small_committee(), rng);

    const VoteResult low = committee.vote(std::vector<double>{0.05, 0.5});
    EXPECT_EQ(low.majority_class, 0u);
    EXPECT_DOUBLE_EQ(low.agreement, 1.0);

    const VoteResult high = committee.vote(std::vector<double>{0.95, 0.5});
    EXPECT_EQ(high.majority_class, 1u);
    EXPECT_DOUBLE_EQ(high.agreement, 1.0);
}

TEST(CommitteeTest, DispersionHigherNearBoundary) {
    util::Rng rng(4);
    const Dataset train = two_class(300, rng);
    const Dataset val = two_class(80, rng);
    VotingCommittee committee;
    (void)committee.train(train, val, small_committee(), rng);
    const VoteResult easy = committee.vote(std::vector<double>{0.02, 0.5});
    const VoteResult hard = committee.vote(std::vector<double>{0.50, 0.5});
    EXPECT_GE(hard.dispersion, easy.dispersion);
}

TEST(CommitteeTest, PredictAveragesMembers) {
    util::Rng rng(5);
    const Dataset train = two_class(100, rng);
    VotingCommittee committee;
    CommitteeOptions opts = small_committee();
    opts.members = 2;
    (void)committee.train(train, Dataset{}, opts, rng);
    const std::vector<double> x{0.3, 0.3};
    const auto mean = committee.predict(x);
    const auto m0 = committee.member(0).forward(x);
    const auto m1 = committee.member(1).forward(x);
    for (std::size_t o = 0; o < mean.size(); ++o) {
        EXPECT_NEAR(mean[o], 0.5 * (m0[o] + m1[o]), 1e-12);
    }
}

TEST(CommitteeTest, MeanValidationErrorIsConsistencyCheck) {
    util::Rng rng(6);
    const Dataset train = two_class(200, rng);
    const Dataset val = two_class(60, rng);
    VotingCommittee committee;
    (void)committee.train(train, val, small_committee(), rng);
    double sum = 0.0;
    for (const double e : committee.member_validation_errors()) sum += e;
    EXPECT_NEAR(committee.mean_validation_error(), sum / 3.0, 1e-15);
    EXPECT_LT(committee.mean_validation_error(), 0.1);
}

TEST(CommitteeTest, FullFractionUsesWholeSet) {
    util::Rng rng(7);
    const Dataset train = two_class(50, rng);
    VotingCommittee committee;
    CommitteeOptions opts = small_committee();
    opts.subset_fraction = 1.0;
    opts.members = 2;
    EXPECT_NO_THROW((void)committee.train(train, Dataset{}, opts, rng));
}

TEST(CommitteeTest, SetMembersRestores) {
    const std::vector<std::size_t> sizes{2, 2};
    std::vector<Mlp> members;
    members.emplace_back(sizes, Activation::kTanh, Activation::kSigmoid);
    members.emplace_back(sizes, Activation::kTanh, Activation::kSigmoid);
    VotingCommittee committee;
    committee.set_members(std::move(members), {0.01, 0.02});
    EXPECT_EQ(committee.member_count(), 2u);
    EXPECT_NEAR(committee.mean_validation_error(), 0.015, 1e-15);
}

TEST(CommitteeTest, ParallelTrainingBitIdentical) {
    const auto train_with_jobs = [](std::size_t jobs) {
        util::Rng rng(14);
        const Dataset train = two_class(200, rng);
        const Dataset val = two_class(60, rng);
        VotingCommittee committee;
        CommitteeOptions opts = small_committee();
        opts.members = 4;
        opts.jobs = jobs;
        (void)committee.train(train, val, opts, rng);
        return committee;
    };
    const VotingCommittee serial = train_with_jobs(1);
    const VotingCommittee threaded = train_with_jobs(4);
    const VotingCommittee oversubscribed = train_with_jobs(16);
    ASSERT_EQ(serial.member_count(), threaded.member_count());
    for (std::size_t m = 0; m < serial.member_count(); ++m) {
        EXPECT_EQ(serial.member(m), threaded.member(m));
        EXPECT_EQ(serial.member(m), oversubscribed.member(m));
    }
    EXPECT_EQ(serial.member_validation_errors(),
              threaded.member_validation_errors());
    EXPECT_EQ(serial.member_validation_errors(),
              oversubscribed.member_validation_errors());
}

TEST(CommitteeTest, DeterministicGivenSeed) {
    const auto run = [](std::uint64_t seed) {
        util::Rng rng(seed);
        const Dataset train = two_class(100, rng);
        VotingCommittee committee;
        CommitteeOptions opts;
        opts.members = 2;
        opts.hidden_layers = {4};
        opts.train.max_epochs = 30;
        (void)committee.train(train, Dataset{}, opts, rng);
        return committee.predict(std::vector<double>{0.3, 0.7});
    };
    EXPECT_EQ(run(11), run(11));
    EXPECT_NE(run(11), run(12));
}

}  // namespace
}  // namespace cichar::nn
