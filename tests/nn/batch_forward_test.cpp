// Bit-identity contract of the batch-major inference engine: at any
// batch size, every sample's batched result must equal the scalar
// forward() result bit for bit (DESIGN.md §9). The comparisons below are
// exact (EXPECT_EQ on doubles), not tolerance-based, on purpose.
#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "nn/committee.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace cichar::nn {
namespace {

Mlp random_net(const std::vector<std::size_t>& sizes, Activation hidden,
               Activation output, std::uint64_t seed) {
    Mlp net(sizes, hidden, output);
    util::Rng rng(seed);
    net.init_weights(rng);
    return net;
}

std::vector<double> random_samples(std::size_t count, std::size_t width,
                                   std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> xs(count * width);
    for (double& v : xs) v = rng.uniform(-2.0, 2.0);
    return xs;
}

void expect_batch_matches_scalar(const Mlp& net, std::size_t batch,
                                 std::uint64_t seed) {
    const std::vector<double> xs =
        random_samples(batch, net.input_size(), seed);
    BatchScratch batch_scratch;
    const std::span<const double> batched =
        net.forward_batch(xs, batch, batch_scratch);
    ASSERT_EQ(batched.size(), net.output_size() * batch);

    ForwardScratch scalar_scratch;
    for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const double> scalar = net.forward(
            std::span<const double>(xs.data() + b * net.input_size(),
                                    net.input_size()),
            scalar_scratch);
        for (std::size_t o = 0; o < net.output_size(); ++o) {
            EXPECT_EQ(batched[o * batch + b], scalar[o])
                << "batch " << batch << " sample " << b << " output " << o;
        }
    }
}

TEST(BatchForwardTest, BitIdenticalAcrossAllActivations) {
    const std::vector<std::size_t> sizes{14, 24, 12, 7};
    const Activation activations[] = {Activation::kSigmoid, Activation::kTanh,
                                      Activation::kRelu, Activation::kLinear};
    std::uint64_t seed = 1;
    for (const Activation hidden : activations) {
        for (const Activation output : activations) {
            const Mlp net = random_net(sizes, hidden, output, ++seed);
            expect_batch_matches_scalar(net, 64, seed * 101);
        }
    }
}

TEST(BatchForwardTest, BitIdenticalAtRaggedAndTiledSizes) {
    // Sizes straddling the 128-column tile: partial single tile, exact
    // tiles, and a ragged last tile.
    const Mlp net = random_net({9, 17, 5}, Activation::kTanh,
                               Activation::kSigmoid, 42);
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{64},
          std::size_t{127}, std::size_t{128}, std::size_t{129},
          std::size_t{300}}) {
        expect_batch_matches_scalar(net, batch, 1000 + batch);
    }
}

TEST(BatchForwardTest, OddLayerCountLandsInCurrent) {
    // 1-layer and 3-layer nets exercise both ping-pong parities.
    const Mlp one = random_net({6, 4}, Activation::kLinear,
                               Activation::kSigmoid, 7);
    expect_batch_matches_scalar(one, 33, 70);
    const Mlp three = random_net({6, 10, 8, 3}, Activation::kRelu,
                                 Activation::kLinear, 8);
    expect_batch_matches_scalar(three, 33, 80);
}

TEST(BatchForwardTest, PackBatchTransposes) {
    const std::vector<double> xs{1, 2, 3, 10, 20, 30};  // 2 samples, width 3
    std::vector<double> packed;
    pack_batch(xs, 2, 3, packed);
    const std::vector<double> expected{1, 10, 2, 20, 3, 30};
    EXPECT_EQ(packed, expected);
}

TEST(BatchForwardTest, ScratchReuseAcrossShrinkingBatches) {
    // A scratch grown by a large batch must still produce exact results
    // for later smaller batches (stale buffer contents must not leak).
    const Mlp net = random_net({5, 9, 2}, Activation::kTanh,
                               Activation::kSigmoid, 11);
    BatchScratch scratch;
    const std::vector<double> big = random_samples(150, 5, 3);
    (void)net.forward_batch(big, 150, scratch);
    const std::vector<double> small = random_samples(4, 5, 4);
    const std::span<const double> batched =
        net.forward_batch(small, 4, scratch);
    ForwardScratch scalar_scratch;
    for (std::size_t b = 0; b < 4; ++b) {
        const std::span<const double> scalar = net.forward(
            std::span<const double>(small.data() + b * 5, 5), scalar_scratch);
        for (std::size_t o = 0; o < 2; ++o) {
            EXPECT_EQ(batched[o * 4 + b], scalar[o]);
        }
    }
}

VotingCommittee random_committee(std::size_t members,
                                 const std::vector<std::size_t>& sizes,
                                 std::uint64_t seed) {
    std::vector<Mlp> nets;
    std::vector<double> errors;
    for (std::size_t m = 0; m < members; ++m) {
        nets.push_back(random_net(sizes, Activation::kTanh,
                                  Activation::kSigmoid, seed + m));
        errors.push_back(0.01 * static_cast<double>(m + 1));
    }
    VotingCommittee committee;
    committee.set_members(std::move(nets), std::move(errors));
    return committee;
}

TEST(BatchVoteTest, PredictBatchBitIdentical) {
    const VotingCommittee committee = random_committee(5, {14, 12, 7}, 21);
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{8}, std::size_t{65}}) {
        const std::vector<double> xs = random_samples(batch, 14, 500 + batch);
        BatchVoteScratch scratch;
        std::vector<double> means;
        committee.predict_batch(xs, batch, scratch, means);
        ASSERT_EQ(means.size(), batch * 7);
        for (std::size_t b = 0; b < batch; ++b) {
            const std::vector<double> scalar = committee.predict(
                std::span<const double>(xs.data() + b * 14, 14));
            for (std::size_t o = 0; o < 7; ++o) {
                EXPECT_EQ(means[b * 7 + o], scalar[o]);
            }
        }
    }
}

TEST(BatchVoteTest, VoteBatchBitIdentical) {
    const VotingCommittee committee = random_committee(7, {14, 10, 5}, 33);
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{8}, std::size_t{64},
          std::size_t{131}}) {
        const std::vector<double> xs = random_samples(batch, 14, 900 + batch);
        BatchVoteScratch scratch;
        std::vector<VoteResult> results;
        committee.vote_batch(xs, batch, scratch, results);
        ASSERT_EQ(results.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const VoteResult scalar = committee.vote(
                std::span<const double>(xs.data() + b * 14, 14));
            EXPECT_EQ(results[b].mean_output, scalar.mean_output);
            EXPECT_EQ(results[b].majority_class, scalar.majority_class);
            EXPECT_EQ(results[b].agreement, scalar.agreement);
            EXPECT_EQ(results[b].dispersion, scalar.dispersion);
        }
    }
}

TEST(BatchVoteTest, ScratchReusableAcrossCommittees) {
    const VotingCommittee a = random_committee(3, {6, 8, 4}, 1);
    const VotingCommittee b = random_committee(5, {6, 5, 2}, 9);
    BatchVoteScratch scratch;
    std::vector<VoteResult> results;
    const std::vector<double> xs = random_samples(10, 6, 77);
    a.vote_batch(xs, 10, scratch, results);
    b.vote_batch(xs, 10, scratch, results);
    ASSERT_EQ(results.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        const VoteResult scalar =
            b.vote(std::span<const double>(xs.data() + i * 6, 6));
        EXPECT_EQ(results[i].mean_output, scalar.mean_output);
        EXPECT_EQ(results[i].dispersion, scalar.dispersion);
    }
}

TEST(BatchEvaluateTest, MseMatchesScalarReference) {
    const Mlp net = random_net({4, 6, 3}, Activation::kTanh,
                               Activation::kSigmoid, 5);
    util::Rng rng(123);
    Dataset data(4, 3);
    for (std::size_t s = 0; s < 150; ++s) {  // not a multiple of the tile
        std::vector<double> in(4);
        std::vector<double> target(3);
        for (double& v : in) v = rng.uniform(-1.0, 1.0);
        for (double& v : target) v = rng.uniform(0.0, 1.0);
        data.add(std::move(in), std::move(target));
    }

    // Reference: the pre-batching scalar accumulation loop.
    ForwardScratch scratch;
    double total = 0.0;
    for (std::size_t s = 0; s < data.size(); ++s) {
        const std::span<const double> out = net.forward(data.input(s), scratch);
        const auto target = data.target(s);
        for (std::size_t o = 0; o < out.size(); ++o) {
            const double e = out[o] - target[o];
            total += e * e;
        }
    }
    const double reference =
        total / (static_cast<double>(data.size()) * 3.0);

    EXPECT_EQ(evaluate_mse(net, data), reference);
}

// The deterministic (vectorizable) activations must track libm closely —
// their whole point is speed without a semantic change — and span
// activation must be bitwise the same function as the per-element one.
TEST(DetActivationTest, TracksLibmAndMatchesSpanBitwise) {
    std::vector<double> xs;
    for (double x = -30.0; x <= 30.0; x += 0.0173) xs.push_back(x);
    xs.insert(xs.end(), {0.0, -0.0, 1e-12, -1e-12, 700.0, -700.0});

    std::vector<double> tanh_span(xs);
    std::vector<double> sigmoid_span(xs);
    activate_span(Activation::kTanh, tanh_span);
    activate_span(Activation::kSigmoid, sigmoid_span);

    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double x = xs[i];
        const double t = activate(Activation::kTanh, x);
        const double s = activate(Activation::kSigmoid, x);
        EXPECT_NEAR(t, std::tanh(x), 1e-12) << "x = " << x;
        EXPECT_NEAR(s, 1.0 / (1.0 + std::exp(-x)), 1e-12) << "x = " << x;
        EXPECT_EQ(tanh_span[i], t) << "x = " << x;
        EXPECT_EQ(sigmoid_span[i], s) << "x = " << x;
    }
    // Exactness where tests and symmetry arguments rely on it.
    EXPECT_EQ(activate(Activation::kTanh, 0.0), 0.0);
    EXPECT_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
}

}  // namespace
}  // namespace cichar::nn
