#include "nn/weights_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace cichar::nn {
namespace {

Mlp random_net(std::uint64_t seed) {
    const std::vector<std::size_t> sizes{4, 7, 3};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(seed);
    net.init_weights(rng);
    return net;
}

TEST(WeightsIoTest, MlpRoundTripExact) {
    const Mlp original = random_net(1);
    std::stringstream stream;
    save_mlp(stream, original);
    const Mlp loaded = load_mlp(stream);
    EXPECT_EQ(original, loaded);
}

TEST(WeightsIoTest, MlpRoundTripPreservesOutputs) {
    const Mlp original = random_net(2);
    std::stringstream stream;
    save_mlp(stream, original);
    const Mlp loaded = load_mlp(stream);
    const std::vector<double> x{0.1, -0.2, 0.3, 0.7};
    EXPECT_EQ(original.forward(x), loaded.forward(x));
}

TEST(WeightsIoTest, MixedActivationsPreserved) {
    const std::vector<std::size_t> sizes{2, 3, 3, 1};
    Mlp net(sizes, Activation::kRelu, Activation::kLinear);
    util::Rng rng(3);
    net.init_weights(rng);
    std::stringstream stream;
    save_mlp(stream, net);
    const Mlp loaded = load_mlp(stream);
    EXPECT_EQ(loaded.layer(0).activation, Activation::kRelu);
    EXPECT_EQ(loaded.layer(2).activation, Activation::kLinear);
}

TEST(WeightsIoTest, CommitteeRoundTrip) {
    VotingCommittee committee;
    committee.set_members({random_net(4), random_net(5)}, {0.011, 0.022});
    std::stringstream stream;
    save_committee(stream, committee);
    const VotingCommittee loaded = load_committee(stream);
    EXPECT_EQ(loaded.member_count(), 2u);
    EXPECT_EQ(loaded.member(0), committee.member(0));
    EXPECT_EQ(loaded.member(1), committee.member(1));
    EXPECT_EQ(loaded.member_validation_errors(),
              committee.member_validation_errors());
}

TEST(WeightsIoTest, CommitteePredictionSurvivesRoundTrip) {
    VotingCommittee committee;
    committee.set_members({random_net(6), random_net(7), random_net(8)},
                          {0.1, 0.2, 0.3});
    std::stringstream stream;
    save_committee(stream, committee);
    const VotingCommittee loaded = load_committee(stream);
    const std::vector<double> x{0.4, 0.5, -0.6, 0.9};
    EXPECT_EQ(committee.predict(x), loaded.predict(x));
}

TEST(WeightsIoTest, MalformedMagicThrows) {
    std::stringstream stream("not-a-weight-file 1\n");
    EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(WeightsIoTest, TruncatedFileThrows) {
    const Mlp net = random_net(9);
    std::stringstream full;
    save_mlp(full, net);
    const std::string text = full.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_THROW((void)load_mlp(truncated), std::runtime_error);
}

TEST(WeightsIoTest, BadVersionThrows) {
    std::stringstream stream("cichar-mlp 99\nlayers 1\n");
    EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(WeightsIoTest, BadActivationThrows) {
    std::stringstream stream(
        "cichar-mlp 1\nlayers 1\nlayer 1 1 frobnicate\nw 0\nb 0\n");
    EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(WeightsIoTest, ShapeMismatchThrows) {
    // Second layer input (3) does not match first layer output (2).
    std::stringstream stream(
        "cichar-mlp 1\nlayers 2\n"
        "layer 1 2 tanh\nw 0 0\nb 0 0\n"
        "layer 3 1 sigmoid\nw 0 0 0\nb 0\n");
    EXPECT_THROW((void)load_mlp(stream), std::runtime_error);
}

TEST(WeightsIoTest, FileRoundTrip) {
    VotingCommittee committee;
    committee.set_members({random_net(10)}, {0.5});
    const std::string path = ::testing::TempDir() + "/cichar_weights_test.nn";
    save_committee_file(path, committee);
    const VotingCommittee loaded = load_committee_file(path);
    EXPECT_EQ(loaded.member(0), committee.member(0));
    std::remove(path.c_str());
}

TEST(WeightsIoTest, MissingFileThrows) {
    EXPECT_THROW((void)load_committee_file("/nonexistent/path/x.nn"),
                 std::ios_base::failure);
}

}  // namespace
}  // namespace cichar::nn
