#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/trainer.hpp"

namespace cichar::nn {
namespace {

TEST(ActivationTest, SigmoidValues) {
    EXPECT_DOUBLE_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
    EXPECT_GT(activate(Activation::kSigmoid, 10.0), 0.999);
    EXPECT_LT(activate(Activation::kSigmoid, -10.0), 0.001);
}

TEST(ActivationTest, DerivativesFromOutput) {
    // sigmoid'(y) = y(1-y)
    EXPECT_DOUBLE_EQ(activate_derivative(Activation::kSigmoid, 0.5), 0.25);
    // tanh'(y) = 1 - y^2
    EXPECT_DOUBLE_EQ(activate_derivative(Activation::kTanh, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(activate_derivative(Activation::kRelu, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(activate_derivative(Activation::kRelu, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(activate_derivative(Activation::kLinear, 123.0), 1.0);
}

TEST(MlpTest, TopologyFromSizes) {
    const std::vector<std::size_t> sizes{3, 5, 2};
    const Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    EXPECT_EQ(net.input_size(), 3u);
    EXPECT_EQ(net.output_size(), 2u);
    EXPECT_EQ(net.layer_count(), 2u);
    EXPECT_EQ(net.layer(0).activation, Activation::kTanh);
    EXPECT_EQ(net.layer(1).activation, Activation::kSigmoid);
    EXPECT_EQ(net.parameter_count(), 3u * 5u + 5u + 5u * 2u + 2u);
}

TEST(MlpTest, ZeroWeightsGiveActivationOfBias) {
    const std::vector<std::size_t> sizes{2, 2};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    const std::vector<double> x{1.0, -1.0};
    const auto out = net.forward(x);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 0.5);  // sigmoid(0)
    EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(MlpTest, KnownSingleLayerLinear) {
    const std::vector<std::size_t> sizes{2, 1};
    Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    net.layer(0).weight(0, 0) = 2.0;
    net.layer(0).weight(0, 1) = -3.0;
    net.layer(0).biases[0] = 0.5;
    const std::vector<double> x{1.0, 2.0};
    EXPECT_DOUBLE_EQ(net.forward(x)[0], 2.0 - 6.0 + 0.5);
}

TEST(MlpTest, InitWeightsWithinGlorotLimit) {
    const std::vector<std::size_t> sizes{10, 20, 3};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(3);
    net.init_weights(rng);
    const double limit0 = std::sqrt(6.0 / (10.0 + 20.0));
    for (const double w : net.layer(0).weights) {
        EXPECT_LE(std::abs(w), limit0);
    }
    for (const double b : net.layer(0).biases) EXPECT_EQ(b, 0.0);
}

TEST(MlpTest, InitDeterministicPerSeed) {
    const std::vector<std::size_t> sizes{4, 4, 1};
    Mlp a(sizes, Activation::kTanh, Activation::kSigmoid);
    Mlp b(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng r1(9);
    util::Rng r2(9);
    a.init_weights(r1);
    b.init_weights(r2);
    EXPECT_EQ(a, b);
}

TEST(MlpTest, ForwardTraceMatchesForward) {
    const std::vector<std::size_t> sizes{3, 6, 2};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(5);
    net.init_weights(rng);
    const std::vector<double> x{0.1, -0.4, 0.9};
    const auto trace = net.forward_trace(x);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], x);
    EXPECT_EQ(trace.back(), net.forward(x));
}

// Finite-difference gradient check: one SGD step with tiny lr moves the
// loss in the direction backprop predicts.
TEST(MlpTest, BackpropMatchesFiniteDifference) {
    const std::vector<std::size_t> sizes{2, 4, 2};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(11);
    net.init_weights(rng);

    Dataset data(2, 2);
    data.add({0.3, -0.7}, {0.9, 0.1});

    const auto loss = [&](const Mlp& m) {
        return evaluate_mse(m, data);
    };

    // Numeric gradient for a few sampled weights.
    const double eps = 1e-6;
    for (const auto& [layer_idx, w_idx] :
         {std::pair<std::size_t, std::size_t>{0, 0},
          {0, 5},
          {1, 3},
          {1, 7}}) {
        Mlp plus = net;
        plus.layer(layer_idx).weights[w_idx] += eps;
        Mlp minus = net;
        minus.layer(layer_idx).weights[w_idx] -= eps;
        const double numeric = (loss(plus) - loss(minus)) / (2.0 * eps);

        // One plain SGD step (lr small, no momentum) on a copy.
        Mlp stepped = net;
        TrainOptions opts;
        opts.max_epochs = 1;
        opts.learning_rate = 1e-4;
        opts.momentum = 0.0;
        opts.lr_decay = 1.0;
        opts.patience = 0;
        util::Rng step_rng(1);
        (void)Trainer(opts).train(stepped, data, Dataset{}, step_rng);
        const double delta = stepped.layer(layer_idx).weights[w_idx] -
                             net.layer(layer_idx).weights[w_idx];
        // SGD on 0.5-less MSE-per-sample: delta = -lr * dSSE/dw; compare
        // sign and rough magnitude against the numeric gradient of the
        // normalized MSE (factor 2/outputs).
        if (std::abs(numeric) < 1e-9) continue;
        EXPECT_LT(delta * numeric, 0.0)
            << "step must descend: layer " << layer_idx << " w " << w_idx;
    }
}

TEST(MlpTest, EqualityDetectsWeightChange) {
    const std::vector<std::size_t> sizes{2, 2};
    Mlp a(sizes, Activation::kTanh, Activation::kSigmoid);
    Mlp b = a;
    EXPECT_EQ(a, b);
    b.layer(0).weight(0, 0) = 1.0;
    EXPECT_NE(a, b);
}

TEST(ActivationTest, Names) {
    EXPECT_STREQ(to_string(Activation::kSigmoid), "sigmoid");
    EXPECT_STREQ(to_string(Activation::kTanh), "tanh");
    EXPECT_STREQ(to_string(Activation::kRelu), "relu");
    EXPECT_STREQ(to_string(Activation::kLinear), "linear");
}

}  // namespace
}  // namespace cichar::nn
