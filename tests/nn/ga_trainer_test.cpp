#include "nn/ga_trainer.hpp"

#include <gtest/gtest.h>

namespace cichar::nn {
namespace {

Dataset xor_dataset() {
    Dataset data(2, 1);
    data.add({0.0, 0.0}, {0.0});
    data.add({0.0, 1.0}, {1.0});
    data.add({1.0, 0.0}, {1.0});
    data.add({1.0, 1.0}, {0.0});
    return data;
}

TEST(FlattenTest, RoundTripExact) {
    const std::vector<std::size_t> sizes{3, 5, 2};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(1);
    net.init_weights(rng);
    const std::vector<double> flat = flatten_weights(net);
    EXPECT_EQ(flat.size(), net.parameter_count());

    Mlp other(sizes, Activation::kTanh, Activation::kSigmoid);
    restore_weights(other, flat);
    EXPECT_EQ(net, other);
}

TEST(FlattenTest, OrderIsLayerMajor) {
    const std::vector<std::size_t> sizes{1, 1};
    Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    net.layer(0).weight(0, 0) = 7.0;
    net.layer(0).biases[0] = 9.0;
    const std::vector<double> flat = flatten_weights(net);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_DOUBLE_EQ(flat[0], 7.0);
    EXPECT_DOUBLE_EQ(flat[1], 9.0);
}

TEST(GaTrainerTest, LearnsXorWithoutGradients) {
    const std::vector<std::size_t> sizes{2, 6, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(7);
    net.init_weights(rng);
    GaTrainOptions opts;
    opts.population = 40;
    opts.generations = 250;
    opts.learnability_mse = 0.05;
    const GaTrainer trainer(opts);
    const TrainReport report =
        trainer.train(net, xor_dataset(), Dataset{}, rng);
    EXPECT_TRUE(report.learned) << report.final_train_mse;
    EXPECT_GT(net.forward(std::vector<double>{1.0, 0.0})[0], 0.6);
    EXPECT_LT(net.forward(std::vector<double>{0.0, 0.0})[0], 0.4);
}

TEST(GaTrainerTest, FitnessImprovesOverGenerations) {
    const std::vector<std::size_t> sizes{2, 5, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(8);
    net.init_weights(rng);
    GaTrainOptions opts;
    opts.generations = 60;
    const GaTrainer trainer(opts);
    const TrainReport report =
        trainer.train(net, xor_dataset(), Dataset{}, rng);
    ASSERT_GE(report.history.size(), 2u);
    EXPECT_LE(report.history.back().train_mse,
              report.history.front().train_mse);
}

TEST(GaTrainerTest, BestHistoryMonotone) {
    // Elitism makes the best-of-population MSE non-increasing.
    const std::vector<std::size_t> sizes{2, 4, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(9);
    net.init_weights(rng);
    GaTrainOptions opts;
    opts.generations = 40;
    const GaTrainer trainer(opts);
    const TrainReport report =
        trainer.train(net, xor_dataset(), Dataset{}, rng);
    for (std::size_t i = 1; i < report.history.size(); ++i) {
        EXPECT_LE(report.history[i].train_mse,
                  report.history[i - 1].train_mse + 1e-12);
    }
}

TEST(GaTrainerTest, TargetStopsEarly) {
    const std::vector<std::size_t> sizes{1, 1};
    Mlp net(sizes, Activation::kLinear, Activation::kLinear);
    Dataset trivial(1, 1);
    trivial.add({1.0}, {0.0});
    util::Rng rng(10);
    GaTrainOptions opts;
    opts.generations = 500;
    opts.target_train_mse = 1e-3;
    const GaTrainer trainer(opts);
    const TrainReport report = trainer.train(net, trivial, Dataset{}, rng);
    EXPECT_LT(report.epochs_run, 500u);
}

TEST(GaTrainerTest, ValidationReported) {
    const std::vector<std::size_t> sizes{2, 5, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(11);
    net.init_weights(rng);
    const Dataset data = xor_dataset();
    GaTrainOptions opts;
    opts.generations = 30;
    const GaTrainer trainer(opts);
    const TrainReport report = trainer.train(net, data, data, rng);
    EXPECT_NEAR(report.final_train_mse, report.final_validation_mse, 1e-12);
}

TEST(GaTrainerTest, DeterministicGivenSeed) {
    const auto run = [](std::uint64_t seed) {
        const std::vector<std::size_t> sizes{2, 4, 1};
        Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
        util::Rng rng(seed);
        net.init_weights(rng);
        GaTrainOptions opts;
        opts.generations = 20;
        (void)GaTrainer(opts).train(net, xor_dataset(), Dataset{}, rng);
        return net;
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(GaTrainerTest, WeightsStayWithinLimit) {
    const std::vector<std::size_t> sizes{2, 4, 1};
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    util::Rng rng(12);
    net.init_weights(rng);
    GaTrainOptions opts;
    opts.generations = 30;
    opts.weight_limit = 1.5;
    const GaTrainer trainer(opts);
    (void)trainer.train(net, xor_dataset(), Dataset{}, rng);
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
        for (const double w : net.layer(l).weights) {
            EXPECT_LE(std::abs(w), 1.5 + 1e-12);
        }
    }
}

}  // namespace
}  // namespace cichar::nn
