#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cichar::nn {
namespace {

Dataset make_dataset(std::size_t n) {
    Dataset data(2, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i);
        data.add({x, 2.0 * x}, {x * 0.1});
    }
    return data;
}

TEST(DatasetTest, WidthsFixedByFirstAdd) {
    Dataset data;
    data.add({1.0, 2.0, 3.0}, {4.0});
    EXPECT_EQ(data.input_width(), 3u);
    EXPECT_EQ(data.target_width(), 1u);
    EXPECT_EQ(data.size(), 1u);
}

TEST(DatasetTest, AccessorsReturnStoredValues) {
    const Dataset data = make_dataset(5);
    EXPECT_DOUBLE_EQ(data.input(3)[0], 3.0);
    EXPECT_DOUBLE_EQ(data.input(3)[1], 6.0);
    EXPECT_DOUBLE_EQ(data.target(3)[0], 0.3);
}

TEST(DatasetTest, AppendMerges) {
    Dataset a = make_dataset(3);
    const Dataset b = make_dataset(2);
    a.append(b);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_DOUBLE_EQ(a.input(4)[0], 1.0);
}

TEST(NormalizerTest, MapsToUnitInterval) {
    Dataset data(1, 1);
    data.add({10.0}, {0.0});
    data.add({20.0}, {0.0});
    data.add({15.0}, {0.0});
    Normalizer norm;
    norm.fit(data);
    EXPECT_DOUBLE_EQ(norm.apply(std::vector<double>{10.0})[0], 0.0);
    EXPECT_DOUBLE_EQ(norm.apply(std::vector<double>{20.0})[0], 1.0);
    EXPECT_DOUBLE_EQ(norm.apply(std::vector<double>{15.0})[0], 0.5);
}

TEST(NormalizerTest, DegenerateFeatureMapsToHalf) {
    Dataset data(2, 1);
    data.add({5.0, 1.0}, {0.0});
    data.add({5.0, 2.0}, {0.0});
    Normalizer norm;
    norm.fit(data);
    EXPECT_DOUBLE_EQ(norm.apply(std::vector<double>{5.0, 1.5})[0], 0.5);
}

TEST(NormalizerTest, RestoreRebuilds) {
    Normalizer norm;
    norm.restore({0.0, 1.0}, {2.0, 3.0});
    EXPECT_TRUE(norm.fitted());
    EXPECT_DOUBLE_EQ(norm.apply(std::vector<double>{1.0, 2.0})[0], 0.5);
}

TEST(SplitTest, SizesMatchFraction) {
    const Dataset data = make_dataset(100);
    util::Rng rng(1);
    const auto [train, val] = split(data, 0.8, rng);
    EXPECT_EQ(train.size(), 80u);
    EXPECT_EQ(val.size(), 20u);
    EXPECT_EQ(train.input_width(), 2u);
}

TEST(SplitTest, NoSampleLostOrDuplicated) {
    const Dataset data = make_dataset(50);
    util::Rng rng(2);
    const auto [train, val] = split(data, 0.7, rng);
    std::multiset<double> seen;
    for (std::size_t i = 0; i < train.size(); ++i) {
        seen.insert(train.input(i)[0]);
    }
    for (std::size_t i = 0; i < val.size(); ++i) {
        seen.insert(val.input(i)[0]);
    }
    EXPECT_EQ(seen.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(seen.count(static_cast<double>(i)), 1u);
    }
}

TEST(SplitTest, FullFractionLeavesValidationEmpty) {
    const Dataset data = make_dataset(10);
    util::Rng rng(3);
    const auto [train, val] = split(data, 1.0, rng);
    EXPECT_EQ(train.size(), 10u);
    EXPECT_TRUE(val.empty());
}

TEST(SubsetTest, DistinctSamplesWithoutReplacement) {
    const Dataset data = make_dataset(40);
    util::Rng rng(4);
    const Dataset sub = subset(data, 0.5, rng);
    EXPECT_EQ(sub.size(), 20u);
    std::set<double> unique;
    for (std::size_t i = 0; i < sub.size(); ++i) {
        unique.insert(sub.input(i)[0]);
    }
    EXPECT_EQ(unique.size(), 20u);  // no duplicates
}

TEST(SubsetTest, AtLeastOneSample) {
    const Dataset data = make_dataset(3);
    util::Rng rng(5);
    EXPECT_GE(subset(data, 0.01, rng).size(), 1u);
}

TEST(SubsetTest, DifferentDrawsDiffer) {
    const Dataset data = make_dataset(100);
    util::Rng rng(6);
    const Dataset a = subset(data, 0.3, rng);
    const Dataset b = subset(data, 0.3, rng);
    std::set<double> sa;
    std::set<double> sb;
    for (std::size_t i = 0; i < a.size(); ++i) sa.insert(a.input(i)[0]);
    for (std::size_t i = 0; i < b.size(); ++i) sb.insert(b.input(i)[0]);
    EXPECT_NE(sa, sb);
}

}  // namespace
}  // namespace cichar::nn
