#include "device/presets.hpp"

#include <gtest/gtest.h>

#include "core/multi_trip.hpp"
#include "testgen/random_gen.hpp"

namespace cichar::device {
namespace {

testgen::Test stress_test() {
    testgen::RandomTestGenerator gen;
    testgen::PatternRecipe r;
    r.cycles = 600;
    r.write_fraction = 0.6;
    r.nop_fraction = 0.0;
    r.toggle_bias = 0.65;
    r.alternating_data_bias = 0.3;
    r.bank_conflict_bias = 0.95;
    r.row_locality = 0.0;
    r.burst_length = 1.0;
    r.seed = 99;
    return gen.make_test(r, {}, "stress");
}

testgen::Test calm_test() {
    testgen::RandomTestGenerator gen;
    testgen::PatternRecipe r;
    r.cycles = 600;
    r.write_fraction = 0.2;
    r.row_locality = 0.7;
    r.seed = 7;
    return gen.make_test(r, {}, "calm");
}

TEST(PresetsTest, NoiselessIsDeterministic) {
    MemoryTestChip a = presets::noiseless();
    MemoryTestChip b = presets::noiseless();
    const testgen::Test t = calm_test();
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(a.passes(t, ParameterKind::kDataValidTime, 30.0),
                  b.passes(t, ParameterKind::kDataValidTime, 30.0));
    }
}

TEST(PresetsTest, TypicalHasNoise) {
    MemoryTestChip chip = presets::typical();
    const testgen::Test t = calm_test();
    const double truth =
        chip.true_parameter(t, ParameterKind::kDataValidTime);
    int flips = 0;
    bool last = chip.passes(t, ParameterKind::kDataValidTime, truth);
    for (int i = 0; i < 100; ++i) {
        const bool now = chip.passes(t, ParameterKind::kDataValidTime, truth);
        if (now != last) ++flips;
        last = now;
    }
    EXPECT_GT(flips, 0);  // noisy boundary flickers
}

TEST(PresetsTest, WellBehavedHasNoPocket) {
    MemoryTestChip pocketed = presets::noiseless();
    MemoryTestChip smooth = presets::well_behaved();
    const testgen::Test stress = stress_test();
    // The stress test activates the pocket on the default chip but not on
    // the well-behaved one.
    const double with_pocket =
        pocketed.true_parameter(stress, ParameterKind::kDataValidTime);
    const double without_pocket =
        smooth.true_parameter(stress, ParameterKind::kDataValidTime);
    EXPECT_GT(without_pocket, with_pocket + 3.0);
    // On calm traffic both agree (the pocket is the only difference).
    const testgen::Test calm = calm_test();
    EXPECT_NEAR(pocketed.true_parameter(calm, ParameterKind::kDataValidTime),
                smooth.true_parameter(calm, ParameterKind::kDataValidTime),
                0.5);
}

TEST(PresetsTest, MarginalViolatesSpecUnderStress) {
    MemoryTestChip chip = presets::marginal();
    const double tdq =
        chip.true_parameter(stress_test(), ParameterKind::kDataValidTime);
    EXPECT_LT(tdq, 20.0);  // below the 20 ns spec: WCR > 1, class fail
    // But it still passes a calm test comfortably.
    EXPECT_GT(chip.true_parameter(calm_test(),
                                  ParameterKind::kDataValidTime),
              25.0);
}

TEST(PresetsTest, DriftyHeatsUpFast) {
    MemoryTestChip chip = presets::drifty();
    const testgen::Test t = calm_test();
    for (int i = 0; i < 10; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 20.0);
    }
    EXPECT_GT(chip.heat(), 0.5);
    MemoryTestChip reference = presets::typical();
    for (int i = 0; i < 10; ++i) {
        (void)reference.passes(t, ParameterKind::kDataValidTime, 20.0);
    }
    EXPECT_EQ(reference.heat(), 0.0);  // drift off by default
}

TEST(PresetsTest, MarginalFailsFunctionallyUnderStress) {
    MemoryTestChip chip = presets::marginal();
    // Stress pattern at nominal conditions: the collapsed margin corrupts
    // turnaround reads on this die.
    const device::FunctionalResult r = chip.run_functional(stress_test());
    EXPECT_FALSE(r.pass());
}

}  // namespace
}  // namespace cichar::device
