#include "device/faults.hpp"

#include <gtest/gtest.h>

namespace cichar::device {
namespace {

TEST(FaultSetTest, EmptyIsTransparent) {
    FaultSet faults;
    EXPECT_TRUE(faults.empty());
    EXPECT_EQ(faults.on_write(1, 0x0000, 0xBEEF), 0xBEEF);
    EXPECT_EQ(faults.on_read(1, 0xBEEF), 0xBEEF);
    EXPECT_TRUE(faults.victims_of(1).empty());
}

TEST(FaultSetTest, StuckAt0ClearsBitOnWriteAndRead) {
    FaultSet faults({Fault{FaultType::kStuckAt0, 10, 3, 0}});
    EXPECT_EQ(faults.on_write(10, 0, 0xFFFF), 0xFFF7);
    EXPECT_EQ(faults.on_read(10, 0xFFFF), 0xFFF7);
    // Other addresses untouched.
    EXPECT_EQ(faults.on_write(11, 0, 0xFFFF), 0xFFFF);
}

TEST(FaultSetTest, StuckAt1SetsBit) {
    FaultSet faults({Fault{FaultType::kStuckAt1, 4, 0, 0}});
    EXPECT_EQ(faults.on_write(4, 0, 0x0000), 0x0001);
    EXPECT_EQ(faults.on_read(4, 0x0000), 0x0001);
}

TEST(FaultSetTest, TransitionFaultBlocksRisingEdge) {
    FaultSet faults({Fault{FaultType::kTransition, 7, 1, 0}});
    // 0 -> 1 on bit 1 does not latch.
    EXPECT_EQ(faults.on_write(7, 0x0000, 0x0002), 0x0000);
    // 1 -> 0 works.
    EXPECT_EQ(faults.on_write(7, 0x0002, 0x0000), 0x0000);
    // 1 -> 1 keeps the bit.
    EXPECT_EQ(faults.on_write(7, 0x0002, 0x0002), 0x0002);
}

TEST(FaultSetTest, CouplingFlipsVictim) {
    FaultSet faults({Fault{FaultType::kCouplingInv, /*address=*/20,
                           /*bit=*/2, /*aggressor=*/21}});
    const auto victims = faults.victims_of(21);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], 20u);
    EXPECT_EQ(faults.couple(21, 20, 0x0000), 0x0004);
    EXPECT_EQ(faults.couple(21, 20, 0x0004), 0x0000);
    // Write to unrelated address does not couple.
    EXPECT_EQ(faults.couple(22, 20, 0x0000), 0x0000);
}

TEST(FaultSetTest, CouplingDoesNotAffectDirectOps) {
    FaultSet faults({Fault{FaultType::kCouplingInv, 20, 2, 21}});
    EXPECT_EQ(faults.on_write(20, 0, 0x1234), 0x1234);
    EXPECT_EQ(faults.on_read(20, 0x1234), 0x1234);
}

TEST(FaultSetTest, MultipleFaultsSameAddressCompose) {
    FaultSet faults({Fault{FaultType::kStuckAt0, 5, 0, 0},
                     Fault{FaultType::kStuckAt1, 5, 15, 0}});
    EXPECT_EQ(faults.on_write(5, 0, 0x0001), 0x8000);
}

TEST(FaultSetTest, RetentionDecaysOldOnes) {
    Fault retention{FaultType::kRetention, 30, 4, 0, /*decay_cycles=*/100};
    FaultSet faults({retention});
    EXPECT_TRUE(faults.has_retention(30));
    EXPECT_FALSE(faults.has_retention(31));
    // Fresh data survives.
    EXPECT_EQ(faults.decay(30, 0x0010, 50), 0x0010);
    EXPECT_EQ(faults.decay(30, 0x0010, 100), 0x0010);
    // Old data leaks to 0 on the faulty bit only.
    EXPECT_EQ(faults.decay(30, 0x0013, 101), 0x0003);
    // Other addresses unaffected.
    EXPECT_EQ(faults.decay(31, 0x0010, 10000), 0x0010);
}

TEST(FaultSetTest, RetentionTransparentOnDirectOps) {
    FaultSet faults({Fault{FaultType::kRetention, 30, 4, 0, 100}});
    EXPECT_EQ(faults.on_write(30, 0, 0xFFFF), 0xFFFF);
    EXPECT_EQ(faults.on_read(30, 0xFFFF), 0xFFFF);
}

TEST(FaultSetTest, SizeReportsCount) {
    FaultSet faults({Fault{}, Fault{FaultType::kStuckAt1, 1, 1, 0}});
    EXPECT_EQ(faults.size(), 2u);
    EXPECT_FALSE(faults.empty());
}

}  // namespace
}  // namespace cichar::device
