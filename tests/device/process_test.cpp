#include "device/process.hpp"

#include <gtest/gtest.h>

#include "util/statistics.hpp"

namespace cichar::device {
namespace {

TEST(ProcessTest, NominalIsDefaultDie) {
    ProcessVariation pv;
    EXPECT_EQ(pv.nominal(), DieParameters{});
}

TEST(ProcessTest, CornersBracketNominal) {
    ProcessVariation pv;
    const DieParameters fast = pv.fast_corner();
    const DieParameters slow = pv.slow_corner();
    const DieParameters nom = pv.nominal();
    EXPECT_GT(fast.window_ns, nom.window_ns);
    EXPECT_LT(slow.window_ns, nom.window_ns);
    EXPECT_LT(fast.sensitivity_scale, nom.sensitivity_scale);
    EXPECT_GT(slow.sensitivity_scale, nom.sensitivity_scale);
    EXPECT_LT(fast.vmin_base_v, slow.vmin_base_v);
    EXPECT_GT(fast.fmax_base_mhz, slow.fmax_base_mhz);
}

TEST(ProcessTest, CornerSigmaScales) {
    ProcessVariation pv;
    const DieParameters one = pv.fast_corner(1.0);
    const DieParameters three = pv.fast_corner(3.0);
    EXPECT_GT(three.window_ns, one.window_ns);
}

TEST(ProcessTest, SampleDistributionMatchesSpread) {
    ProcessSpread spread;
    ProcessVariation pv(spread);
    util::Rng rng(17);
    util::RunningStats window;
    for (int i = 0; i < 5000; ++i) {
        window.add(pv.sample(rng).window_ns);
    }
    EXPECT_NEAR(window.mean(), pv.nominal().window_ns, 0.05);
    EXPECT_NEAR(window.stddev(), spread.window_sigma_ns, 0.05);
}

TEST(ProcessTest, SensitivityNeverBelowFloor) {
    ProcessSpread spread;
    spread.sensitivity_sigma = 1.0;  // absurdly wide
    ProcessVariation pv(spread);
    util::Rng rng(18);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(pv.sample(rng).sensitivity_scale, 0.5);
    }
}

TEST(ProcessTest, SamplingDeterministicPerSeed) {
    ProcessVariation pv;
    util::Rng a(7);
    util::Rng b(7);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(pv.sample(a), pv.sample(b));
    }
}

TEST(ProcessTest, WaferSharesShift) {
    ProcessSpread spread;
    spread.wafer_sigma_frac = 0.10;  // large, to make the shift visible
    spread.window_sigma_ns = 0.01;   // tiny die-level noise
    ProcessVariation pv(spread);
    util::Rng rng(19);
    const auto wafer_a = pv.sample_wafer(50, rng);
    const auto wafer_b = pv.sample_wafer(50, rng);
    util::RunningStats a;
    util::RunningStats b;
    for (const DieParameters& d : wafer_a) a.add(d.window_ns);
    for (const DieParameters& d : wafer_b) b.add(d.window_ns);
    // Within-wafer spread is tiny, between-wafer shift is large.
    EXPECT_LT(a.stddev(), 0.05);
    EXPECT_LT(b.stddev(), 0.05);
    EXPECT_GT(std::abs(a.mean() - b.mean()), 0.2);
}

TEST(ProcessTest, WaferSizeRespected) {
    ProcessVariation pv;
    util::Rng rng(20);
    EXPECT_EQ(pv.sample_wafer(13, rng).size(), 13u);
}

}  // namespace
}  // namespace cichar::device
