#include "device/timing_model.hpp"

#include <gtest/gtest.h>

#include "testgen/features.hpp"

namespace cichar::device {
namespace {

using testgen::FeatureVector;
using testgen::TestConditions;

FeatureVector benign() { return FeatureVector{}; }

FeatureVector stressed(double level) {
    FeatureVector fv;
    fv.values[testgen::kToggleDensity] = level;
    fv.values[testgen::kAddrTransition] = level;
    fv.values[testgen::kBankConflictRate] = level;
    fv.values[testgen::kRwSwitchRate] = level;
    fv.values[testgen::kControlActivity] = level;
    fv.values[testgen::kAlternatingData] = level;
    return fv;
}

TEST(TimingModelTest, BenignPatternNoStress) {
    TimingModel model;
    EXPECT_DOUBLE_EQ(model.stress_ns(benign(), TestConditions{}, {}), 0.0);
}

TEST(TimingModelTest, BenignTdqEqualsWindow) {
    TimingModel model;
    const DieParameters die;
    EXPECT_NEAR(model.tdq_ns(benign(), TestConditions{}, die), die.window_ns,
                1e-9);
}

TEST(TimingModelTest, StressMonotoneInFeatures) {
    TimingModel model;
    const DieParameters die;
    double previous = -1.0;
    for (const double level : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const double s = model.stress_ns(stressed(level), TestConditions{}, die);
        EXPECT_GT(s, previous);
        previous = s;
    }
}

TEST(TimingModelTest, TdqDecreasesWithStress) {
    TimingModel model;
    const DieParameters die;
    const double calm = model.tdq_ns(benign(), TestConditions{}, die);
    const double hot = model.tdq_ns(stressed(0.9), TestConditions{}, die);
    EXPECT_LT(hot, calm - 3.0);
}

TEST(TimingModelTest, LowerVddShrinksWindow) {
    TimingModel model;
    const DieParameters die;
    TestConditions low;
    low.vdd_volts = 1.4;
    TestConditions high;
    high.vdd_volts = 2.2;
    EXPECT_LT(model.tdq_ns(benign(), low, die),
              model.tdq_ns(benign(), high, die));
}

TEST(TimingModelTest, LowerVddAmplifiesStress) {
    TimingModel model;
    const DieParameters die;
    TestConditions low;
    low.vdd_volts = 1.4;
    TestConditions nom;
    EXPECT_GT(model.stress_ns(stressed(0.8), low, die),
              model.stress_ns(stressed(0.8), nom, die));
}

TEST(TimingModelTest, HeatShrinksWindow) {
    TimingModel model;
    const DieParameters die;
    TestConditions hot;
    hot.temperature_c = 125.0;
    TestConditions cold;
    cold.temperature_c = -40.0;
    EXPECT_LT(model.tdq_ns(benign(), hot, die),
              model.tdq_ns(benign(), cold, die));
}

TEST(TimingModelTest, LoadPenaltySigned) {
    TimingModel model;
    const DieParameters die;
    TestConditions heavy;
    heavy.output_load_pf = 50.0;
    TestConditions light;
    light.output_load_pf = 10.0;
    EXPECT_LT(model.tdq_ns(benign(), heavy, die),
              model.tdq_ns(benign(), light, die));
}

TEST(TimingModelTest, FastClockPenalizedSlowClockFree) {
    TimingModel model;
    const DieParameters die;
    TestConditions fast;
    fast.clock_period_ns = 40.0;
    TestConditions slow;
    slow.clock_period_ns = 70.0;
    TestConditions nominal;  // 50 ns
    EXPECT_LT(model.tdq_ns(benign(), fast, die),
              model.tdq_ns(benign(), nominal, die));
    EXPECT_DOUBLE_EQ(model.tdq_ns(benign(), slow, die),
                     model.tdq_ns(benign(), nominal, die));
}

TEST(TimingModelTest, DieSensitivityScalesStress) {
    TimingModel model;
    DieParameters weak;
    weak.sensitivity_scale = 1.3;
    DieParameters strong;
    strong.sensitivity_scale = 0.8;
    EXPECT_GT(model.stress_ns(stressed(0.7), TestConditions{}, weak),
              model.stress_ns(stressed(0.7), TestConditions{}, strong));
}

TEST(TimingModelTest, PocketRequiresAllAxes) {
    TimingModel model;
    FeatureVector fv;
    // Three of four axes maxed: no activation.
    fv.values[testgen::kToggleDensity] = 1.0;
    fv.values[testgen::kBankConflictRate] = 1.0;
    fv.values[testgen::kAlternatingData] = 0.0;
    fv.values[testgen::kBurstiness] = 0.1;
    EXPECT_DOUBLE_EQ(model.pocket_activation(fv), 0.0);
    // All four in place: strong activation.
    fv.values[testgen::kAlternatingData] = 1.0;
    EXPECT_GT(model.pocket_activation(fv), 0.8);
}

TEST(TimingModelTest, PocketKilledByLongBursts) {
    TimingModel model;
    FeatureVector fv;
    fv.values[testgen::kToggleDensity] = 1.0;
    fv.values[testgen::kBankConflictRate] = 1.0;
    fv.values[testgen::kAlternatingData] = 1.0;
    fv.values[testgen::kBurstiness] = 0.9;
    EXPECT_DOUBLE_EQ(model.pocket_activation(fv), 0.0);
}

TEST(TimingModelTest, PocketActivationBounded) {
    TimingModel model;
    for (const double t : {0.0, 0.3, 0.6, 0.9, 1.0}) {
        FeatureVector fv;
        fv.values[testgen::kToggleDensity] = t;
        fv.values[testgen::kBankConflictRate] = t;
        fv.values[testgen::kAlternatingData] = t;
        fv.values[testgen::kBurstiness] = 0.1;
        const double a = model.pocket_activation(fv);
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
    }
}

TEST(TimingModelTest, VminRisesWithStress) {
    TimingModel model;
    const DieParameters die;
    EXPECT_GT(model.vmin_v(stressed(0.9), TestConditions{}, die),
              model.vmin_v(benign(), TestConditions{}, die));
}

TEST(TimingModelTest, VminIndependentOfSearchedVdd) {
    // The Vmin search varies the supply setting; the pattern's intrinsic
    // Vmin must not change with the test's own vdd field.
    TimingModel model;
    const DieParameters die;
    TestConditions a;
    a.vdd_volts = 1.5;
    TestConditions b;
    b.vdd_volts = 2.1;
    EXPECT_DOUBLE_EQ(model.vmin_v(stressed(0.5), a, die),
                     model.vmin_v(stressed(0.5), b, die));
}

TEST(TimingModelTest, FmaxDropsWithStressRisesWithVdd) {
    TimingModel model;
    const DieParameters die;
    TestConditions nom;
    EXPECT_LT(model.fmax_mhz(stressed(0.9), nom, die),
              model.fmax_mhz(benign(), nom, die));
    TestConditions high;
    high.vdd_volts = 2.2;
    EXPECT_GT(model.fmax_mhz(benign(), high, die),
              model.fmax_mhz(benign(), nom, die));
}

// Paper-shape checks at the Table 1 operating point.
TEST(TimingModelTest, PocketDeepEnoughForWeaknessBand) {
    TimingModel model;
    const DieParameters die;
    FeatureVector fv = stressed(0.85);
    fv.values[testgen::kBurstiness] = 0.1;
    const double tdq = model.tdq_ns(fv, TestConditions{}, die);
    // Worst reachable region sits in the Fig. 6 weakness band
    // (20/tdq between 0.8 and 1.0).
    EXPECT_LT(tdq, 25.0);
    EXPECT_GT(tdq, 20.0);
}

}  // namespace
}  // namespace cichar::device
