#include "device/memory_chip.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "testgen/march.hpp"
#include "util/statistics.hpp"

namespace cichar::device {
namespace {


using testgen::TestPattern;

testgen::Test simple_test(std::string name = "t") {
    TestPattern p(name);
    for (std::uint32_t i = 0; i < 200; ++i) {
        if (i % 2 == 0) {
            p.write(i % 64, static_cast<std::uint16_t>(i));
        } else {
            p.read((i - 1) % 64);
        }
    }
    return testgen::make_test(std::move(p));
}

MemoryChipOptions noiseless() {
    MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    o.noise_sigma_mhz = 0.0;
    o.noise_sigma_v = 0.0;
    return o;
}

TEST(MemoryChipTest, PassFailConsistentWithTruth) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    const double truth =
        chip.true_parameter(t, ParameterKind::kDataValidTime);
    EXPECT_TRUE(chip.passes(t, ParameterKind::kDataValidTime, truth - 0.5));
    EXPECT_FALSE(chip.passes(t, ParameterKind::kDataValidTime, truth + 0.5));
}

TEST(MemoryChipTest, VminDirectionReversed) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    const double vmin = chip.true_parameter(t, ParameterKind::kMinVdd);
    EXPECT_TRUE(chip.passes(t, ParameterKind::kMinVdd, vmin + 0.05));
    EXPECT_FALSE(chip.passes(t, ParameterKind::kMinVdd, vmin - 0.05));
}

TEST(MemoryChipTest, FmaxDirection) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    const double fmax = chip.true_parameter(t, ParameterKind::kMaxFrequency);
    EXPECT_TRUE(chip.passes(t, ParameterKind::kMaxFrequency, fmax - 1.0));
    EXPECT_FALSE(chip.passes(t, ParameterKind::kMaxFrequency, fmax + 1.0));
}

TEST(MemoryChipTest, NoiseMatchesSigma) {
    MemoryChipOptions opts;
    opts.noise_sigma_ns = 0.2;
    MemoryTestChip chip({}, opts);
    const testgen::Test t = simple_test();
    const double truth =
        chip.true_parameter(t, ParameterKind::kDataValidTime);
    // Near the trip point the pass/fail outcome flickers with noise.
    int passes = 0;
    for (int i = 0; i < 200; ++i) {
        if (chip.passes(t, ParameterKind::kDataValidTime, truth)) ++passes;
    }
    EXPECT_GT(passes, 40);
    EXPECT_LT(passes, 160);
}

TEST(MemoryChipTest, ApplicationsCounted) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    EXPECT_EQ(chip.applications(), 0u);
    (void)chip.passes(t, ParameterKind::kDataValidTime, 1.0);
    (void)chip.passes(t, ParameterKind::kDataValidTime, 1.0);
    EXPECT_EQ(chip.applications(), 2u);
}

TEST(MemoryChipTest, DriftAccumulatesAndSettles) {
    MemoryChipOptions opts = noiseless();
    opts.enable_drift = true;
    MemoryTestChip chip({}, opts);
    const testgen::Test t = simple_test();
    EXPECT_EQ(chip.heat(), 0.0);
    for (int i = 0; i < 50; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 1.0);
    }
    const double heated = chip.heat();
    EXPECT_GT(heated, 0.1);
    chip.settle();
    EXPECT_LT(chip.heat(), heated);
}

TEST(MemoryChipTest, DriftShrinksMeasuredTdq) {
    MemoryChipOptions opts = noiseless();
    opts.enable_drift = true;
    MemoryTestChip chip({}, opts);
    const testgen::Test t = simple_test();
    const double truth =
        chip.true_parameter(t, ParameterKind::kDataValidTime);
    // Heat the device, then probe just below the cold trip point: the hot
    // device must fail there.
    for (int i = 0; i < 300; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 1.0);
    }
    EXPECT_GT(chip.heat(), 0.9);
    EXPECT_FALSE(
        chip.passes(t, ParameterKind::kDataValidTime, truth - 0.05));
}

TEST(MemoryChipTest, DriftDisabledByDefault) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    for (int i = 0; i < 100; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 1.0);
    }
    EXPECT_EQ(chip.heat(), 0.0);
}

TEST(MemoryChipTest, FunctionalMarchCleanOnHealthyChip) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test march = testgen::make_test(testgen::march_c_minus().expand());
    const FunctionalResult result = chip.run_functional(march);
    EXPECT_TRUE(result.pass());
    EXPECT_GT(result.reads, 0u);
    EXPECT_EQ(result.first_fail_cycle, FunctionalResult::npos);
}

TEST(MemoryChipTest, FunctionalMarchCatchesStuckAt) {
    FaultSet faults({Fault{FaultType::kStuckAt0, 100, 7, 0}});
    MemoryTestChip chip({}, noiseless(), TimingModel{}, faults);
    const testgen::Test march = testgen::make_test(testgen::march_c_minus().expand());
    const FunctionalResult result = chip.run_functional(march);
    EXPECT_FALSE(result.pass());
    EXPECT_NE(result.first_fail_cycle, FunctionalResult::npos);
}

TEST(MemoryChipTest, FunctionalMarchCatchesCoupling) {
    FaultSet faults({Fault{FaultType::kCouplingInv, /*victim=*/50, 0,
                           /*aggressor=*/51}});
    MemoryTestChip chip({}, noiseless(), TimingModel{}, faults);
    const testgen::Test march = testgen::make_test(testgen::march_c_minus().expand());
    EXPECT_FALSE(chip.run_functional(march).pass());
}

TEST(MemoryChipTest, FunctionalMarchCatchesTransitionFault) {
    FaultSet faults({Fault{FaultType::kTransition, 200, 3, 0}});
    MemoryTestChip chip({}, noiseless(), TimingModel{}, faults);
    const testgen::Test march = testgen::make_test(testgen::march_c_minus().expand());
    EXPECT_FALSE(chip.run_functional(march).pass());
}

TEST(MemoryChipTest, RetentionFaultCaughtByMarchNotByReadback) {
    // A retention fault needs time between write and read. March C-'s
    // later elements revisit addresses long after they were written, so
    // it catches the leak; an immediate write/read pair does not.
    const Fault retention{FaultType::kRetention, /*address=*/64, /*bit=*/0,
                          0, /*decay_cycles=*/2000};
    MemoryTestChip chip({}, noiseless(), TimingModel{},
                        FaultSet({retention}));

    testgen::TestPattern quick("write-read");
    quick.write(64, 0xFFFF);
    quick.read(64);
    EXPECT_TRUE(chip.run_functional(testgen::make_test(std::move(quick)))
                    .pass());

    MemoryTestChip chip2({}, noiseless(), TimingModel{},
                         FaultSet({retention}));
    const testgen::Test march =
        testgen::make_test(testgen::march_c_minus().expand());
    EXPECT_FALSE(chip2.run_functional(march).pass());
}

TEST(MemoryChipTest, SupplyCollapseFailsFunctionally) {
    MemoryTestChip chip({}, noiseless());
    testgen::Test t = simple_test();
    t.conditions.vdd_volts = 1.0;  // far below any vmin
    EXPECT_FALSE(chip.run_functional(t).pass());
}

TEST(MemoryChipTest, CheckerboardCleanOnHealthyChip) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test cb = testgen::make_test(testgen::checkerboard());
    EXPECT_TRUE(chip.run_functional(cb).pass());
}

TEST(MemoryChipTest, TruthUnaffectedByMeasurementHistory) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    const double before =
        chip.true_parameter(t, ParameterKind::kDataValidTime);
    for (int i = 0; i < 50; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 25.0);
    }
    EXPECT_DOUBLE_EQ(before,
                     chip.true_parameter(t, ParameterKind::kDataValidTime));
}

TEST(MemoryChipTest, ParameterKindNames) {
    EXPECT_STREQ(to_string(ParameterKind::kDataValidTime), "T_DQ");
    EXPECT_STREQ(to_string(ParameterKind::kMaxFrequency), "Fmax");
    EXPECT_STREQ(to_string(ParameterKind::kMinVdd), "Vmin");
}

TEST(MemoryChipTest, SlowDieWorseThanFastDie) {
    ProcessVariation pv;
    MemoryTestChip slow(pv.slow_corner(), noiseless());
    MemoryTestChip fast(pv.fast_corner(), noiseless());
    const testgen::Test t = simple_test();
    EXPECT_LT(slow.true_parameter(t, ParameterKind::kDataValidTime),
              fast.true_parameter(t, ParameterKind::kDataValidTime));
}

TEST(MemoryChipTest, SaveLoadStateReplaysExactMeasurements) {
    MemoryChipOptions opts;  // noisy, with drift: the hard case
    opts.enable_drift = true;
    MemoryTestChip chip({}, opts);
    const testgen::Test t = simple_test();
    for (int i = 0; i < 50; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 30.0 + 0.1 * i);
    }
    std::string blob;
    ASSERT_TRUE(chip.save_state(blob));

    std::vector<bool> expected;
    for (int i = 0; i < 100; ++i) {
        expected.push_back(
            chip.passes(t, ParameterKind::kDataValidTime, 25.0 + 0.15 * i));
    }

    MemoryTestChip restored({}, opts);  // identical construction, no history
    util::ByteReader reader(blob);
    ASSERT_TRUE(restored.load_state(reader));
    EXPECT_TRUE(reader.at_end());
    EXPECT_EQ(restored.heat(), chip.heat() >= 0 ? restored.heat() : 0.0);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(
            restored.passes(t, ParameterKind::kDataValidTime, 25.0 + 0.15 * i),
            expected[static_cast<std::size_t>(i)])
            << "measurement " << i << " diverged after state restore";
    }
}

TEST(MemoryChipTest, SaveLoadStatePreservesArrayContents) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    (void)chip.run_functional(t);  // leaves data in the array
    std::string blob;
    ASSERT_TRUE(chip.save_state(blob));

    MemoryTestChip restored({}, noiseless());
    util::ByteReader reader(blob);
    ASSERT_TRUE(restored.load_state(reader));
    EXPECT_EQ(restored.applications(), chip.applications());
    EXPECT_EQ(restored.run_functional(t).miscompares,
              chip.run_functional(t).miscompares);
}

// reset_warm contract: after reset_warm(seed), a recycled chip must be
// observably identical to clone_cold(seed) — same measurement sequence,
// same save_state blob — even when the previous lease dirtied the heat,
// the noise stream, and the memory array.
TEST(MemoryChipTest, ResetWarmMatchesColdCloneMeasurements) {
    MemoryChipOptions opts;  // noisy, with drift: the hard case
    opts.enable_drift = true;
    MemoryTestChip chip({}, opts);
    const testgen::Test t = simple_test();
    // Dirty everything a lease could dirty: noise stream, heat, array.
    for (int i = 0; i < 20; ++i) {
        (void)chip.passes(t, ParameterKind::kDataValidTime, 30.0);
    }
    (void)chip.run_functional(t);

    const std::uint64_t seed = 0xD1E5EED;
    const auto cold = chip.clone_cold(seed);
    ASSERT_NE(cold, nullptr);
    ASSERT_TRUE(chip.reset_warm(seed));
    for (int i = 0; i < 60; ++i) {
        // A ladder of settings around the trip region: with noise and
        // drift live, identical verdict sequences mean identical noise
        // streams and identical heat history.
        const double setting = 26.0 + 0.12 * i;
        ASSERT_EQ(chip.passes(t, ParameterKind::kDataValidTime, setting),
                  cold->passes(t, ParameterKind::kDataValidTime, setting))
            << "measurement " << i << " diverged from the cold clone";
    }
    EXPECT_EQ(chip.run_functional(t).miscompares,
              cold->run_functional(t).miscompares);
}

TEST(MemoryChipTest, ResetWarmMatchesColdCloneStateBlob) {
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    (void)chip.run_functional(t);  // leaves data in the array
    (void)chip.passes(t, ParameterKind::kMaxFrequency, 100.0);

    const std::uint64_t seed = 42;
    const auto cold = chip.clone_cold(seed);
    ASSERT_NE(cold, nullptr);
    ASSERT_TRUE(chip.reset_warm(seed));
    std::string warm_blob;
    std::string cold_blob;
    ASSERT_TRUE(chip.save_state(warm_blob));
    ASSERT_TRUE(cold->save_state(cold_blob));
    EXPECT_EQ(warm_blob, cold_blob);
}

TEST(MemoryChipTest, ResetWarmAfterLoadStateClearsRestoredArray) {
    // load_state may hand the chip a dirty array; a later reset_warm must
    // still wipe it (the dirty flag cannot assume a clean history).
    MemoryTestChip chip({}, noiseless());
    const testgen::Test t = simple_test();
    (void)chip.run_functional(t);
    std::string blob;
    ASSERT_TRUE(chip.save_state(blob));

    MemoryTestChip restored({}, noiseless());
    util::ByteReader reader(blob);
    ASSERT_TRUE(restored.load_state(reader));
    ASSERT_TRUE(restored.reset_warm(7));
    std::string warm_blob;
    std::string fresh_blob;
    ASSERT_TRUE(restored.save_state(warm_blob));
    const auto fresh = chip.clone_cold(7);
    ASSERT_TRUE(fresh->save_state(fresh_blob));
    EXPECT_EQ(warm_blob, fresh_blob);
}

TEST(MemoryChipTest, LoadStateRejectsTruncatedBlob) {
    MemoryTestChip chip({}, noiseless());
    std::string blob;
    ASSERT_TRUE(chip.save_state(blob));
    blob.resize(blob.size() / 2);
    MemoryTestChip victim({}, noiseless());
    util::ByteReader reader(blob);
    EXPECT_THROW((void)victim.load_state(reader), std::runtime_error);
}

}  // namespace
}  // namespace cichar::device
