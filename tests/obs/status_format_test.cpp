#include "obs/status_format.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cichar::obs {
namespace {

StatusSnapshot sample_snapshot() {
    StatusSnapshot snap;
    snap.kind = "lot";
    snap.fingerprint = "fp-1234abcd";
    snap.seed = 77;
    snap.pid = 4242;
    snap.sequence = 9;
    snap.uptime_seconds = 12.5;
    snap.sites_total = 4;
    snap.policy_retries = 3;
    snap.policy_interventions = 1;

    SiteStatusEntry hunting;
    hunting.site = 0;
    hunting.phase = SitePhase::kHunting;
    hunting.generation = 5;
    hunting.generations_total = 14;
    hunting.evaluations = 120;
    hunting.best_wcr = -4.25;
    hunting.ate_applications = 220;
    hunting.cache_hits = 40;
    hunting.cache_misses = 80;
    hunting.inflight = 4;
    hunting.elapsed_seconds = 3.25;
    snap.sites.push_back(hunting);

    SiteStatusEntry done;
    done.site = 1;
    done.phase = SitePhase::kDone;
    done.generation = 14;
    done.generations_total = 14;
    done.elapsed_seconds = 8.0;
    SiteOutcomeEntry outcome;
    outcome.parameter = "T_DQ";
    outcome.found = true;
    outcome.trip_point = 21.75;
    outcome.wcr = -3.5;
    outcome.margin_risk = 0.125;
    done.outcomes.push_back(outcome);
    snap.sites.push_back(done);

    snap.completed_seconds = {8.0, 7.5};
    return snap;
}

TEST(ObsStatusFormatTest, RoundTripsEveryField) {
    const StatusSnapshot snap = sample_snapshot();
    const std::string bytes = encode_status(snap);
    ASSERT_EQ(bytes.substr(0, kStatusMagic.size()), kStatusMagic);
    const auto decoded = decode_status(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, snap);
}

TEST(ObsStatusFormatTest, EncodingIsByteStable) {
    EXPECT_EQ(encode_status(sample_snapshot()),
              encode_status(sample_snapshot()));
}

TEST(ObsStatusFormatTest, AggregateHelpers) {
    const StatusSnapshot snap = sample_snapshot();
    EXPECT_EQ(snap.count(SitePhase::kHunting), 1u);
    EXPECT_EQ(snap.count(SitePhase::kDone), 1u);
    EXPECT_EQ(snap.finished_sites(), 1u);
    EXPECT_EQ(snap.ate_applications(), 220u);
    EXPECT_EQ(snap.cache_hits(), 40u);
    EXPECT_EQ(snap.cache_misses(), 80u);
}

TEST(ObsStatusFormatTest, RejectsEveryTruncation) {
    // A reader racing the writer must never half-load: every proper
    // prefix of a valid snapshot decodes to nullopt.
    const std::string bytes = encode_status(sample_snapshot());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(decode_status(std::string_view(bytes).substr(0, len)))
            << "prefix of length " << len << " decoded";
    }
}

TEST(ObsStatusFormatTest, RejectsEverySingleBitFlip) {
    // Checksummed envelope: no single bit flip anywhere (magic, payload,
    // or checksum) survives decode.
    const std::string bytes = encode_status(sample_snapshot());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
            EXPECT_FALSE(decode_status(mutated))
                << "flip at byte " << i << " bit " << bit << " decoded";
        }
    }
}

TEST(ObsStatusFormatTest, RejectsTrailingBytes) {
    std::string bytes = encode_status(sample_snapshot());
    bytes += '\0';
    EXPECT_FALSE(decode_status(bytes));
}

TEST(ObsStatusFormatTest, RejectsWrongMagicAndEmpty) {
    EXPECT_FALSE(decode_status(""));
    EXPECT_FALSE(decode_status("CISTAT2\n"));
    std::string bytes = encode_status(sample_snapshot());
    bytes[6] = '9';  // CISTAT9\n
    EXPECT_FALSE(decode_status(bytes));
}

TEST(ObsStatusFormatTest, PhaseNamesAndTerminality) {
    EXPECT_STREQ(to_string(SitePhase::kPending), "pending");
    EXPECT_STREQ(to_string(SitePhase::kHunting), "hunting");
    EXPECT_TRUE(is_terminal(SitePhase::kDone));
    EXPECT_TRUE(is_terminal(SitePhase::kQuarantined));
    EXPECT_TRUE(is_terminal(SitePhase::kDead));
    EXPECT_FALSE(is_terminal(SitePhase::kPending));
    EXPECT_FALSE(is_terminal(SitePhase::kTraining));
    EXPECT_FALSE(is_terminal(SitePhase::kHunting));
}

TEST(ObsStatusFormatTest, CacheHitRate) {
    SiteStatusEntry entry;
    EXPECT_DOUBLE_EQ(entry.cache_hit_rate(), 0.0);
    entry.cache_hits = 3;
    entry.cache_misses = 1;
    EXPECT_DOUBLE_EQ(entry.cache_hit_rate(), 0.75);
}

}  // namespace
}  // namespace cichar::obs
