#include "obs/fleet_view.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "dist/heartbeat.hpp"
#include "dist/shard_manifest.hpp"
#include "store/ledger_format.hpp"
#include "store/ledger_payloads.hpp"
#include "util/binio.hpp"

namespace cichar::obs {
namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

void backdate(const fs::path& path, int seconds) {
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(seconds));
}

SiteStatusEntry done_site(std::uint64_t site, double wcr, double trip) {
    SiteStatusEntry entry;
    entry.site = site;
    entry.phase = SitePhase::kDone;
    entry.generation = 14;
    entry.generations_total = 14;
    entry.ate_applications = 100;
    entry.cache_hits = 30;
    entry.cache_misses = 10;
    entry.elapsed_seconds = 2.0;
    SiteOutcomeEntry outcome;
    outcome.parameter = "T_DQ";
    outcome.found = true;
    outcome.trip_point = trip;
    outcome.wcr = wcr;
    entry.outcomes.push_back(outcome);
    return entry;
}

struct ObsFleetViewTest : ::testing::Test {
    ObsFleetViewTest() : dir("obs_fleet_test_dir") {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ObsFleetViewTest() override { fs::remove_all(dir); }

    fs::path dir;
};

TEST_F(ObsFleetViewTest, FusesWorkersManifestHeartbeatsAndAnomalies) {
    // Worker shard_0 finished its two sites; one of them is a WCR
    // outlier vs. the lot median.
    StatusSnapshot shard0;
    shard0.kind = "lot";
    shard0.fingerprint = "fp-fleet";
    shard0.seed = 7;
    shard0.sites_total = 4;
    shard0.sites.push_back(done_site(0, -3.0, 20.0));
    shard0.sites.push_back(done_site(1, -3.1, 20.5));
    shard0.completed_seconds = {2.0, 2.0};
    write_file(dir / "shard_0.status", encode_status(shard0));

    // Worker shard_1: one outlier site done, one mid-hunt — and its
    // snapshot has gone quiet long enough to count as stalled.
    StatusSnapshot shard1;
    shard1.kind = "lot";
    shard1.fingerprint = "fp-fleet";
    shard1.seed = 7;
    shard1.sites_total = 4;
    shard1.sites.push_back(done_site(2, -4.0, 26.0));
    SiteStatusEntry hunting;
    hunting.site = 3;
    hunting.phase = SitePhase::kHunting;
    hunting.generation = 7;
    hunting.generations_total = 14;
    hunting.best_wcr = -2.5;
    hunting.elapsed_seconds = 1.5;
    shard1.sites.push_back(hunting);
    shard1.completed_seconds = {2.5};
    write_file(dir / "shard_1.status", encode_status(shard1));
    backdate(dir / "shard_1.status", 120);

    // A torn snapshot must be counted and skipped, not fatal.
    write_file(dir / "torn.status", "CISTAT1\ngarbage");

    // Manifest + heartbeats: shard 0 done, shard 1 running but its
    // heartbeat stopped advancing two minutes ago.
    dist::ShardManifest manifest = dist::ShardManifest::partition(
        "fp-fleet", 4, 2, dir.string());
    manifest.shards[0].state = dist::ShardState::kDone;
    manifest.shards[1].state = dist::ShardState::kRunning;
    ASSERT_TRUE(manifest.save((dir / "manifest.bin").string()));
    write_file(manifest.shards[0].heartbeat, dist::format_heartbeat(2, 2, 28));
    write_file(manifest.shards[1].heartbeat, dist::format_heartbeat(1, 2, 21));
    backdate(manifest.shards[1].heartbeat, 120);

    const FleetModel model = fuse_run_directory(dir.string());

    // Workers: two decoded, one torn.
    ASSERT_EQ(model.workers.size(), 2u);
    EXPECT_EQ(model.torn_snapshots, 1u);
    EXPECT_EQ(model.workers[0].name, "shard_0");
    EXPECT_FALSE(model.workers[0].stalled);
    EXPECT_EQ(model.workers[1].name, "shard_1");
    EXPECT_TRUE(model.workers[1].stalled);

    // Manifest + heartbeat fusion: only the running shard is stalled.
    EXPECT_TRUE(model.has_manifest);
    ASSERT_EQ(model.heartbeats.size(), 2u);
    EXPECT_TRUE(model.heartbeats[0].parsed);
    EXPECT_EQ(model.heartbeats[0].info.sites_done, 2u);
    EXPECT_EQ(model.heartbeats[0].info.generation, 28u);
    EXPECT_FALSE(model.heartbeats[0].stalled);  // done shards never stall
    EXPECT_TRUE(model.heartbeats[1].parsed);
    EXPECT_TRUE(model.heartbeats[1].stalled);

    // Sites: 3 done + 1 hunting, ETA known for the live one.
    EXPECT_EQ(model.sites_total, 4u);
    EXPECT_EQ(model.sites_done, 3u);
    EXPECT_EQ(model.sites_running, 1u);
    ASSERT_EQ(model.sites.size(), 4u);
    EXPECT_EQ(model.sites[3].entry.site, 3u);
    EXPECT_GE(model.sites[3].eta_seconds, 0.0);
    EXPECT_DOUBLE_EQ(model.sites[0].eta_seconds, 0.0);

    // Partial lot report over the finished sites, outlier flagged.
    ASSERT_EQ(model.partials.size(), 1u);
    EXPECT_EQ(model.partials[0].parameter, "T_DQ");
    EXPECT_EQ(model.partials[0].sites, 3u);
    EXPECT_DOUBLE_EQ(model.partials[0].trip_spread, 6.0);
    ASSERT_EQ(model.partials[0].outlier_sites.size(), 1u);
    EXPECT_EQ(model.partials[0].outlier_sites[0], 2u);

    // Anomalies: WCR outlier, stalled worker, stalled shard, torn file.
    std::string joined;
    for (const std::string& anomaly : model.anomalies) {
        joined += anomaly + "\n";
    }
    EXPECT_NE(joined.find("WCR outlier: site 2"), std::string::npos)
        << joined;
    EXPECT_NE(joined.find("stalled worker: shard_1"), std::string::npos)
        << joined;
    EXPECT_NE(joined.find("stalled shard 1"), std::string::npos) << joined;
    EXPECT_NE(joined.find("torn snapshot file(s): 1"), std::string::npos)
        << joined;

    // Both renderings carry the load-bearing facts.
    const std::string text = render_fleet_text(model);
    EXPECT_NE(text.find("3/4 finished"), std::string::npos) << text;
    EXPECT_NE(text.find("hunting"), std::string::npos);
    EXPECT_NE(text.find("WCR-OUTLIER"), std::string::npos);
    const std::string json = render_fleet_json(model);
    EXPECT_NE(json.find("\"sites_done\":3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"torn_snapshots\":1"), std::string::npos);
    EXPECT_NE(json.find("\"parameter\":\"T_DQ\""), std::string::npos);
    const std::string top = render_fleet_top(model);
    EXPECT_NE(top.find("cichar top"), std::string::npos);
    EXPECT_NE(top.find("3/4 sites"), std::string::npos) << top;
}

TEST_F(ObsFleetViewTest, QuarantineSpikeIsFlagged) {
    StatusSnapshot snap;
    snap.kind = "lot";
    snap.sites_total = 2;
    snap.sites.push_back(done_site(0, -3.0, 20.0));
    SiteStatusEntry quarantined;
    quarantined.site = 1;
    quarantined.phase = SitePhase::kQuarantined;
    snap.sites.push_back(quarantined);
    write_file(dir / "lot.status", encode_status(snap));

    const FleetModel model = fuse_run_directory(dir.string());
    EXPECT_EQ(model.sites_quarantined, 1u);
    std::string joined;
    for (const std::string& anomaly : model.anomalies) {
        joined += anomaly + "\n";
    }
    EXPECT_NE(joined.find("quarantine spike"), std::string::npos) << joined;
}

TEST_F(ObsFleetViewTest, DuplicateSitesResolveToFurthestAlong) {
    // Two workers report site 0 (e.g. a reissued shard): the terminal
    // entry must win over the stale live one.
    StatusSnapshot stale;
    stale.kind = "lot";
    stale.sites_total = 1;
    SiteStatusEntry live;
    live.site = 0;
    live.phase = SitePhase::kHunting;
    live.generation = 3;
    live.generations_total = 14;
    stale.sites.push_back(live);
    write_file(dir / "a.status", encode_status(stale));

    StatusSnapshot fresh;
    fresh.kind = "lot";
    fresh.sites_total = 1;
    fresh.sites.push_back(done_site(0, -3.0, 20.0));
    write_file(dir / "b.status", encode_status(fresh));

    const FleetModel model = fuse_run_directory(dir.string());
    ASSERT_EQ(model.sites.size(), 1u);
    EXPECT_EQ(model.sites[0].entry.phase, SitePhase::kDone);
    EXPECT_EQ(model.sites[0].worker, "b");
}

TEST_F(ObsFleetViewTest, EmptyDirectoryDegradesGracefully) {
    const FleetModel model = fuse_run_directory(dir.string());
    EXPECT_TRUE(model.workers.empty());
    EXPECT_TRUE(model.sites.empty());
    EXPECT_FALSE(model.has_manifest);
    EXPECT_TRUE(model.anomalies.empty());
    // Rendering an empty model must not throw or divide by zero.
    EXPECT_FALSE(render_fleet_text(model).empty());
    EXPECT_FALSE(render_fleet_json(model).empty());
    EXPECT_FALSE(render_fleet_top(model).empty());
}

TEST_F(ObsFleetViewTest, TailsLedgerReadOnly) {
    // Hand-assemble a one-segment ledger with two trip records and a
    // torn tail; the tail must be read without mutating the file.
    std::string segment = store::encode_segment_header(0);
    for (int i = 0; i < 2; ++i) {
        store::TripRecordPayload payload;
        payload.site = static_cast<std::uint64_t>(i);
        payload.parameter = "T_DQ";
        payload.margin_risk = 0.25;
        payload.record.test_name = "t";
        payload.record.trip_point = 20.0 + i;
        payload.record.wcr = -3.0 - i;
        payload.record.found = true;
        store::LedgerRecord record;
        record.type = store::RecordType::kTripRecord;
        record.campaign = 1;
        record.sequence = static_cast<std::uint64_t>(i + 1);
        record.payload = store::encode_trip_record(payload);
        store::encode_record(segment, record);
    }
    const std::string clean = segment;
    segment += "torn-tail-bytes";
    const fs::path ledger_dir = dir / "ledger";
    fs::create_directories(ledger_dir);
    const fs::path segment_path = ledger_dir / store::segment_file_name(0);
    write_file(segment_path, segment);

    FleetViewOptions options;
    options.ledger_dir = ledger_dir.string();
    options.ledger_tail = 1;
    const FleetModel model = fuse_run_directory(dir.string(), options);
    ASSERT_EQ(model.ledger_tail.size(), 1u);  // capped to the newest
    EXPECT_EQ(model.ledger_tail[0].site, 1u);
    EXPECT_DOUBLE_EQ(model.ledger_tail[0].trip_point, 21.0);
    EXPECT_DOUBLE_EQ(model.ledger_tail[0].wcr, -4.0);

    // Read-only contract: the torn tail is still on disk afterwards.
    const auto after = util::read_file(segment_path.string());
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*after, segment);
    EXPECT_NE(*after, clean);
}

}  // namespace
}  // namespace cichar::obs
