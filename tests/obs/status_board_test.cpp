#include "obs/status_board.hpp"

#include <gtest/gtest.h>

namespace cichar::obs {
namespace {

GenerationPost sample_post(std::uint64_t generation) {
    GenerationPost post;
    post.generation = generation;
    post.generations_total = 14;
    post.evaluations = 10 * generation;
    post.best_wcr = -2.0 - static_cast<double>(generation);
    post.ate_applications = 25 * generation;
    post.cache_hits = 4 * generation;
    post.cache_misses = generation;
    post.inflight = 4;
    return post;
}

struct ObsStatusBoardTest : ::testing::Test {
    ObsStatusBoardTest() { StatusBoard::instance().reset_for_test(); }
    ~ObsStatusBoardTest() override {
        StatusBoard::instance().reset_for_test();
        set_status_enabled(false);
    }
};

TEST_F(ObsStatusBoardTest, FeedIsOffByDefault) {
    EXPECT_FALSE(status_enabled());
    set_status_enabled(true);
    EXPECT_TRUE(status_enabled());
    set_status_enabled(false);
    EXPECT_FALSE(status_enabled());
}

TEST_F(ObsStatusBoardTest, CampaignIdentityAndSequence) {
    StatusBoard& board = StatusBoard::instance();
    board.begin_campaign("lot", "fp-abc", 77, 4);
    StatusSnapshot first = board.snapshot();
    EXPECT_EQ(first.kind, "lot");
    EXPECT_EQ(first.fingerprint, "fp-abc");
    EXPECT_EQ(first.seed, 77u);
    EXPECT_EQ(first.sites_total, 4u);
    EXPECT_NE(first.pid, 0u);
    EXPECT_GE(first.uptime_seconds, 0.0);
    StatusSnapshot second = board.snapshot();
    EXPECT_GT(second.sequence, first.sequence);
}

TEST_F(ObsStatusBoardTest, SiteLifecyclePhases) {
    StatusBoard& board = StatusBoard::instance();
    board.begin_campaign("lot", "fp", 1, 2);

    board.begin_site(0);
    StatusSnapshot snap = board.snapshot();
    ASSERT_EQ(snap.sites.size(), 1u);
    EXPECT_EQ(snap.sites[0].phase, SitePhase::kTraining);

    board.post_generation(0, sample_post(3));
    snap = board.snapshot();
    EXPECT_EQ(snap.sites[0].phase, SitePhase::kHunting);
    EXPECT_EQ(snap.sites[0].generation, 3u);
    EXPECT_EQ(snap.sites[0].generations_total, 14u);
    EXPECT_EQ(snap.sites[0].evaluations, 30u);
    EXPECT_EQ(snap.sites[0].ate_applications, 75u);
    EXPECT_EQ(snap.sites[0].cache_hits, 12u);
    EXPECT_EQ(snap.sites[0].inflight, 4u);
    EXPECT_GE(snap.sites[0].elapsed_seconds, 0.0);

    SiteOutcomeEntry outcome;
    outcome.parameter = "T_DQ";
    outcome.found = true;
    outcome.trip_point = 21.5;
    outcome.wcr = -3.0;
    board.site_finished(0, SitePhase::kDone, {outcome}, 2.5,
                        /*policy_retries=*/2, /*policy_interventions=*/1);
    snap = board.snapshot();
    EXPECT_EQ(snap.sites[0].phase, SitePhase::kDone);
    ASSERT_EQ(snap.sites[0].outcomes.size(), 1u);
    EXPECT_EQ(snap.sites[0].outcomes[0], outcome);
    EXPECT_DOUBLE_EQ(snap.sites[0].elapsed_seconds, 2.5);
    EXPECT_EQ(snap.policy_retries, 2u);
    EXPECT_EQ(snap.policy_interventions, 1u);
    ASSERT_EQ(snap.completed_seconds.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.completed_seconds[0], 2.5);
    EXPECT_EQ(snap.finished_sites(), 1u);
}

TEST_F(ObsStatusBoardTest, RestoredSitesDoNotFeedEtaHistogram) {
    StatusBoard& board = StatusBoard::instance();
    board.begin_campaign("lot", "fp", 1, 2);
    board.site_finished(0, SitePhase::kDone, {}, 0.0, 0, 0,
                        /*restored=*/true);
    const StatusSnapshot snap = board.snapshot();
    ASSERT_EQ(snap.sites.size(), 1u);
    EXPECT_EQ(snap.sites[0].phase, SitePhase::kDone);
    EXPECT_TRUE(snap.completed_seconds.empty());
}

TEST_F(ObsStatusBoardTest, QuarantineCountsAsFinished) {
    StatusBoard& board = StatusBoard::instance();
    board.begin_campaign("lot", "fp", 1, 3);
    board.site_finished(1, SitePhase::kQuarantined, {}, 1.0, 0, 4);
    const StatusSnapshot snap = board.snapshot();
    EXPECT_EQ(snap.count(SitePhase::kQuarantined), 1u);
    EXPECT_EQ(snap.finished_sites(), 1u);
    // Quarantined sites never enter the completion-time histogram.
    EXPECT_TRUE(snap.completed_seconds.empty());
}

TEST_F(ObsStatusBoardTest, BeginCampaignResetsState) {
    StatusBoard& board = StatusBoard::instance();
    board.begin_campaign("lot", "fp-a", 1, 2);
    board.begin_site(0);
    board.site_finished(0, SitePhase::kDone, {}, 1.0, 5, 5);
    board.begin_campaign("hunt", "fp-b", 2, 1);
    const StatusSnapshot snap = board.snapshot();
    EXPECT_EQ(snap.kind, "hunt");
    EXPECT_EQ(snap.fingerprint, "fp-b");
    EXPECT_TRUE(snap.sites.empty());
    EXPECT_EQ(snap.policy_retries, 0u);
    EXPECT_TRUE(snap.completed_seconds.empty());
}

}  // namespace
}  // namespace cichar::obs
