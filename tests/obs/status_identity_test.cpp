// The invisibility contract, proven at the library level: running the
// exact same hunt or lot with the status feed enabled (board posts on
// every GA generation + a background snapshot writer racing the run)
// must produce byte-identical reports and ledgers to a run with the
// feed off, at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/optimizer.hpp"
#include "device/memory_chip.hpp"
#include "lot/lot_report.hpp"
#include "lot/lot_runner.hpp"
#include "obs/status_board.hpp"
#include "obs/status_writer.hpp"

namespace cichar::obs {
namespace {

namespace fs = std::filesystem;

lot::LotOptions fast_lot(std::size_t sites, std::size_t jobs) {
    lot::LotOptions options;
    options.sites = sites;
    options.jobs = jobs;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    return options;
}

struct LotArtifacts {
    std::string report;
    std::string ledger;
};

LotArtifacts run_lot(std::size_t jobs, bool with_feed) {
    StatusBoard::instance().reset_for_test();
    set_status_enabled(with_feed);
    LotArtifacts artifacts;
    if (with_feed) {
        const fs::path dir = "obs_identity_feed_dir";
        fs::remove_all(dir);
        StatusWriterOptions writer_options;
        writer_options.directory = dir.string();
        writer_options.name = "lot";
        writer_options.interval_seconds = 0.005;  // hammer the board
        StatusWriter writer(std::move(writer_options));
        const lot::LotResult result =
            lot::LotRunner(fast_lot(3, jobs)).run();
        artifacts.report = lot::LotReport::build(result).render();
        artifacts.ledger = result.merged_log.report();
        writer.stop();
        fs::remove_all(dir);
    } else {
        const lot::LotResult result =
            lot::LotRunner(fast_lot(3, jobs)).run();
        artifacts.report = lot::LotReport::build(result).render();
        artifacts.ledger = result.merged_log.report();
    }
    set_status_enabled(false);
    StatusBoard::instance().reset_for_test();
    return artifacts;
}

TEST(ObsIdentityTest, LotReportIsByteIdenticalWithFeedOnSerial) {
    const LotArtifacts off = run_lot(1, /*with_feed=*/false);
    const LotArtifacts on = run_lot(1, /*with_feed=*/true);
    EXPECT_EQ(off.report, on.report);
    EXPECT_EQ(off.ledger, on.ledger);
}

TEST(ObsIdentityTest, LotReportIsByteIdenticalWithFeedOnParallel) {
    const LotArtifacts off = run_lot(4, /*with_feed=*/false);
    const LotArtifacts on = run_lot(4, /*with_feed=*/true);
    EXPECT_EQ(off.report, on.report);
    EXPECT_EQ(off.ledger, on.ledger);
}

core::OptimizerOptions fast_hunt(bool parallel) {
    core::OptimizerOptions options;
    options.ga.population.size = 10;
    options.ga.populations = 2;
    options.ga.max_generations = 6;
    options.ga.max_restarts = 1;
    options.parallel.enabled = parallel;
    options.parallel.jobs = 4;
    return options;
}

core::WorstCaseReport run_hunt(bool parallel, bool with_feed) {
    StatusBoard::instance().reset_for_test();
    set_status_enabled(with_feed);
    device::MemoryChipOptions chip_options;
    chip_options.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_options);
    ate::Tester tester(chip);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    util::Rng rng(2005);
    core::OptimizerOptions options = fast_hunt(parallel);
    if (with_feed) {
        StatusBoard::instance().begin_campaign("hunt", "fp-id", 2005, 1);
        options.on_generation = [](const core::HuntProgress& hunt) {
            GenerationPost post;
            post.generation = hunt.next_generation;
            post.generations_total = hunt.max_generations;
            post.evaluations = hunt.evaluations;
            post.best_wcr = hunt.best_fitness;
            post.ate_applications = hunt.ate_applications;
            post.cache_hits = hunt.cache.hits;
            post.cache_misses = hunt.cache.misses;
            post.inflight = hunt.inflight;
            StatusBoard::instance().post_generation(0, post);
        };
    }
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const core::WorstCaseReport report = core::WorstCaseOptimizer(options)
        .run_unseeded(tester, param, generator,
                      core::objective_for(param), rng);
    set_status_enabled(false);
    StatusBoard::instance().reset_for_test();
    return report;
}

void expect_same_hunt(const core::WorstCaseReport& a,
                      const core::WorstCaseReport& b) {
    EXPECT_DOUBLE_EQ(a.worst_record.trip_point, b.worst_record.trip_point);
    EXPECT_DOUBLE_EQ(a.worst_record.wcr, b.worst_record.wcr);
    EXPECT_EQ(a.worst_record.found, b.worst_record.found);
    EXPECT_EQ(a.outcome.evaluations, b.outcome.evaluations);
    EXPECT_DOUBLE_EQ(a.outcome.best_fitness, b.outcome.best_fitness);
    EXPECT_EQ(a.ate_measurements, b.ate_measurements);
}

TEST(ObsIdentityTest, HuntIsUnchangedByProgressHookSerial) {
    expect_same_hunt(run_hunt(/*parallel=*/false, /*with_feed=*/false),
                     run_hunt(/*parallel=*/false, /*with_feed=*/true));
}

TEST(ObsIdentityTest, HuntIsUnchangedByProgressHookParallel) {
    expect_same_hunt(run_hunt(/*parallel=*/true, /*with_feed=*/false),
                     run_hunt(/*parallel=*/true, /*with_feed=*/true));
}

}  // namespace
}  // namespace cichar::obs
