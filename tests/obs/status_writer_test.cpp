#include "obs/status_writer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <optional>
#include <thread>

#include "obs/status_board.hpp"
#include "obs/status_format.hpp"
#include "util/binio.hpp"

namespace cichar::obs {
namespace {

namespace fs = std::filesystem;

struct ObsStatusWriterTest : ::testing::Test {
    ObsStatusWriterTest() : dir("obs_writer_test_dir") {
        fs::remove_all(dir);
        StatusBoard::instance().reset_for_test();
        set_status_enabled(true);
    }
    ~ObsStatusWriterTest() override {
        set_status_enabled(false);
        StatusBoard::instance().reset_for_test();
        fs::remove_all(dir);
    }

    std::optional<StatusSnapshot> read_snapshot(const std::string& path) {
        const auto contents = util::read_file(path);
        if (!contents) return std::nullopt;
        return decode_status(*contents);
    }

    fs::path dir;
};

TEST_F(ObsStatusWriterTest, PublishesImmediatelyAndOnStop) {
    StatusBoard::instance().begin_campaign("lot", "fp-writer", 7, 2);

    StatusWriterOptions options;
    options.directory = dir.string();
    options.name = "worker_a";
    options.interval_seconds = 60.0;  // only the immediate + final writes
    StatusWriter writer(std::move(options));
    EXPECT_EQ(writer.path(), (dir / "worker_a.status").string());

    // The first snapshot is published on construction, not a tick later.
    for (int i = 0; i < 200 && !fs::exists(writer.path()); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    auto first = read_snapshot(writer.path());
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->kind, "lot");
    EXPECT_EQ(first->fingerprint, "fp-writer");

    // stop() joins and republishes the terminal state.
    StatusBoard::instance().site_finished(0, SitePhase::kDone, {}, 1.0, 0,
                                          0);
    writer.stop();
    auto final_snap = read_snapshot(writer.path());
    ASSERT_TRUE(final_snap.has_value());
    EXPECT_GT(final_snap->sequence, first->sequence);
    EXPECT_EQ(final_snap->finished_sites(), 1u);
    writer.stop();  // idempotent
}

TEST_F(ObsStatusWriterTest, TicksOnIntervalAndFiresOnTick) {
    StatusBoard::instance().begin_campaign("hunt", "fp-tick", 1, 1);

    std::atomic<int> ticks{0};
    StatusWriterOptions options;
    options.directory = dir.string();
    options.name = "worker_b";
    options.interval_seconds = 0.02;
    options.on_tick = [&ticks] { ++ticks; };
    StatusWriter writer(std::move(options));

    for (int i = 0; i < 500 && ticks.load() < 3; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    writer.stop();
    EXPECT_GE(ticks.load(), 3);

    auto snap = read_snapshot(writer.path());
    ASSERT_TRUE(snap.has_value());
    EXPECT_GE(snap->sequence, 2u);
}

TEST_F(ObsStatusWriterTest, WriteNowIsAtomicAndDecodable) {
    StatusBoard::instance().begin_campaign("lot", "fp-now", 3, 8);
    StatusWriterOptions options;
    options.directory = dir.string();
    options.name = "worker_c";
    options.interval_seconds = 60.0;
    StatusWriter writer(std::move(options));
    writer.write_now();
    auto snap = read_snapshot(writer.path());
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->sites_total, 8u);
    // No stray temp files linger after a publish.
    writer.stop();
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

}  // namespace
}  // namespace cichar::obs
