// The telemetry determinism contract: with the registry and tracing
// enabled, hunt and lot results (rendered reports and ledgers) are
// byte-identical to a telemetry-off run at any jobs count. Timestamps
// and counters live only in the out-of-band stream.
#include <string>

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "device/memory_chip.hpp"
#include "lot/lot_report.hpp"
#include "lot/lot_runner.hpp"
#include "util/telemetry.hpp"

namespace cichar {
namespace {

namespace telem = util::telemetry;

/// Runs `body()` with both telemetry switches in the given state,
/// restoring the default-off state (and clearing trace/metric values)
/// afterwards so tests never leak into each other.
std::string with_telemetry(bool enabled, const auto& body) {
    telem::set_metrics_enabled(enabled);
    telem::set_tracing_enabled(enabled);
    const std::string rendered = body();
    telem::set_metrics_enabled(false);
    telem::set_tracing_enabled(false);
    telem::Registry::instance().reset_values();
    telem::Trace::instance().clear();
    return rendered;
}

std::string run_hunt(std::size_t jobs, std::size_t inflight = 1) {
    device::MemoryChipOptions chip_options;
    chip_options.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, chip_options);
    ate::Tester tester(chip);
    util::Rng rng(2005);
    testgen::RandomGeneratorOptions generator;
    generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();

    core::OptimizerOptions opts;
    opts.ga.population.size = 8;
    opts.ga.populations = 2;
    opts.ga.max_generations = 6;
    opts.parallel.enabled = jobs != 1 || inflight > 1;
    opts.parallel.jobs = jobs;
    opts.parallel.inflight = inflight;
    opts.cache.enabled = true;
    const core::WorstCaseOptimizer optimizer(opts);

    const core::WorstCaseReport report = optimizer.run_unseeded(
        tester, ate::Parameter::data_valid_time(), generator,
        core::Objective::kDriftToMinimum, rng);
    core::ReportInputs inputs;
    inputs.seed = 2005;
    inputs.hunt = &report;
    inputs.ledger = &tester.log();
    return core::render_report(inputs);
}

std::string run_lot(std::size_t jobs) {
    lot::LotOptions options;
    options.sites = 3;
    options.jobs = jobs;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    const lot::LotResult result = lot::LotRunner(options).run();
    return lot::LotReport::build(result).render() +
           result.merged_log.report();
}

TEST(TelemetryIdentityTest, HuntReportIdenticalTelemetryOnVsOff) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        const std::string off = with_telemetry(false, [&] {
            return run_hunt(jobs);
        });
        const std::string on = with_telemetry(true, [&] {
            return run_hunt(jobs);
        });
        EXPECT_EQ(off, on) << "jobs=" << jobs;
    }
}

TEST(TelemetryIdentityTest, AsyncHuntReportIdenticalTelemetryOnVsOff) {
    // The async pipeline's queue metrics (in-flight gauge, wait histogram,
    // reorder counter) must be as contractually invisible as the rest of
    // the registry.
    const std::string off = with_telemetry(false, [&] {
        return run_hunt(4, 8);
    });
    const std::string on = with_telemetry(true, [&] {
        return run_hunt(4, 8);
    });
    EXPECT_EQ(off, on);
}

TEST(TelemetryIdentityTest, LotReportIdenticalTelemetryOnVsOff) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        const std::string off = with_telemetry(false, [&] {
            return run_lot(jobs);
        });
        const std::string on = with_telemetry(true, [&] {
            return run_lot(jobs);
        });
        EXPECT_EQ(off, on) << "jobs=" << jobs;
    }
}

TEST(TelemetryIdentityTest, TelemetryOnActuallyRecords) {
    // Guard against the identity tests passing vacuously: the enabled run
    // must populate counters and spans.
    telem::set_metrics_enabled(true);
    telem::set_tracing_enabled(true);
    (void)run_hunt(2);
    telem::set_metrics_enabled(false);
    telem::set_tracing_enabled(false);

    EXPECT_GT(telem::Registry::instance()
                  .counter("cichar_ate_measurements_total")
                  .value(),
              0u);
    EXPECT_GT(telem::Registry::instance()
                  .counter("cichar_hunt_evaluations_total")
                  .value(),
              0u);
    EXPECT_GT(telem::Trace::instance().event_count(), 0u);
    telem::Registry::instance().reset_values();
    telem::Trace::instance().clear();
}

TEST(TelemetryIdentityTest, AsyncQueueMetricsActuallyRecord) {
    // Guard the async identity test against passing vacuously: an enabled
    // inflight>1 hunt must populate the queue-wait histogram.
    telem::set_metrics_enabled(true);
    (void)run_hunt(2, 8);
    telem::set_metrics_enabled(false);

    EXPECT_GT(telem::Registry::instance()
                  .histogram("cichar_ate_async_queue_wait_ns", {})
                  .snapshot()
                  .count,
              0u);
    telem::Registry::instance().reset_values();
}

}  // namespace
}  // namespace cichar
