// Cross-module edge cases: the awkward corners a production user hits —
// degenerate ranges, tiny budgets, saved artifacts crossing module
// boundaries, and devices at the edge of their search windows.
#include <gtest/gtest.h>

#include <sstream>

#include "ate/search.hpp"
#include "ate/search_until_trip.hpp"
#include "core/multi_trip.hpp"
#include "ga/population.hpp"
#include "device/presets.hpp"
#include "testgen/features.hpp"
#include "testgen/pattern_io.hpp"
#include "testgen/random_gen.hpp"

namespace cichar {
namespace {

ate::Oracle oracle_with_trip(const ate::Parameter& p, double trip) {
    return [p, trip](double setting) {
        return p.fail_high ? setting <= trip : setting >= trip;
    };
}

TEST(SearchEdgeTest, LinearStepLargerThanRange) {
    ate::Parameter p = ate::Parameter::data_valid_time();  // 15..45
    const ate::LinearSearch coarse(100.0);
    const ate::SearchResult r = coarse.find(oracle_with_trip(p, 30.0), p);
    // Only the start point fits in the range; it passes, so no trip is
    // bracketed — reported honestly as not found.
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.measurements, 1u);
}

TEST(SearchEdgeTest, ResolutionCoarserThanRange) {
    ate::Parameter p = ate::Parameter::data_valid_time();
    p.resolution = 100.0;  // one bucket for the whole range
    const ate::BinarySearch search;
    const ate::SearchResult r = search.find(oracle_with_trip(p, 30.0), p);
    // Endpoint checks disagree; the interval cannot be split on the grid.
    EXPECT_TRUE(r.found);
    EXPECT_LE(r.measurements, 3u);
}

TEST(SearchEdgeTest, TripExactlyAtRangeEdges) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    // Trip at the very start: everything except the start fails.
    const ate::BinarySearch search;
    const ate::SearchResult at_start =
        search.find(oracle_with_trip(p, p.search_start), p);
    EXPECT_TRUE(at_start.found);
    EXPECT_NEAR(at_start.trip_point, p.search_start, p.resolution + 1e-9);
    // Trip at the very end: nothing fails -> no crossover to report.
    const ate::SearchResult at_end =
        search.find(oracle_with_trip(p, p.search_end), p);
    EXPECT_FALSE(at_end.found);
}

TEST(SearchEdgeTest, UntilTripWithoutRefineErrorBoundedBySf) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    ate::SearchUntilTrip::Options opts;
    opts.search_factor = 0.5;
    opts.growth = ate::SearchFactorGrowth::kLinear;
    opts.refine = false;
    const ate::SearchUntilTrip search(opts, 30.0);
    for (const double trip : {30.3, 31.1, 32.8}) {
        const ate::SearchResult r = search.find(oracle_with_trip(p, trip), p);
        ASSERT_TRUE(r.found) << trip;
        // Without refinement the answer is the last passing SF step: at
        // most one SF below the true trip.
        EXPECT_LE(r.trip_point, trip + 1e-9) << trip;
        EXPECT_GE(r.trip_point, trip - opts.search_factor - 1e-9) << trip;
    }
}

TEST(SearchEdgeTest, ZeroIterationBudgetReportsNotFound) {
    const ate::Parameter p = ate::Parameter::data_valid_time();
    ate::SearchUntilTrip::Options opts;
    opts.max_iterations = 0;
    const ate::SearchUntilTrip search(opts, 30.0);
    const ate::SearchResult r = search.find(oracle_with_trip(p, 35.0), p);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.measurements, 1u);  // only the RTP probe
}

TEST(PatternRoundTripTest, FeaturesSurviveSaveLoad) {
    // Features computed from a reloaded pattern are bit-identical — the
    // contract that makes exported worst-case tests re-analyzable.
    testgen::RandomTestGenerator gen;
    util::Rng rng(9);
    const testgen::PatternRecipe recipe = gen.random_recipe(rng);
    const testgen::TestPattern original = gen.expand(recipe, "roundtrip");
    std::stringstream stream;
    testgen::save_pattern(stream, original);
    const testgen::TestPattern loaded = testgen::load_pattern(stream);
    EXPECT_EQ(testgen::extract_pattern_features(original).values,
              testgen::extract_pattern_features(loaded).values);
}

TEST(DeviceEdgeTest, ReloadedPatternTripsIdentically) {
    device::MemoryTestChip chip = device::presets::noiseless();
    testgen::RandomTestGenerator gen;
    util::Rng rng(10);
    const testgen::Test original = gen.random_test(rng, "dut-roundtrip");
    std::stringstream stream;
    testgen::save_pattern(stream, original.pattern);
    testgen::Test reloaded = original;
    reloaded.pattern = testgen::load_pattern(stream);
    EXPECT_DOUBLE_EQ(
        chip.true_parameter(original, device::ParameterKind::kDataValidTime),
        chip.true_parameter(reloaded,
                            device::ParameterKind::kDataValidTime));
}

TEST(SessionEdgeTest, EmptyPatternTestStillMeasures) {
    // A degenerate test with no cycles: no stress features, so the trip
    // point equals the die's intrinsic window.
    device::MemoryTestChip chip = device::presets::noiseless();
    ate::Tester tester(chip);
    core::TripSession session(tester, ate::Parameter::data_valid_time(),
                              core::MultiTripOptions{});
    testgen::Test empty;
    empty.name = "empty";
    const core::TripPointRecord r = session.measure(empty);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, chip.die().window_ns, 0.2);
}

TEST(SessionEdgeTest, SingleTestDsvStatisticsDegenerate) {
    device::MemoryTestChip chip = device::presets::noiseless();
    ate::Tester tester(chip);
    const core::MultiTripCharacterizer characterizer;
    testgen::RandomTestGenerator gen;
    util::Rng rng(11);
    const std::vector<testgen::Test> one{gen.random_test(rng, "solo")};
    const core::DesignSpecVariation dsv = characterizer.characterize(
        tester, ate::Parameter::data_valid_time(), one);
    EXPECT_EQ(dsv.size(), 1u);
    EXPECT_DOUBLE_EQ(dsv.trip_spread(), 0.0);
    EXPECT_DOUBLE_EQ(dsv.trip_summary().median, dsv.worst().trip_point);
}

TEST(RecipeEdgeTest, MinEqualsMaxCycles) {
    testgen::RandomGeneratorOptions opts;
    opts.min_cycles = 250;
    opts.max_cycles = 250;
    testgen::RandomTestGenerator gen(opts);
    util::Rng rng(12);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(gen.random_test(rng).pattern.size(), 250u);
    }
    // Gene encoding of the collapsed range is well-defined.
    const testgen::PatternRecipe r = gen.random_recipe(rng);
    const auto genes = r.encode(250, 250);
    EXPECT_EQ(testgen::PatternRecipe::decode(genes, 250, 250).cycles, 250u);
}

TEST(GaEdgeTest, FitnessTiesHandledByElitism) {
    // All-equal fitness: evolution must not crash or lose individuals.
    util::Rng rng(13);
    ga::PopulationOptions opts;
    opts.size = 8;
    opts.elite = 2;
    ga::Population pop(opts, {}, rng);
    const ga::FitnessFn flat = [](const ga::TestChromosome&) { return 1.0; };
    (void)pop.evaluate(flat);
    for (int g = 0; g < 5; ++g) (void)pop.step(flat, rng);
    EXPECT_EQ(pop.size(), 8u);
    EXPECT_DOUBLE_EQ(pop.best().fitness, 1.0);
}

}  // namespace
}  // namespace cichar
