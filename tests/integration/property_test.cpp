// Cross-cutting property suites: invariants that must hold across all
// parameters, noise levels, and seeds — the glue-level guarantees the
// characterization flows rely on.
#include <gtest/gtest.h>

#include "core/characterizer.hpp"
#include "device/memory_chip.hpp"
#include "testgen/random_gen.hpp"

namespace cichar {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    o.noise_sigma_mhz = 0.0;
    o.noise_sigma_v = 0.0;
    return o;
}

ate::Parameter parameter_of(device::ParameterKind kind) {
    switch (kind) {
        case device::ParameterKind::kDataValidTime:
            return ate::Parameter::data_valid_time();
        case device::ParameterKind::kMaxFrequency:
            return ate::Parameter::max_frequency();
        case device::ParameterKind::kMinVdd:
            return ate::Parameter::min_vdd();
    }
    return ate::Parameter::data_valid_time();
}

// ---------------------------------------------------------------------
// Property: for EVERY supported parameter, the full multi-trip stack
// converges to the device's ground truth within twice the tester
// resolution, and WCR classification is consistent with the spec.
class ParameterSweepTest
    : public ::testing::TestWithParam<device::ParameterKind> {};

TEST_P(ParameterSweepTest, MultiTripMatchesGroundTruth) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    const ate::Parameter param = parameter_of(GetParam());
    core::TripSession session(tester, param, core::MultiTripOptions{});

    testgen::RandomTestGenerator generator;
    util::Rng rng(31);
    for (int i = 0; i < 12; ++i) {
        const testgen::Test test =
            generator.random_test(rng, "p" + std::to_string(i));
        const core::TripPointRecord record = session.measure(test);
        ASSERT_TRUE(record.found) << param.name << " test " << i;
        const double truth = chip.true_parameter(test, param.kind);
        EXPECT_NEAR(record.trip_point, truth, 2.0 * param.resolution)
            << param.name << " test " << i;
        // The trip point estimate sits on the PASS side of the truth.
        if (param.fail_high) {
            EXPECT_LE(record.trip_point, truth + param.resolution);
        } else {
            EXPECT_GE(record.trip_point, truth - param.resolution);
        }
        EXPECT_EQ(record.wcr_class, ga::classify(record.wcr));
    }
}

TEST_P(ParameterSweepTest, WcrDirectionConsistent) {
    // Worsening the measured value (toward the spec) must increase WCR.
    const ate::Parameter param = parameter_of(GetParam());
    const double mid =
        0.5 * (param.search_start + param.search_end);
    const double toward_spec =
        param.spec_type == ate::SpecType::kMinLimit ? mid * 0.9 : mid * 1.1;
    EXPECT_GT(core::worst_case_ratio(param, toward_spec),
              core::worst_case_ratio(param, mid));
}

INSTANTIATE_TEST_SUITE_P(
    AllParameters, ParameterSweepTest,
    ::testing::Values(device::ParameterKind::kDataValidTime,
                      device::ParameterKind::kMaxFrequency,
                      device::ParameterKind::kMinVdd),
    [](const auto& suite_info) {
        return std::string(device::to_string(suite_info.param)) == "T_DQ"
                   ? "Tdq"
                   : std::string(device::to_string(suite_info.param));
    });

// ---------------------------------------------------------------------
// Property: measurement noise shifts trip points by O(sigma), never
// breaks convergence.
class NoiseSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweepTest, SearchConvergesUnderNoise) {
    device::MemoryChipOptions opts;
    opts.noise_sigma_ns = GetParam();
    device::MemoryTestChip chip({}, opts);
    ate::Tester tester(chip);
    const ate::Parameter param = ate::Parameter::data_valid_time();
    core::TripSession session(tester, param, core::MultiTripOptions{});

    testgen::RandomTestGenerator generator;
    util::Rng rng(17);
    for (int i = 0; i < 8; ++i) {
        const testgen::Test test =
            generator.random_test(rng, "n" + std::to_string(i));
        const core::TripPointRecord record = session.measure(test);
        ASSERT_TRUE(record.found);
        const double truth = chip.true_parameter(
            test, device::ParameterKind::kDataValidTime);
        // Allow a handful of sigmas plus the grid resolution.
        EXPECT_NEAR(record.trip_point, truth,
                    5.0 * GetParam() + 2.0 * param.resolution);
    }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseSweepTest,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10, 0.20));

// ---------------------------------------------------------------------
// Property: the ledger conserves counts — the total equals the sum over
// phases, with every flow contributing to its named phase.
TEST(LedgerConservationTest, PhasesSumToTotal) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    core::CharacterizerOptions options;
    options.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.learner.training_tests = 30;
    options.learner.committee.members = 2;
    options.learner.committee.train.max_epochs = 40;
    options.optimizer.ga.population.size = 8;
    options.optimizer.ga.populations = 1;
    options.optimizer.ga.max_generations = 3;
    options.optimizer.nn_candidates = 50;
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), options);
    util::Rng rng(5);
    (void)characterizer.run_full(rng);
    (void)characterizer.characterize_random(5, rng);

    std::uint64_t phase_sum = 0;
    for (const std::string& phase : tester.log().phases()) {
        phase_sum += tester.log().phase_counters(phase).applications;
    }
    EXPECT_EQ(phase_sum, tester.log().total().applications);
    EXPECT_GT(tester.log().phase_counters("learning").applications, 0u);
    EXPECT_GT(tester.log().phase_counters("ga-optimization").applications,
              0u);
    EXPECT_GT(tester.log().phase_counters("multi-trip").applications, 0u);
}

// ---------------------------------------------------------------------
// Property: the whole pipeline is bit-reproducible from its seed.
TEST(DeterminismTest, FullPipelineReproducible) {
    const auto run = [] {
        device::MemoryTestChip chip({}, noiseless());
        ate::Tester tester(chip);
        core::CharacterizerOptions options;
        options.generator.condition_bounds =
            testgen::ConditionBounds::fixed_nominal();
        options.learner.training_tests = 40;
        options.learner.committee.members = 2;
        options.learner.committee.train.max_epochs = 50;
        options.optimizer.ga.population.size = 10;
        options.optimizer.ga.populations = 2;
        options.optimizer.ga.max_generations = 5;
        options.optimizer.nn_candidates = 80;
        core::DeviceCharacterizer characterizer(
            tester, ate::Parameter::data_valid_time(), options);
        util::Rng rng(12345);
        const core::WorstCaseReport report = characterizer.run_full(rng);
        return std::make_tuple(report.outcome.best_fitness,
                               report.worst_record.trip_point,
                               report.outcome.evaluations,
                               tester.log().total().applications);
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------
// Property: with per-measurement noise the learner and optimizer still
// produce a usable result (the real-silicon regime).
TEST(NoisyPipelineTest, HuntSurvivesRealisticNoise) {
    device::MemoryTestChip chip;  // default: noisy
    ate::Tester tester(chip);
    core::CharacterizerOptions options;
    options.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.learner.training_tests = 60;
    options.learner.committee.members = 3;
    options.learner.committee.train.max_epochs = 80;
    options.optimizer.ga.population.size = 12;
    options.optimizer.ga.populations = 2;
    options.optimizer.ga.max_generations = 12;
    options.optimizer.nn_candidates = 200;
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), options);
    util::Rng rng(777);
    const core::WorstCaseReport report = characterizer.run_full(rng);
    ASSERT_TRUE(report.worst_record.found);
    EXPECT_GT(report.outcome.best_fitness, 0.75);
    EXPECT_LT(report.worst_record.trip_point, 26.0);
}

// ---------------------------------------------------------------------
// Control experiment: on a device WITHOUT the interaction pocket (a
// well-behaved design), the NN+GA hunt finds only what random search
// finds — the Table 1 gap is a property of the hidden worst case, not an
// artifact of the optimizer.
TEST(NoPocketControlTest, GaAdvantageVanishesOnWellBehavedDevice) {
    device::TimingSensitivities sens;
    sens.pocket_ns = 0.0;  // no hidden interaction pocket
    const device::TimingModel model(sens, device::DeratingModel{});
    device::MemoryTestChip chip({}, noiseless(), model);
    ate::Tester tester(chip);

    core::CharacterizerOptions options;
    options.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.learner.training_tests = 60;
    options.learner.committee.members = 3;
    options.learner.committee.train.max_epochs = 80;
    options.optimizer.ga.population.size = 14;
    options.optimizer.ga.populations = 2;
    options.optimizer.ga.max_generations = 15;
    options.optimizer.nn_candidates = 300;
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), options);
    util::Rng rng(2005);

    const core::DesignSpecVariation random_dsv =
        characterizer.characterize_random(300, rng);
    const double random_best = random_dsv.worst().wcr;

    const core::WorstCaseReport report = characterizer.run_full(rng);

    // The GA still squeezes the linear terms, but the dramatic Table 1
    // gap (0.70 -> 0.92) collapses to a modest margin.
    EXPECT_LT(report.outcome.best_fitness, random_best + 0.07);
    EXPECT_LT(report.outcome.best_fitness, 0.82);
}

}  // namespace
}  // namespace cichar
