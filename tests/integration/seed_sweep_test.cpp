// Seed-robustness of the headline result: the Table 1 shape must hold for
// ANY seed, not just the bench default — the difference between a
// reproduction and a lucky run.
#include <gtest/gtest.h>

#include "core/characterizer.hpp"
#include "device/presets.hpp"
#include "testgen/march.hpp"

namespace cichar {
namespace {

core::CharacterizerOptions sweep_options() {
    core::CharacterizerOptions opts;
    opts.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    opts.learner.training_tests = 80;
    opts.learner.committee.members = 3;
    opts.learner.committee.hidden_layers = {12};
    opts.learner.committee.train.max_epochs = 120;
    opts.optimizer.ga.population.size = 18;
    opts.optimizer.ga.populations = 3;
    opts.optimizer.ga.max_generations = 25;
    opts.optimizer.nn_candidates = 400;
    opts.optimizer.nn_seed_count = 10;
    return opts;
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, Table1ShapeHolds) {
    device::MemoryTestChip chip = device::presets::typical(GetParam());
    ate::Tester tester(chip);
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), sweep_options());
    util::Rng rng(GetParam());

    const core::TripPointRecord march = characterizer.single_trip(
        testgen::make_test(testgen::march_c_minus().expand()));
    const core::DesignSpecVariation random_dsv =
        characterizer.characterize_random(150, rng);
    const core::WorstCaseReport hunt = characterizer.run_full(rng);

    // Ordering: deterministic < best random < NN+GA.
    EXPECT_LT(march.wcr, random_dsv.worst().wcr) << "seed " << GetParam();
    EXPECT_LT(random_dsv.worst().wcr, hunt.outcome.best_fitness)
        << "seed " << GetParam();
    // Bands: March deep in pass; hunt in/near the paper's weakness band.
    EXPECT_LT(march.wcr, 0.65) << "seed " << GetParam();
    EXPECT_GT(hunt.outcome.best_fitness, 0.85) << "seed " << GetParam();
    EXPECT_LE(hunt.outcome.best_fitness, 1.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values<std::uint64_t>(3, 1234, 777777));

}  // namespace
}  // namespace cichar
