// Full-stack integration: the paper's Table 1 shape on a fresh device —
// deterministic March < best random < NN+GA, with all WCR values in the
// pass/weakness bands and the shmoo band visibly test dependent.
#include <gtest/gtest.h>

#include "ate/shmoo.hpp"
#include "core/characterizer.hpp"
#include "device/memory_chip.hpp"
#include "testgen/march.hpp"

namespace cichar {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

core::CharacterizerOptions fast_options() {
    core::CharacterizerOptions opts;
    opts.generator.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    opts.learner.training_tests = 80;
    opts.learner.committee.members = 3;
    opts.learner.committee.hidden_layers = {12};
    opts.learner.committee.train.max_epochs = 150;
    opts.optimizer.ga.population.size = 20;
    opts.optimizer.ga.populations = 3;
    opts.optimizer.ga.max_generations = 30;
    opts.optimizer.ga.max_restarts = 3;
    opts.optimizer.nn_candidates = 400;
    opts.optimizer.nn_seed_count = 8;
    return opts;
}

TEST(EndToEndTest, Table1Ordering) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), fast_options());
    util::Rng rng(2005);

    // Row 1: deterministic March test.
    const core::TripPointRecord march = characterizer.single_trip(
        testgen::make_test(testgen::march_c_minus().expand()));
    ASSERT_TRUE(march.found);

    // Row 2: best of random tests.
    const core::DesignSpecVariation random_dsv =
        characterizer.characterize_random(100, rng);
    const core::TripPointRecord random_best = random_dsv.worst();

    // Row 3: NN + GA.
    const core::LearnResult learned = characterizer.learn(rng);
    const core::WorstCaseReport report =
        characterizer.optimize(learned.model, rng);

    // The paper's ordering: March < Random < NNGA in WCR.
    EXPECT_LT(march.wcr, random_best.wcr);
    EXPECT_LT(random_best.wcr + 0.05, report.outcome.best_fitness);

    // And the bands: March/Random in pass, NNGA in/near weakness.
    EXPECT_LT(march.wcr, 0.8);
    EXPECT_LT(random_best.wcr, 0.8);
    EXPECT_GT(report.outcome.best_fitness, 0.8);

    // T_DQ ordering mirrors WCR (minimization objective).
    EXPECT_GT(march.trip_point, random_best.trip_point);
    EXPECT_GT(random_best.trip_point, report.worst_record.trip_point);
}

TEST(EndToEndTest, RunFullConvenience) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    core::DeviceCharacterizer characterizer(
        tester, ate::Parameter::data_valid_time(), fast_options());
    util::Rng rng(99);
    const core::WorstCaseReport report = characterizer.run_full(rng);
    EXPECT_GT(report.outcome.best_fitness, 0.75);
    EXPECT_FALSE(report.database.empty());
}

TEST(EndToEndTest, ShmooBandShowsTestDependence) {
    device::MemoryTestChip chip({}, noiseless());
    ate::Tester tester(chip);
    testgen::RandomTestGenerator gen;
    util::Rng rng(3);
    std::vector<testgen::Test> tests;
    for (int i = 0; i < 30; ++i) {
        tests.push_back(gen.random_test(rng, "s" + std::to_string(i)));
    }
    ate::ShmooOptions opts;
    opts.x_steps = 45;
    opts.vdd_steps = 9;
    const ate::ShmooGrid grid = ate::ShmooPlotter(opts).run(
        tester, ate::Parameter::data_valid_time(), tests);

    // Some cells are unanimous, some are split (the band).
    bool saw_band = false;
    bool saw_all_pass = false;
    bool saw_all_fail = false;
    for (std::size_t iy = 0; iy < grid.vdd_steps(); ++iy) {
        for (std::size_t ix = 0; ix < grid.x_steps(); ++ix) {
            const std::uint32_t count = grid.pass_count(ix, iy);
            if (count == 0) saw_all_fail = true;
            else if (count == grid.tests()) saw_all_pass = true;
            else saw_band = true;
        }
    }
    EXPECT_TRUE(saw_band);
    EXPECT_TRUE(saw_all_pass);
    EXPECT_TRUE(saw_all_fail);
}

TEST(EndToEndTest, SearchUntilTripSavesMeasurements) {
    // The paper's section 4 claim, end to end: characterizing N tests with
    // the follower costs far less than N full-range searches.
    device::MemoryTestChip chip_follow({}, noiseless());
    ate::Tester tester_follow(chip_follow);
    testgen::RandomTestGenerator gen;
    util::Rng rng(4);
    std::vector<testgen::Test> tests;
    for (int i = 0; i < 40; ++i) {
        tests.push_back(gen.random_test(rng, "m" + std::to_string(i)));
    }

    const core::MultiTripCharacterizer characterizer;
    const core::DesignSpecVariation dsv = characterizer.characterize(
        tester_follow, ate::Parameter::data_valid_time(), tests);
    const std::size_t follower_cost = dsv.total_measurements();

    device::MemoryTestChip chip_full({}, noiseless());
    ate::Tester tester_full(chip_full);
    const ate::SuccessiveApproximation full;
    std::size_t full_cost = 0;
    for (const testgen::Test& test : tests) {
        const ate::SearchResult r = full.find(
            tester_full.oracle(test, ate::Parameter::data_valid_time()),
            ate::Parameter::data_valid_time());
        full_cost += r.measurements;
        ASSERT_TRUE(r.found);
    }
    EXPECT_LT(static_cast<double>(follower_cost),
              static_cast<double>(full_cost) * 0.85);

    // And identical trip points (within resolution).
    for (std::size_t i = 0; i < tests.size(); ++i) {
        const double truth = chip_full.true_parameter(
            tests[i], device::ParameterKind::kDataValidTime);
        EXPECT_NEAR(dsv.record(i).trip_point, truth, 0.25) << i;
    }
}

TEST(EndToEndTest, FunctionalFailuresStoredSeparately) {
    // At collapsed supply the optimizer's fail-crossing evaluations run a
    // functional check; failures land in the separate store.
    device::MemoryChipOptions chip_opts = noiseless();
    device::MemoryTestChip chip({}, chip_opts);
    ate::Tester tester(chip);
    util::Rng rng(5);

    core::OptimizerOptions opts;
    opts.ga.population.size = 16;
    opts.ga.populations = 2;
    opts.ga.max_generations = 25;
    opts.thresholds.fail = 0.85;  // lowered: treat weakness as "fail" so
                                  // functional checks actually trigger
    const core::WorstCaseOptimizer optimizer(opts);
    testgen::RandomGeneratorOptions gen;
    gen.condition_bounds = testgen::ConditionBounds::fixed_nominal();
    const core::WorstCaseReport report = optimizer.run_unseeded(
        tester, ate::Parameter::data_valid_time(), gen,
        core::Objective::kDriftToMinimum, rng);
    // The hunt crosses 0.85 on this device; functional checks ran. The
    // device still passes functionally at 1.8 V (T_DQ ~ 22 > 19.5), so
    // the separate store exists but stays empty — the paper's separation,
    // not a failure injection.
    EXPECT_GT(report.outcome.best_fitness, 0.85);
    EXPECT_TRUE(report.database.functional_failures().empty());
}

}  // namespace
}  // namespace cichar
