#include "lot/lot_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "lot/lot_report.hpp"

namespace cichar::lot {
namespace {

LotOptions fast_lot(std::size_t sites, std::size_t jobs) {
    LotOptions options;
    options.sites = sites;
    options.jobs = jobs;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    return options;
}

TEST(LotRunnerTest, RunsOneCampaignPerSite) {
    const LotRunner runner(fast_lot(3, 2));
    const LotResult result = runner.run();
    ASSERT_EQ(result.sites.size(), 3u);
    for (std::size_t s = 0; s < result.sites.size(); ++s) {
        const SiteResult& site = result.sites[s];
        EXPECT_EQ(site.site, s);
        ASSERT_EQ(site.campaigns.size(), 1u);  // default parameter: T_DQ
        EXPECT_EQ(site.campaigns[0].parameter.name, "T_DQ");
        EXPECT_GT(site.log.total().applications, 0u);
        EXPECT_GE(site.max_risk, 0.0);
        EXPECT_LE(site.max_risk, 1.0);
    }
    // Sites are distinct dies, not clones of one another.
    EXPECT_NE(result.sites[0].die, result.sites[1].die);
    // The merged ledger is the sum of the per-site ledgers.
    std::uint64_t applications = 0;
    for (const SiteResult& site : result.sites) {
        applications += site.log.total().applications;
    }
    EXPECT_EQ(result.merged_log.total().applications, applications);
}

TEST(LotRunnerTest, ReportIsByteIdenticalAcrossThreadCounts) {
    // The determinism contract: same seed => same LotReport, --jobs 1 vs
    // --jobs 4.
    const LotResult serial = LotRunner(fast_lot(3, 1)).run();
    const LotResult parallel = LotRunner(fast_lot(3, 4)).run();

    EXPECT_EQ(LotReport::build(serial).render(),
              LotReport::build(parallel).render());
    EXPECT_EQ(serial.merged_log.report(), parallel.merged_log.report());
    ASSERT_EQ(serial.sites.size(), parallel.sites.size());
    for (std::size_t s = 0; s < serial.sites.size(); ++s) {
        EXPECT_EQ(serial.sites[s].die, parallel.sites[s].die);
        EXPECT_DOUBLE_EQ(
            serial.sites[s].campaigns[0].report.worst_record.trip_point,
            parallel.sites[s].campaigns[0].report.worst_record.trip_point);
    }
}

TEST(LotRunnerTest, DifferentSeedsGiveDifferentLots) {
    LotOptions a = fast_lot(2, 2);
    LotOptions b = fast_lot(2, 2);
    b.seed = a.seed + 1;
    const LotResult ra = LotRunner(a).run();
    const LotResult rb = LotRunner(b).run();
    EXPECT_NE(ra.sites[0].die, rb.sites[0].die);
}

TEST(LotRunnerTest, ZeroSitesYieldsEmptyResult) {
    const LotRunner runner(fast_lot(0, 2));
    const LotResult result = runner.run();
    EXPECT_TRUE(result.sites.empty());
    EXPECT_EQ(result.merged_log.total().applications, 0u);
}

TEST(LotRunnerTest, ProgressCallbackSeesEverySite) {
    LotOptions options = fast_lot(3, 2);
    std::atomic<std::size_t> calls{0};
    std::atomic<std::size_t> last_total{0};
    options.on_progress = [&](std::size_t done, std::size_t total) {
        (void)done;
        ++calls;
        last_total = total;
    };
    (void)LotRunner(options).run();
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(last_total.load(), 3u);
}

TEST(LotReportTest, FusedSpecGuardBandsTheWorstSite) {
    const LotResult result = LotRunner(fast_lot(4, 2)).run();
    const LotReport report = LotReport::build(result);

    ASSERT_EQ(report.aggregates().size(), 1u);
    const ParameterAggregate& agg = report.aggregates()[0];
    EXPECT_EQ(agg.parameter.name, "T_DQ");
    EXPECT_EQ(agg.sites_found, 4u);
    EXPECT_GE(agg.trip_spread, 0.0);
    // Min-limit parameter: the fused limit sits below every site's worst.
    EXPECT_LE(agg.fused.proposed_limit, agg.trip.min + 1e-9);
    EXPECT_DOUBLE_EQ(agg.fused.observed_worst, agg.trip.min);

    // The outlier rule in the report matches the flags on the sites.
    for (const SiteSummary& site : report.sites()) {
        const bool flagged =
            std::find(agg.outlier_sites.begin(), agg.outlier_sites.end(),
                      site.site) != agg.outlier_sites.end();
        const bool should_flag =
            !site.found[0] ||
            site.risk[0] > agg.median_risk + 0.25 /* default margin */;
        EXPECT_EQ(flagged, should_flag) << "site " << site.site;
        EXPECT_EQ(site.outlier, flagged) << "site " << site.site;
    }
    EXPECT_EQ(report.outlier_sites(), agg.outlier_sites);
}

TEST(LotReportTest, RenderMentionsEverySiteAndTheFusedSpec) {
    const LotResult result = LotRunner(fast_lot(3, 2)).run();
    const std::string text = LotReport::build(result).render();
    EXPECT_NE(text.find("lot characterization report: 3 sites"),
              std::string::npos);
    EXPECT_NE(text.find("T_DQ"), std::string::npos);
    EXPECT_NE(text.find("specification proposal"), std::string::npos);
    EXPECT_NE(text.find("merged lot ledger"), std::string::npos);
}

}  // namespace
}  // namespace cichar::lot
