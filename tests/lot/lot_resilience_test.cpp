// Lot-level fault tolerance: deterministic per-site fault injection,
// graceful degradation over dead/quarantined sites, and crash-safe
// stop-and-go resume that reproduces the uninterrupted LotReport byte
// for byte.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lot/lot_report.hpp"
#include "lot/lot_runner.hpp"

namespace cichar::lot {
namespace {

LotOptions fast_lot(std::size_t sites, std::size_t jobs) {
    LotOptions options;
    options.sites = sites;
    options.jobs = jobs;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    return options;
}

LotOptions faulted_lot(std::size_t sites, std::size_t jobs) {
    LotOptions options = fast_lot(sites, jobs);
    options.faults.transient_rate = 0.02;
    options.faults.transient_span_fraction = 0.2;
    options.faults.timeout_rate = 0.005;
    options.faults.seed = 11;
    options.policy.enabled = true;
    options.policy.quarantine_after = 8;
    return options;
}

TEST(LotResilienceTest, FaultedLotIsByteIdenticalAcrossThreadCounts) {
    const LotResult serial = LotRunner(faulted_lot(3, 1)).run();
    const LotResult parallel = LotRunner(faulted_lot(3, 4)).run();

    EXPECT_EQ(LotReport::build(serial).render(),
              LotReport::build(parallel).render());
    ASSERT_EQ(serial.sites.size(), parallel.sites.size());
    for (std::size_t s = 0; s < serial.sites.size(); ++s) {
        EXPECT_EQ(serial.sites[s].status, parallel.sites[s].status);
        EXPECT_EQ(serial.sites[s].faults, parallel.sites[s].faults);
        EXPECT_EQ(serial.sites[s].injected, parallel.sites[s].injected);
    }
    // The profile really fired somewhere in the lot.
    std::uint64_t injected = 0;
    for (const SiteResult& site : serial.sites) {
        injected += site.injected.injected();
    }
    EXPECT_GT(injected, 0u);
}

TEST(LotResilienceTest, FaultFreeLotRendersNoHealthSection) {
    const std::string text =
        LotReport::build(LotRunner(fast_lot(2, 2)).run()).render();
    EXPECT_EQ(text.find("site health"), std::string::npos);
}

TEST(LotResilienceTest, FaultedLotRendersHealthAndQuarantineCounters) {
    const std::string text =
        LotReport::build(LotRunner(faulted_lot(2, 2)).run()).render();
    EXPECT_NE(text.find("site health"), std::string::npos);
    EXPECT_NE(text.find("sites quarantined:"), std::string::npos);
    EXPECT_NE(text.find("lot injected faults:"), std::string::npos);
    EXPECT_NE(text.find("lot policy activity:"), std::string::npos);
}

TEST(LotResilienceTest, DeadSitesDegradeGracefully) {
    // An aggressive death rate kills sites mid-campaign; the lot must
    // still complete and report on whatever survived.
    LotOptions options = faulted_lot(4, 2);
    options.faults.site_death_rate = 0.002;
    options.faults.seed = 5;
    const LotResult result = LotRunner(options).run();

    ASSERT_TRUE(result.complete());
    std::size_t dead = 0;
    for (const SiteResult& site : result.sites) {
        if (site.status == SiteStatus::kDead) {
            ++dead;
            EXPECT_TRUE(site.outcomes.empty());
            EXPECT_EQ(site.max_risk, 1.0);
            EXPECT_GT(site.injected.site_deaths, 0u);
        }
    }
    EXPECT_GT(dead, 0u) << "death rate chosen to kill at least one site";

    // The report never throws over lost sites and labels them.
    const LotReport report = LotReport::build(result);
    EXPECT_EQ(report.failed_site_count(), dead);
    const std::string text = report.render();
    EXPECT_NE(text.find("dead"), std::string::npos);
    // Dead sites are outliers by definition (no found trip).
    for (const SiteSummary& site : report.sites()) {
        if (site.status == SiteStatus::kDead) EXPECT_TRUE(site.outlier);
    }
}

TEST(LotResilienceTest, AllSitesDeadStillEmitsReport) {
    LotOptions options = faulted_lot(2, 1);
    options.faults.site_death_rate = 0.2;  // nothing survives this
    const LotResult result = LotRunner(options).run();
    for (const SiteResult& site : result.sites) {
        EXPECT_EQ(site.status, SiteStatus::kDead);
    }
    const std::string text = LotReport::build(result).render();
    EXPECT_NE(text.find("no surviving site found a worst case"),
              std::string::npos);
    EXPECT_NE(text.find("dead: 2"), std::string::npos);
}

struct LotLeg {
    LotResult result;
    std::string last_checkpoint;
    std::size_t checkpoints = 0;
};

LotLeg run_leg(LotOptions options, const std::string& resume_blob,
               std::size_t max_sites_per_run) {
    LotLeg leg;
    options.checkpoint.resume_blob = resume_blob;
    options.checkpoint.max_sites_per_run = max_sites_per_run;
    options.checkpoint.save = [&leg](const std::string& blob) {
        leg.last_checkpoint = blob;
        ++leg.checkpoints;
    };
    leg.result = LotRunner(options).run();
    return leg;
}

TEST(LotResilienceTest, StopAndGoResumeMatchesUninterruptedLot) {
    const LotOptions options = faulted_lot(4, 2);
    const LotLeg reference = run_leg(options, "", 0);
    ASSERT_TRUE(reference.result.complete());
    EXPECT_EQ(reference.checkpoints, 4u);

    // First leg characterizes only two sites ("the process was killed
    // after the second"), the second leg resumes from its checkpoint.
    const LotLeg first = run_leg(options, "", 2);
    EXPECT_FALSE(first.result.complete());
    EXPECT_EQ(first.result.finished_sites(), 2u);
    ASSERT_FALSE(first.last_checkpoint.empty());

    const LotLeg second = run_leg(options, first.last_checkpoint, 0);
    ASSERT_TRUE(second.result.complete());
    std::size_t restored = 0;
    for (const SiteResult& site : second.result.sites) {
        if (site.restored) ++restored;
    }
    EXPECT_EQ(restored, 2u);

    EXPECT_EQ(LotReport::build(second.result).render(),
              LotReport::build(reference.result).render());
    EXPECT_EQ(second.result.merged_log.report(),
              reference.result.merged_log.report());
    for (std::size_t s = 0; s < options.sites; ++s) {
        EXPECT_EQ(second.result.sites[s].status,
                  reference.result.sites[s].status);
        EXPECT_EQ(second.result.sites[s].faults,
                  reference.result.sites[s].faults);
        EXPECT_EQ(second.result.sites[s].injected,
                  reference.result.sites[s].injected);
    }
}

TEST(LotResilienceTest, PartialLotReportThrows) {
    const LotLeg first = run_leg(fast_lot(3, 1), "", 1);
    EXPECT_FALSE(first.result.complete());
    EXPECT_THROW((void)LotReport::build(first.result), std::invalid_argument);
}

TEST(LotResilienceTest, ResumeRejectsMismatchedConfiguration) {
    const LotLeg first = run_leg(fast_lot(2, 1), "", 1);
    ASSERT_FALSE(first.last_checkpoint.empty());

    LotOptions other = fast_lot(2, 1);
    other.seed = 78;  // different lot: different dies, different streams
    other.checkpoint.resume_blob = first.last_checkpoint;
    EXPECT_THROW((void)LotRunner(other).run(), std::runtime_error);

    // A truncated blob is corruption, not a different lot — also rejected.
    LotOptions same = fast_lot(2, 1);
    same.checkpoint.resume_blob =
        first.last_checkpoint.substr(0, first.last_checkpoint.size() / 2);
    EXPECT_THROW((void)LotRunner(same).run(), std::runtime_error);
}

}  // namespace
}  // namespace cichar::lot
