// Lot-wide replica hunts through the shared measurement ring: switching
// a lot from classic serial in-situ site hunts (inflight 0) to replica
// evaluation (inflight >= 1) is fingerprinted, but *within* replica mode
// every inflight x jobs x slab x ring-sharing configuration must render
// a byte-identical LotReport and measurement ledger — including a lot
// killed mid-run and resumed under a different ring depth.
#include "lot/lot_runner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "lot/lot_report.hpp"

namespace cichar::lot {
namespace {

LotOptions replica_lot(std::size_t sites, std::size_t jobs,
                       std::size_t inflight) {
    LotOptions options;
    options.sites = sites;
    options.jobs = jobs;
    options.inflight = inflight;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    return options;
}

struct LotRun {
    std::string report;
    std::string ledger;
};

LotRun run_lot(const LotOptions& options) {
    const LotResult result = LotRunner(options).run();
    LotRun run;
    run.report = LotReport::build(result).render();
    run.ledger = result.merged_log.report();
    return run;
}

TEST(LotReplicaTest, ReportByteIdenticalAcrossDepthJobsSlabAndSharing) {
    // Blocking replicas on one worker: the reference discipline.
    const LotRun reference = run_lot(replica_lot(3, 1, 1));

    struct Config {
        std::size_t jobs;
        std::size_t inflight;
        std::size_t slab;
        bool shared;
    };
    const Config configs[] = {
        {1, 16, core::HuntParallelOptions::kAutoSlab, true},
        {4, 16, core::HuntParallelOptions::kAutoSlab, true},
        {4, 16, core::HuntParallelOptions::kAutoSlab, false},  // ablation
        {4, 16, 0, true},  // cold clones through the shared ring
        {2, 4, 8, true},
        {4, 1, 2, true},  // blocking replicas on four workers
    };
    for (const Config& config : configs) {
        LotOptions options = replica_lot(3, config.jobs, config.inflight);
        options.replica_slab = config.slab;
        options.shared_ring = config.shared;
        SCOPED_TRACE("jobs=" + std::to_string(config.jobs) +
                     " inflight=" + std::to_string(config.inflight) +
                     " slab=" + std::to_string(config.slab) +
                     " shared=" + std::to_string(config.shared));
        const LotRun run = run_lot(options);
        EXPECT_EQ(run.report, reference.report);
        EXPECT_EQ(run.ledger, reference.ledger);
    }
}

TEST(LotReplicaTest, StopAndGoResumeAcrossRingDepths) {
    // Kill after two sites under a deep shared ring, resume with blocking
    // replicas: the checkpoint carries no ring or slab state, so the
    // fused lot must match an uninterrupted run at yet another depth.
    const LotRun reference = run_lot(replica_lot(4, 2, 8));

    LotOptions first_leg = replica_lot(4, 2, 16);
    first_leg.checkpoint.max_sites_per_run = 2;
    std::string checkpoint;
    first_leg.checkpoint.save = [&checkpoint](const std::string& blob) {
        checkpoint = blob;
    };
    const LotResult partial = LotRunner(first_leg).run();
    EXPECT_FALSE(partial.complete());
    ASSERT_FALSE(checkpoint.empty());

    LotOptions second_leg = replica_lot(4, 2, 1);
    second_leg.checkpoint.resume_blob = checkpoint;
    const LotResult fused = LotRunner(second_leg).run();
    ASSERT_TRUE(fused.complete());
    EXPECT_EQ(LotReport::build(fused).render(), reference.report);
    EXPECT_EQ(fused.merged_log.report(), reference.ledger);
}

TEST(LotReplicaTest, FingerprintSeparatesReplicaFromClassicOnly) {
    // The 0 -> >=1 switch changes the measurement discipline and must be
    // fingerprinted; depth, slab size, and ring sharing are perf knobs
    // and must not be (a checkpoint resumes across all of them).
    const std::string classic = LotRunner(replica_lot(3, 1, 0)).fingerprint();
    const std::string replica = LotRunner(replica_lot(3, 1, 1)).fingerprint();
    EXPECT_NE(classic, replica);
    // Pre-replica checkpoints stay valid: the classic fingerprint does
    // not mention the replica bit at all.
    EXPECT_EQ(classic.find("replica"), std::string::npos);

    LotOptions deep = replica_lot(3, 4, 16);
    deep.replica_slab = 0;
    deep.shared_ring = false;
    EXPECT_EQ(LotRunner(deep).fingerprint(), replica);
}

TEST(LotReplicaTest, ClassicLotDiffersFromReplicaLot) {
    // inflight 0 keeps the pre-replica serial in-situ discipline; its
    // results are expected to differ from replica hunts (same contract
    // as --jobs on a single hunt). This pins the mode switch as a real
    // discipline change rather than a silent default flip.
    const LotRun classic = run_lot(replica_lot(2, 1, 0));
    const LotRun replica = run_lot(replica_lot(2, 1, 1));
    EXPECT_NE(classic.report, replica.report);
}

}  // namespace
}  // namespace cichar::lot
