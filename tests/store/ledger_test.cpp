#include "store/ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/ledger_payloads.hpp"
#include "util/binio.hpp"

namespace cichar::store {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public testing::Test {
protected:
    void SetUp() override {
        root_ = testing::TempDir() + "ledger_" +
                testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(root_);
        util::set_write_fault(std::nullopt);
    }

    void TearDown() override { util::set_write_fault(std::nullopt); }

    LedgerOptions options(const std::string& sub = "L",
                          std::size_t capacity = 1ULL << 20) const {
        LedgerOptions opts;
        opts.directory = root_ + "/" + sub;
        opts.segment_capacity_bytes = capacity;
        opts.sync = false;  // tmpfs-friendly; the CLI always syncs
        return opts;
    }

    static LedgerRecord trip(std::uint64_t campaign, std::uint64_t sequence) {
        TripRecordPayload payload;
        payload.site = sequence;
        payload.parameter = "tAA";
        payload.record.test_name = "ga-" + std::to_string(sequence);
        payload.record.trip_point = 1.5 + static_cast<double>(sequence);
        payload.record.found = true;
        LedgerRecord record;
        record.type = RecordType::kTripRecord;
        record.campaign = campaign;
        record.sequence = sequence;
        record.payload = encode_trip_record(payload);
        return record;
    }

    static LedgerRecord begin_record(std::uint64_t campaign) {
        LedgerRecord record;
        record.type = RecordType::kCampaignBegin;
        record.campaign = campaign;
        record.sequence = 0;
        record.payload = encode_campaign_begin({"fp", campaign});
        return record;
    }

    static LedgerRecord end_record(std::uint64_t campaign,
                                   std::uint64_t count) {
        LedgerRecord record;
        record.type = RecordType::kCampaignEnd;
        record.campaign = campaign;
        record.sequence = ~0ULL;
        record.payload = encode_campaign_end({count});
        return record;
    }

    std::string segment_path(const std::string& sub, std::uint64_t index) {
        return root_ + "/" + sub + "/" + segment_file_name(index);
    }

    std::string root_;
};

TEST_F(LedgerTest, OpenCreatesDirectoryWithEmptyActiveSegment) {
    Ledger ledger = Ledger::open(options());
    EXPECT_TRUE(ledger.recovery().clean());
    EXPECT_TRUE(ledger.records().empty());
    EXPECT_TRUE(fs::exists(segment_path("L", 0)));
    EXPECT_EQ(fs::file_size(segment_path("L", 0)), kSegmentHeaderSize);
}

TEST_F(LedgerTest, OpenThrowsWhenDirectoryCannotBeCreated) {
    std::ofstream(root_ + "_f").put('x');
    LedgerOptions opts;
    opts.directory = root_ + "_f/L";
    EXPECT_THROW((void)Ledger::open(opts), std::runtime_error);
}

TEST_F(LedgerTest, CommitPersistsAcrossReopen) {
    const std::vector<LedgerRecord> batch = {begin_record(9), trip(9, 1),
                                             trip(9, 2)};
    {
        Ledger ledger = Ledger::open(options());
        for (const LedgerRecord& r : batch) ledger.append(r);
        EXPECT_EQ(ledger.pending(), 3u);
        ledger.commit();
        EXPECT_EQ(ledger.pending(), 0u);
        EXPECT_EQ(ledger.records(), batch);
    }
    Ledger reopened = Ledger::open(options());
    EXPECT_TRUE(reopened.recovery().clean());
    EXPECT_EQ(reopened.records(), batch);
    EXPECT_TRUE(reopened.contains(9, RecordType::kCampaignBegin, 0));
    EXPECT_TRUE(reopened.contains(9, RecordType::kTripRecord, 2));
    EXPECT_FALSE(reopened.contains(9, RecordType::kTripRecord, 3));
    EXPECT_EQ(reopened.campaign_records(9), 3u);
    EXPECT_EQ(reopened.campaign_records(10), 0u);
}

TEST_F(LedgerTest, AppendIfAbsentDedupsCommittedAndPending) {
    Ledger ledger = Ledger::open(options());
    EXPECT_TRUE(ledger.append_if_absent(trip(1, 5)));
    EXPECT_FALSE(ledger.append_if_absent(trip(1, 5)));  // pending dup
    ledger.commit();
    EXPECT_FALSE(ledger.append_if_absent(trip(1, 5)));  // committed dup
    EXPECT_TRUE(ledger.append_if_absent(trip(1, 6)));
    EXPECT_TRUE(ledger.append_if_absent(trip(2, 5)));  // other campaign
    ledger.commit();
    EXPECT_EQ(ledger.records().size(), 3u);

    Ledger reopened = Ledger::open(options());
    EXPECT_FALSE(reopened.append_if_absent(trip(1, 6)));
}

TEST_F(LedgerTest, EmptyCommitIsNoop) {
    Ledger ledger = Ledger::open(options());
    const auto size_before = fs::file_size(segment_path("L", 0));
    ledger.commit();
    EXPECT_EQ(fs::file_size(segment_path("L", 0)), size_before);
}

TEST_F(LedgerTest, RotatesSegmentsAtCapacity) {
    // Tiny capacity: every commit after the first overflows the active
    // segment and must rotate to a fresh one.
    Ledger ledger = Ledger::open(options("L", 256));
    std::vector<LedgerRecord> all;
    for (std::uint64_t i = 0; i < 8; ++i) {
        all.push_back(trip(4, i));
        ledger.append(all.back());
        ledger.commit();
    }
    std::size_t segments = 0;
    for (const auto& entry : fs::directory_iterator(root_ + "/L")) {
        if (entry.is_regular_file()) ++segments;
    }
    EXPECT_GT(segments, 1u);

    Ledger reopened = Ledger::open(options("L", 256));
    EXPECT_TRUE(reopened.recovery().clean());
    EXPECT_EQ(reopened.records(), all);
}

TEST_F(LedgerTest, RecoveryTruncatesTornTail) {
    {
        Ledger ledger = Ledger::open(options());
        ledger.append(trip(3, 0));
        ledger.append(trip(3, 1));
        ledger.commit();
    }
    const std::string path = segment_path("L", 0);
    const auto full_size = fs::file_size(path);
    // Chop into the final record, the tear a power cut mid-append leaves.
    fs::resize_file(path, full_size - 11);

    Ledger recovered = Ledger::open(options());
    EXPECT_FALSE(recovered.recovery().clean());
    EXPECT_EQ(recovered.recovery().torn_tails, 1u);
    EXPECT_GT(recovered.recovery().truncated_bytes, 0u);
    ASSERT_EQ(recovered.records().size(), 1u);
    EXPECT_EQ(recovered.records()[0], trip(3, 0));

    // The file itself was repaired: a second open is clean and the
    // ledger verifies.
    Ledger again = Ledger::open(options());
    EXPECT_TRUE(again.recovery().clean());
    EXPECT_TRUE(verify_ledger(root_ + "/L").ok);

    // The lost record can be re-offered idempotently and lands once.
    EXPECT_TRUE(again.append_if_absent(trip(3, 1)));
    EXPECT_FALSE(again.append_if_absent(trip(3, 0)));
    again.commit();
    EXPECT_EQ(again.records().size(), 2u);
}

TEST_F(LedgerTest, RecoveryQuarantinesCorruptMiddle) {
    {
        Ledger ledger = Ledger::open(options());
        for (std::uint64_t i = 0; i < 3; ++i) ledger.append(trip(5, i));
        ledger.commit();
    }
    const std::string path = segment_path("L", 0);
    std::string bytes = *util::read_file(path);
    bytes[kSegmentHeaderSize + kRecordHeaderSize + 3] ^= 0x20;  // record 0
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

    Ledger recovered = Ledger::open(options());
    EXPECT_FALSE(recovered.recovery().clean());
    EXPECT_EQ(recovered.recovery().corrupt_spans, 1u);
    EXPECT_GT(recovered.recovery().quarantined_bytes, 0u);
    ASSERT_EQ(recovered.records().size(), 2u);
    EXPECT_EQ(recovered.records()[0], trip(5, 1));
    EXPECT_EQ(recovered.records()[1], trip(5, 2));

    // The damaged original is preserved for forensics; the rewritten
    // segment verifies clean.
    EXPECT_TRUE(fs::exists(root_ + "/L/quarantine"));
    EXPECT_FALSE(fs::is_empty(root_ + "/L/quarantine"));
    EXPECT_TRUE(verify_ledger(root_ + "/L").ok);
}

TEST_F(LedgerTest, RecoveryQuarantinesSegmentWithBadHeader) {
    {
        Ledger ledger = Ledger::open(options());
        ledger.append(trip(6, 0));
        ledger.commit();
    }
    const std::string path = segment_path("L", 0);
    std::string bytes = *util::read_file(path);
    bytes[1] ^= 0xFF;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

    Ledger recovered = Ledger::open(options());
    EXPECT_EQ(recovered.recovery().quarantined_segments, 1u);
    EXPECT_TRUE(recovered.records().empty());
    // The headerless segment is gone; open rotated to a fresh empty one.
    EXPECT_EQ(fs::file_size(path), kSegmentHeaderSize);
    EXPECT_TRUE(fs::exists(root_ + "/L/quarantine/" + segment_file_name(0)));
    EXPECT_TRUE(verify_ledger(root_ + "/L").ok);
}

TEST_F(LedgerTest, TornWriteFaultCommitThrowsAndRecoveryRepairs) {
    Ledger ledger = Ledger::open(options());
    ledger.append(trip(7, 0));
    ledger.commit();

    // Tear the next commit 10 bytes in: append_file reports failure, the
    // batch stays pending, and the file now carries a torn tail.
    util::WriteFault fault;
    fault.path_substring = ".ledg";
    fault.torn_after = 10;
    util::set_write_fault(fault);
    ledger.append(trip(7, 1));
    EXPECT_THROW(ledger.commit(), std::runtime_error);
    EXPECT_EQ(ledger.pending(), 1u);

    Ledger recovered = Ledger::open(options());
    EXPECT_EQ(recovered.recovery().torn_tails, 1u);
    ASSERT_EQ(recovered.records().size(), 1u);
    EXPECT_EQ(recovered.records()[0], trip(7, 0));
    EXPECT_TRUE(verify_ledger(root_ + "/L").ok);
}

TEST_F(LedgerTest, BitFlipWriteFaultQuarantinedOnRecovery) {
    {
        Ledger ledger = Ledger::open(options());
        ledger.append(trip(8, 0));
        ledger.commit();
        // Flip a byte inside the *next* appended batch, then keep
        // writing valid records after it: a corrupt middle, not a tail.
        util::WriteFault fault;
        fault.path_substring = ".ledg";
        fault.flip_offset = 40;
        fault.flip_mask = 0x08;
        util::set_write_fault(fault);
        ledger.append(trip(8, 1));
        ledger.commit();  // flip lands inside this batch; write "succeeds"
        ledger.append(trip(8, 2));
        ledger.commit();
    }
    Ledger recovered = Ledger::open(options());
    EXPECT_EQ(recovered.recovery().corrupt_spans, 1u);
    ASSERT_EQ(recovered.records().size(), 2u);
    EXPECT_EQ(recovered.records()[0], trip(8, 0));
    EXPECT_EQ(recovered.records()[1], trip(8, 2));
    EXPECT_TRUE(verify_ledger(root_ + "/L").ok);
}

TEST_F(LedgerTest, VerifyReportsCompleteCampaigns) {
    Ledger ledger = Ledger::open(options());
    ledger.append(begin_record(11));
    ledger.append(trip(11, 1));
    ledger.append(end_record(11, 2));  // counts records before the end
    ledger.append(begin_record(12));   // open campaign: no end marker
    ledger.commit();

    const VerifyResult result = verify_ledger(root_ + "/L");
    EXPECT_TRUE(result.ok) << (result.issues.empty() ? "" : result.issues[0]);
    EXPECT_EQ(result.records, 4u);
    EXPECT_EQ(result.campaigns, 2u);
    EXPECT_EQ(result.complete_campaigns, 1u);
}

TEST_F(LedgerTest, VerifyFlagsEndCountMismatchAndBadPayload) {
    Ledger ledger = Ledger::open(options());
    ledger.append(begin_record(13));
    ledger.append(end_record(13, 7));  // lies: only 1 record preceded it
    LedgerRecord junk;
    junk.type = RecordType::kSnapshotRef;
    junk.campaign = 14;
    junk.sequence = 0;
    junk.payload = "not a snapshot ref";
    ledger.append(junk);
    ledger.commit();

    const VerifyResult result = verify_ledger(root_ + "/L");
    EXPECT_FALSE(result.ok);
    EXPECT_GE(result.issues.size(), 2u);
}

TEST_F(LedgerTest, VerifyFailsOnMissingDirectory) {
    EXPECT_FALSE(verify_ledger(root_ + "/nope").ok);
}

TEST_F(LedgerTest, InspectRendersSegmentsAndCampaigns) {
    Ledger ledger = Ledger::open(options());
    ledger.append(begin_record(21));
    ledger.append(trip(21, 1));
    ledger.append(end_record(21, 2));
    ledger.commit();

    const std::string text = inspect_ledger(root_ + "/L");
    EXPECT_NE(text.find(segment_file_name(0)), std::string::npos);
    EXPECT_NE(text.find("trip-record"), std::string::npos);
    EXPECT_NE(text.find("[complete]"), std::string::npos);
}

// The byte-identity contract: any interleaving, duplication, or shard
// split of one record multiset compacts to the same bytes.
TEST_F(LedgerTest, CompactIsCanonicalAcrossAppendOrderAndDuplicates) {
    std::vector<LedgerRecord> all = {begin_record(30), trip(30, 1),
                                     trip(30, 2), trip(30, 3),
                                     end_record(30, 4)};
    {
        Ledger a = Ledger::open(options("A"));
        for (const LedgerRecord& r : all) a.append(r);
        a.commit();
    }
    {
        // Reverse order, one commit per record, duplicates re-offered.
        Ledger b = Ledger::open(options("B", 256));  // also forces rotation
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
            b.append(*it);
            b.commit();
        }
        b.append(all[1]);
        b.append(all[2]);
        b.commit();
    }
    const CompactStats ca = compact_ledger(root_ + "/A", root_ + "/CA");
    const CompactStats cb = compact_ledger(root_ + "/B", root_ + "/CB");
    EXPECT_EQ(ca.output_records, all.size());
    EXPECT_EQ(cb.output_records, all.size());
    EXPECT_EQ(cb.duplicates_dropped, 2u);
    EXPECT_EQ(*util::read_file(root_ + "/CA/" + segment_file_name(0)),
              *util::read_file(root_ + "/CB/" + segment_file_name(0)));
    EXPECT_TRUE(verify_ledger(root_ + "/CA").ok);
    EXPECT_TRUE(verify_ledger(root_ + "/CB").ok);
}

TEST_F(LedgerTest, MergeOfShardsEqualsCompactOfWhole) {
    std::vector<LedgerRecord> all;
    for (std::uint64_t i = 0; i < 6; ++i) all.push_back(trip(40, i));
    {
        Ledger whole = Ledger::open(options("W"));
        for (const LedgerRecord& r : all) whole.append(r);
        whole.commit();
        Ledger s0 = Ledger::open(options("S0"));
        Ledger s1 = Ledger::open(options("S1"));
        for (std::size_t i = 0; i < all.size(); ++i) {
            ((i % 2 == 0) ? s0 : s1).append(all[i]);
        }
        // Both shards also carry an overlapping record (resume overlap).
        s1.append(all[0]);
        s0.commit();
        s1.commit();
    }
    (void)compact_ledger(root_ + "/W", root_ + "/CW");
    const CompactStats merged =
        merge_ledgers({root_ + "/S0", root_ + "/S1"}, root_ + "/M");
    EXPECT_EQ(merged.output_records, all.size());
    EXPECT_EQ(merged.duplicates_dropped, 1u);
    EXPECT_EQ(*util::read_file(root_ + "/M/" + segment_file_name(0)),
              *util::read_file(root_ + "/CW/" + segment_file_name(0)));
}

TEST_F(LedgerTest, CompactRepacksAgainstCapacity) {
    {
        Ledger ledger = Ledger::open(options("L", 200));
        for (std::uint64_t i = 0; i < 10; ++i) {
            ledger.append(trip(50, i));
            ledger.commit();
        }
    }
    const CompactStats stats =
        compact_ledger(root_ + "/L", root_ + "/C", 200);
    EXPECT_EQ(stats.output_records, 10u);
    EXPECT_GT(stats.segments_written, 1u);
    EXPECT_TRUE(verify_ledger(root_ + "/C").ok);

    Ledger reopened = Ledger::open(options("C", 200));
    EXPECT_EQ(reopened.records().size(), 10u);
}

TEST_F(LedgerTest, CompactRefusesNonEmptyOutput) {
    {
        Ledger ledger = Ledger::open(options("L"));
        ledger.append(trip(60, 0));
        ledger.commit();
        Ledger out = Ledger::open(options("C"));
        out.append(trip(60, 1));
        out.commit();
    }
    EXPECT_THROW((void)compact_ledger(root_ + "/L", root_ + "/C"),
                 std::runtime_error);
}

TEST_F(LedgerTest, CompactSurvivesTornInputAndReportsIssue) {
    {
        Ledger ledger = Ledger::open(options("L"));
        ledger.append(trip(70, 0));
        ledger.append(trip(70, 1));
        ledger.commit();
    }
    const std::string path = segment_path("L", 0);
    fs::resize_file(path, fs::file_size(path) - 5);

    const CompactStats stats = compact_ledger(root_ + "/L", root_ + "/C");
    EXPECT_EQ(stats.output_records, 1u);
    EXPECT_FALSE(stats.issues.empty());
    EXPECT_TRUE(verify_ledger(root_ + "/C").ok);
}

}  // namespace
}  // namespace cichar::store
