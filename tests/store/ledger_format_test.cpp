#include "store/ledger_format.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/binio.hpp"

namespace cichar::store {
namespace {

LedgerRecord make_record(std::uint64_t sequence, const std::string& payload) {
    LedgerRecord record;
    record.type = RecordType::kTripRecord;
    record.campaign = 0xC0FFEEULL;
    record.sequence = sequence;
    record.payload = payload;
    return record;
}

/// Header + three records: the canonical fixture every corruption test
/// mutates.
std::string three_record_segment(std::vector<LedgerRecord>* out = nullptr) {
    std::string bytes = encode_segment_header(7);
    std::vector<LedgerRecord> records = {
        make_record(0, "alpha payload"),
        make_record(1, std::string(64, '\xAB')),
        make_record(2, ""),
    };
    for (const LedgerRecord& r : records) encode_record(bytes, r);
    if (out != nullptr) *out = std::move(records);
    return bytes;
}

TEST(LedgerFormatTest, SegmentHeaderLayout) {
    const std::string header = encode_segment_header(0x0102030405060708ULL);
    ASSERT_EQ(header.size(), kSegmentHeaderSize);
    EXPECT_EQ(header.substr(0, 8), kSegmentMagic);
    // u32 version, little-endian.
    EXPECT_EQ(static_cast<unsigned char>(header[8]), kLedgerVersion);
    // u64 segment index, little-endian.
    EXPECT_EQ(static_cast<unsigned char>(header[12]), 0x08);
    EXPECT_EQ(static_cast<unsigned char>(header[19]), 0x01);
}

TEST(LedgerFormatTest, EncodeScanRoundTrip) {
    std::vector<LedgerRecord> original;
    const std::string bytes = three_record_segment(&original);

    const SegmentScan scan = scan_segment(bytes);
    EXPECT_TRUE(scan.clean());
    EXPECT_TRUE(scan.header_ok);
    EXPECT_EQ(scan.segment_index, 7u);
    EXPECT_EQ(scan.records, original);
    EXPECT_EQ(scan.valid_prefix, bytes.size());
    EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST(LedgerFormatTest, EmptySegmentScansClean) {
    const SegmentScan scan = scan_segment(encode_segment_header(3));
    EXPECT_TRUE(scan.clean());
    EXPECT_EQ(scan.segment_index, 3u);
    EXPECT_TRUE(scan.records.empty());
}

TEST(LedgerFormatTest, BadHeaderRejected) {
    std::string bytes = three_record_segment();
    bytes[0] ^= 0x01;
    const SegmentScan scan = scan_segment(bytes);
    EXPECT_FALSE(scan.header_ok);
    EXPECT_FALSE(scan.clean());
    EXPECT_TRUE(scan.records.empty());

    // Too short for even a header.
    EXPECT_FALSE(scan_segment("CILEDG1\n").header_ok);
    EXPECT_FALSE(scan_segment("").header_ok);
}

TEST(LedgerFormatTest, TornTailTruncatesToLastValidRecord) {
    std::vector<LedgerRecord> original;
    const std::string bytes = three_record_segment(&original);

    // Cut inside the final (empty-payload) record: 40 bytes of framing.
    const std::string torn = bytes.substr(0, bytes.size() - 17);
    const SegmentScan scan = scan_segment(torn);
    EXPECT_TRUE(scan.header_ok);
    EXPECT_FALSE(scan.clean());
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0], original[0]);
    EXPECT_EQ(scan.records[1], original[1]);
    EXPECT_EQ(scan.valid_prefix, torn.size() - scan.torn_bytes);
    EXPECT_GT(scan.torn_bytes, 0u);
    EXPECT_EQ(scan.corrupt_bytes, 0u);
}

// Fuzz-style: every truncated prefix must scan without throwing, keep
// only fully-valid records, and account every byte to valid_prefix +
// torn_bytes.
TEST(LedgerFormatTest, EveryTruncatedPrefixAccountsAllBytes) {
    std::vector<LedgerRecord> original;
    const std::string bytes = three_record_segment(&original);
    for (std::size_t cut = kSegmentHeaderSize; cut < bytes.size(); ++cut) {
        const SegmentScan scan = scan_segment(bytes.substr(0, cut));
        ASSERT_TRUE(scan.header_ok) << "cut " << cut;
        ASSERT_LE(scan.records.size(), original.size()) << "cut " << cut;
        for (std::size_t i = 0; i < scan.records.size(); ++i) {
            ASSERT_EQ(scan.records[i], original[i]) << "cut " << cut;
        }
        ASSERT_EQ(scan.valid_prefix + scan.torn_bytes, cut) << "cut " << cut;
        ASSERT_EQ(scan.corrupt_bytes, 0u) << "cut " << cut;
    }
}

TEST(LedgerFormatTest, CorruptMiddleResynchronizesOnNextRecord) {
    std::vector<LedgerRecord> original;
    std::string bytes = three_record_segment(&original);

    // Flip one payload byte of the middle record: the scanner must skip
    // it, resync on record 2's magic, and report one corrupt span.
    const std::size_t first_size = kSegmentHeaderSize + kRecordHeaderSize +
                                   original[0].payload.size() + 8;
    bytes[first_size + kRecordHeaderSize + 5] ^= 0x40;

    const SegmentScan scan = scan_segment(bytes);
    EXPECT_FALSE(scan.clean());
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0], original[0]);
    EXPECT_EQ(scan.records[1], original[2]);
    EXPECT_EQ(scan.corrupt_spans, 1u);
    EXPECT_GT(scan.corrupt_bytes, 0u);
    EXPECT_EQ(scan.torn_bytes, 0u);
    EXPECT_EQ(scan.valid_prefix, bytes.size());
}

// Fuzz-style: a single flipped bit anywhere in the record region always
// invalidates exactly the record it lands in; the others survive.
TEST(LedgerFormatTest, EveryByteFlipLosesExactlyOneRecord) {
    std::vector<LedgerRecord> original;
    const std::string bytes = three_record_segment(&original);
    for (std::size_t pos = kSegmentHeaderSize; pos < bytes.size(); ++pos) {
        std::string flipped = bytes;
        flipped[pos] ^= 0x10;
        const SegmentScan scan = scan_segment(flipped);
        ASSERT_FALSE(scan.clean()) << "flip at " << pos;
        ASSERT_EQ(scan.records.size(), original.size() - 1)
            << "flip at " << pos;
        for (const LedgerRecord& r : scan.records) {
            ASSERT_NE(std::find(original.begin(), original.end(), r),
                      original.end())
                << "flip at " << pos;
        }
    }
}

TEST(LedgerFormatTest, ImplausiblePayloadLengthIsCorruptionNotAllocation) {
    std::string bytes = encode_segment_header(0);
    LedgerRecord record = make_record(0, "x");
    encode_record(bytes, record);
    // Rewrite the payload-size field (offset 24 in the record) to a size
    // beyond kMaxRecordPayload; the scanner must flag it, not allocate.
    const std::size_t size_offset = kSegmentHeaderSize + 24;
    for (std::size_t i = 0; i < 8; ++i) {
        bytes[size_offset + i] = '\xFF';
    }
    const SegmentScan scan = scan_segment(bytes);
    EXPECT_FALSE(scan.clean());
    EXPECT_TRUE(scan.records.empty());
}

TEST(LedgerFormatTest, RecordLessIsCanonicalOrder) {
    LedgerRecord a = make_record(1, "p");
    LedgerRecord b = make_record(2, "p");
    EXPECT_TRUE(record_less(a, b));
    EXPECT_FALSE(record_less(b, a));

    // Campaign dominates sequence.
    LedgerRecord c = b;
    c.campaign = a.campaign - 1;
    EXPECT_TRUE(record_less(c, a));

    // Equal records are unordered (strict-weak irreflexivity).
    EXPECT_FALSE(record_less(a, a));

    // Type breaks sequence ties.
    LedgerRecord d = a;
    d.type = RecordType::kCampaignEnd;
    EXPECT_TRUE(record_less(a, d));
}

TEST(LedgerFormatTest, RecordTypeNamesAndValidation) {
    EXPECT_STREQ(to_string(RecordType::kCampaignBegin), "campaign-begin");
    EXPECT_STREQ(to_string(RecordType::kCampaignEnd), "campaign-end");
    EXPECT_TRUE(is_valid_record_type(1));
    EXPECT_TRUE(is_valid_record_type(6));
    EXPECT_FALSE(is_valid_record_type(0));
    EXPECT_FALSE(is_valid_record_type(7));
}

TEST(LedgerFormatTest, SegmentFileNameRoundTrip) {
    EXPECT_EQ(segment_file_name(0), "seg-000000.ledg");
    EXPECT_EQ(segment_file_name(42), "seg-000042.ledg");
    EXPECT_EQ(parse_segment_file_name("seg-000042.ledg"), 42u);
    EXPECT_EQ(parse_segment_file_name("seg-000000.ledg"), 0u);
    EXPECT_FALSE(parse_segment_file_name("seg-00004.ledg").has_value());
    EXPECT_FALSE(parse_segment_file_name("seg-0000xx.ledg").has_value());
    EXPECT_FALSE(parse_segment_file_name("other.txt").has_value());
    EXPECT_FALSE(parse_segment_file_name("").has_value());
}

}  // namespace
}  // namespace cichar::store
