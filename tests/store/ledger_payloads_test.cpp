#include "store/ledger_payloads.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ga/wcr.hpp"

namespace cichar::store {
namespace {

testgen::PatternRecipe sample_recipe() {
    testgen::PatternRecipe recipe;
    recipe.cycles = 4096;
    recipe.write_fraction = 0.25;
    recipe.nop_fraction = 0.125;
    recipe.burst_length = 7.5;
    recipe.row_locality = 0.875;
    recipe.bank_conflict_bias = 0.0625;
    recipe.alternating_data_bias = 0.5;
    recipe.solid_data_bias = 0.375;
    recipe.toggle_bias = 0.75;
    recipe.control_activity = 0.9375;
    recipe.seed = 0xFEEDFACEULL;
    return recipe;
}

testgen::TestConditions sample_conditions() {
    testgen::TestConditions conditions;
    conditions.vdd_volts = 1.05;
    conditions.temperature_c = 85.0;
    conditions.clock_period_ns = 1.25;
    conditions.output_load_pf = 30.0;
    return conditions;
}

TEST(LedgerPayloadsTest, CampaignBeginRoundTrip) {
    CampaignBeginPayload payload;
    payload.fingerprint = "hunt:seed=7;gens=4";
    payload.seed = 7;
    EXPECT_EQ(decode_campaign_begin(encode_campaign_begin(payload)), payload);
}

TEST(LedgerPayloadsTest, MeasurementSummaryRoundTrip) {
    MeasurementSummaryPayload payload;
    payload.phase = "ga-search";
    payload.counters.applications = 910;
    payload.counters.vector_cycles = 123456789;
    payload.counters.tester_seconds = 3.75;
    EXPECT_EQ(decode_measurement_summary(encode_measurement_summary(payload)),
              payload);
}

TEST(LedgerPayloadsTest, TripRecordRoundTrip) {
    TripRecordPayload payload;
    payload.site = 3;
    payload.parameter = "tAA";
    payload.margin_risk = 0.42;
    payload.record.test_name = "ga-12";
    payload.record.trip_point = 1.875;
    payload.record.wcr = 21.5;
    payload.record.wcr_class = ga::WcrClass::kWeakness;
    payload.record.found = true;
    payload.record.measurements = 64;
    EXPECT_EQ(decode_trip_record(encode_trip_record(payload)), payload);
}

TEST(LedgerPayloadsTest, WorstCaseEntryRoundTrip) {
    WorstCaseEntryPayload payload;
    payload.entry.name = "ga-7 worst";
    payload.entry.recipe = sample_recipe();
    payload.entry.conditions = sample_conditions();
    payload.entry.trip_point = 1.9375;
    payload.entry.wcr = 22.25;
    payload.entry.wcr_class = ga::WcrClass::kFail;
    EXPECT_EQ(decode_worst_case_entry(encode_worst_case_entry(payload)),
              payload);
}

TEST(LedgerPayloadsTest, SnapshotRefRoundTrip) {
    SnapshotRefPayload payload;
    payload.kind = "report";
    payload.name = "report.txt";
    payload.checksum = 0x0123456789ABCDEFULL;
    EXPECT_EQ(decode_snapshot_ref(encode_snapshot_ref(payload)), payload);
}

TEST(LedgerPayloadsTest, CampaignEndRoundTrip) {
    CampaignEndPayload payload;
    payload.record_count = 69;
    EXPECT_EQ(decode_campaign_end(encode_campaign_end(payload)), payload);
}

// Fuzz-style hardening mirroring the manifest/cache tests: every
// truncated prefix of every encoding must throw, never half-load.
TEST(LedgerPayloadsTest, EveryTruncatedPrefixThrows) {
    TripRecordPayload trip;
    trip.parameter = "tRCD";
    trip.record.test_name = "ga-3";
    WorstCaseEntryPayload entry;
    entry.entry.name = "w";
    entry.entry.recipe = sample_recipe();
    entry.entry.conditions = sample_conditions();
    const std::string encodings[] = {
        encode_campaign_begin({"fp", 9}),
        encode_measurement_summary({"phase", {1, 2, 3.0}}),
        encode_trip_record(trip),
        encode_worst_case_entry(entry),
        encode_snapshot_ref({"database", "db.txt", 5}),
        encode_campaign_end({12}),
    };
    const auto try_decode = [](std::size_t which, const std::string& bytes) {
        switch (which) {
            case 0: (void)decode_campaign_begin(bytes); break;
            case 1: (void)decode_measurement_summary(bytes); break;
            case 2: (void)decode_trip_record(bytes); break;
            case 3: (void)decode_worst_case_entry(bytes); break;
            case 4: (void)decode_snapshot_ref(bytes); break;
            default: (void)decode_campaign_end(bytes); break;
        }
    };
    for (std::size_t which = 0; which < 6; ++which) {
        const std::string& bytes = encodings[which];
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            EXPECT_THROW(try_decode(which, bytes.substr(0, cut)),
                         std::runtime_error)
                << "codec " << which << " prefix " << cut;
        }
        // Trailing garbage is corruption too.
        EXPECT_THROW(try_decode(which, bytes + "x"), std::runtime_error)
            << "codec " << which;
    }
}

TEST(LedgerPayloadsTest, OutOfRangeWcrClassThrows) {
    TripRecordPayload payload;
    payload.record.wcr_class = ga::WcrClass::kPass;
    std::string bytes = encode_trip_record(payload);
    // The class byte is the last u32 before found/measurements; rather
    // than reverse-engineer the offset, brute-force every byte and
    // require at least one mutation to trip the range check while no
    // mutation ever returns a payload unequal-but-accepted silently.
    bool range_check_hit = false;
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::string mutated = bytes;
        mutated[pos] = '\x7F';
        try {
            (void)decode_trip_record(mutated);
        } catch (const std::runtime_error& e) {
            if (std::string(e.what()).find("class") != std::string::npos) {
                range_check_hit = true;
            }
        }
    }
    EXPECT_TRUE(range_check_hit);
}

}  // namespace
}  // namespace cichar::store
