#include "dist/shard_scheduler.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "lot/lot_runner.hpp"
#include "util/binio.hpp"

namespace cichar::dist {
namespace {

namespace fs = std::filesystem;

constexpr const char* kFingerprint = "lot:test-fingerprint";

/// A checkpoint blob whose payload marks [begin, end) finished (fake
/// sites: completed, no outcomes — enough for the coverage check and for
/// the merge codec).
std::string fake_blob(std::size_t begin, std::size_t end) {
    std::vector<lot::SiteResult> sites;
    for (std::size_t s = begin; s < end; ++s) {
        lot::SiteResult site;
        site.site = s;
        site.status = lot::SiteStatus::kCompleted;
        sites.push_back(std::move(site));
    }
    return core::encode_checkpoint(kFingerprint,
                                   lot::encode_finished_sites(sites));
}

/// Writes an executable /bin/sh worker stand-in.
void write_worker_script(const std::string& path, const std::string& body) {
    {
        std::ofstream out(path);
        out << "#!/bin/sh\n"
            // The scheduler passes: lot ... --site-range A:B
            // --checkpoint F --heartbeat H [--resume F]; pick out what
            // the fake worker needs.
            << "range=; ckpt=;\n"
            << "while [ $# -gt 0 ]; do\n"
            << "  case \"$1\" in\n"
            << "    --site-range) range=\"$2\"; shift 2;;\n"
            << "    --checkpoint) ckpt=\"$2\"; shift 2;;\n"
            << "    *) shift;;\n"
            << "  esac\n"
            << "done\n"
            << body;
    }
    fs::permissions(path, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
}

class ShardSchedulerTest : public testing::Test {
protected:
    void SetUp() override {
        work_ = testing::TempDir() + "sched_" +
                testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(work_);
        fs::create_directories(work_);
        // Pre-stage the blob every fake worker "computes" for its range.
        write_blob_file("blob_0:2", fake_blob(0, 2));
        write_blob_file("blob_2:4", fake_blob(2, 4));
    }

    void write_blob_file(const std::string& name, const std::string& blob) {
        ASSERT_TRUE(util::atomic_write_file(work_ + "/" + name, blob));
    }

    ShardSchedulerOptions scheduler_options(const std::string& script_body) {
        const std::string script = work_ + "/worker.sh";
        write_worker_script(script, script_body);
        ShardSchedulerOptions options;
        options.shards = 2;
        options.work_dir = work_;
        options.worker_program = script;
        options.poll_interval_seconds = 0.01;
        return options;
    }

    std::string work_;
};

TEST(HeartbeatAgeTest, MissingFileHasNoAge) {
    EXPECT_FALSE(
        heartbeat_age_seconds(testing::TempDir() + "no_such_heartbeat")
            .has_value());
}

TEST(HeartbeatAgeTest, FreshFileIsYoung) {
    const std::string path = testing::TempDir() + "fresh_heartbeat";
    ASSERT_TRUE(util::atomic_write_file(path, "1/4\n"));
    const std::optional<double> age = heartbeat_age_seconds(path);
    ASSERT_TRUE(age.has_value());
    EXPECT_LT(*age, 60.0);
}

TEST(ShardCheckpointCompleteTest, RequiresFullCoverageAndFingerprint) {
    const std::string dir = testing::TempDir();
    const std::string full = dir + "scc_full.ckpt";
    const std::string partial = dir + "scc_partial.ckpt";
    const std::string garbage = dir + "scc_garbage.ckpt";
    ASSERT_TRUE(util::atomic_write_file(full, fake_blob(0, 2)));
    ASSERT_TRUE(util::atomic_write_file(partial, fake_blob(0, 1)));
    ASSERT_TRUE(util::atomic_write_file(garbage, "torn write"));

    EXPECT_TRUE(shard_checkpoint_complete(full, kFingerprint, 0, 2));
    EXPECT_FALSE(shard_checkpoint_complete(partial, kFingerprint, 0, 2));
    EXPECT_FALSE(shard_checkpoint_complete(full, "other lot", 0, 2));
    EXPECT_FALSE(shard_checkpoint_complete(garbage, kFingerprint, 0, 2));
    EXPECT_FALSE(
        shard_checkpoint_complete(dir + "scc_missing", kFingerprint, 0, 2));
    // A blob covering more than the shard's own range still completes it.
    EXPECT_TRUE(shard_checkpoint_complete(full, kFingerprint, 0, 1));
}

TEST_F(ShardSchedulerTest, RunsWorkersToCompletionAndMerges) {
    const ShardScheduler scheduler(scheduler_options(
        "cp \"$(dirname \"$ckpt\")/blob_$range\" \"$ckpt\"\n"));
    const ShardRunResult result = scheduler.run(kFingerprint, 4);

    EXPECT_TRUE(result.manifest.complete());
    EXPECT_EQ(result.launches, 2u);
    EXPECT_EQ(result.reissues, 0u);
    EXPECT_EQ(result.kills, 0u);
    EXPECT_EQ(result.merge.sites, 4u);
    EXPECT_EQ(result.merged_blob,
              merge_shard_checkpoints({fake_blob(0, 2), fake_blob(2, 4)}));
    // Both artifacts are on disk: fused blob + final manifest.
    EXPECT_EQ(util::read_file(result.merged_path), result.merged_blob);
    const std::optional<ShardManifest> persisted =
        ShardManifest::load(result.manifest_path);
    ASSERT_TRUE(persisted.has_value());
    EXPECT_TRUE(persisted->complete());
    EXPECT_EQ(persisted->lot_fingerprint, kFingerprint);
}

TEST_F(ShardSchedulerTest, CrashedWorkerIsReissued) {
    // First attempt per shard: leave a marker and die with exit 1.
    // Second attempt: the marker exists, so produce the checkpoint.
    const ShardScheduler scheduler(scheduler_options(
        "marker=\"$ckpt.tried\"\n"
        "if [ -f \"$marker\" ]; then\n"
        "  cp \"$(dirname \"$ckpt\")/blob_$range\" \"$ckpt\"\n"
        "else\n"
        "  : > \"$marker\"\n"
        "  exit 1\n"
        "fi\n"));
    const ShardRunResult result = scheduler.run(kFingerprint, 4);

    EXPECT_TRUE(result.manifest.complete());
    EXPECT_EQ(result.launches, 4u);  // two shards, two attempts each
    EXPECT_EQ(result.reissues, 2u);
    for (const ShardEntry& shard : result.manifest.shards) {
        EXPECT_EQ(shard.attempts, 2u);
        EXPECT_EQ(shard.state, ShardState::kDone);
    }
    EXPECT_EQ(result.merge.sites, 4u);
}

TEST_F(ShardSchedulerTest, ExhaustedAttemptsFailTheRun) {
    ShardSchedulerOptions options = scheduler_options("exit 1\n");
    options.max_attempts = 2;
    const ShardScheduler scheduler(options);
    EXPECT_THROW((void)scheduler.run(kFingerprint, 4), std::runtime_error);

    // The persisted manifest records the failure for post-mortems.
    const std::optional<ShardManifest> persisted =
        ShardManifest::load(work_ + "/manifest.bin");
    ASSERT_TRUE(persisted.has_value());
    bool failed = false;
    for (const ShardEntry& shard : persisted->shards) {
        if (shard.state == ShardState::kFailed) failed = true;
    }
    EXPECT_TRUE(failed);
}

TEST_F(ShardSchedulerTest, CompleteShardsNeedNoWorker) {
    // A restarted coordinator finds both shard checkpoints already
    // complete; even a worker that would always fail is never launched.
    ASSERT_TRUE(
        util::atomic_write_file(work_ + "/shard_0.ckpt", fake_blob(0, 2)));
    ASSERT_TRUE(
        util::atomic_write_file(work_ + "/shard_1.ckpt", fake_blob(2, 4)));
    const ShardScheduler scheduler(scheduler_options("exit 1\n"));
    const ShardRunResult result = scheduler.run(kFingerprint, 4);

    EXPECT_TRUE(result.manifest.complete());
    EXPECT_EQ(result.launches, 0u);
    EXPECT_EQ(result.merge.sites, 4u);
}

TEST_F(ShardSchedulerTest, MaxParallelBoundsTheFleet) {
    ShardSchedulerOptions options = scheduler_options(
        "cp \"$(dirname \"$ckpt\")/blob_$range\" \"$ckpt\"\n");
    options.max_parallel = 1;
    const ShardRunResult result =
        ShardScheduler(options).run(kFingerprint, 4);
    EXPECT_TRUE(result.manifest.complete());
    EXPECT_EQ(result.launches, 2u);
}

TEST_F(ShardSchedulerTest, MissingWorkerProgramFailsTheRun) {
    ShardSchedulerOptions options;
    options.shards = 2;
    options.work_dir = work_;
    options.poll_interval_seconds = 0.01;
    EXPECT_THROW((void)ShardScheduler(options).run(kFingerprint, 4),
                 std::runtime_error);  // no worker program at all
    options.worker_program = work_ + "/does-not-exist";
    options.max_attempts = 1;
    EXPECT_THROW((void)ShardScheduler(options).run(kFingerprint, 4),
                 std::runtime_error);  // exec failure -> exit 127 -> failed
}

}  // namespace
}  // namespace cichar::dist
