#include "dist/heartbeat.hpp"

#include <gtest/gtest.h>

namespace cichar::dist {
namespace {

TEST(HeartbeatTest, ParsesLegacyZero) {
    // The pre-enrichment launch payload was a bare "0".
    const auto info = parse_heartbeat("0");
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->sites_done, 0u);
    EXPECT_EQ(info->sites_total, 0u);
    EXPECT_FALSE(info->has_generation);
}

TEST(HeartbeatTest, ParsesLegacyDoneOverTotal) {
    const auto info = parse_heartbeat("3/8\n");
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->sites_done, 3u);
    EXPECT_EQ(info->sites_total, 8u);
    EXPECT_FALSE(info->has_generation);
}

TEST(HeartbeatTest, ParsesEnrichedPayload) {
    const auto info = parse_heartbeat("5/8 gen=142\n");
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->sites_done, 5u);
    EXPECT_EQ(info->sites_total, 8u);
    EXPECT_TRUE(info->has_generation);
    EXPECT_EQ(info->generation, 142u);
}

TEST(HeartbeatTest, FormatRoundTrips) {
    const std::string payload = format_heartbeat(2, 6, 37);
    EXPECT_EQ(payload, "2/6 gen=37\n");
    const auto info = parse_heartbeat(payload);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->sites_done, 2u);
    EXPECT_EQ(info->sites_total, 6u);
    EXPECT_EQ(info->generation, 37u);
    EXPECT_TRUE(info->has_generation);
}

TEST(HeartbeatTest, RejectsJunk) {
    // Junk payloads make the caller fall back to mtime-only liveness.
    EXPECT_FALSE(parse_heartbeat(""));
    EXPECT_FALSE(parse_heartbeat("alive"));
    EXPECT_FALSE(parse_heartbeat("3/"));
    EXPECT_FALSE(parse_heartbeat("/8"));
    EXPECT_FALSE(parse_heartbeat("3/8 gen="));
    EXPECT_FALSE(parse_heartbeat("3/8 gen=x"));
    EXPECT_FALSE(parse_heartbeat("3/8 trailing"));
}

}  // namespace
}  // namespace cichar::dist
