#include "dist/shard_manifest.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/binio.hpp"

namespace cichar::dist {
namespace {

ShardManifest sample_manifest() {
    ShardManifest manifest =
        ShardManifest::partition("lot:seed=77", 8, 3, "work");
    manifest.shards[0].state = ShardState::kDone;
    manifest.shards[0].attempts = 1;
    manifest.shards[1].state = ShardState::kRunning;
    manifest.shards[1].attempts = 2;
    return manifest;
}

/// Re-wraps a raw payload in the manifest envelope (magic + length +
/// checksum) so tests can probe decode() with hand-crafted payloads.
std::string envelope(const std::string& payload) {
    std::string out(kShardManifestMagic);
    util::put_string(out, payload);
    util::put_u64(out, util::checksum64(payload));
    return out;
}

TEST(ShardManifestTest, PartitionCoversEverySiteExactlyOnce) {
    for (const std::size_t sites : {1u, 7u, 8u, 9u, 16u}) {
        for (std::size_t shards = 1; shards <= std::min<std::size_t>(sites, 5);
             ++shards) {
            const ShardManifest manifest =
                ShardManifest::partition("fp", sites, shards, "wd");
            ASSERT_EQ(manifest.shards.size(), shards);
            EXPECT_EQ(manifest.sites, sites);
            std::size_t next = 0;
            for (std::size_t k = 0; k < shards; ++k) {
                const ShardEntry& shard = manifest.shards[k];
                EXPECT_EQ(shard.index, k);
                // Contiguous and gap-free: each shard starts where the
                // previous one ended.
                EXPECT_EQ(shard.site_begin, next);
                EXPECT_GT(shard.site_end, shard.site_begin);
                next = shard.site_end;
                // Balanced: sizes differ by at most one.
                EXPECT_GE(shard.site_count(), sites / shards);
                EXPECT_LE(shard.site_count(), sites / shards + 1);
                EXPECT_EQ(shard.state, ShardState::kPending);
                EXPECT_EQ(shard.checkpoint,
                          "wd/shard_" + std::to_string(k) + ".ckpt");
                EXPECT_EQ(shard.heartbeat,
                          "wd/shard_" + std::to_string(k) + ".hb");
            }
            EXPECT_EQ(next, sites);
        }
    }
}

TEST(ShardManifestTest, PartitionRejectsBadShardCounts) {
    EXPECT_THROW((void)ShardManifest::partition("fp", 4, 0, "wd"),
                 std::invalid_argument);
    EXPECT_THROW((void)ShardManifest::partition("fp", 4, 5, "wd"),
                 std::invalid_argument);
}

TEST(ShardManifestTest, RangeSpecMatchesWorkerFlag) {
    const ShardManifest manifest =
        ShardManifest::partition("fp", 8, 2, "wd");
    EXPECT_EQ(manifest.shards[0].range_spec(), "0:4");
    EXPECT_EQ(manifest.shards[1].range_spec(), "4:8");
}

TEST(ShardManifestTest, EncodeDecodeRoundTrip) {
    const ShardManifest manifest = sample_manifest();
    const std::optional<ShardManifest> decoded =
        ShardManifest::decode(manifest.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->lot_fingerprint, manifest.lot_fingerprint);
    EXPECT_EQ(decoded->sites, manifest.sites);
    ASSERT_EQ(decoded->shards.size(), manifest.shards.size());
    for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
        EXPECT_EQ(decoded->shards[k].index, manifest.shards[k].index);
        EXPECT_EQ(decoded->shards[k].site_begin,
                  manifest.shards[k].site_begin);
        EXPECT_EQ(decoded->shards[k].site_end, manifest.shards[k].site_end);
        EXPECT_EQ(decoded->shards[k].checkpoint,
                  manifest.shards[k].checkpoint);
        EXPECT_EQ(decoded->shards[k].heartbeat,
                  manifest.shards[k].heartbeat);
        EXPECT_EQ(decoded->shards[k].attempts, manifest.shards[k].attempts);
        EXPECT_EQ(decoded->shards[k].state, manifest.shards[k].state);
    }
    // Byte-stable: identical state encodes identically.
    EXPECT_EQ(manifest.encode(), sample_manifest().encode());
}

TEST(ShardManifestTest, DecodeRejectsCorruptionAndTruncation) {
    const std::string encoded = sample_manifest().encode();
    EXPECT_TRUE(ShardManifest::decode(encoded).has_value());

    // Wrong magic.
    std::string wrong_magic = encoded;
    wrong_magic[0] = 'X';
    EXPECT_FALSE(ShardManifest::decode(wrong_magic).has_value());

    // Any single bit flip past the magic fails the checksum (or a length
    // guard); never a half-loaded manifest.
    for (std::size_t i = kShardManifestMagic.size(); i < encoded.size();
         i += 7) {
        std::string corrupt = encoded;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
        EXPECT_FALSE(ShardManifest::decode(corrupt).has_value())
            << "flip at byte " << i;
    }

    // Every truncation point is rejected.
    for (std::size_t keep = 0; keep < encoded.size(); keep += 9) {
        EXPECT_FALSE(
            ShardManifest::decode(encoded.substr(0, keep)).has_value())
            << "truncated to " << keep << " bytes";
    }
}

TEST(ShardManifestTest, DecodeRejectsUnsupportedVersion) {
    std::string payload;
    util::put_u32(payload, kShardManifestVersion + 1);
    util::put_string(payload, "fp");
    util::put_u64(payload, 0);
    util::put_u64(payload, 0);
    EXPECT_FALSE(ShardManifest::decode(envelope(payload)).has_value());
}

TEST(ShardManifestTest, DecodeRejectsMalformedShards) {
    // Inverted range.
    ShardManifest inverted = sample_manifest();
    inverted.shards[1].site_begin = inverted.shards[1].site_end + 1;
    EXPECT_FALSE(ShardManifest::decode(inverted.encode()).has_value());

    // Range past the lot.
    ShardManifest oversized = sample_manifest();
    oversized.shards[2].site_end = oversized.sites + 4;
    EXPECT_FALSE(ShardManifest::decode(oversized.encode()).has_value());

    // Unknown state enum value (hand-crafted payload).
    std::string payload;
    util::put_u32(payload, kShardManifestVersion);
    util::put_string(payload, "fp");
    util::put_u64(payload, 4);
    util::put_u64(payload, 1);
    util::put_u64(payload, 0);  // index
    util::put_u64(payload, 0);  // begin
    util::put_u64(payload, 4);  // end
    util::put_string(payload, "a.ckpt");
    util::put_string(payload, "a.hb");
    util::put_u64(payload, 1);  // attempts
    util::put_u64(payload, 9);  // state: out of range
    EXPECT_FALSE(ShardManifest::decode(envelope(payload)).has_value());
}

TEST(ShardManifestTest, SaveLoadRoundTrip) {
    const std::string path = testing::TempDir() + "manifest_rt.bin";
    const ShardManifest manifest = sample_manifest();
    ASSERT_TRUE(manifest.save(path));
    const std::optional<ShardManifest> loaded = ShardManifest::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->encode(), manifest.encode());
    EXPECT_FALSE(
        ShardManifest::load(path + ".does-not-exist").has_value());
}

TEST(ShardManifestTest, CompleteRequiresEveryShardDone) {
    ShardManifest manifest = ShardManifest::partition("fp", 4, 2, "wd");
    EXPECT_FALSE(manifest.complete());
    manifest.shards[0].state = ShardState::kDone;
    EXPECT_FALSE(manifest.complete());
    manifest.shards[1].state = ShardState::kDone;
    EXPECT_TRUE(manifest.complete());
}

// Exhaustive fuzz hardening (every byte, every bit — the sampled sweep
// above is the quick version): no single-bit flip anywhere in the
// envelope may ever yield a decoded manifest. The magic is included:
// a flipped magic byte must fail the magic check, and a flipped payload,
// length, or checksum byte must fail the checksum.
TEST(ShardManifestFuzzTest, EverySingleBitFlipRejected) {
    const std::string encoded = sample_manifest().encode();
    for (std::size_t i = 0; i < encoded.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string corrupt = encoded;
            corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
            ASSERT_FALSE(ShardManifest::decode(corrupt).has_value())
                << "flip bit " << bit << " of byte " << i;
        }
    }
}

// Every proper prefix is rejected — a torn manifest write can never
// half-load, whatever instant the power died at.
TEST(ShardManifestFuzzTest, EveryPrefixTruncationRejected) {
    const std::string encoded = sample_manifest().encode();
    for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
        ASSERT_FALSE(ShardManifest::decode(encoded.substr(0, keep)).has_value())
            << "truncated to " << keep << " bytes";
    }
}

// Appended garbage (a crashed writer double-appending, a filesystem
// replaying a stale tail) is corruption, not data.
TEST(ShardManifestFuzzTest, TrailingGarbageRejected) {
    const std::string encoded = sample_manifest().encode();
    EXPECT_FALSE(ShardManifest::decode(encoded + std::string(1, '\0'))
                     .has_value());
    EXPECT_FALSE(ShardManifest::decode(encoded + encoded).has_value());
}

TEST(ShardManifestTest, StateNamesAreStable) {
    EXPECT_STREQ(to_string(ShardState::kPending), "pending");
    EXPECT_STREQ(to_string(ShardState::kRunning), "running");
    EXPECT_STREQ(to_string(ShardState::kDone), "done");
    EXPECT_STREQ(to_string(ShardState::kFailed), "failed");
}

}  // namespace
}  // namespace cichar::dist
