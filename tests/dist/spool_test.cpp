#include "dist/spool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/binio.hpp"

namespace cichar::dist {
namespace {

namespace fs = std::filesystem;

class SpoolTest : public testing::Test {
protected:
    void SetUp() override {
        root_ = testing::TempDir() + "spool_" +
                testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(root_);
    }

    void enqueue(const std::string& name, const CampaignRequest& request) {
        fs::create_directories(root_ + "/incoming");
        ASSERT_TRUE(util::atomic_write_file(
            root_ + "/incoming/" + name + ".req", request.render()));
    }

    void enqueue_raw(const std::string& name, const std::string& text) {
        fs::create_directories(root_ + "/incoming");
        ASSERT_TRUE(util::atomic_write_file(
            root_ + "/incoming/" + name + ".req", text));
    }

    SpoolOptions drain_options(std::size_t max_queue = 16) const {
        SpoolOptions options;
        options.root = root_;
        options.max_queue = max_queue;
        options.drain = true;
        return options;
    }

    [[nodiscard]] bool exists(const std::string& rel) const {
        return fs::exists(root_ + "/" + rel);
    }

    std::string root_;
};

CampaignRequest small_request(std::int64_t priority = 0) {
    CampaignRequest request;
    request.sites = 2;
    request.tests = 24;
    request.generations = 3;
    request.priority = priority;
    return request;
}

TEST_F(SpoolTest, RequestRenderParseRoundTrip) {
    CampaignRequest request = small_request(7);
    request.shards = 2;
    request.jobs = 3;
    request.seed = 99;
    request.params = "all";
    request.fault_profile = "transient:0.02";
    request.policy = "off";
    const CampaignRequest parsed =
        CampaignRequest::parse(request.render(), "rt");
    EXPECT_EQ(parsed.name, "rt");
    EXPECT_EQ(parsed.priority, 7);
    EXPECT_EQ(parsed.shards, 2u);
    EXPECT_EQ(parsed.sites, 2u);
    EXPECT_EQ(parsed.jobs, 3u);
    EXPECT_EQ(parsed.seed, 99u);
    EXPECT_EQ(parsed.tests, 24u);
    EXPECT_EQ(parsed.generations, 3u);
    EXPECT_EQ(parsed.params, "all");
    EXPECT_EQ(parsed.fault_profile, "transient:0.02");
    EXPECT_EQ(parsed.policy, "off");
    EXPECT_EQ(parsed.render(), request.render());
}

TEST_F(SpoolTest, ParseRejectsMalformedRequests) {
    EXPECT_THROW((void)CampaignRequest::parse("", "x"), std::runtime_error);
    EXPECT_THROW((void)CampaignRequest::parse("wrong header\n", "x"),
                 std::runtime_error);
    const std::string header = "cichar-campaign-request 1\n";
    EXPECT_THROW(
        (void)CampaignRequest::parse(header + "surprise 1\n", "x"),
        std::runtime_error);  // unknown key
    EXPECT_THROW((void)CampaignRequest::parse(header + "sites\n", "x"),
                 std::runtime_error);  // no value
    EXPECT_THROW(
        (void)CampaignRequest::parse(header + "sites banana\n", "x"),
        std::runtime_error);  // junk number
    EXPECT_THROW((void)CampaignRequest::parse(header + "sites 0\n", "x"),
                 std::runtime_error);
    EXPECT_THROW((void)CampaignRequest::parse(header + "shards 0\n", "x"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)CampaignRequest::parse(header + "sites 2\nshards 4\n", "x"),
        std::runtime_error);  // more shards than sites
    EXPECT_THROW(
        (void)CampaignRequest::parse(header + "kind hunt\n", "x"),
        std::runtime_error);  // unsupported kind
    // Comments and blank lines are fine.
    EXPECT_NO_THROW((void)CampaignRequest::parse(
        header + "# a comment\n\nsites 4\n", "x"));
}

TEST_F(SpoolTest, ExecutesByPriorityThenName) {
    enqueue("low", small_request(1));
    enqueue("urgent", small_request(9));
    enqueue("b-tie", small_request(5));
    enqueue("a-tie", small_request(5));

    std::vector<std::string> order;
    SpoolCoordinator coordinator(drain_options(),
                                 [&order](const CampaignRequest& request) {
                                     order.push_back(request.name);
                                     return "report for " + request.name;
                                 });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    ASSERT_EQ(order,
              (std::vector<std::string>{"urgent", "a-tie", "b-tie", "low"}));

    // Artifacts land in done/, the queue and active slot are empty.
    for (const std::string& name : order) {
        EXPECT_TRUE(exists("done/" + name + ".report"));
        EXPECT_FALSE(exists("incoming/" + name + ".req"));
        EXPECT_FALSE(exists("active/" + name + ".req"));
    }
    const std::optional<std::string> report =
        util::read_file(root_ + "/done/urgent.report");
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(*report, "report for urgent");
}

TEST_F(SpoolTest, AdmissionControlShedsLowestPriority) {
    for (int p = 0; p < 5; ++p) {
        enqueue("req" + std::to_string(p),
                small_request(p));
    }
    std::vector<std::string> order;
    SpoolCoordinator coordinator(drain_options(/*max_queue=*/3),
                                 [&order](const CampaignRequest& request) {
                                     order.push_back(request.name);
                                     return std::string("ok");
                                 });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.rejected, 2u);
    EXPECT_EQ(stats.executed, 3u);
    // The two lowest-priority requests were shed, loudly.
    EXPECT_TRUE(exists("rejected/req0.err"));
    EXPECT_TRUE(exists("rejected/req1.err"));
    ASSERT_EQ(order,
              (std::vector<std::string>{"req4", "req3", "req2"}));
}

TEST_F(SpoolTest, MalformedRequestIsFiledNotFatal) {
    enqueue_raw("broken", "not a campaign request\n");
    enqueue("good", small_request());

    SpoolCoordinator coordinator(drain_options(),
                                 [](const CampaignRequest&) {
                                     return std::string("ok");
                                 });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_TRUE(exists("failed/broken.err"));
    EXPECT_TRUE(exists("done/good.report"));
    const std::optional<std::string> err =
        util::read_file(root_ + "/failed/broken.err");
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("header"), std::string::npos);
}

TEST_F(SpoolTest, ExecutorFailureIsFiledAndServiceContinues) {
    enqueue("doomed", small_request(9));
    enqueue("fine", small_request(1));

    SpoolCoordinator coordinator(
        drain_options(), [](const CampaignRequest& request) -> std::string {
            if (request.name == "doomed") {
                throw std::runtime_error("tester caught fire");
            }
            return "ok";
        });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_TRUE(exists("failed/doomed.err"));
    EXPECT_FALSE(exists("active/doomed.req"));
    EXPECT_TRUE(exists("done/fine.report"));
    const std::optional<std::string> err =
        util::read_file(root_ + "/failed/doomed.err");
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("tester caught fire"), std::string::npos);
}

TEST_F(SpoolTest, MaxRequestsBoundsTheService) {
    for (int p = 0; p < 4; ++p) {
        enqueue("req" + std::to_string(p), small_request(p));
    }
    SpoolOptions options = drain_options();
    options.max_requests = 2;
    std::size_t executed = 0;
    SpoolCoordinator coordinator(options,
                                 [&executed](const CampaignRequest&) {
                                     ++executed;
                                     return std::string("ok");
                                 });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(executed, 2u);
    // The rest stay queued for a later service run.
    EXPECT_TRUE(exists("incoming/req0.req"));
}

TEST_F(SpoolTest, DrainOnEmptySpoolIsANoOp) {
    SpoolCoordinator coordinator(drain_options(),
                                 [](const CampaignRequest&) {
                                     return std::string("ok");
                                 });
    const SpoolCoordinator::Stats stats = coordinator.run();
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    // The layout exists afterwards so clients can start dropping files.
    EXPECT_TRUE(exists("incoming"));
    EXPECT_TRUE(exists("done"));
}

}  // namespace
}  // namespace cichar::dist
