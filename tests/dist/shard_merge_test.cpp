#include "dist/shard_merge.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/trip_cache.hpp"
#include "lot/lot_report.hpp"
#include "lot/lot_runner.hpp"

namespace cichar::dist {
namespace {

using lot::LotOptions;
using lot::LotResult;
using lot::LotRunner;

LotOptions fast_lot(std::size_t sites, std::size_t jobs) {
    LotOptions options;
    options.sites = sites;
    options.jobs = jobs;
    options.seed = 77;
    options.characterizer.generator.condition_bounds =
        testgen::ConditionBounds::fixed_nominal();
    options.characterizer.learner.training_tests = 24;
    options.characterizer.learner.max_rounds = 1;
    options.characterizer.learner.committee.members = 2;
    options.characterizer.learner.committee.hidden_layers = {8};
    options.characterizer.learner.committee.train.max_epochs = 40;
    options.characterizer.optimizer.ga.population.size = 8;
    options.characterizer.optimizer.ga.populations = 2;
    options.characterizer.optimizer.ga.max_generations = 4;
    options.characterizer.optimizer.nn_candidates = 80;
    options.characterizer.optimizer.nn_seed_count = 4;
    return options;
}

/// A profile that quarantines and kills sites at this test scale, so the
/// merged artifacts carry nontrivial site-health state.
LotOptions faulted_lot(std::size_t sites, std::size_t jobs) {
    LotOptions options = fast_lot(sites, jobs);
    options.faults.transient_rate = 0.02;
    options.faults.transient_span_fraction = 0.2;
    options.faults.timeout_rate = 0.005;
    options.faults.site_death_rate = 0.002;
    options.faults.seed = 5;
    options.policy.enabled = true;
    options.policy.quarantine_after = 8;
    return options;
}

/// Runs `options` (optionally restricted to [begin, end)) and returns
/// the last checkpoint blob the runner emitted.
std::string run_for_blob(LotOptions options, std::size_t begin = 0,
                         std::size_t end = 0) {
    options.site_range_begin = begin;
    options.site_range_end = end;
    std::string last;
    options.checkpoint.save = [&last](const std::string& blob) {
        last = blob;
    };
    (void)LotRunner(options).run();
    return last;
}

TEST(ShardMergeTest, MergedBlobIsByteIdenticalToSingleProcessCheckpoint) {
    const LotOptions options = fast_lot(4, 2);
    const std::string reference = run_for_blob(options);
    const std::string shard0 = run_for_blob(options, 0, 2);
    const std::string shard1 = run_for_blob(options, 2, 4);
    ASSERT_FALSE(reference.empty());
    ASSERT_FALSE(shard0.empty());
    ASSERT_NE(shard0, shard1);

    MergeStats stats;
    EXPECT_EQ(merge_shard_checkpoints({shard0, shard1}, {}, &stats),
              reference);
    EXPECT_EQ(stats.shards, 2u);
    EXPECT_EQ(stats.sites, 4u);
    EXPECT_EQ(stats.empty_shards, 0u);

    // Merge order does not matter: sites are fused in index order.
    EXPECT_EQ(merge_shard_checkpoints({shard1, shard0}), reference);
}

TEST(ShardMergeTest, MergedLotReportMatchesSingleProcess) {
    LotOptions options = fast_lot(4, 2);
    const std::string full_render =
        lot::LotReport::build(LotRunner(options).run()).render();

    const std::string merged = merge_shard_checkpoints(
        {run_for_blob(options, 0, 2), run_for_blob(options, 2, 4)});
    options.checkpoint.resume_blob = merged;
    const LotResult resumed = LotRunner(options).run();
    ASSERT_TRUE(resumed.complete());
    for (const lot::SiteResult& site : resumed.sites) {
        EXPECT_TRUE(site.restored);
    }
    EXPECT_EQ(lot::LotReport::build(resumed).render(), full_render);
}

TEST(ShardMergeTest, RejectsOverlappingSiteRanges) {
    const LotOptions options = fast_lot(4, 1);
    const std::string shard0 = run_for_blob(options, 0, 2);
    const std::string overlapping = run_for_blob(options, 1, 3);
    try {
        (void)merge_shard_checkpoints({shard0, overlapping});
        FAIL() << "overlapping ranges must be rejected";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("overlapping"),
                  std::string::npos);
    }
}

TEST(ShardMergeTest, EmptyShardContributesNothing) {
    const LotOptions options = fast_lot(4, 2);
    const std::string reference = run_for_blob(options);
    const std::string fingerprint = LotRunner(options).fingerprint();
    const std::string empty = core::encode_checkpoint(
        fingerprint, lot::encode_finished_sites({}));

    MergeStats stats;
    EXPECT_EQ(merge_shard_checkpoints({run_for_blob(options, 0, 2), empty,
                                       run_for_blob(options, 2, 4)},
                                      fingerprint, &stats),
              reference);
    EXPECT_EQ(stats.shards, 3u);
    EXPECT_EQ(stats.empty_shards, 1u);
}

TEST(ShardMergeTest, RejectsFingerprintMismatch) {
    const LotOptions options = fast_lot(4, 1);
    LotOptions other_lot = options;
    other_lot.seed = 78;
    const std::string shard0 = run_for_blob(options, 0, 2);
    const std::string foreign = run_for_blob(other_lot, 2, 4);

    // Shards of two different lot configurations never fuse...
    EXPECT_THROW((void)merge_shard_checkpoints({shard0, foreign}),
                 std::runtime_error);
    // ...and an explicit expected fingerprint rejects even the first blob.
    EXPECT_THROW(
        (void)merge_shard_checkpoints({shard0}, "lot:other-config"),
        std::runtime_error);
}

TEST(ShardMergeTest, RejectsCorruptAndNonCheckpointBlobs) {
    const LotOptions options = fast_lot(2, 1);
    std::string blob = run_for_blob(options, 0, 1);

    EXPECT_THROW((void)merge_shard_checkpoints({}), std::runtime_error);
    EXPECT_THROW((void)merge_shard_checkpoints({"not a checkpoint"}),
                 std::runtime_error);

    blob[blob.size() - 5] ^= 0x1;  // payload/checksum corruption
    EXPECT_THROW((void)merge_shard_checkpoints({blob}), std::runtime_error);
}

TEST(ShardMergeTest, FaultedShardsPreserveSiteHealthSections) {
    LotOptions options = faulted_lot(4, 2);
    const LotResult full = LotRunner(options).run();
    const std::string full_render = lot::LotReport::build(full).render();
    // The profile must actually have degraded sites, or this test checks
    // nothing.
    std::size_t unhealthy = 0;
    for (const lot::SiteResult& site : full.sites) {
        if (site.status != lot::SiteStatus::kCompleted) ++unhealthy;
    }
    ASSERT_GT(unhealthy, 0u)
        << "fault profile chosen to degrade at least one site";

    const std::string merged = merge_shard_checkpoints(
        {run_for_blob(options, 0, 2), run_for_blob(options, 2, 4)});
    EXPECT_EQ(merged, run_for_blob(options));

    options.checkpoint.resume_blob = merged;
    const std::string merged_render =
        lot::LotReport::build(LotRunner(options).run()).render();
    EXPECT_EQ(merged_render, full_render);
    EXPECT_NE(merged_render.find("site health"), std::string::npos);
}

// --- trip-cache fusion ------------------------------------------------

core::TripCacheKey cache_key(std::uint64_t seed) {
    core::TripCacheKey key;
    key.recipe.cycles = 500;
    key.recipe.write_fraction = 0.5;
    key.recipe.seed = seed;
    key.conditions.vdd_volts = 1.8;
    return key;
}

core::TripPointRecord cache_record(double trip) {
    core::TripPointRecord record;
    record.test_name = "t";
    record.trip_point = trip;
    record.found = true;
    record.measurements = 7;
    return record;
}

std::string write_cache(const std::string& name,
                        const std::vector<std::uint64_t>& seeds,
                        double trip, const std::string& identity) {
    core::TripPointCache cache(64);
    for (const std::uint64_t seed : seeds) {
        cache.insert(cache_key(seed), cache_record(trip));
    }
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary);
    EXPECT_TRUE(cache.save(out, identity));
    return path;
}

TEST(ShardMergeTest, TripCacheFusionUnionsShardCaches) {
    const std::string a = write_cache("merge_a.tpc", {1, 2, 3}, 20.0, "T_DQ");
    const std::string b = write_cache("merge_b.tpc", {3, 4}, 30.0, "T_DQ");
    const std::string out = testing::TempDir() + "merge_fused.tpc";

    EXPECT_EQ(merge_trip_cache_files({a, b}, out), "T_DQ");

    core::TripPointCache fused(64);
    std::ifstream in(out, std::ios::binary);
    ASSERT_TRUE(fused.load(in, "T_DQ"));
    EXPECT_EQ(fused.size(), 4u);  // key 3 collided
    for (const std::uint64_t seed : {1u, 2u, 4u}) {
        ASSERT_NE(fused.lookup(cache_key(seed)), nullptr);
    }
    // Later-merged shard wins the collision.
    const core::TripPointRecord* collided = fused.lookup(cache_key(3));
    ASSERT_NE(collided, nullptr);
    EXPECT_DOUBLE_EQ(collided->trip_point, 30.0);
}

TEST(ShardMergeTest, TripCacheFusionRejectsMixedIdentities) {
    const std::string a = write_cache("merge_ia.tpc", {1}, 20.0, "T_DQ");
    const std::string b = write_cache("merge_ib.tpc", {2}, 20.0, "Fmax");
    const std::string out = testing::TempDir() + "merge_bad.tpc";
    EXPECT_THROW((void)merge_trip_cache_files({a, b}, out),
                 std::runtime_error);
    EXPECT_THROW((void)merge_trip_cache_files({}, out), std::runtime_error);
    EXPECT_THROW(
        (void)merge_trip_cache_files({out + ".missing"}, out),
        std::runtime_error);
}

}  // namespace
}  // namespace cichar::dist
