#include "ate/parameter.hpp"

#include <gtest/gtest.h>

namespace cichar::ate {
namespace {

TEST(ParameterTest, DataValidTimeFactory) {
    const Parameter p = Parameter::data_valid_time();
    EXPECT_EQ(p.name, "T_DQ");
    EXPECT_EQ(p.kind, device::ParameterKind::kDataValidTime);
    EXPECT_DOUBLE_EQ(p.spec, 20.0);
    EXPECT_EQ(p.spec_type, SpecType::kMinLimit);
    EXPECT_TRUE(p.fail_high);
    EXPECT_LT(p.search_start, p.search_end);
}

TEST(ParameterTest, MinVddFactoryReversed) {
    const Parameter p = Parameter::min_vdd();
    EXPECT_FALSE(p.fail_high);
    EXPECT_GT(p.search_start, p.search_end);  // searching downward
    EXPECT_EQ(p.spec_type, SpecType::kMaxLimit);
}

TEST(ParameterTest, CharacterizationRange) {
    const Parameter p = Parameter::data_valid_time();
    EXPECT_DOUBLE_EQ(p.characterization_range(), 30.0);
    const Parameter v = Parameter::min_vdd();
    EXPECT_NEAR(v.characterization_range(), 1.2, 1e-12);
}

TEST(ParameterTest, PassAndFailSidesFailHigh) {
    const Parameter p = Parameter::data_valid_time();
    EXPECT_DOUBLE_EQ(p.pass_side(), 15.0);
    EXPECT_DOUBLE_EQ(p.fail_side(), 45.0);
    EXPECT_DOUBLE_EQ(p.toward_fail(), 1.0);
}

TEST(ParameterTest, PassAndFailSidesFailLow) {
    const Parameter p = Parameter::min_vdd();
    EXPECT_DOUBLE_EQ(p.pass_side(), 2.2);
    EXPECT_DOUBLE_EQ(p.fail_side(), 1.0);
    EXPECT_DOUBLE_EQ(p.toward_fail(), -1.0);
}

TEST(ParameterTest, QuantizeSnapsToGrid) {
    Parameter p = Parameter::data_valid_time();  // resolution 0.1
    EXPECT_NEAR(p.quantize(20.04), 20.0, 1e-9);
    EXPECT_NEAR(p.quantize(20.06), 20.1, 1e-9);
    p.resolution = 0.0;
    EXPECT_DOUBLE_EQ(p.quantize(20.0404), 20.0404);  // disabled
}

TEST(ParameterTest, ClampIntoRange) {
    const Parameter p = Parameter::data_valid_time();
    EXPECT_DOUBLE_EQ(p.clamp(10.0), 15.0);
    EXPECT_DOUBLE_EQ(p.clamp(50.0), 45.0);
    EXPECT_DOUBLE_EQ(p.clamp(30.0), 30.0);
    const Parameter v = Parameter::min_vdd();  // reversed bounds
    EXPECT_DOUBLE_EQ(v.clamp(0.5), 1.0);
    EXPECT_DOUBLE_EQ(v.clamp(3.0), 2.2);
}

TEST(ParameterTest, MaxFrequencyFactory) {
    const Parameter p = Parameter::max_frequency();
    EXPECT_EQ(p.kind, device::ParameterKind::kMaxFrequency);
    EXPECT_TRUE(p.fail_high);
    EXPECT_DOUBLE_EQ(p.spec, 100.0);
}

}  // namespace
}  // namespace cichar::ate
