#include "ate/shmoo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "device/memory_chip.hpp"
#include "testgen/random_gen.hpp"

namespace cichar::ate {
namespace {

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

std::vector<testgen::Test> random_tests(std::size_t n) {
    testgen::RandomTestGenerator gen;
    util::Rng rng(5);
    std::vector<testgen::Test> tests;
    for (std::size_t i = 0; i < n; ++i) {
        tests.push_back(gen.random_test(rng, "t" + std::to_string(i)));
    }
    return tests;
}

ShmooOptions small_grid() {
    ShmooOptions o;
    o.x_min = 18.0;
    o.x_max = 40.0;
    o.x_steps = 23;
    o.vdd_min = 1.5;
    o.vdd_max = 2.1;
    o.vdd_steps = 5;
    return o;
}

TEST(ShmooTest, GridShape) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(3);
    const ShmooPlotter plotter(small_grid());
    const ShmooGrid grid =
        plotter.run(tester, Parameter::data_valid_time(), tests);
    EXPECT_EQ(grid.x_steps(), 23u);
    EXPECT_EQ(grid.vdd_steps(), 5u);
    EXPECT_EQ(grid.tests(), 3u);
    EXPECT_EQ(grid.boundaries().size(), 3u);
}

TEST(ShmooTest, RowsMonotonePassThenFail) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    const ShmooPlotter plotter(small_grid());
    const ShmooGrid grid =
        plotter.run(tester, Parameter::data_valid_time(), tests);
    for (std::size_t iy = 0; iy < grid.vdd_steps(); ++iy) {
        bool seen_fail = false;
        for (std::size_t ix = 0; ix < grid.x_steps(); ++ix) {
            const bool pass = grid.pass_count(ix, iy) > 0;
            if (!pass) seen_fail = true;
            if (seen_fail) {
                EXPECT_FALSE(pass) << "non-monotone row at (" << ix << ","
                                   << iy << ")";
            }
        }
    }
}

TEST(ShmooTest, HigherVddPassesFurther) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    const ShmooPlotter plotter(small_grid());
    const ShmooGrid grid =
        plotter.run(tester, Parameter::data_valid_time(), tests);
    const auto passes_in_row = [&](std::size_t iy) {
        std::size_t n = 0;
        for (std::size_t ix = 0; ix < grid.x_steps(); ++ix) {
            if (grid.pass_count(ix, iy) > 0) ++n;
        }
        return n;
    };
    EXPECT_GT(passes_in_row(grid.vdd_steps() - 1), passes_in_row(0));
}

TEST(ShmooTest, ExhaustiveMatchesFastShmoo) {
    const auto tests = random_tests(2);
    ShmooOptions opts = small_grid();

    device::MemoryTestChip chip_a({}, noiseless());
    Tester tester_a(chip_a);
    opts.exhaustive = false;
    const ShmooGrid fast =
        ShmooPlotter(opts).run(tester_a, Parameter::data_valid_time(), tests);

    device::MemoryTestChip chip_b({}, noiseless());
    Tester tester_b(chip_b);
    opts.exhaustive = true;
    const ShmooGrid full =
        ShmooPlotter(opts).run(tester_b, Parameter::data_valid_time(), tests);

    for (std::size_t iy = 0; iy < fast.vdd_steps(); ++iy) {
        for (std::size_t ix = 0; ix < fast.x_steps(); ++ix) {
            EXPECT_EQ(fast.pass_count(ix, iy), full.pass_count(ix, iy))
                << "(" << ix << "," << iy << ")";
        }
    }
    // And the fast version costs far fewer measurements.
    EXPECT_LT(tester_a.log().total().applications,
              tester_b.log().total().applications / 2);
}

TEST(ShmooTest, SymbolsEncodeBand) {
    ShmooGrid grid({1.0, 2.0}, {1.8});
    grid.bump_tests();
    grid.bump_tests();
    grid.add_pass(0, 0);
    grid.add_pass(0, 0);
    grid.add_pass(1, 0);
    EXPECT_EQ(grid.symbol(0, 0), '*');  // all pass
    EXPECT_NE(grid.symbol(1, 0), '*');  // partial
    EXPECT_NE(grid.symbol(1, 0), '.');
    ShmooGrid empty({1.0}, {1.8});
    empty.bump_tests();
    EXPECT_EQ(empty.symbol(0, 0), '.');
}

TEST(ShmooTest, RenderContainsAxesAndSpec) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    const ShmooPlotter plotter(small_grid());
    const Parameter p = Parameter::data_valid_time();
    const ShmooGrid grid = plotter.run(tester, p, tests);
    const std::string out = grid.render(p);
    EXPECT_NE(out.find("Vdd"), std::string::npos);
    EXPECT_NE(out.find("T_DQ"), std::string::npos);
    EXPECT_NE(out.find('^'), std::string::npos);  // spec marker
    EXPECT_NE(out.find("2.10 |"), std::string::npos);  // top row label
}

TEST(ShmooTest, CsvRowsMatchGrid) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    const ShmooPlotter plotter(small_grid());
    const ShmooGrid grid =
        plotter.run(tester, Parameter::data_valid_time(), tests);
    std::ostringstream out;
    grid.write_csv(out);
    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, grid.vdd_steps() + 1);  // header + one per row
}

TEST(ShmooTest, BoundariesWithinAxis) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(2);
    const ShmooPlotter plotter(small_grid());
    const ShmooGrid grid =
        plotter.run(tester, Parameter::data_valid_time(), tests);
    for (const auto& per_test : grid.boundaries()) {
        ASSERT_EQ(per_test.size(), grid.vdd_steps());
        for (const double b : per_test) {
            if (std::isnan(b)) continue;
            EXPECT_GE(b, 18.0);
            EXPECT_LE(b, 40.0);
        }
    }
}

TEST(ShmooTest, TemperatureYAxis) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    ShmooOptions opts = small_grid();
    opts.y_axis = ShmooYAxis::kTemperature;
    opts.vdd_min = -40.0;
    opts.vdd_max = 125.0;
    opts.vdd_steps = 7;
    const Parameter p = Parameter::data_valid_time();
    const ShmooGrid grid = ShmooPlotter(opts).run(tester, p, tests);
    EXPECT_NE(grid.y_label().find("Temperature"), std::string::npos);
    EXPECT_NE(grid.render(p).find("Temperature"), std::string::npos);
    // Cold rows pass further right than hot rows (row 0 = -40 C).
    const auto passes_in_row = [&](std::size_t iy) {
        std::size_t n = 0;
        for (std::size_t ix = 0; ix < grid.x_steps(); ++ix) {
            if (grid.pass_count(ix, iy) > 0) ++n;
        }
        return n;
    };
    EXPECT_GT(passes_in_row(0), passes_in_row(grid.vdd_steps() - 1));
}

TEST(ShmooTest, LedgerUsesShmooPhase) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const auto tests = random_tests(1);
    const ShmooPlotter plotter(small_grid());
    (void)plotter.run(tester, Parameter::data_valid_time(), tests);
    EXPECT_GT(tester.log().phase_counters("shmoo").applications, 0u);
}

}  // namespace
}  // namespace cichar::ate
