#include "ate/tester.hpp"

#include <gtest/gtest.h>

#include "device/memory_chip.hpp"

namespace cichar::ate {
namespace {

testgen::Test simple_test() {
    testgen::TestPattern p("t");
    for (std::uint32_t i = 0; i < 100; ++i) {
        p.write(i % 32, static_cast<std::uint16_t>(i));
    }
    return testgen::make_test(std::move(p));
}

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

TEST(TesterTest, ApplyDelegatesToDut) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    const double truth =
        chip.true_parameter(t, device::ParameterKind::kDataValidTime);
    EXPECT_TRUE(tester.apply(t, p, truth - 1.0));
    EXPECT_FALSE(tester.apply(t, p, truth + 1.0));
}

TEST(TesterTest, SettingQuantizedToResolution) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    Parameter p = Parameter::data_valid_time();
    const double truth =
        chip.true_parameter(t, device::ParameterKind::kDataValidTime);
    // A setting just above the truth but quantizing below it must pass.
    const double setting = p.quantize(truth) + 0.04;  // rounds down
    EXPECT_TRUE(tester.apply(t, p, setting) ==
                (p.quantize(setting) <= truth));
}

TEST(TesterTest, LedgerCountsApplications) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    (void)tester.apply(t, p, 20.0);
    (void)tester.apply(t, p, 25.0);
    (void)tester.run_functional(t);
    EXPECT_EQ(tester.log().total().applications, 3u);
    EXPECT_EQ(tester.log().total().vector_cycles, 300u);
    EXPECT_GT(tester.log().total().tester_seconds, 0.0);
}

TEST(TesterTest, PhasesSeparateCounters) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    tester.log().set_phase("alpha");
    (void)tester.apply(t, p, 20.0);
    tester.log().set_phase("beta");
    (void)tester.apply(t, p, 20.0);
    (void)tester.apply(t, p, 20.0);
    EXPECT_EQ(tester.log().phase_counters("alpha").applications, 1u);
    EXPECT_EQ(tester.log().phase_counters("beta").applications, 2u);
    EXPECT_EQ(tester.log().total().applications, 3u);
}

TEST(TesterTest, PhaseScopeRestores) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    tester.log().set_phase("outer");
    {
        PhaseScope scope(tester.log(), "inner");
        EXPECT_EQ(tester.log().phase(), "inner");
    }
    EXPECT_EQ(tester.log().phase(), "outer");
}

TEST(TesterTest, OracleCountsMeasurements) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    const Oracle oracle = tester.oracle(t, p);
    (void)oracle(20.0);
    (void)oracle(30.0);
    EXPECT_EQ(tester.log().total().applications, 2u);
}

TEST(TesterTest, SettleCoolsDut) {
    device::MemoryChipOptions opts = noiseless();
    opts.enable_drift = true;
    device::MemoryTestChip chip({}, opts);
    Tester tester(chip);
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    for (int i = 0; i < 100; ++i) (void)tester.apply(t, p, 16.0);
    const double heat = chip.heat();
    tester.settle();
    EXPECT_LT(chip.heat(), heat);
}

TEST(TesterTest, ResetClearsLedger) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    (void)tester.run_functional(t);
    tester.log().reset();
    EXPECT_EQ(tester.log().total().applications, 0u);
    EXPECT_TRUE(tester.log().phases().empty());
}

TEST(TesterTest, ReportMentionsPhases) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = simple_test();
    tester.log().set_phase("shmoo");
    (void)tester.run_functional(t);
    const std::string report = tester.log().report();
    EXPECT_NE(report.find("shmoo"), std::string::npos);
    EXPECT_NE(report.find("TOTAL"), std::string::npos);
}

TEST(TesterTest, CycleSecondsOverride) {
    device::MemoryTestChip chip({}, noiseless());
    TesterOptions opts;
    opts.setup_seconds_per_measurement = 0.0;
    opts.cycle_seconds = 1e-6;
    Tester tester(chip, opts);
    const testgen::Test t = simple_test();  // 100 cycles
    (void)tester.run_functional(t);
    EXPECT_NEAR(tester.log().total().tester_seconds, 100e-6, 1e-12);
}

}  // namespace
}  // namespace cichar::ate
