#include "ate/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ate/tester.hpp"
#include "device/memory_chip.hpp"

namespace cichar::ate {
namespace {

testgen::Test simple_test() {
    testgen::TestPattern p("t");
    for (std::uint32_t i = 0; i < 100; ++i) {
        p.write(i % 32, static_cast<std::uint16_t>(i));
    }
    return testgen::make_test(std::move(p));
}

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

/// Replays `count` measurements and encodes each decision compactly.
std::vector<double> replay(FaultInjector& injector, const Parameter& p,
                           int count) {
    std::vector<double> trace;
    for (int i = 0; i < count; ++i) {
        try {
            const auto fate = injector.on_measurement(p);
            if (fate.forced) {
                trace.push_back(fate.forced_outcome ? 2.0 : 3.0);
            } else {
                trace.push_back(fate.setting_offset);
            }
        } catch (const MeasurementTimeout&) {
            trace.push_back(-1.0);
        } catch (const SiteDeadError&) {
            trace.push_back(-2.0);
        }
    }
    return trace;
}

TEST(FaultProfileTest, NoneHasNoFaults) {
    EXPECT_FALSE(FaultProfile::none().any());
    EXPECT_EQ(FaultProfile::none().describe(), "off");
    EXPECT_TRUE(FaultProfile::moderate().any());
}

TEST(FaultProfileTest, ParseForms) {
    EXPECT_FALSE(FaultProfile::parse("off")->any());
    EXPECT_FALSE(FaultProfile::parse("none")->any());
    EXPECT_FALSE(FaultProfile::parse("")->any());
    EXPECT_DOUBLE_EQ(FaultProfile::parse("transient")->transient_rate, 0.05);
    EXPECT_DOUBLE_EQ(FaultProfile::parse("transient:0.10")->transient_rate,
                     0.10);
    EXPECT_EQ(*FaultProfile::parse("moderate"), FaultProfile::moderate());

    const auto custom = FaultProfile::parse(
        "transient=0.05,stuck=0.01,timeout=0.02,death=0.001,span=0.03,"
        "stuck-len=7,seed=42");
    ASSERT_TRUE(custom.has_value());
    EXPECT_DOUBLE_EQ(custom->transient_rate, 0.05);
    EXPECT_DOUBLE_EQ(custom->stuck_rate, 0.01);
    EXPECT_DOUBLE_EQ(custom->timeout_rate, 0.02);
    EXPECT_DOUBLE_EQ(custom->site_death_rate, 0.001);
    EXPECT_DOUBLE_EQ(custom->transient_span_fraction, 0.03);
    EXPECT_EQ(custom->stuck_duration, 7u);
    EXPECT_EQ(custom->seed, 42u);
}

TEST(FaultProfileTest, ParseRejectsMalformedSpecs) {
    EXPECT_FALSE(FaultProfile::parse("transient:1.5").has_value());
    EXPECT_FALSE(FaultProfile::parse("transient:abc").has_value());
    EXPECT_FALSE(FaultProfile::parse("bogus=1").has_value());
    EXPECT_FALSE(FaultProfile::parse("transient=").has_value());
    EXPECT_FALSE(FaultProfile::parse("stuck=-0.1").has_value());
    EXPECT_FALSE(FaultProfile::parse("stuck-len=0").has_value());
    EXPECT_FALSE(FaultProfile::parse("seed=notanumber").has_value());
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
    const FaultProfile profile = FaultProfile::moderate(99);
    FaultInjector a(profile);
    FaultInjector b(profile);
    const Parameter p = Parameter::data_valid_time();
    EXPECT_EQ(replay(a, p, 500), replay(b, p, 500));
    EXPECT_EQ(a.stats(), b.stats());
    EXPECT_GT(a.stats().injected(), 0u);
}

TEST(FaultInjectorTest, StuckEpisodeForcesOutcomeForDuration) {
    FaultProfile profile;
    profile.stuck_rate = 1.0;  // every clean measurement starts an episode
    profile.stuck_duration = 4;
    FaultInjector injector(profile);
    const Parameter p = Parameter::data_valid_time();
    const auto first = injector.on_measurement(p);
    ASSERT_TRUE(first.forced);
    for (int i = 1; i < 4; ++i) {
        const auto next = injector.on_measurement(p);
        EXPECT_TRUE(next.forced);
        EXPECT_EQ(next.forced_outcome, first.forced_outcome);
    }
    EXPECT_EQ(injector.stats().stuck_episodes, 1u);
    EXPECT_EQ(injector.stats().stuck_measurements, 4u);
}

TEST(FaultInjectorTest, TimeoutThrowsAndCounts) {
    FaultProfile profile;
    profile.timeout_rate = 1.0;
    FaultInjector injector(profile);
    const Parameter p = Parameter::data_valid_time();
    EXPECT_THROW((void)injector.on_measurement(p), MeasurementTimeout);
    EXPECT_EQ(injector.stats().timeouts, 1u);
    EXPECT_FALSE(injector.dead());
}

TEST(FaultInjectorTest, SiteDeathIsPermanent) {
    FaultProfile profile;
    profile.site_death_rate = 1.0;
    FaultInjector injector(profile);
    const Parameter p = Parameter::data_valid_time();
    EXPECT_THROW((void)injector.on_measurement(p), SiteDeadError);
    EXPECT_TRUE(injector.dead());
    EXPECT_THROW((void)injector.on_measurement(p), SiteDeadError);
    // Death is counted once; later calls are refused, not re-counted.
    EXPECT_EQ(injector.stats().site_deaths, 1u);
    EXPECT_EQ(injector.stats().measurements, 1u);
}

TEST(FaultInjectorTest, ForkedChildrenAreIndependentAndDeterministic) {
    FaultInjector parent_a(FaultProfile::moderate(7));
    FaultInjector parent_b(FaultProfile::moderate(7));
    FaultInjector child_a1 = parent_a.fork(1);
    FaultInjector child_a2 = parent_a.fork(2);
    FaultInjector child_b1 = parent_b.fork(1);
    const Parameter p = Parameter::data_valid_time();
    const auto trace_a1 = replay(child_a1, p, 300);
    EXPECT_EQ(trace_a1, replay(child_b1, p, 300));
    EXPECT_NE(trace_a1, replay(child_a2, p, 300));
}

TEST(FaultInjectorTest, SaveLoadReplaysExactTail) {
    FaultInjector injector(FaultProfile::moderate(123));
    const Parameter p = Parameter::data_valid_time();
    (void)replay(injector, p, 137);
    std::string blob;
    injector.save(blob);

    const auto expected_tail = replay(injector, p, 200);

    FaultInjector restored(FaultProfile::moderate(123));
    util::ByteReader reader(blob);
    restored.load(reader);
    EXPECT_TRUE(reader.at_end());
    EXPECT_EQ(replay(restored, p, 200), expected_tail);
}

TEST(FaultInjectorTest, AbsorbStatsAccumulates) {
    FaultInjector parent(FaultProfile::moderate(5));
    InjectionStats child;
    child.measurements = 10;
    child.timeouts = 2;
    child.transients = 3;
    parent.absorb_stats(child);
    parent.absorb_stats(child);
    EXPECT_EQ(parent.stats().measurements, 20u);
    EXPECT_EQ(parent.stats().timeouts, 4u);
    EXPECT_EQ(parent.stats().injected(), 10u);
}

TEST(FaultInjectorTest, DisabledInjectorLeavesTesterByteIdentical) {
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();

    device::MemoryTestChip plain_chip({}, noiseless());
    Tester plain(plain_chip);

    device::MemoryTestChip faulted_chip({}, noiseless());
    Tester faulted(faulted_chip);
    FaultInjector injector(FaultProfile::none());
    faulted.attach_fault_injector(&injector);

    for (double setting = 15.0; setting <= 45.0; setting += 0.7) {
        ASSERT_EQ(plain.apply(t, p, setting), faulted.apply(t, p, setting));
    }
    EXPECT_EQ(injector.stats().measurements, 0u);
}

TEST(FaultInjectorTest, StuckContactOverridesDevice) {
    const testgen::Test t = simple_test();
    const Parameter p = Parameter::data_valid_time();
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    FaultProfile profile;
    profile.stuck_rate = 1.0;
    profile.stuck_duration = 1000;
    profile.seed = 3;  // with this seed the first episode forces one outcome
    FaultInjector injector(profile);
    tester.attach_fault_injector(&injector);

    // Far pass side and far fail side return the same (forced) outcome.
    const bool at_pass = tester.apply(t, p, p.pass_side());
    const bool at_fail = tester.apply(t, p, p.fail_side());
    EXPECT_EQ(at_pass, at_fail);
    EXPECT_EQ(injector.stats().stuck_measurements, 2u);
}

}  // namespace
}  // namespace cichar::ate
