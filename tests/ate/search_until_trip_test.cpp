#include "ate/search_until_trip.hpp"

#include <gtest/gtest.h>

namespace cichar::ate {
namespace {

Oracle oracle_with_trip(const Parameter& p, double trip) {
    return [p, trip](double setting) {
        return p.fail_high ? setting <= trip : setting >= trip;
    };
}

Parameter tdq_like() { return Parameter::data_valid_time(); }

SearchUntilTrip::Options default_options() {
    SearchUntilTrip::Options o;
    o.search_factor = 0.2;
    return o;
}

TEST(SearchUntilTripTest, FindsTripAboveReference) {
    const Parameter p = tdq_like();
    const SearchUntilTrip search(default_options(), /*rtp=*/30.0);
    const SearchResult r = search.find(oracle_with_trip(p, 31.5), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 31.5, p.resolution + 1e-9);
}

TEST(SearchUntilTripTest, FindsTripBelowReference) {
    const Parameter p = tdq_like();
    const SearchUntilTrip search(default_options(), 30.0);
    const SearchResult r = search.find(oracle_with_trip(p, 27.9), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 27.9, p.resolution + 1e-9);
}

TEST(SearchUntilTripTest, TripExactlyAtReference) {
    const Parameter p = tdq_like();
    const SearchUntilTrip search(default_options(), 30.0);
    const SearchResult r = search.find(oracle_with_trip(p, 30.0), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 30.0, p.resolution + 1e-9);
}

TEST(SearchUntilTripTest, CheaperThanFullRangeNearReference) {
    const Parameter p = tdq_like();
    const SearchUntilTrip follower(default_options(), 30.0);
    const SuccessiveApproximation full;
    const Oracle oracle = oracle_with_trip(p, 30.6);
    const SearchResult cheap = follower.find(oracle, p);
    const SearchResult expensive = full.find(oracle, p);
    ASSERT_TRUE(cheap.found);
    ASSERT_TRUE(expensive.found);
    EXPECT_LT(cheap.measurements, expensive.measurements);
}

TEST(SearchUntilTripTest, WithoutRefinementCoarser) {
    const Parameter p = tdq_like();
    SearchUntilTrip::Options opts = default_options();
    opts.refine = false;
    const SearchUntilTrip search(opts, 30.0);
    const SearchResult r = search.find(oracle_with_trip(p, 31.33), p);
    ASSERT_TRUE(r.found);
    // Within one (possibly grown) SF step below the true trip.
    EXPECT_LE(r.trip_point, 31.33 + 1e-9);
    EXPECT_GE(r.trip_point, 31.33 - 1.0);
}

TEST(SearchUntilTripTest, LinearGrowthVisitsEvenSteps) {
    const Parameter p = tdq_like();
    SearchUntilTrip::Options opts = default_options();
    opts.growth = SearchFactorGrowth::kLinear;
    opts.refine = false;
    const SearchUntilTrip search(opts, 30.0);
    const SearchResult r = search.find(oracle_with_trip(p, 30.5), p);
    ASSERT_TRUE(r.found);
    // Probes at 30.0, 30.2, 30.6(=30+0.2*1+0.2*2? no: offsets 0.2,0.4,...)
    ASSERT_GE(r.trace.size(), 3u);
    EXPECT_NEAR(r.trace[1].setting, 30.2, 1e-9);
    EXPECT_NEAR(r.trace[2].setting, 30.4, 1e-9);
}

TEST(SearchUntilTripTest, TriangularGrowthAccelerates) {
    const Parameter p = tdq_like();
    SearchUntilTrip::Options opts = default_options();
    opts.growth = SearchFactorGrowth::kTriangular;
    opts.refine = false;
    const SearchUntilTrip search(opts, 20.0);
    const SearchResult r = search.find(oracle_with_trip(p, 44.0), p);
    ASSERT_TRUE(r.found);
    // Triangular growth covers 24 ns in far fewer steps than 24/SF = 120.
    EXPECT_LT(r.measurements, 20u);
}

TEST(SearchUntilTripTest, TripOutOfRangeReportsNotFound) {
    const Parameter p = tdq_like();
    const SearchUntilTrip search(default_options(), 30.0);
    // Device passes everywhere: the trip left the range upward.
    const SearchResult r = search.find(oracle_with_trip(p, 100.0), p);
    EXPECT_FALSE(r.found);
    // Device fails everywhere: not even the reference passes.
    const SearchResult r2 = search.find(oracle_with_trip(p, 1.0), p);
    EXPECT_FALSE(r2.found);
}

TEST(SearchUntilTripTest, ReversedDirectionParameter) {
    const Parameter p = Parameter::min_vdd();
    SearchUntilTrip::Options opts = default_options();
    opts.search_factor = 0.01;
    const SearchUntilTrip search(opts, 1.30);
    const SearchResult r = search.find(oracle_with_trip(p, 1.34), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 1.34, p.resolution + 1e-9);
}

TEST(SearchUntilTripTest, SetReferenceMoves) {
    SearchUntilTrip search(default_options(), 30.0);
    EXPECT_DOUBLE_EQ(search.reference_trip_point(), 30.0);
    search.set_reference(28.0);
    EXPECT_DOUBLE_EQ(search.reference_trip_point(), 28.0);
}

TEST(MakeReferenceSearchTest, EstablishesRtpFromFirstTest) {
    const Parameter p = tdq_like();
    const SuccessiveApproximation initial;
    const Oracle first = oracle_with_trip(p, 32.0);
    const ReferenceSearch ref =
        make_reference_search(first, p, initial, default_options());
    ASSERT_TRUE(ref.first_result.found);
    EXPECT_NEAR(ref.follower.reference_trip_point(), 32.0,
                p.resolution + 1e-9);
}

TEST(MakeReferenceSearchTest, FallsBackToMidRange) {
    const Parameter p = tdq_like();
    const SuccessiveApproximation initial;
    // Whole range fails: no RTP from the first test.
    const Oracle first = oracle_with_trip(p, 1.0);
    const ReferenceSearch ref =
        make_reference_search(first, p, initial, default_options());
    EXPECT_FALSE(ref.first_result.found);
    EXPECT_NEAR(ref.follower.reference_trip_point(), 30.0, 0.1);
}

// Property: follower converges for trips scattered around the reference.
class FollowerConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(FollowerConvergenceTest, ConvergesAndIsCheap) {
    const Parameter p = tdq_like();
    const double trip = GetParam();
    const SearchUntilTrip search(default_options(), 30.0);
    const SearchResult r = search.find(oracle_with_trip(p, trip), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, trip, p.resolution + 1e-9);
    EXPECT_LE(r.measurements, 25u);
}

INSTANTIATE_TEST_SUITE_P(TripsAroundRtp, FollowerConvergenceTest,
                         ::testing::Values(25.0, 28.0, 29.5, 29.9, 30.0, 30.1,
                                           30.9, 33.0, 38.0, 43.0, 16.0));

}  // namespace
}  // namespace cichar::ate
