#include "ate/datalog.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ate/tester.hpp"
#include "device/memory_chip.hpp"

namespace cichar::ate {
namespace {

DatalogEntry entry(const std::string& name, double setting, bool pass) {
    return DatalogEntry{name, "T_DQ", setting, pass, false};
}

TEST(DatalogTest, DisabledByDefault) {
    Datalog log;
    EXPECT_FALSE(log.enabled());
    log.record(entry("a", 1.0, true));
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(DatalogTest, RecordsWhenEnabled) {
    Datalog log;
    log.set_enabled(true);
    log.record(entry("a", 1.0, true));
    log.record(entry("b", 2.0, false));
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.entry(0).test_name, "a");
    EXPECT_EQ(log.entry(1).test_name, "b");
    EXPECT_FALSE(log.entry(1).pass);
}

TEST(DatalogTest, RingDropsOldest) {
    Datalog log(3);
    log.set_enabled(true);
    for (int i = 0; i < 5; ++i) {
        log.record(entry("e" + std::to_string(i), i, true));
    }
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.total_recorded(), 5u);
    EXPECT_EQ(log.entry(0).test_name, "e2");  // oldest surviving
    EXPECT_EQ(log.entry(2).test_name, "e4");  // newest
}

TEST(DatalogTest, EntryOutOfRangeThrows) {
    Datalog log;
    log.set_enabled(true);
    log.record(entry("a", 1.0, true));
    EXPECT_THROW((void)log.entry(1), std::out_of_range);
}

TEST(DatalogTest, ClearResets) {
    Datalog log(2);
    log.set_enabled(true);
    for (int i = 0; i < 4; ++i) log.record(entry("x", i, true));
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.total_recorded(), 0u);
    log.record(entry("fresh", 0.0, true));
    EXPECT_EQ(log.entry(0).test_name, "fresh");
}

TEST(DatalogTest, CsvExport) {
    Datalog log;
    log.set_enabled(true);
    log.record(entry("t1", 25.5, true));
    log.record(DatalogEntry{"t2", "functional", 0.0, false, true});
    std::ostringstream out;
    log.write_csv(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("test,parameter,setting,result,kind"),
              std::string::npos);
    EXPECT_NE(text.find("t1,T_DQ,25.5,PASS,parametric"), std::string::npos);
    EXPECT_NE(text.find("t2,functional,0,FAIL,functional"),
              std::string::npos);
}

TEST(DatalogTest, TesterIntegration) {
    device::MemoryChipOptions opts;
    opts.noise_sigma_ns = 0.0;
    device::MemoryTestChip chip({}, opts);
    Tester tester(chip);
    tester.datalog().set_enabled(true);

    testgen::TestPattern p("dl");
    p.write(0, 0x1234);
    p.read(0);
    const testgen::Test test = testgen::make_test(std::move(p));
    const Parameter param = Parameter::data_valid_time();

    (void)tester.apply(test, param, 20.0);  // comfortably passing
    (void)tester.apply(test, param, 44.0);  // far beyond any trip: fails
    (void)tester.run_functional(test);

    ASSERT_EQ(tester.datalog().size(), 3u);
    EXPECT_EQ(tester.datalog().entry(0).test_name, "dl");
    EXPECT_TRUE(tester.datalog().entry(0).pass);
    EXPECT_DOUBLE_EQ(tester.datalog().entry(0).setting, 20.0);
    EXPECT_FALSE(tester.datalog().entry(1).pass);
    EXPECT_TRUE(tester.datalog().entry(2).functional);
}

TEST(DatalogTest, TesterDatalogOffCostsNothing) {
    device::MemoryTestChip chip;
    Tester tester(chip);
    testgen::TestPattern p("x");
    p.write(0, 0);
    const testgen::Test test = testgen::make_test(std::move(p));
    (void)tester.apply(test, Parameter::data_valid_time(), 20.0);
    EXPECT_EQ(tester.datalog().size(), 0u);
}

}  // namespace
}  // namespace cichar::ate
