#include "ate/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cichar::ate {
namespace {

/// Synthetic oracle with a hidden trip point honoring the parameter's
/// fail direction.
Oracle oracle_with_trip(const Parameter& p, double trip) {
    return [p, trip](double setting) {
        return p.fail_high ? setting <= trip : setting >= trip;
    };
}

Parameter tdq_like() {
    Parameter p = Parameter::data_valid_time();  // 15..45, res 0.1
    return p;
}

Parameter vmin_like() { return Parameter::min_vdd(); }

TEST(LinearSearchTest, FindsTrip) {
    const Parameter p = tdq_like();
    const LinearSearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 27.34), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 27.3, 0.1 + 1e-9);
}

TEST(LinearSearchTest, CostIsLinearInDistance) {
    const Parameter p = tdq_like();
    const LinearSearch search;
    const SearchResult near_start = search.find(oracle_with_trip(p, 16.0), p);
    const SearchResult far = search.find(oracle_with_trip(p, 40.0), p);
    EXPECT_GT(far.measurements, near_start.measurements * 5);
}

TEST(LinearSearchTest, NoPassRegion) {
    const Parameter p = tdq_like();
    const LinearSearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 10.0), p);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.measurements, 1u);
}

TEST(LinearSearchTest, NoFailRegion) {
    const Parameter p = tdq_like();
    const LinearSearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 50.0), p);
    EXPECT_FALSE(r.found);
    // It still reports the last passing setting.
    EXPECT_NEAR(r.trip_point, 45.0, 0.2);
}

TEST(LinearSearchTest, CustomStep) {
    const Parameter p = tdq_like();
    const LinearSearch coarse(1.0);
    const SearchResult r = coarse.find(oracle_with_trip(p, 30.0), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 30.0, 1.0 + 1e-9);
    EXPECT_LT(r.measurements, 35u);
}

TEST(BinarySearchTest, FindsTripLogarithmically) {
    const Parameter p = tdq_like();
    const BinarySearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 33.3), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 33.3, 0.1 + 1e-9);
    // 300 resolution steps in range: ~ 2 + log2(300) ~ 11 measurements.
    EXPECT_LE(r.measurements, 15u);
}

TEST(BinarySearchTest, EndpointChecks) {
    const Parameter p = tdq_like();
    const BinarySearch search;
    EXPECT_FALSE(search.find(oracle_with_trip(p, 10.0), p).found);
    EXPECT_FALSE(search.find(oracle_with_trip(p, 50.0), p).found);
}

TEST(BinarySearchTest, TraceRecordsEveryProbe) {
    const Parameter p = tdq_like();
    const BinarySearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 25.0), p);
    EXPECT_EQ(r.trace.size(), r.measurements);
    EXPECT_DOUBLE_EQ(r.trace[0].setting, p.pass_side());
    EXPECT_DOUBLE_EQ(r.trace[1].setting, p.fail_side());
}

TEST(BinarySearchTest, ReversedDirectionParameter) {
    const Parameter p = vmin_like();
    const BinarySearch search;
    const SearchResult r = search.find(oracle_with_trip(p, 1.37), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 1.37, 0.005 + 1e-9);
}

TEST(SuccessiveApproximationTest, FindsStableTrip) {
    const Parameter p = tdq_like();
    const SuccessiveApproximation search;
    const SearchResult r = search.find(oracle_with_trip(p, 28.8), p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.trip_point, 28.8, 0.1 + 1e-9);
}

TEST(SuccessiveApproximationTest, TracksDriftingTrip) {
    const Parameter p = tdq_like();
    // Trip point drifts downward (device heating) by 0.05 ns per probe.
    double trip = 30.0;
    const Oracle drifting = [&trip, &p](double setting) {
        const bool pass = p.fail_high ? setting <= trip : setting >= trip;
        trip -= 0.05;
        return pass;
    };
    const SuccessiveApproximation search;
    const SearchResult r = search.find(drifting, p);
    ASSERT_TRUE(r.found);
    // A plain binary search would keep a stale pass bound near 30; the
    // drift-aware search must end close to the final (drifted) value.
    EXPECT_LT(r.trip_point, 29.5);
    EXPECT_NEAR(r.trip_point, trip, 1.0);
}

TEST(SuccessiveApproximationTest, MeasurementBudgetHonored) {
    const Parameter p = tdq_like();
    SuccessiveApproximation::Options opts;
    opts.max_measurements = 10;
    const SuccessiveApproximation search(opts);
    // Pathological oracle that flips pass/fail each call around 30.
    int call = 0;
    const Oracle unstable = [&call](double setting) {
        ++call;
        return setting <= (call % 2 == 0 ? 29.0 : 31.0);
    };
    const SearchResult r = search.find(unstable, p);
    EXPECT_LE(r.measurements, 13u);  // budget + small epilogue
}

TEST(SuccessiveApproximationTest, ReversedDirectionDrift) {
    const Parameter p = vmin_like();
    double trip = 1.30;
    const Oracle drifting = [&trip, &p](double setting) {
        const bool pass = p.fail_high ? setting <= trip : setting >= trip;
        trip += 0.002;  // vmin rises while heating
        return pass;
    };
    const SuccessiveApproximation search;
    const SearchResult r = search.find(drifting, p);
    ASSERT_TRUE(r.found);
    EXPECT_GT(r.trip_point, 1.30);
}

TEST(SearchNamesTest, Names) {
    EXPECT_STREQ(LinearSearch{}.name(), "linear");
    EXPECT_STREQ(BinarySearch{}.name(), "binary");
    EXPECT_STREQ(SuccessiveApproximation{}.name(),
                 "successive-approximation");
}

// Property suite: every algorithm converges to within one resolution step
// of any stable trip point, in both fail directions.
struct SearchCase {
    double trip;
    bool reversed;
};

class SearchConvergenceTest : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchConvergenceTest, AllAlgorithmsConverge) {
    const SearchCase c = GetParam();
    const Parameter p = c.reversed ? vmin_like() : tdq_like();
    const Oracle oracle = oracle_with_trip(p, c.trip);

    const LinearSearch linear;
    const BinarySearch binary;
    const SuccessiveApproximation sa;
    for (const TripPointSearch* search :
         {static_cast<const TripPointSearch*>(&linear),
          static_cast<const TripPointSearch*>(&binary),
          static_cast<const TripPointSearch*>(&sa)}) {
        const SearchResult r = search->find(oracle, p);
        ASSERT_TRUE(r.found) << search->name();
        EXPECT_NEAR(r.trip_point, c.trip, p.resolution + 1e-9)
            << search->name();
        // Trip point estimates must sit on the pass side.
        EXPECT_TRUE(oracle(r.trip_point)) << search->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    TripPositions, SearchConvergenceTest,
    ::testing::Values(SearchCase{16.0, false}, SearchCase{22.15, false},
                      SearchCase{30.0, false}, SearchCase{44.0, false},
                      SearchCase{27.777, false}, SearchCase{1.05, true},
                      SearchCase{1.4142, true}, SearchCase{2.1, true}));

}  // namespace
}  // namespace cichar::ate
