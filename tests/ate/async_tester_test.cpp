// AsyncTester queue-pair semantics: submitted measurements return the
// same verdicts as blocking Tester::apply on an identical DUT, the
// bounded ring rejects over-submission, emulated-latency deadlines let
// completions ripen out of submission order (tracked by the reorder
// stat), and the LatencyModel shared by both paths sleeps through its
// injectable hook so the emulated path is unit-testable on a fake clock.
#include "ate/async_tester.hpp"

#include <functional>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ate/tester.hpp"
#include "device/memory_chip.hpp"
#include "util/thread_pool.hpp"

namespace cichar::ate {
namespace {

testgen::Test sized_test(const char* name, std::uint32_t writes) {
    testgen::TestPattern p(name);
    for (std::uint32_t i = 0; i < writes; ++i) {
        p.write(i % 32, static_cast<std::uint16_t>(i));
    }
    return testgen::make_test(std::move(p));
}

device::MemoryChipOptions noiseless() {
    device::MemoryChipOptions o;
    o.noise_sigma_ns = 0.0;
    return o;
}

TEST(LatencyModelTest, ModeledSecondsFollowSetupAndCycles) {
    const LatencyModel m(5e-4, 0.0, 0.0);
    // 100 cycles at a 10 ns period: setup + 100 * 10e-9.
    EXPECT_NEAR(m.modeled_seconds(100, 10.0), 5e-4 + 1e-6, 1e-15);
    // A cycle-seconds override displaces the test's own clock period.
    const LatencyModel o(0.0, 1e-6, 0.0);
    EXPECT_NEAR(o.modeled_seconds(100, 10.0), 100e-6, 1e-15);
}

TEST(LatencyModelTest, InflightSecondsScaleByRealtimeFraction) {
    const LatencyModel off(5e-4, 0.0, 0.0);
    EXPECT_FALSE(off.emulated());
    EXPECT_EQ(off.inflight_seconds(2.0), 0.0);

    const LatencyModel on(5e-4, 0.0, 0.25);
    EXPECT_TRUE(on.emulated());
    EXPECT_NEAR(on.inflight_seconds(2.0), 0.5, 1e-15);
}

TEST(LatencyModelTest, SleepHookReplacesRealSleep) {
    // A tester with latency emulation on, but with the sleep routed into
    // a fake clock: the measurement must "sleep" exactly the modeled
    // in-flight seconds without any real wall-clock delay.
    device::MemoryTestChip chip({}, noiseless());
    TesterOptions options;
    options.setup_seconds_per_measurement = 1e-3;
    options.cycle_seconds = 0.0;
    options.realtime_fraction = 0.5;
    Tester tester(chip, options);

    double fake_clock = 0.0;
    tester.latency_model().set_sleep(
        [&fake_clock](double seconds) { fake_clock += seconds; });

    const testgen::Test t = sized_test("t", 100);
    (void)tester.apply(t, Parameter::data_valid_time(), 20.0);

    const double modeled = tester.latency_model().modeled_seconds(
        t.pattern.size(), t.conditions.clock_period_ns);
    EXPECT_GT(fake_clock, 0.0);
    EXPECT_NEAR(fake_clock, 0.5 * modeled, 1e-12);
    // The ledger logs full modeled seconds regardless of the fraction.
    EXPECT_NEAR(tester.log().total().tester_seconds, modeled, 1e-12);
}

TEST(LatencyModelTest, BlockIgnoresNonPositiveSeconds) {
    LatencyModel m(0.0, 0.0, 1.0);
    int calls = 0;
    m.set_sleep([&calls](double) { ++calls; });
    m.block(0.0);
    m.block(-1.0);
    EXPECT_EQ(calls, 0);
    m.block(1e-9);
    EXPECT_EQ(calls, 1);
}

TEST(AsyncTesterTest, VerdictsMatchBlockingApply) {
    // The same ladder of settings on two identical noiseless chips: one
    // measured inline, one through the queue. Verdicts and ledger counts
    // must agree exactly.
    device::MemoryTestChip sync_chip({}, noiseless());
    device::MemoryTestChip async_chip({}, noiseless());
    Tester sync_tester(sync_chip);
    Tester async_tester_backend(async_chip);
    const testgen::Test t = sized_test("t", 100);
    const Parameter p = Parameter::data_valid_time();
    const double truth =
        sync_chip.true_parameter(t, device::ParameterKind::kDataValidTime);

    std::vector<double> settings;
    for (int i = -4; i <= 4; ++i) settings.push_back(truth + 0.7 * i);

    std::vector<bool> sync_verdicts;
    for (const double s : settings) {
        sync_verdicts.push_back(sync_tester.apply(t, p, s));
    }

    AsyncTesterOptions options;
    options.queue_depth = settings.size();
    AsyncTester queue(options);
    std::map<std::uint64_t, bool> async_verdicts;
    for (std::size_t i = 0; i < settings.size(); ++i) {
        ASSERT_TRUE(queue.submit(i, async_tester_backend, t, p, settings[i],
                                 [&async_verdicts](const AsyncCompletion& c) {
                                     if (c.error) std::rethrow_exception(c.error);
                                     async_verdicts[c.id] = c.pass;
                                 }));
    }
    queue.drain();

    ASSERT_EQ(async_verdicts.size(), settings.size());
    for (std::size_t i = 0; i < settings.size(); ++i) {
        EXPECT_EQ(async_verdicts[i], sync_verdicts[i]) << "setting " << i;
    }
    EXPECT_EQ(async_tester_backend.log().total().applications,
              sync_tester.log().total().applications);
    EXPECT_EQ(queue.stats().submitted, settings.size());
    EXPECT_EQ(queue.stats().completed, settings.size());
    EXPECT_EQ(queue.in_flight(), 0u);
}

TEST(AsyncTesterTest, FunctionalSubmission) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 50);

    AsyncTester queue({});
    bool harvested = false;
    ASSERT_TRUE(queue.submit_functional(
        7, tester, t, [&harvested](const AsyncCompletion& c) {
            if (c.error) std::rethrow_exception(c.error);
            EXPECT_TRUE(c.is_functional);
            EXPECT_EQ(c.id, 7u);
            harvested = true;
        }));
    queue.drain();
    EXPECT_TRUE(harvested);
    EXPECT_EQ(tester.log().total().applications, 1u);
}

TEST(AsyncTesterTest, BoundedRingRejectsWhenFull) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();

    AsyncTesterOptions options;
    options.queue_depth = 2;
    AsyncTester queue(options);
    const auto ignore = [](const AsyncCompletion&) {};
    EXPECT_TRUE(queue.can_submit());
    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(queue.submit(1, tester, t, p, 20.0, ignore));
    EXPECT_FALSE(queue.can_submit());
    // The ring is full until a completion is harvested.
    EXPECT_FALSE(queue.submit(2, tester, t, p, 20.0, ignore));
    EXPECT_EQ(queue.in_flight(), 2u);

    queue.drain();
    EXPECT_EQ(queue.in_flight(), 0u);
    EXPECT_TRUE(queue.can_submit());
    ASSERT_TRUE(queue.submit(2, tester, t, p, 20.0, ignore));
    queue.drain();
    EXPECT_EQ(queue.stats().completed, 3u);
}

TEST(AsyncTesterTest, EmulatedLatencyCompletesOutOfOrder) {
    // A long test submitted before a short one: the short one's deadline
    // ripens first, so it harvests first and the long one counts as
    // reordered relative to it. Deadlines are a few milliseconds so the
    // test stays fast.
    device::MemoryTestChip chip({}, noiseless());
    // Replica testers never sleep inline; the queue's deadlines carry the
    // emulated latency.
    TesterOptions emulated;
    emulated.setup_seconds_per_measurement = 0.0;
    emulated.cycle_seconds = 2e-4;
    emulated.realtime_fraction = 1.0;
    Tester tester(chip, AsyncTester::replica_options(emulated));
    const testgen::Test long_test = sized_test("long", 100);   // 20 ms
    const testgen::Test short_test = sized_test("short", 10);  // 2 ms
    const Parameter p = Parameter::data_valid_time();

    AsyncTesterOptions options;
    options.queue_depth = 2;
    options.latency = LatencyModel(0.0, 2e-4, 1.0);
    AsyncTester queue(options);

    std::vector<std::uint64_t> harvest_order;
    const auto record = [&harvest_order](const AsyncCompletion& c) {
        if (c.error) std::rethrow_exception(c.error);
        harvest_order.push_back(c.id);
    };
    ASSERT_TRUE(queue.submit(0, tester, long_test, p, 20.0, record));
    ASSERT_TRUE(queue.submit(1, tester, short_test, p, 20.0, record));
    queue.drain();

    ASSERT_EQ(harvest_order.size(), 2u);
    EXPECT_EQ(harvest_order[0], 1u);  // short ripened first
    EXPECT_EQ(harvest_order[1], 0u);
    EXPECT_EQ(queue.stats().reordered, 1u);
}

TEST(AsyncTesterTest, PoolBackedSubmissionsHarvestOnOwnerThread) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 50);
    const Parameter p = Parameter::data_valid_time();

    util::ThreadPool pool(4);
    AsyncTesterOptions options;
    options.queue_depth = 8;
    AsyncTester queue(options, &pool);
    std::size_t harvested = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(queue.submit(i, tester, t, p, 20.0,
                                 [&harvested](const AsyncCompletion& c) {
                                     if (c.error) std::rethrow_exception(c.error);
                                     ++harvested;
                                 }));
    }
    while (queue.in_flight() > 0) (void)queue.wait();
    EXPECT_EQ(harvested, 8u);
    EXPECT_EQ(tester.log().total().applications, 8u);
}

TEST(AsyncTesterTest, CallbacksMayResubmitIntoFreedSlot) {
    // A harvested completion has already freed its ring slot, so a 1:1
    // follow-up submission from inside the callback never overflows even
    // at queue_depth 1 — the pattern the optimizer's trip-search drivers
    // rely on.
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();

    AsyncTesterOptions options;
    options.queue_depth = 1;
    AsyncTester queue(options);
    std::size_t remaining = 5;
    AsyncTester::CompletionFn chain = [&](const AsyncCompletion& c) {
        if (c.error) std::rethrow_exception(c.error);
        if (--remaining > 0) {
            ASSERT_TRUE(queue.submit(c.id + 1, tester, t, p, 20.0, chain));
        }
    };
    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0, chain));
    queue.drain();
    EXPECT_EQ(remaining, 0u);
    EXPECT_EQ(queue.stats().completed, 5u);
}

TEST(AsyncTesterTest, QuiesceDropsPendingCallbacks) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();

    AsyncTester queue({});
    bool invoked = false;
    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0,
                             [&invoked](const AsyncCompletion&) {
                                 invoked = true;
                             }));
    queue.quiesce();
    EXPECT_FALSE(invoked);
    EXPECT_EQ(queue.in_flight(), 0u);
    // The measurement itself still happened (quiesce only drops callbacks
    // after waiting out the evaluation).
    EXPECT_EQ(tester.log().total().applications, 1u);
}

TEST(AsyncTesterTest, ReplicaOptionsStripOnlyTheEmulation) {
    TesterOptions options;
    options.setup_seconds_per_measurement = 2e-3;
    options.cycle_seconds = 1e-6;
    options.realtime_fraction = 0.5;
    const TesterOptions replica = AsyncTester::replica_options(options);
    EXPECT_EQ(replica.setup_seconds_per_measurement, 2e-3);
    EXPECT_EQ(replica.cycle_seconds, 1e-6);
    EXPECT_EQ(replica.realtime_fraction, 0.0);
}

// ---------------------------------------------------------------------
// SharedRingCredits: a lot-wide in-flight budget donated between rings.
// Every ring keeps a guaranteed floor of one submission; depth beyond the
// floor borrows from the shared pool and is returned when the ring
// drains, idles, or quiesces.

TEST(SharedRingCredits, FloorGuaranteesOneSubmissionPerRing) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();
    const auto ignore = [](const AsyncCompletion&) {};

    SharedRingCredits credits(0);  // nothing donatable: floors only
    AsyncTesterOptions options;
    options.queue_depth = 4;
    options.shared_credits = &credits;
    AsyncTester a(options);
    AsyncTester b(options);

    ASSERT_TRUE(a.submit(0, tester, t, p, 20.0, ignore));  // a's floor
    EXPECT_FALSE(a.can_submit());
    EXPECT_FALSE(a.submit(1, tester, t, p, 20.0, ignore));
    // An exhausted pool never starves a sibling ring of its floor.
    ASSERT_TRUE(b.submit(0, tester, t, p, 20.0, ignore));
    EXPECT_FALSE(b.can_submit());

    a.drain();
    EXPECT_TRUE(a.can_submit());  // the floor came back with the harvest
    b.drain();
}

TEST(SharedRingCredits, IdleRingDonatesDepthToBusySibling) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();
    const auto ignore = [](const AsyncCompletion&) {};

    SharedRingCredits credits(2);
    AsyncTesterOptions options;
    options.queue_depth = 4;
    options.shared_credits = &credits;
    AsyncTester busy(options);
    AsyncTester idle(options);

    // The busy ring takes its floor plus the whole donatable budget.
    ASSERT_TRUE(busy.submit(0, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(busy.submit(1, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(busy.submit(2, tester, t, p, 20.0, ignore));
    EXPECT_EQ(credits.available(), 0u);
    EXPECT_FALSE(busy.submit(3, tester, t, p, 20.0, ignore));

    // The idle ring still holds its floor, but nothing beyond it.
    ASSERT_TRUE(idle.submit(0, tester, t, p, 20.0, ignore));
    EXPECT_FALSE(idle.can_submit());

    // Draining the busy ring returns the borrowed depth to the pool...
    busy.drain();
    EXPECT_EQ(credits.available(), 2u);
    // ...where the other ring can now borrow it.
    ASSERT_TRUE(idle.submit(1, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(idle.submit(2, tester, t, p, 20.0, ignore));
    idle.drain();
    EXPECT_EQ(credits.available(), 2u);
}

TEST(SharedRingCredits, CallbackResubmissionNeverFailsForCredit) {
    // The 1:1 resubmission guarantee must survive sharing: a harvested
    // request's credit is held through the callback phase, so a chained
    // search never loses its slot to a sibling ring mid-callback.
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();

    SharedRingCredits credits(1);
    AsyncTesterOptions options;
    options.queue_depth = 2;
    options.shared_credits = &credits;
    AsyncTester queue(options);

    int completions = 0;
    int failed_resubmits = 0;
    std::function<void(const AsyncCompletion&)> chain =
        [&](const AsyncCompletion& c) {
            ++completions;
            if (completions < 20) {
                if (!queue.submit(c.id + 100, tester, t, p, 20.0, chain)) {
                    ++failed_resubmits;
                }
            }
        };
    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0, chain));  // floor
    ASSERT_TRUE(queue.submit(1, tester, t, p, 20.0, chain));  // credit
    queue.drain();

    EXPECT_EQ(failed_resubmits, 0);
    EXPECT_GE(completions, 20);
    EXPECT_EQ(credits.available(), 1u);  // all borrowed depth returned
}

TEST(SharedRingCredits, CanSubmitReservesACreditForTheAskingRing) {
    // can_submit() == true is a promise the next submit keeps, even when
    // a sibling ring asks in between: the credit is speculatively cached
    // by the ring that asked.
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();
    const auto ignore = [](const AsyncCompletion&) {};

    SharedRingCredits credits(1);
    AsyncTesterOptions options;
    options.queue_depth = 4;
    options.shared_credits = &credits;
    AsyncTester a(options);
    AsyncTester b(options);

    ASSERT_TRUE(a.submit(0, tester, t, p, 20.0, ignore));  // a's floor
    ASSERT_TRUE(b.submit(0, tester, t, p, 20.0, ignore));  // b's floor
    EXPECT_TRUE(a.can_submit());   // caches the pool's only credit
    EXPECT_FALSE(b.can_submit());  // the sibling cannot steal it
    ASSERT_TRUE(a.submit(1, tester, t, p, 20.0, ignore));  // promise kept

    a.drain();
    b.drain();
    EXPECT_EQ(credits.available(), 1u);
}

TEST(SharedRingCredits, QuiesceReturnsEveryBorrowedCredit) {
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();
    const auto ignore = [](const AsyncCompletion&) {};

    SharedRingCredits credits(3);
    AsyncTesterOptions options;
    options.queue_depth = 4;
    options.shared_credits = &credits;
    AsyncTester queue(options);

    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(queue.submit(1, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(queue.submit(2, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(queue.submit(3, tester, t, p, 20.0, ignore));
    EXPECT_EQ(credits.available(), 0u);

    queue.quiesce();  // drops pending callbacks, must not drop credits
    EXPECT_EQ(credits.available(), 3u);
}

TEST(SharedRingCredits, UnsharedRingIsUnaffectedBySiblingPools) {
    // A ring with no shared_credits keeps the classic fixed-depth
    // behavior bit for bit.
    device::MemoryTestChip chip({}, noiseless());
    Tester tester(chip);
    const testgen::Test t = sized_test("t", 20);
    const Parameter p = Parameter::data_valid_time();
    const auto ignore = [](const AsyncCompletion&) {};

    AsyncTesterOptions options;
    options.queue_depth = 2;
    AsyncTester queue(options);
    ASSERT_TRUE(queue.submit(0, tester, t, p, 20.0, ignore));
    ASSERT_TRUE(queue.submit(1, tester, t, p, 20.0, ignore));
    EXPECT_FALSE(queue.can_submit());  // bounded by the ring alone
    queue.drain();
    EXPECT_EQ(queue.stats().completed, 2u);
}

}  // namespace
}  // namespace cichar::ate
