#include "ate/measurement_log.hpp"

#include <gtest/gtest.h>

namespace cichar::ate {
namespace {

MeasurementLog make_log(
    const std::vector<std::pair<std::string, std::uint64_t>>& entries) {
    MeasurementLog log;
    for (const auto& [phase, cycles] : entries) {
        log.set_phase(phase);
        log.record(cycles, static_cast<double>(cycles) * 0.001);
    }
    return log;
}

TEST(MeasurementLogMergeTest, CombinesSameNamedPhases) {
    MeasurementLog a = make_log({{"learning", 100}, {"ga", 50}});
    const MeasurementLog b = make_log({{"learning", 25}});

    a.merge(b);
    EXPECT_EQ(a.phase_counters("learning").applications, 2u);
    EXPECT_EQ(a.phase_counters("learning").vector_cycles, 125u);
    EXPECT_EQ(a.phase_counters("ga").applications, 1u);
    EXPECT_EQ(a.total().applications, 3u);
    EXPECT_EQ(a.total().vector_cycles, 175u);
    EXPECT_DOUBLE_EQ(a.total().tester_seconds, 0.175);
}

TEST(MeasurementLogMergeTest, AdoptsNewPhases) {
    MeasurementLog a = make_log({{"learning", 10}});
    const MeasurementLog b = make_log({{"shmoo", 7}});

    a.merge(b);
    const std::vector<std::string> phases = a.phases();
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(a.phase_counters("shmoo").vector_cycles, 7u);
}

TEST(MeasurementLogMergeTest, MergeOrderDoesNotChangeThePhaseSet) {
    // Stable concatenation: phases render name-ordered, so merging the
    // same site ledgers in any grouping yields the identical report.
    MeasurementLog ab = make_log({{"ga", 3}});
    ab.merge(make_log({{"learning", 5}, {"shmoo", 2}}));

    MeasurementLog ba = make_log({{"shmoo", 2}});
    ba.merge(make_log({{"ga", 3}}));
    ba.merge(make_log({{"learning", 5}}));

    EXPECT_EQ(ab.phases(), ba.phases());
    EXPECT_EQ(ab.report(), ba.report());
    EXPECT_EQ(ab.total().applications, ba.total().applications);
}

TEST(MeasurementLogMergeTest, MergingEmptyIsANoOp) {
    MeasurementLog a = make_log({{"learning", 10}});
    const std::string before = a.report();
    a.merge(MeasurementLog{});
    EXPECT_EQ(a.report(), before);
}

TEST(MeasurementLogMergeTest, KeepsOwnActivePhase) {
    MeasurementLog a;
    a.set_phase("mine");
    MeasurementLog b;
    b.set_phase("theirs");
    b.record(1, 0.5);
    a.merge(b);
    EXPECT_EQ(a.phase(), "mine");
    EXPECT_EQ(a.phase_counters("theirs").applications, 1u);
}

TEST(MeasurementLogMergeTest, SelfMergeDoublesEveryCounter) {
    MeasurementLog a = make_log({{"learning", 10}, {"ga", 4}});
    a.merge(a);
    EXPECT_EQ(a.phase_counters("learning").applications, 2u);
    EXPECT_EQ(a.phase_counters("learning").vector_cycles, 20u);
    EXPECT_EQ(a.phase_counters("ga").vector_cycles, 8u);
    EXPECT_EQ(a.total().applications, 4u);
    EXPECT_EQ(a.phases().size(), 2u);
}

TEST(MeasurementLogMergeTest, MergeIntoEmptyEqualsSource) {
    const MeasurementLog b = make_log({{"learning", 5}, {"shmoo", 2}});
    MeasurementLog empty;
    empty.merge(b);
    EXPECT_EQ(empty.report(), b.report());
    EXPECT_EQ(empty.total().vector_cycles, b.total().vector_cycles);
}

TEST(MeasurementLogMergeTest, PhaseWithNoRecordsIsNotInvented) {
    // set_phase alone creates no ledger entry, so merging a log that only
    // armed a phase (a site that died before its first measurement)
    // changes nothing.
    MeasurementLog b;
    b.set_phase("armed-but-unused");
    MeasurementLog a = make_log({{"learning", 1}});
    const std::string before = a.report();
    a.merge(b);
    EXPECT_EQ(a.report(), before);
    ASSERT_EQ(a.phases().size(), 1u);
}

TEST(MeasurementLogMergeTest, SaveLoadRoundTripAfterMerge) {
    // The lot checkpoint persists merged site ledgers; the round trip
    // must be bit-exact so a resumed lot re-renders the same report.
    MeasurementLog a = make_log({{"learning", 100}, {"ga", 50}});
    a.merge(make_log({{"ga", 7}, {"shmoo", 3}}));
    std::string bytes;
    a.save(bytes);
    MeasurementLog loaded;
    util::ByteReader in(bytes);
    loaded.load(in);
    EXPECT_EQ(loaded.report(), a.report());
    EXPECT_EQ(loaded.total().applications, a.total().applications);
    EXPECT_DOUBLE_EQ(loaded.total().tester_seconds, a.total().tester_seconds);
}

}  // namespace
}  // namespace cichar::ate
