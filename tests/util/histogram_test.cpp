#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cichar::util {
namespace {

TEST(HistogramTest, BinEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bin_count(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, ValuesLandInRightBins) {
    Histogram h(0.0, 10.0, 5);
    h.add(1.0);   // bin 0
    h.add(3.9);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, OfDataCoversEverything) {
    Rng rng(1);
    std::vector<double> data;
    for (int i = 0; i < 1000; ++i) data.push_back(rng.normal(5.0, 1.0));
    const Histogram h = Histogram::of(data, 15);
    EXPECT_EQ(h.total(), 1000u);
    std::size_t sum = 0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.count(b);
    EXPECT_EQ(sum, 1000u);
}

TEST(HistogramTest, ModeNearDistributionCenter) {
    Rng rng(2);
    std::vector<double> data;
    for (int i = 0; i < 5000; ++i) data.push_back(rng.normal(5.0, 1.0));
    const Histogram h = Histogram::of(data, 21);
    const std::size_t mode = h.mode_bin();
    EXPECT_GT(h.bin_hi(mode), 4.0);
    EXPECT_LT(h.bin_lo(mode), 6.0);
}

TEST(HistogramTest, DegenerateDataGetsWindow) {
    const std::vector<double> same{3.0, 3.0, 3.0};
    const Histogram h = Histogram::of(same, 5);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_LT(h.bin_lo(0), 3.0);
    EXPECT_GT(h.bin_hi(h.bin_count() - 1), 3.0);
}

TEST(HistogramTest, RenderShowsBarsAndCounts) {
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string out = h.render(10, 1);
    EXPECT_NE(out.find("0.0 .. 1.0 | ########## 2"), std::string::npos);
    EXPECT_NE(out.find("1.0 .. 2.0 | ##### 1"), std::string::npos);
}

TEST(HistogramTest, EmptyRenderSafe) {
    Histogram h(0.0, 1.0, 3);
    EXPECT_NO_THROW((void)h.render());
}

}  // namespace
}  // namespace cichar::util
