#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace cichar::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(RngTest, CopyForksIdenticalFuture) {
    Rng a(7);
    (void)a();
    Rng b = a;  // value semantics: copies the whole state
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(RngTest, UniformInUnitInterval) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.5, 2.25);
        ASSERT_GE(u, -3.5);
        ASSERT_LT(u, 2.25);
    }
}

TEST(RngTest, UniformMeanNearHalf) {
    Rng rng(11);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(-2, 3);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);  // all 6 values hit in 1000 draws
}

TEST(RngTest, UniformIntSingleValue) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.uniform_int(42, 42), 42);
    }
}

TEST(RngTest, IndexCoversRange) {
    Rng rng(1);
    std::array<int, 8> histogram{};
    for (int i = 0; i < 8000; ++i) ++histogram[rng.index(8)];
    for (const int count : histogram) {
        EXPECT_GT(count, 700);
        EXPECT_LT(count, 1300);
    }
}

TEST(RngTest, BernoulliExtremes) {
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(RngTest, BernoulliFrequency) {
    Rng rng(3);
    int hits = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
    Rng rng(4);
    constexpr int kN = 100000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / kN;
    const double var = sq / kN - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
    Rng rng(4);
    constexpr int kN = 50000;
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
    Rng rng(8);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(std::span<int>(v));
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShuffleActuallyMoves) {
    Rng rng(8);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(std::span<int>(v));
    int moved = 0;
    for (int i = 0; i < 100; ++i) {
        if (v[static_cast<size_t>(i)] != i) ++moved;
    }
    EXPECT_GT(moved, 50);
}

TEST(RngTest, ShuffleEmptyAndSingleAreNoops) {
    Rng rng(8);
    std::vector<int> empty;
    rng.shuffle(std::span<int>(empty));
    std::vector<int> one{42};
    rng.shuffle(std::span<int>(one));
    EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkIndependentButDeterministic) {
    Rng a(77);
    Rng b(77);
    Rng fa = a.fork(1);
    Rng fb = b.fork(1);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(fa(), fb());

    Rng c(77);
    Rng f1 = c.fork(1);
    // Different salt would need the same parent state; rebuild.
    Rng d(77);
    Rng f2 = d.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (f1() == f2()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
    Rng rng(10);
    const auto sample = rng.sample_without_replacement(20, 100);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWholePool) {
    Rng rng(10);
    const auto sample = rng.sample_without_replacement(10, 10);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, PickReturnsElement) {
    Rng rng(3);
    const std::vector<int> items{5, 6, 7};
    for (int i = 0; i < 50; ++i) {
        const int p = rng.pick(std::span<const int>(items));
        EXPECT_TRUE(p == 5 || p == 6 || p == 7);
    }
}

// Property sweep: bounded draws stay in bounds for many bound shapes.
class RngBoundsTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RngBoundsTest, UniformIntAlwaysInBounds) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
    const std::int64_t hi = GetParam();
    const std::int64_t lo = -hi / 2;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniform_int(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

TEST(RngStateTest, RestoreReplaysExactStream) {
    Rng rng(77);
    for (int i = 0; i < 37; ++i) (void)rng();
    (void)rng.normal();  // leaves a cached spare in the state
    const Rng::State snapshot = rng.state();

    std::vector<double> expected;
    for (int i = 0; i < 64; ++i) expected.push_back(rng.normal());

    Rng restored(1);  // deliberately different seed; restore overrides it
    restored.restore(snapshot);
    for (int i = 0; i < 64; ++i) {
        ASSERT_DOUBLE_EQ(restored.normal(), expected[static_cast<std::size_t>(i)]);
    }
}

TEST(RngStateTest, SnapshotDoesNotAdvanceStream) {
    Rng a(5);
    Rng b(5);
    (void)a.state();
    EXPECT_EQ(a(), b());
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values<std::int64_t>(1, 2, 3, 7, 15, 100,
                                                         1000, 1 << 20,
                                                         (1LL << 40) + 17));

}  // namespace
}  // namespace cichar::util
