#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>

#include "util/binio.hpp"

namespace cichar::util {
namespace {

TEST(SubprocessTest, CleanExitReportsSuccess) {
    Subprocess child = Subprocess::start({"/bin/sh", "-c", "exit 0"});
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_TRUE(status.success());
    EXPECT_EQ(status.code, 0);
    EXPECT_FALSE(status.signaled);
    EXPECT_NE(status.describe().find("exit 0"), std::string::npos);
}

TEST(SubprocessTest, NonzeroExitCodeIsReported) {
    Subprocess child = Subprocess::start({"/bin/sh", "-c", "exit 3"});
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_FALSE(status.success());
    EXPECT_EQ(status.code, 3);
}

TEST(SubprocessTest, PollTransitionsFromRunningToExited) {
    Subprocess child =
        Subprocess::start({"/bin/sh", "-c", "sleep 30"});
    ASSERT_TRUE(child.started());
    EXPECT_TRUE(child.running());
    EXPECT_FALSE(child.poll().has_value());

    child.kill(SIGKILL);
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.signaled);
    EXPECT_EQ(status.signal, SIGKILL);
    EXPECT_FALSE(status.success());
    EXPECT_FALSE(child.running());
    // The cached status keeps answering after the reap.
    const std::optional<ExitStatus> again = child.poll();
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(again->signaled);
}

TEST(SubprocessTest, ExecFailureExits127) {
    Subprocess child =
        Subprocess::start({"/definitely/not/a/real/binary"});
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_EQ(status.code, 127);
}

TEST(SubprocessTest, OutputIsRedirectedToLogFile) {
    const std::string log = testing::TempDir() + "subprocess_test.log";
    Subprocess child = Subprocess::start(
        {"/bin/sh", "-c", "echo out; echo err 1>&2"}, log);
    EXPECT_TRUE(child.wait().success());
    const std::optional<std::string> contents = read_file(log);
    ASSERT_TRUE(contents.has_value());
    EXPECT_NE(contents->find("out"), std::string::npos);
    EXPECT_NE(contents->find("err"), std::string::npos);
}

TEST(SubprocessTest, SelfExecutablePathPointsAtARealFile) {
    const std::string self = self_executable_path("fallback-argv0");
    ASSERT_FALSE(self.empty());
    // On Linux /proc/self/exe resolves to this very test binary.
    EXPECT_TRUE(std::filesystem::exists(self));
}

}  // namespace
}  // namespace cichar::util
