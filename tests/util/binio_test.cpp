#include "util/binio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace cichar::util {
namespace {

TEST(BinioTest, ScalarRoundTrip) {
    std::string buffer;
    put_u32(buffer, 0xDEADBEEFu);
    put_u64(buffer, 0x0123456789ABCDEFULL);
    put_double(buffer, -1.5e-9);
    put_bool(buffer, true);
    put_bool(buffer, false);
    put_string(buffer, "trip-cache");

    ByteReader reader(buffer);
    EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(reader.get_double(), -1.5e-9);
    EXPECT_TRUE(reader.get_bool());
    EXPECT_FALSE(reader.get_bool());
    EXPECT_EQ(reader.get_string(), "trip-cache");
    EXPECT_TRUE(reader.at_end());
}

TEST(BinioTest, LittleEndianLayout) {
    std::string buffer;
    put_u32(buffer, 0x04030201u);
    ASSERT_EQ(buffer.size(), 4u);
    EXPECT_EQ(buffer[0], '\x01');
    EXPECT_EQ(buffer[3], '\x04');
}

TEST(BinioTest, DoublePreservesNanAndInfinity) {
    std::string buffer;
    put_double(buffer, std::numeric_limits<double>::quiet_NaN());
    put_double(buffer, std::numeric_limits<double>::infinity());
    ByteReader reader(buffer);
    EXPECT_TRUE(std::isnan(reader.get_double()));
    EXPECT_EQ(reader.get_double(), std::numeric_limits<double>::infinity());
}

TEST(BinioTest, TruncatedReadThrows) {
    std::string buffer;
    put_u64(buffer, 7);
    buffer.resize(5);
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_u64(), std::runtime_error);
}

TEST(BinioTest, OversizedStringLengthThrows) {
    std::string buffer;
    put_u64(buffer, kMaxSerializedString + 1);  // bogus length prefix
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_string(), std::runtime_error);
}

TEST(BinioTest, MalformedBoolThrows) {
    const std::string buffer("\x07", 1);
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_bool(), std::runtime_error);
}

TEST(BinioTest, SkipPastEndThrows) {
    const std::string buffer("ab");
    ByteReader reader(buffer);
    reader.skip(2);
    EXPECT_TRUE(reader.at_end());
    EXPECT_THROW(reader.skip(1), std::runtime_error);
}

TEST(BinioTest, RngRoundTripReplaysStream) {
    Rng rng(2005);
    for (int i = 0; i < 11; ++i) (void)rng.normal();
    std::string buffer;
    put_rng(buffer, rng);

    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 32; ++i) expected.push_back(rng());

    ByteReader reader(buffer);
    Rng restored = reader.get_rng();
    for (const std::uint64_t value : expected) {
        ASSERT_EQ(restored(), value);
    }
}

TEST(BinioTest, ChecksumDetectsBitFlip) {
    std::string data = "CICHTPC2 payload bytes";
    const std::uint64_t clean = checksum64(data);
    data[7] = static_cast<char>(data[7] ^ 0x10);
    EXPECT_NE(checksum64(data), clean);
    EXPECT_NE(checksum64(std::string_view(data).substr(0, data.size() - 1)),
              clean);
}

TEST(BinioTest, AtomicWriteCreatesAndReplaces) {
    const std::string path = ::testing::TempDir() + "binio_atomic_test.bin";
    ASSERT_TRUE(atomic_write_file(path, "first"));
    auto contents = read_file(path);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(*contents, "first");

    ASSERT_TRUE(atomic_write_file(path, "second, longer contents"));
    contents = read_file(path);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(*contents, "second, longer contents");
    std::remove(path.c_str());
}

TEST(BinioTest, AtomicWriteFailureLeavesTargetIntact) {
    const std::string dir = ::testing::TempDir() + "binio_no_such_dir_xyz";
    EXPECT_FALSE(atomic_write_file(dir + "/file.bin", "data"));
}

TEST(BinioTest, ReadFileMissingReturnsNullopt) {
    EXPECT_FALSE(
        read_file(::testing::TempDir() + "binio_missing_file_xyz").has_value());
}

TEST(BinioTest, AppendFileCreatesAndAppends) {
    const std::string path = ::testing::TempDir() + "binio_append_test.bin";
    std::remove(path.c_str());
    ASSERT_TRUE(append_file(path, "one,", true));
    ASSERT_TRUE(append_file(path, "two", false));
    EXPECT_EQ(read_file(path).value_or(""), "one,two");
    std::remove(path.c_str());
}

TEST(BinioTest, AppendFileFailsOnMissingDirectory) {
    EXPECT_FALSE(append_file(
        ::testing::TempDir() + "binio_no_dir_abc/file.bin", "data", false));
}

// ---------------------------------------------------------------------
// Write-fault injection (the chaos harness's torn-write / bit-rot
// simulator).

class WriteFaultTest : public testing::Test {
protected:
    void SetUp() override { set_write_fault(std::nullopt); }
    void TearDown() override { set_write_fault(std::nullopt); }
};

TEST_F(WriteFaultTest, UnarmedLeavesDataUntouched) {
    std::string data = "payload";
    EXPECT_EQ(apply_write_faults("/any/path", data), data.size());
    EXPECT_EQ(data, "payload");
}

TEST_F(WriteFaultTest, TornFaultTruncatesMatchingWriteOnce) {
    WriteFault fault;
    fault.path_substring = "target";
    fault.torn_after = 3;
    set_write_fault(fault);

    std::string other = "unrelated";
    EXPECT_EQ(apply_write_faults("/tmp/elsewhere", other), other.size());

    std::string data = "abcdefgh";
    EXPECT_EQ(apply_write_faults("/tmp/target.bin", data), 3u);
    EXPECT_EQ(data, "abcdefgh");  // torn at the write, not mutated

    // One-shot: the fault disarmed after firing.
    std::string again = "abcdefgh";
    EXPECT_EQ(apply_write_faults("/tmp/target.bin", again), again.size());
}

TEST_F(WriteFaultTest, FlipFaultXorsTheConfiguredByte) {
    WriteFault fault;
    fault.path_substring = "seg";
    fault.flip_offset = 2;
    fault.flip_mask = 0x01;
    set_write_fault(fault);

    std::string data = "abcd";
    EXPECT_EQ(apply_write_faults("dir/seg-000000.ledg", data), 4u);
    EXPECT_EQ(data, "ab" + std::string(1, 'c' ^ 0x01) + "d");
}

TEST_F(WriteFaultTest, FlipBeyondDataIsHarmless) {
    WriteFault fault;
    fault.path_substring = "x";
    fault.flip_offset = 100;
    set_write_fault(fault);
    std::string data = "ab";
    EXPECT_EQ(apply_write_faults("x", data), 2u);
    EXPECT_EQ(data, "ab");
}

TEST_F(WriteFaultTest, TornAtomicWriteReportsFailureAndKeepsOldFile) {
    const std::string path = ::testing::TempDir() + "binio_fault_atomic.bin";
    ASSERT_TRUE(atomic_write_file(path, "intact"));

    WriteFault fault;
    fault.path_substring = "binio_fault_atomic";
    fault.torn_after = 2;
    set_write_fault(fault);
    // The tear happens below atomic_write_file (it simulates hardware
    // dropping bytes it acknowledged), so the rename publishes exactly
    // the short file a lying disk would have left — the artifact the
    // recovery paths under test must then repair.
    ASSERT_TRUE(atomic_write_file(path, "replacement"));
    EXPECT_EQ(read_file(path).value_or(""), "re");
    std::remove(path.c_str());
}

TEST_F(WriteFaultTest, TornAppendReportsFailureButLeavesTornTail) {
    const std::string path = ::testing::TempDir() + "binio_fault_append.bin";
    std::remove(path.c_str());
    ASSERT_TRUE(append_file(path, "good", false));

    WriteFault fault;
    fault.path_substring = "binio_fault_append";
    fault.torn_after = 2;
    set_write_fault(fault);
    // A torn append is a failed append (the caller must know its batch
    // did not land), yet the torn bytes are on disk for recovery to find.
    EXPECT_FALSE(append_file(path, "batch", false));
    EXPECT_EQ(read_file(path).value_or(""), "goodba");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace cichar::util
