#include "util/binio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace cichar::util {
namespace {

TEST(BinioTest, ScalarRoundTrip) {
    std::string buffer;
    put_u32(buffer, 0xDEADBEEFu);
    put_u64(buffer, 0x0123456789ABCDEFULL);
    put_double(buffer, -1.5e-9);
    put_bool(buffer, true);
    put_bool(buffer, false);
    put_string(buffer, "trip-cache");

    ByteReader reader(buffer);
    EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(reader.get_double(), -1.5e-9);
    EXPECT_TRUE(reader.get_bool());
    EXPECT_FALSE(reader.get_bool());
    EXPECT_EQ(reader.get_string(), "trip-cache");
    EXPECT_TRUE(reader.at_end());
}

TEST(BinioTest, LittleEndianLayout) {
    std::string buffer;
    put_u32(buffer, 0x04030201u);
    ASSERT_EQ(buffer.size(), 4u);
    EXPECT_EQ(buffer[0], '\x01');
    EXPECT_EQ(buffer[3], '\x04');
}

TEST(BinioTest, DoublePreservesNanAndInfinity) {
    std::string buffer;
    put_double(buffer, std::numeric_limits<double>::quiet_NaN());
    put_double(buffer, std::numeric_limits<double>::infinity());
    ByteReader reader(buffer);
    EXPECT_TRUE(std::isnan(reader.get_double()));
    EXPECT_EQ(reader.get_double(), std::numeric_limits<double>::infinity());
}

TEST(BinioTest, TruncatedReadThrows) {
    std::string buffer;
    put_u64(buffer, 7);
    buffer.resize(5);
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_u64(), std::runtime_error);
}

TEST(BinioTest, OversizedStringLengthThrows) {
    std::string buffer;
    put_u64(buffer, kMaxSerializedString + 1);  // bogus length prefix
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_string(), std::runtime_error);
}

TEST(BinioTest, MalformedBoolThrows) {
    const std::string buffer("\x07", 1);
    ByteReader reader(buffer);
    EXPECT_THROW((void)reader.get_bool(), std::runtime_error);
}

TEST(BinioTest, SkipPastEndThrows) {
    const std::string buffer("ab");
    ByteReader reader(buffer);
    reader.skip(2);
    EXPECT_TRUE(reader.at_end());
    EXPECT_THROW(reader.skip(1), std::runtime_error);
}

TEST(BinioTest, RngRoundTripReplaysStream) {
    Rng rng(2005);
    for (int i = 0; i < 11; ++i) (void)rng.normal();
    std::string buffer;
    put_rng(buffer, rng);

    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 32; ++i) expected.push_back(rng());

    ByteReader reader(buffer);
    Rng restored = reader.get_rng();
    for (const std::uint64_t value : expected) {
        ASSERT_EQ(restored(), value);
    }
}

TEST(BinioTest, ChecksumDetectsBitFlip) {
    std::string data = "CICHTPC2 payload bytes";
    const std::uint64_t clean = checksum64(data);
    data[7] = static_cast<char>(data[7] ^ 0x10);
    EXPECT_NE(checksum64(data), clean);
    EXPECT_NE(checksum64(std::string_view(data).substr(0, data.size() - 1)),
              clean);
}

TEST(BinioTest, AtomicWriteCreatesAndReplaces) {
    const std::string path = ::testing::TempDir() + "binio_atomic_test.bin";
    ASSERT_TRUE(atomic_write_file(path, "first"));
    auto contents = read_file(path);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(*contents, "first");

    ASSERT_TRUE(atomic_write_file(path, "second, longer contents"));
    contents = read_file(path);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(*contents, "second, longer contents");
    std::remove(path.c_str());
}

TEST(BinioTest, AtomicWriteFailureLeavesTargetIntact) {
    const std::string dir = ::testing::TempDir() + "binio_no_such_dir_xyz";
    EXPECT_FALSE(atomic_write_file(dir + "/file.bin", "data"));
}

TEST(BinioTest, ReadFileMissingReturnsNullopt) {
    EXPECT_FALSE(
        read_file(::testing::TempDir() + "binio_missing_file_xyz").has_value());
}

}  // namespace
}  // namespace cichar::util
