#include "util/cli_args.hpp"

#include <gtest/gtest.h>

namespace cichar::util {
namespace {

TEST(CliArgsTest, KeyValuePairs) {
    const CliArgs args({"--seed", "42", "--db", "out.txt"});
    EXPECT_TRUE(args.ok());
    EXPECT_EQ(args.size(), 2u);
    EXPECT_TRUE(args.has("seed"));
    EXPECT_EQ(args.get("db"), "out.txt");
    EXPECT_EQ(args.get_u64("seed", 0), 42u);
}

TEST(CliArgsTest, BareFlagStoresEmpty) {
    const CliArgs args({"--verbose", "--seed", "7"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("verbose"), "");
    EXPECT_EQ(args.get_u64("seed", 0), 7u);
}

TEST(CliArgsTest, MissingKeysUseFallbacks) {
    const CliArgs args({"--a", "1"});
    EXPECT_FALSE(args.has("b"));
    EXPECT_EQ(args.get("b", "dflt"), "dflt");
    EXPECT_EQ(args.get_u64("b", 99), 99u);
    EXPECT_DOUBLE_EQ(args.get_double("b", 1.5), 1.5);
}

TEST(CliArgsTest, BareFlagNumericFallsBack) {
    const CliArgs args({"--limit"});
    EXPECT_DOUBLE_EQ(args.get_double("limit", 20.0), 20.0);
}

TEST(CliArgsTest, DoubleValues) {
    const CliArgs args({"--limit", "20.5"});
    EXPECT_DOUBLE_EQ(args.get_double("limit", 0.0), 20.5);
}

TEST(CliArgsTest, PositionalMarksNotOk) {
    const CliArgs args({"stray", "--a", "1"});
    EXPECT_FALSE(args.ok());
    EXPECT_EQ(args.get("a"), "1");  // parsing continues past the stray
}

TEST(CliArgsTest, LastOccurrenceWins) {
    const CliArgs args({"--seed", "1", "--seed", "2"});
    EXPECT_EQ(args.get_u64("seed", 0), 2u);
}

TEST(CliArgsTest, ArgcArgvConstructor) {
    const char* argv[] = {"prog", "hunt", "--seed", "5"};
    const CliArgs args(4, argv, 2);
    EXPECT_TRUE(args.ok());
    EXPECT_EQ(args.get_u64("seed", 0), 5u);
}

TEST(CliArgsTest, NegativeNumbersNotMistakenForFlags) {
    // "-3" does not start with "--", so it is consumed as a value.
    const CliArgs args({"--offset", "-3"});
    EXPECT_EQ(args.get("offset"), "-3");
    EXPECT_DOUBLE_EQ(args.get_double("offset", 0.0), -3.0);
}

TEST(CliArgsTest, JunkNumberThrows) {
    const CliArgs args({"--seed", "banana"});
    EXPECT_THROW((void)args.get_u64("seed", 0), std::invalid_argument);
}

TEST(CliArgsTest, EmptyArgsOk) {
    const CliArgs args(std::vector<std::string>{});
    EXPECT_TRUE(args.ok());
    EXPECT_EQ(args.size(), 0u);
}

TEST(CliArgsTest, PositionalsRejectedByDefault) {
    const CliArgs args({"shard0.ckpt", "--out", "merged.ckpt"});
    EXPECT_FALSE(args.ok());
    EXPECT_TRUE(args.positionals().empty());
}

TEST(CliArgsTest, PositionalsCollectedWhenOptedIn) {
    const CliArgs args({"a.ckpt", "b.ckpt", "--out", "m.ckpt", "c.ckpt"},
                       CliArgs::Positionals::kCollect);
    EXPECT_TRUE(args.ok());
    EXPECT_EQ(args.get("out"), "m.ckpt");
    // Order is preserved; a flag still consumes exactly one value, so
    // the token after "m.ckpt" is positional again.
    ASSERT_EQ(args.positionals().size(), 3u);
    EXPECT_EQ(args.positionals()[0], "a.ckpt");
    EXPECT_EQ(args.positionals()[1], "b.ckpt");
    EXPECT_EQ(args.positionals()[2], "c.ckpt");
}

}  // namespace
}  // namespace cichar::util
