#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace cichar::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i) {
        pool.submit([&sum, i] { sum.fetch_add(i); });
    }
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ZeroTaskWaitDrainsImmediately) {
    ThreadPool pool(2);
    pool.wait();  // nothing submitted: must not hang
    pool.wait();  // and stays callable
    SUCCEED();
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
    ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, PropagatesFirstExceptionFromWait) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("site 3 died"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, RemainsUsableAfterTaskException) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&count] { ++count; });
    }
    pool.wait();  // error was cleared by the previous wait
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, OtherTasksStillRunWhenOneThrows) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        if (i == 5) {
            pool.submit([] { throw std::runtime_error("mid-lot failure"); });
        } else {
            pool.submit([&count] { ++count; });
        }
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 19);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        pool.submit([&order, i] { order.push_back(i); });
    }
    pool.wait();
    // One worker consumes the queue in submission order.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CountsEveryFailureInBatch) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([i, &ran] {
            ++ran;
            if (i % 4 == 0) throw std::runtime_error("task " + std::to_string(i));
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(pool.last_batch_failures(), 4u);
}

TEST(ThreadPoolTest, FailureCountResetsPerBatch) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(pool.last_batch_failures(), 1u);

    pool.submit([] {});
    pool.wait();
    EXPECT_EQ(pool.last_batch_failures(), 0u);
}

TEST(ThreadPoolTest, NonStdExceptionPropagatesWithoutTerminating) {
    ThreadPool pool(2);
    pool.submit([] { throw 42; });  // NOLINT: deliberate non-std exception
    bool caught = false;
    try {
        pool.wait();
    } catch (int value) {
        caught = (value == 42);
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(pool.last_batch_failures(), 1u);
}

TEST(ThreadPoolTest, EveryTaskThrowingStillDrains) {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
        pool.submit([] { throw std::runtime_error("all fail"); });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(pool.last_batch_failures(), 32u);
    // Pool is still alive and usable.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.last_batch_failures(), 0u);
}

TEST(ProgressCounterTest, TicksTowardTotal) {
    ProgressCounter progress(4);
    EXPECT_EQ(progress.done(), 0u);
    EXPECT_DOUBLE_EQ(progress.fraction(), 0.0);
    EXPECT_EQ(progress.tick(), 1u);
    EXPECT_EQ(progress.tick(), 2u);
    EXPECT_DOUBLE_EQ(progress.fraction(), 0.5);
    EXPECT_EQ(progress.total(), 4u);
}

TEST(ProgressCounterTest, ResetRearms) {
    ProgressCounter progress(2);
    (void)progress.tick();
    progress.reset(10);
    EXPECT_EQ(progress.done(), 0u);
    EXPECT_EQ(progress.total(), 10u);
}

TEST(ProgressCounterTest, ZeroTotalReportsComplete) {
    const ProgressCounter progress(0);
    EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
}

TEST(ProgressCounterTest, CountsAcrossThreads) {
    ProgressCounter progress(64);
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
        pool.submit([&progress] { (void)progress.tick(); });
    }
    pool.wait();
    EXPECT_EQ(progress.done(), 64u);
    EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
}

}  // namespace
}  // namespace cichar::util
