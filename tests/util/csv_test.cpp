#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cichar::util {
namespace {

TEST(CsvTest, PlainRow) {
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
    EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvTest, QuotesCommas) {
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"x,y", "plain"});
    EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(CsvTest, EscapesEmbeddedQuotes) {
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, QuotesNewlines) {
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvTest, PlainCellUntouched) {
    EXPECT_EQ(CsvWriter::escape("hello world"), "hello world");
}

TEST(CsvTest, NumericRow) {
    std::ostringstream out;
    CsvWriter csv(out);
    const std::vector<double> values{1.0, 2.5, -3.0};
    csv.numeric_row(values);
    EXPECT_EQ(out.str(), "1,2.5,-3\n");
}

TEST(CsvTest, LabeledRow) {
    std::ostringstream out;
    CsvWriter csv(out);
    const std::vector<double> values{0.5};
    csv.labeled_row("vdd", values);
    EXPECT_EQ(out.str(), "vdd,0.5\n");
}

TEST(CsvTest, MultipleRowsCounted) {
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row({"h1", "h2"});
    const std::vector<double> values{1.0, 2.0};
    csv.numeric_row(values);
    csv.numeric_row(values);
    EXPECT_EQ(csv.rows_written(), 3u);
}

TEST(FormatDoubleTest, RoundTripPrecision) {
    for (const double v : {0.1, 1.0 / 3.0, 1e-20, 12345.6789, -0.0}) {
        const std::string s = format_double(v);
        EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
    }
}

TEST(FormatDoubleTest, IntegersCompact) {
    EXPECT_EQ(format_double(42.0), "42");
    EXPECT_EQ(format_double(0.0), "0");
}

}  // namespace
}  // namespace cichar::util
