#include "util/ascii.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cichar::util {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
    TextTable t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer-name", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, ColumnsAligned) {
    TextTable t({"a", "b"});
    t.add_row({"xx", "yy"});
    const std::string out = t.render();
    // Every line has identical length.
    std::istringstream in(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(in, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTableTest, ShortRowPadded) {
    TextTable t({"a", "b", "c"});
    t.add_row({"only"});
    EXPECT_NO_THROW((void)t.render());
}

TEST(TextTableTest, NumericRowFormatting) {
    TextTable t({"label", "v1", "v2"});
    t.add_row("row", {1.23456, 2.0}, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("1.23"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(CharGridTest, SetAndGet) {
    CharGrid g(10, 5);
    g.set(3, 2, '#');
    EXPECT_EQ(g.at(3, 2), '#');
    EXPECT_EQ(g.at(0, 0), ' ');
}

TEST(CharGridTest, OutOfRangeIgnored) {
    CharGrid g(4, 4);
    g.set(100, 100, 'x');  // must not crash
    EXPECT_EQ(g.at(100, 100), '\0');
}

TEST(CharGridTest, RenderShape) {
    CharGrid g(3, 2, '.');
    const std::string out = g.render();
    EXPECT_EQ(out, "...\n...\n");
}

TEST(CharGridTest, RenderWithLabels) {
    CharGrid g(2, 2, '*');
    const std::string out = g.render({"1.8", "1.4"});
    EXPECT_NE(out.find("1.8 |**"), std::string::npos);
    EXPECT_NE(out.find("1.4 |**"), std::string::npos);
}

TEST(FixedTest, Precision) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(1.0, 0), "1");
    EXPECT_EQ(fixed(-2.5, 1), "-2.5");
}

TEST(BarTest, Scaling) {
    EXPECT_EQ(bar(5.0, 10.0, 10).size(), 5u);
    EXPECT_EQ(bar(10.0, 10.0, 10).size(), 10u);
    EXPECT_EQ(bar(20.0, 10.0, 10).size(), 10u);  // clamped
    EXPECT_TRUE(bar(-1.0, 10.0, 10).empty());
    EXPECT_TRUE(bar(1.0, 0.0, 10).empty());
}

}  // namespace
}  // namespace cichar::util
