#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ate/measurement_log.hpp"

namespace cichar::util {
namespace {

/// Restores global logger state after each test.
struct LogFixture : ::testing::Test {
    void SetUp() override {
        previous_level_ = Log::level();
        Log::set_sink(&captured_);
    }
    void TearDown() override {
        Log::set_sink(nullptr);
        Log::set_level(previous_level_);
    }
    std::ostringstream captured_;
    LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogFixture, LevelFiltering) {
    Log::set_level(LogLevel::kWarn);
    log_debug("hidden debug");
    log_info("hidden info");
    log_warn("visible warning");
    log_error("visible error");
    const std::string out = captured_.str();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("visible warning"), std::string::npos);
    EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST_F(LogFixture, DebugLevelShowsEverything) {
    Log::set_level(LogLevel::kDebug);
    log_debug("d");
    log_info("i");
    const std::string out = captured_.str();
    EXPECT_NE(out.find("DEBUG"), std::string::npos);
    EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LogFixture, OffSilencesAll) {
    Log::set_level(LogLevel::kOff);
    log_error("should not appear");
    EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LogFixture, MessageComposition) {
    Log::set_level(LogLevel::kInfo);
    log_info("value is ", 42, " (", 3.5, ")");
    EXPECT_NE(captured_.str().find("value is 42 (3.5)"), std::string::npos);
}

TEST_F(LogFixture, TagFormat) {
    Log::set_level(LogLevel::kInfo);
    log_warn("tagged");
    EXPECT_NE(captured_.str().find("[cichar WARN ] tagged"),
              std::string::npos);
}

TEST(PhaseCountersTest, AddAccumulates) {
    ate::PhaseCounters c;
    c.add(100, 0.5);
    c.add(200, 1.0);
    EXPECT_EQ(c.applications, 2u);
    EXPECT_EQ(c.vector_cycles, 300u);
    EXPECT_DOUBLE_EQ(c.tester_seconds, 1.5);
}

TEST(PhaseCountersTest, MergeCombines) {
    ate::PhaseCounters a;
    a.add(10, 0.1);
    ate::PhaseCounters b;
    b.add(20, 0.2);
    b.add(30, 0.3);
    a.merge(b);
    EXPECT_EQ(a.applications, 3u);
    EXPECT_EQ(a.vector_cycles, 60u);
    EXPECT_NEAR(a.tester_seconds, 0.6, 1e-12);
}

}  // namespace
}  // namespace cichar::util
