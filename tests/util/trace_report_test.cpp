#include "util/trace_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/telemetry.hpp"

namespace telem = cichar::util::telemetry;
using cichar::util::TraceParse;
using cichar::util::parse_trace_jsonl;
using cichar::util::render_trace_report;

namespace {

TEST(TraceReportTest, RoundTripThroughLiveSpans) {
    telem::Trace::instance().clear();
    telem::set_tracing_enabled(true);
    {
        TELEM_SPAN("phase.learn");
        { TELEM_SPAN("measure"); }
        { TELEM_SPAN("measure"); }
    }
    {
        TELEM_SPAN("phase.optimize");
    }
    telem::set_tracing_enabled(false);

    std::ostringstream jsonl;
    telem::Trace::instance().write_jsonl(jsonl);
    telem::Trace::instance().clear();

    std::istringstream in(jsonl.str());
    const TraceParse parse = parse_trace_jsonl(in);
    EXPECT_EQ(parse.malformed_lines, 0u);
    EXPECT_EQ(parse.unclosed_spans, 0u);
    ASSERT_EQ(parse.spans.size(), 4u);

    // Top-level phases and the nested measure spans survive the trip.
    std::size_t top_level = 0;
    std::size_t measures = 0;
    for (const auto& span : parse.spans) {
        EXPECT_TRUE(span.closed);
        EXPECT_GE(span.end_ns, span.begin_ns);
        if (span.parent == 0) ++top_level;
        if (span.name == "measure") {
            ++measures;
            EXPECT_NE(span.parent, 0u);
        }
    }
    EXPECT_EQ(top_level, 2u);
    EXPECT_EQ(measures, 2u);

    const std::string report = render_trace_report(parse);
    EXPECT_NE(report.find("phase timing"), std::string::npos);
    EXPECT_NE(report.find("phase.learn"), std::string::npos);
    EXPECT_NE(report.find("phase.optimize"), std::string::npos);
    EXPECT_NE(report.find("measure"), std::string::npos);
}

TEST(TraceReportTest, ParsesHandWrittenStream) {
    std::istringstream in(
        "{\"ev\":\"meta\",\"format\":\"cichar-trace\",\"version\":1}\n"
        "{\"ev\":\"B\",\"id\":1,\"parent\":0,\"tid\":0,\"ts_ns\":100,"
        "\"name\":\"alpha\"}\n"
        "{\"ev\":\"B\",\"id\":2,\"parent\":1,\"tid\":0,\"ts_ns\":200,"
        "\"name\":\"beta\"}\n"
        "{\"ev\":\"E\",\"id\":2,\"tid\":0,\"ts_ns\":300}\n"
        "{\"ev\":\"E\",\"id\":1,\"tid\":0,\"ts_ns\":1100}\n");
    const TraceParse parse = parse_trace_jsonl(in);
    ASSERT_EQ(parse.spans.size(), 2u);
    EXPECT_EQ(parse.spans[0].name, "alpha");
    EXPECT_EQ(parse.spans[0].duration_ns(), 1000u);
    EXPECT_EQ(parse.spans[1].name, "beta");
    EXPECT_EQ(parse.spans[1].parent, 1u);
    EXPECT_EQ(parse.spans[1].duration_ns(), 100u);
}

TEST(TraceReportTest, CountsMalformedAndUnclosed) {
    std::istringstream in(
        "not json at all\n"
        "{\"ev\":\"B\",\"id\":7,\"parent\":0,\"tid\":0,\"ts_ns\":5,"
        "\"name\":\"open\"}\n"
        "{\"ev\":\"E\",\"id\":99,\"tid\":0,\"ts_ns\":6}\n"
        "{\"ev\":\"X\",\"id\":1}\n");
    const TraceParse parse = parse_trace_jsonl(in);
    EXPECT_EQ(parse.spans.size(), 1u);
    EXPECT_FALSE(parse.spans[0].closed);
    EXPECT_EQ(parse.unclosed_spans, 1u);
    // Non-JSON line + end-without-begin + unknown event kind.
    EXPECT_EQ(parse.malformed_lines, 3u);

    const std::string report = render_trace_report(parse);
    EXPECT_NE(report.find("malformed lines skipped: 3"), std::string::npos);
    EXPECT_NE(report.find("unclosed spans"), std::string::npos);
}

TEST(TraceReportTest, EscapedNamesRoundTrip) {
    std::istringstream in(
        "{\"ev\":\"B\",\"id\":1,\"parent\":0,\"tid\":0,\"ts_ns\":0,"
        "\"name\":\"with \\\"quotes\\\" and \\\\slash\"}\n"
        "{\"ev\":\"E\",\"id\":1,\"tid\":0,\"ts_ns\":10}\n");
    const TraceParse parse = parse_trace_jsonl(in);
    ASSERT_EQ(parse.spans.size(), 1u);
    EXPECT_EQ(parse.spans[0].name, "with \"quotes\" and \\slash");
}

TEST(TraceReportTest, EmptyStreamRendersGracefully) {
    std::istringstream in("");
    const TraceParse parse = parse_trace_jsonl(in);
    EXPECT_TRUE(parse.spans.empty());
    const std::string report = render_trace_report(parse);
    EXPECT_NE(report.find("no spans recorded"), std::string::npos);
}

}  // namespace
