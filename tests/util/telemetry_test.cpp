#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace telem = cichar::util::telemetry;

namespace {

/// Tests share the process-wide registry; each fixture run starts from
/// zeroed values and disabled switches.
class TelemetryTest : public ::testing::Test {
protected:
    void SetUp() override {
        telem::Registry::instance().reset_values();
        telem::set_metrics_enabled(false);
        telem::set_tracing_enabled(false);
    }
    void TearDown() override {
        telem::Registry::instance().reset_values();
        telem::set_metrics_enabled(false);
        telem::set_tracing_enabled(false);
    }
};

TEST_F(TelemetryTest, SwitchesDefaultOffAndToggle) {
    EXPECT_FALSE(telem::metrics_enabled());
    EXPECT_FALSE(telem::tracing_enabled());
    telem::set_metrics_enabled(true);
    EXPECT_TRUE(telem::metrics_enabled());
    EXPECT_FALSE(telem::tracing_enabled());
    telem::set_tracing_enabled(true);
    EXPECT_TRUE(telem::tracing_enabled());
}

TEST_F(TelemetryTest, CounterAccumulatesAndResets) {
    telem::Counter& c =
        telem::Registry::instance().counter("test_counter_total");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    telem::Registry::instance().reset_values();
    EXPECT_EQ(c.value(), 0u);
    // Reference stays valid across reset: same object, zeroed value.
    c.add(7);
    EXPECT_EQ(
        telem::Registry::instance().counter("test_counter_total").value(), 7u);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
    telem::Gauge& g = telem::Registry::instance().gauge("test_gauge");
    g.set(2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST_F(TelemetryTest, RegistryReturnsSameMetricForSameName) {
    telem::Counter& a = telem::Registry::instance().counter("same_name");
    telem::Counter& b = telem::Registry::instance().counter("same_name");
    EXPECT_EQ(&a, &b);
}

TEST_F(TelemetryTest, HistogramBucketEdgeCases) {
    const std::array<double, 3> bounds{1.0, 2.0, 5.0};
    telem::Histogram& h =
        telem::Registry::instance().histogram("test_edges", bounds);
    h.observe(0.5);                                        // < first bound
    h.observe(1.0);                                        // exactly on bound
    h.observe(1.0000001);                                  // just above
    h.observe(5.0);                                        // last finite bound
    h.observe(6.0);                                        // overflow
    h.observe(std::numeric_limits<double>::infinity());    // overflow
    h.observe(std::numeric_limits<double>::quiet_NaN());   // overflow
    h.observe(-std::numeric_limits<double>::infinity());   // first bucket

    const telem::Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.upper_bounds.size(), 3u);
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 3u);  // 0.5, 1.0 (le), -inf
    EXPECT_EQ(snap.counts[1], 1u);  // 1.0000001
    EXPECT_EQ(snap.counts[2], 1u);  // 5.0
    EXPECT_EQ(snap.counts[3], 3u);  // 6.0, +inf, NaN
    EXPECT_EQ(snap.count, 8u);
}

TEST_F(TelemetryTest, HistogramBoundsAreSortedAndDeduplicated) {
    const std::array<double, 4> bounds{3.0, 1.0, 3.0, 2.0};
    telem::Histogram& h =
        telem::Registry::instance().histogram("test_unsorted", bounds);
    EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST_F(TelemetryTest, ConcurrentShardMergeLosesNothing) {
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 20000;
    const std::array<double, 4> bounds{0.25, 0.5, 0.75, 1.0};
    telem::Histogram& h =
        telem::Registry::instance().histogram("test_concurrent", bounds);
    telem::Counter& c =
        telem::Registry::instance().counter("test_concurrent_total");

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load()) {
            }
            for (std::size_t i = 0; i < kPerThread; ++i) {
                // Deterministic per-thread value pattern spanning buckets.
                h.observe(static_cast<double>((t + i) % 5) * 0.25);
                c.add();
            }
        });
    }
    go.store(true);
    for (std::thread& thread : threads) thread.join();

    const telem::Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, kThreads * kPerThread);
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t count : snap.counts) bucket_sum += count;
    EXPECT_EQ(bucket_sum, kThreads * kPerThread);
    // (t+i)%5 in {0..4} scaled by 0.25: values 0,0.25 -> bucket 0; 0.5 ->
    // bucket 1; 0.75 -> bucket 2; 1.0 -> bucket 3; none overflow.
    EXPECT_EQ(snap.counts[4], 0u);
}

TEST_F(TelemetryTest, PrometheusRenderAndLoadRoundTrip) {
    telem::Registry& reg = telem::Registry::instance();
    reg.counter("rt_counter_total").add(123);
    reg.gauge("rt_gauge").set(4.75);
    const std::array<double, 2> bounds{1.0, 2.0};
    telem::Histogram& h = reg.histogram("rt_hist", bounds);
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);

    const std::string text = reg.render_prometheus();
    EXPECT_NE(text.find("# TYPE rt_counter_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("rt_counter_total 123"), std::string::npos);
    EXPECT_NE(text.find("# TYPE rt_gauge gauge"), std::string::npos);
    EXPECT_NE(text.find("rt_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("rt_hist_count 3"), std::string::npos);

    reg.reset_values();
    std::istringstream in(text);
    EXPECT_TRUE(reg.load_prometheus(in));
    EXPECT_EQ(reg.counter("rt_counter_total").value(), 123u);
    EXPECT_DOUBLE_EQ(reg.gauge("rt_gauge").value(), 4.75);
    // Histogram series are intentionally not restored.
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(TelemetryTest, LoadPrometheusIgnoresMalformedLines) {
    telem::Registry& reg = telem::Registry::instance();
    std::istringstream in(
        "# HELP junk\n"
        "# TYPE good_total counter\n"
        "good_total 5\n"
        "no_type_line 7\n"
        "garbage\n"
        "good_total_bucket{le=\"1\"} 9\n");
    EXPECT_TRUE(reg.load_prometheus(in));
    EXPECT_EQ(reg.counter("good_total").value(), 5u);
}

TEST_F(TelemetryTest, SpanScopeNoOpWhenTracingDisabled) {
    telem::Trace::instance().clear();
    {
        TELEM_SPAN("should.not.record");
    }
    EXPECT_EQ(telem::Trace::instance().event_count(), 0u);
}

TEST_F(TelemetryTest, SpanParentLinkageAndJsonl) {
    telem::Trace::instance().clear();
    telem::set_tracing_enabled(true);
    {
        TELEM_SPAN("outer");
        { TELEM_SPAN("inner"); }
    }
    telem::set_tracing_enabled(false);
    EXPECT_EQ(telem::Trace::instance().event_count(), 4u);

    std::ostringstream out;
    telem::Trace::instance().write_jsonl(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"inner\""), std::string::npos);
    // The inner begin event links to the outer span (parent != 0).
    const std::size_t inner_at = text.find("\"name\":\"inner\"");
    const std::size_t line_start = text.rfind('\n', inner_at);
    const std::string inner_line = text.substr(
        line_start + 1, text.find('\n', inner_at) - line_start - 1);
    EXPECT_EQ(inner_line.find("\"parent\":0,"), std::string::npos)
        << inner_line;
    telem::Trace::instance().clear();
}

TEST_F(TelemetryTest, ConcurrentSpansKeepPerThreadNesting) {
    telem::Trace::instance().clear();
    telem::set_tracing_enabled(true);
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kSpansPerThread = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (std::size_t i = 0; i < kSpansPerThread; ++i) {
                TELEM_SPAN("thread.outer");
                TELEM_SPAN("thread.inner");
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    telem::set_tracing_enabled(false);
    EXPECT_EQ(telem::Trace::instance().event_count(),
              kThreads * kSpansPerThread * 4);
    telem::Trace::instance().clear();
}

}  // namespace
