#include "util/crash_point.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cichar::util {
namespace {

/// Every test runs against a reset registry and restores it on exit so
/// crash-point state never leaks into unrelated tests.
class CrashPointTest : public testing::Test {
protected:
    void SetUp() override { reset_crash_points_for_test(); }
    void TearDown() override { reset_crash_points_for_test(); }
};

TEST_F(CrashPointTest, DisarmedSiteIsANoop) {
    // Nothing armed, no handler: hitting a site must neither die nor
    // record anything (the fast path settles to disarmed).
    crash_point("test.noop.site");
    crash_point("test.noop.site");
    EXPECT_TRUE(crash_point_hits().empty());
}

TEST_F(CrashPointTest, HandlerFiresAtFirstHitByDefault) {
    std::vector<std::string> fired;
    set_crash_handler([&fired](const std::string& site) {
        fired.push_back(site);
    });
    arm_crash_point("test.site.a");
    crash_point("test.site.b");  // different site: no fire
    EXPECT_TRUE(fired.empty());
    crash_point("test.site.a");
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], "test.site.a");
}

TEST_F(CrashPointTest, ArmedHitIndexIsOneBasedAndExact) {
    std::vector<std::string> fired;
    set_crash_handler([&fired](const std::string& site) {
        fired.push_back(site);
    });
    arm_crash_point("test.site.n", 3);
    crash_point("test.site.n");
    crash_point("test.site.n");
    EXPECT_TRUE(fired.empty());
    crash_point("test.site.n");  // third hit dies
    EXPECT_EQ(fired.size(), 1u);
    crash_point("test.site.n");  // fourth hit: already past the armed hit
    EXPECT_EQ(fired.size(), 1u);
}

TEST_F(CrashPointTest, ArmingHitZeroMeansFirstHit) {
    std::vector<std::string> fired;
    set_crash_handler([&fired](const std::string& site) {
        fired.push_back(site);
    });
    arm_crash_point("test.site.z", 0);
    crash_point("test.site.z");
    EXPECT_EQ(fired.size(), 1u);
}

TEST_F(CrashPointTest, HitCountsAccumulatePerSite) {
    // A handler (even one that never fires) activates counting.
    set_crash_handler([](const std::string&) {});
    crash_point("test.count.a");
    crash_point("test.count.a");
    crash_point("test.count.b");
    const auto hits = crash_point_hits();
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].first, "test.count.a");
    EXPECT_EQ(hits[0].second, 2u);
    EXPECT_EQ(hits[1].first, "test.count.b");
    EXPECT_EQ(hits[1].second, 1u);
}

TEST_F(CrashPointTest, ResetClearsArmingAndCounters) {
    std::vector<std::string> fired;
    set_crash_handler([&fired](const std::string& site) {
        fired.push_back(site);
    });
    arm_crash_point("test.reset.site");
    crash_point("test.reset.site");
    EXPECT_EQ(fired.size(), 1u);

    reset_crash_points_for_test();
    // Disarmed again: the same site no longer fires or counts.
    crash_point("test.reset.site");
    EXPECT_EQ(fired.size(), 1u);
    EXPECT_TRUE(crash_point_hits().empty());
}

TEST_F(CrashPointTest, MacroCompilesAsStatement) {
    set_crash_handler([](const std::string&) {});
    if (true) CICHAR_CRASH_POINT("test.macro.site");
    const auto hits = crash_point_hits();
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].first, "test.macro.site");
}

}  // namespace
}  // namespace cichar::util
