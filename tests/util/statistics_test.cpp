#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace cichar::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSample) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1: sum sq dev = 32, / 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
    Rng rng(1);
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        whole.add(x);
        (i < 400 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentileTest, MedianOdd) {
    const std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(PercentileTest, Extremes) {
    const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(PercentileTest, SingleElement) {
    const std::vector<double> v{7.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 7.0);
}

TEST(SummaryTest, OrderingInvariant) {
    Rng rng(33);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i) v.push_back(rng.normal(0.0, 5.0));
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 500u);
    EXPECT_LE(s.min, s.p25);
    EXPECT_LE(s.p25, s.median);
    EXPECT_LE(s.median, s.p75);
    EXPECT_LE(s.p75, s.max);
    EXPECT_GE(s.stddev, 0.0);
}

TEST(CorrelationTest, PerfectPositive) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(correlation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateIsZero) {
    const std::vector<double> x{1.0, 1.0, 1.0};
    const std::vector<double> y{2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(correlation(x, y), 0.0);
}

TEST(CorrelationTest, NearZeroForIndependent) {
    Rng rng(5);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    EXPECT_NEAR(correlation(x, y), 0.0, 0.05);
}

TEST(LinspaceTest, EndpointsExact) {
    const auto v = linspace(1.0, 2.0, 7);
    EXPECT_EQ(v.size(), 7u);
    EXPECT_DOUBLE_EQ(v.front(), 1.0);
    EXPECT_DOUBLE_EQ(v.back(), 2.0);
}

TEST(LinspaceTest, EvenSpacing) {
    const auto v = linspace(0.0, 10.0, 11);
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(v[i], static_cast<double>(i), 1e-12);
    }
}

TEST(LinspaceTest, SinglePoint) {
    const auto v = linspace(3.0, 9.0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(LinspaceTest, DescendingRange) {
    const auto v = linspace(5.0, 1.0, 5);
    EXPECT_DOUBLE_EQ(v.front(), 5.0);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i], v[i - 1]);
}

}  // namespace
}  // namespace cichar::util
