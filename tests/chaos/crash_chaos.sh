#!/bin/sh
# Kill-at-every-crash-point chaos driver.
#
#   crash_chaos.sh <cichar-binary> hunt|lot|merge
#
# Phase 1 traces a clean run with CICHAR_CRASH_TRACE to learn every
# crash-point site the workload visits. Phase 2 then, for each distinct
# site, re-runs the workload with CICHAR_CRASH_AT=<site> (the process
# must die with exit 86), resumes it, and requires:
#
#   * the primary artifact (worst-case db / lot report) byte-identical
#     to an uninterrupted reference run,
#   * `cichar ledger verify` passing on the survivor ledger,
#   * the compacted ledger byte-identical to the reference's.
#
# Artifact basenames are deliberately identical across reference and
# kill runs (separate directories): ledger snapshot-refs store basenames,
# so the byte-identity comparison requires matching names.
set -u

CLI=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
MODE=$2
WORK=$PWD/chaos_$MODE
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || exit 1

fail() {
    echo "chaos($MODE): FAIL: $*" >&2
    exit 1
}

HUNT_ARGS="hunt --seed 7 --generations 4 --populations 2 --db db.txt --ledger L"
LOT_ARGS="lot --sites 3 --tests 24 --generations 3 --report report.txt --ledger L"
WORKER_ARGS="lot --sites 4 --tests 24 --generations 3"

# --------------------------------------------------------------- reference
mkdir -p REF
cd REF || exit 1
case $MODE in
    hunt) $CLI $HUNT_ARGS > /dev/null || fail "reference hunt" ;;
    lot) $CLI $LOT_ARGS > /dev/null || fail "reference lot" ;;
    merge) $CLI $WORKER_ARGS --report report.txt --ledger L > /dev/null ||
        fail "reference lot" ;;
    *) fail "unknown mode '$MODE'" ;;
esac
$CLI ledger compact L --out LC > /dev/null || fail "reference compact"
cd ..

# ------------------------------------------------------------------- trace
mkdir -p TRACE
cd TRACE || exit 1
case $MODE in
    hunt) CICHAR_CRASH_TRACE=trace.txt $CLI $HUNT_ARGS --checkpoint h.ckpt \
        > /dev/null || fail "trace run" ;;
    lot) CICHAR_CRASH_TRACE=trace.txt $CLI $LOT_ARGS --checkpoint l.ckpt \
        > /dev/null || fail "trace run" ;;
    merge) CICHAR_CRASH_TRACE=trace.txt $CLI $WORKER_ARGS --site-range 0:2 \
        --checkpoint s0.ckpt --ledger LS0 > /dev/null || fail "trace run" ;;
esac
awk '{print $1}' trace.txt | sort -u > sites.txt
[ -s sites.txt ] || fail "trace produced no crash-point sites"
cd ..

echo "chaos($MODE): $(wc -l < TRACE/sites.txt) crash-point site(s) to kill at"

# --------------------------------------------------------------- kill loop
run_hunt_case() {
    site=$1
    CICHAR_CRASH_AT=$site $CLI $HUNT_ARGS --checkpoint h.ckpt \
        > /dev/null 2>&1
    status=$?
    [ $status -eq 86 ] || fail "$site: expected exit 86, got $status"
    resume=""
    [ -f h.ckpt ] && resume="--resume h.ckpt"
    $CLI $HUNT_ARGS --checkpoint h.ckpt $resume > /dev/null ||
        fail "$site: resume run"
    cmp -s ../REF/db.txt db.txt || fail "$site: worst-case db differs"
}

run_lot_case() {
    site=$1
    CICHAR_CRASH_AT=$site $CLI $LOT_ARGS --checkpoint l.ckpt \
        > /dev/null 2>&1
    status=$?
    [ $status -eq 86 ] || fail "$site: expected exit 86, got $status"
    resume=""
    [ -f l.ckpt ] && resume="--resume l.ckpt"
    $CLI $LOT_ARGS --checkpoint l.ckpt $resume > /dev/null ||
        fail "$site: resume run"
    cmp -s ../REF/report.txt report.txt || fail "$site: lot report differs"
}

run_merge_case() {
    site=$1
    CICHAR_CRASH_AT=$site $CLI $WORKER_ARGS --site-range 0:2 \
        --checkpoint s0.ckpt --ledger LS0 > /dev/null 2>&1
    status=$?
    [ $status -eq 86 ] || fail "$site: expected exit 86, got $status"
    resume=""
    [ -f s0.ckpt ] && resume="--resume s0.ckpt"
    $CLI $WORKER_ARGS --site-range 0:2 --checkpoint s0.ckpt $resume \
        --ledger LS0 > /dev/null || fail "$site: worker 0 resume"
    $CLI $WORKER_ARGS --site-range 2:4 --checkpoint s1.ckpt --ledger LS1 \
        > /dev/null || fail "$site: worker 1"
    $CLI merge s0.ckpt s1.ckpt --out merged.ckpt > /dev/null ||
        fail "$site: checkpoint merge"
    $CLI $WORKER_ARGS --resume merged.ckpt --report report.txt --ledger LM \
        > /dev/null || fail "$site: merged render"
    cmp -s ../REF/report.txt report.txt || fail "$site: lot report differs"
    # The shard ledgers (including the one the kill tore into) must fuse
    # into the reference run's canonical bytes.
    $CLI merge LS0 LS1 LM --out LC --ledgers > /dev/null ||
        fail "$site: ledger merge"
}

while IFS= read -r site; do
    dir=K_$(echo "$site" | tr '.:' '__')
    mkdir -p "$dir"
    cd "$dir" || exit 1
    case $MODE in
        hunt) run_hunt_case "$site" ;;
        lot) run_lot_case "$site" ;;
        merge) run_merge_case "$site" ;;
    esac
    # Survivor ledger(s) must verify and compact to the reference bytes.
    if [ "$MODE" != merge ]; then
        $CLI ledger verify L > /dev/null || fail "$site: ledger verify"
        $CLI ledger compact L --out LC > /dev/null || fail "$site: compact"
    fi
    $CLI ledger verify LC > /dev/null || fail "$site: compacted verify"
    diff -r ../REF/LC LC > /dev/null || fail "$site: compacted ledger differs"
    cd ..
    echo "chaos($MODE): $site OK"
done < TRACE/sites.txt

echo "chaos($MODE): PASS ($(wc -l < TRACE/sites.txt) sites)"
