#include "fuzzy/margin.hpp"

#include <gtest/gtest.h>

namespace cichar::fuzzy {
namespace {

TEST(MarginTest, SafePartLowRisk) {
    const MarginRiskAnalyzer analyzer;
    const double risk = analyzer.risk(0.55, 0.95, 0.05);
    EXPECT_LT(risk, 0.35);
    EXPECT_EQ(analyzer.label(risk), "low");
}

TEST(MarginTest, CriticalAndSpreadyIsCritical) {
    const MarginRiskAnalyzer analyzer;
    const double risk = analyzer.risk(1.0, 0.9, 0.6);
    EXPECT_GT(risk, 0.7);
    EXPECT_EQ(analyzer.label(risk), "critical");
}

TEST(MarginTest, UncertainClassifierRaisesRisk) {
    const MarginRiskAnalyzer analyzer;
    const double confident = analyzer.risk(0.97, 0.95, 0.05);
    const double uncertain = analyzer.risk(0.97, 0.30, 0.05);
    EXPECT_GT(uncertain, confident);
}

TEST(MarginTest, SpreadRaisesRiskEvenWhenSafe) {
    const MarginRiskAnalyzer analyzer;
    const double tight = analyzer.risk(0.55, 0.9, 0.02);
    const double spready = analyzer.risk(0.55, 0.9, 0.7);
    EXPECT_GT(spready, tight);
}

TEST(MarginTest, MonotoneInWcr) {
    const MarginRiskAnalyzer analyzer;
    double previous = -1.0;
    for (double wcr = 0.4; wcr <= 1.1; wcr += 0.05) {
        const double risk = analyzer.risk(wcr, 0.8, 0.3);
        EXPECT_GE(risk, previous - 1e-9) << "wcr=" << wcr;
        previous = risk;
    }
}

TEST(MarginTest, OutputAlwaysInUnitInterval) {
    const MarginRiskAnalyzer analyzer;
    for (double wcr = 0.0; wcr <= 1.2; wcr += 0.1) {
        for (double agreement = 0.0; agreement <= 1.0; agreement += 0.25) {
            for (double spread = 0.0; spread <= 1.0; spread += 0.25) {
                const double risk = analyzer.risk(wcr, agreement, spread);
                ASSERT_GE(risk, 0.0);
                ASSERT_LE(risk, 1.0);
            }
        }
    }
}

TEST(MarginTest, SystemShapeExposed) {
    const MarginRiskAnalyzer analyzer;
    EXPECT_EQ(analyzer.system().input_count(), 3u);
    EXPECT_EQ(analyzer.system().output().term_count(), 3u);
    EXPECT_GE(analyzer.system().rule_count(), 6u);
}

TEST(MarginTest, LabelsCoverAllBands) {
    const MarginRiskAnalyzer analyzer;
    EXPECT_EQ(analyzer.label(0.1), "low");
    EXPECT_EQ(analyzer.label(0.5), "elevated");
    EXPECT_EQ(analyzer.label(0.95), "critical");
}

}  // namespace
}  // namespace cichar::fuzzy
