#include "fuzzy/coding.hpp"

#include <gtest/gtest.h>

namespace cichar::fuzzy {
namespace {

TEST(CodingTest, FuzzyWcrClassBoundaries) {
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr();
    // Deep pass.
    EXPECT_EQ(coder.class_name(coder.classify(0.5)), "pass");
    // Paper boundary: 0.8 pass|weakness crossover.
    EXPECT_EQ(coder.class_name(coder.classify(0.75)), "pass");
    EXPECT_EQ(coder.class_name(coder.classify(0.85)), "weakness");
    // Fail above 1.
    EXPECT_EQ(coder.class_name(coder.classify(0.98)), "weakness");
    EXPECT_EQ(coder.class_name(coder.classify(1.1)), "fail");
}

TEST(CodingTest, FuzzyWcrPartitionOfUnity) {
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr();
    for (double wcr = 0.0; wcr <= 1.25; wcr += 0.005) {
        const auto degrees = coder.encode(wcr);
        double sum = 0.0;
        for (const double d : degrees) sum += d;
        ASSERT_NEAR(sum, 1.0, 1e-9) << "wcr=" << wcr;
    }
}

TEST(CodingTest, FuzzyWcrFinePartitionOfUnity) {
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr_fine();
    EXPECT_EQ(coder.output_count(), 5u);
    for (double wcr = 0.0; wcr <= 1.25; wcr += 0.005) {
        const auto degrees = coder.encode(wcr);
        double sum = 0.0;
        for (const double d : degrees) sum += d;
        ASSERT_NEAR(sum, 1.0, 1e-9) << "wcr=" << wcr;
    }
}

TEST(CodingTest, FuzzyEncodeWidth) {
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr();
    EXPECT_EQ(coder.output_count(), 3u);
    EXPECT_EQ(coder.encode(0.5).size(), 3u);
    EXPECT_EQ(coder.scheme(), CodingScheme::kFuzzy);
}

TEST(CodingTest, FuzzyDecodeMonotone) {
    // Decoding the encoding must be monotone in the crisp value — that is
    // what makes NN-predicted class vectors rankable.
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr_fine();
    double previous = -1.0;
    for (double wcr = 0.45; wcr <= 1.05; wcr += 0.02) {
        const double decoded = coder.decode(coder.encode(wcr));
        ASSERT_GE(decoded, previous - 1e-9) << "wcr=" << wcr;
        previous = decoded;
    }
}

TEST(CodingTest, FuzzyRoundTripAccuracy) {
    // Accuracy holds in the interior of the partition; the outer shoulder
    // terms deliberately bias the centroid toward the domain edges (only
    // the *ranking* matters there, covered by FuzzyDecodeMonotone).
    const TripPointCoder coder = TripPointCoder::fuzzy_wcr_fine();
    for (double wcr = 0.62; wcr <= 0.84; wcr += 0.02) {
        const double decoded = coder.decode(coder.encode(wcr));
        EXPECT_NEAR(decoded, wcr, 0.08) << "wcr=" << wcr;
    }
}

TEST(CodingTest, NumericRoundTripExactInsideRange) {
    const TripPointCoder coder = TripPointCoder::numeric(10.0, 30.0);
    EXPECT_EQ(coder.output_count(), 1u);
    for (const double v : {10.0, 15.5, 22.2, 30.0}) {
        EXPECT_NEAR(coder.decode(coder.encode(v)), v, 1e-9);
    }
}

TEST(CodingTest, NumericClampsOutOfRange) {
    const TripPointCoder coder = TripPointCoder::numeric(0.0, 1.0);
    EXPECT_DOUBLE_EQ(coder.encode(2.0)[0], 1.0);
    EXPECT_DOUBLE_EQ(coder.encode(-1.0)[0], 0.0);
    const std::vector<double> overdriven{1.7};
    EXPECT_DOUBLE_EQ(coder.decode(overdriven), 1.0);
}

TEST(CodingTest, NumericRejectsBadRange) {
    EXPECT_THROW((void)TripPointCoder::numeric(2.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)TripPointCoder::numeric(1.0, 1.0),
                 std::invalid_argument);
}

TEST(CodingTest, NumericHasNoVariable) {
    const TripPointCoder coder = TripPointCoder::numeric(0.0, 1.0);
    EXPECT_THROW((void)coder.variable(), std::logic_error);
    EXPECT_EQ(coder.classify(0.5), 0u);
    EXPECT_THROW((void)coder.class_name(0), std::out_of_range);
}

TEST(CodingTest, SchemeNames) {
    EXPECT_STREQ(to_string(CodingScheme::kFuzzy), "fuzzy");
    EXPECT_STREQ(to_string(CodingScheme::kNumeric), "numeric");
}

TEST(CodingTest, DecodeEmptyNumericSafe) {
    const TripPointCoder coder = TripPointCoder::numeric(5.0, 6.0);
    EXPECT_DOUBLE_EQ(coder.decode(std::vector<double>{}), 5.0);
}

}  // namespace
}  // namespace cichar::fuzzy
