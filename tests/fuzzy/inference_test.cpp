#include "fuzzy/inference.hpp"

#include <gtest/gtest.h>

namespace cichar::fuzzy {
namespace {

/// The paper's motivating example: "if A and B and C, then D is quite
/// close to the limit of the target device-spec". Inputs are three
/// characterization indicators; output is spec-margin risk.
FuzzyInferenceSystem margin_system() {
    LinguisticVariable toggle("toggle", 0.0, 1.0);
    toggle.add_term("low", MembershipFunction::shoulder_left(0.3, 0.6));
    toggle.add_term("high", MembershipFunction::shoulder_right(0.3, 0.6));

    LinguisticVariable conflicts("conflicts", 0.0, 1.0);
    conflicts.add_term("low", MembershipFunction::shoulder_left(0.3, 0.6));
    conflicts.add_term("high", MembershipFunction::shoulder_right(0.3, 0.6));

    LinguisticVariable supply("supply", 1.4, 2.2);
    supply.add_term("low", MembershipFunction::shoulder_left(1.6, 1.8));
    supply.add_term("nominal", MembershipFunction::shoulder_right(1.6, 1.8));

    LinguisticVariable risk("risk", 0.0, 1.0);
    risk.add_term("safe", MembershipFunction::shoulder_left(0.2, 0.5));
    risk.add_term("close", MembershipFunction::triangular(0.3, 0.55, 0.8));
    risk.add_term("critical", MembershipFunction::shoulder_right(0.6, 0.9));

    FuzzyInferenceSystem fis({toggle, conflicts, supply}, risk);
    fis.add_rule({{"toggle", "high"}, {"conflicts", "high"}, {"supply", "low"}},
                 "critical");
    fis.add_rule({{"toggle", "high"}, {"conflicts", "low"}}, "close");
    fis.add_rule({{"toggle", "low"}, {"conflicts", "low"}}, "safe");
    return fis;
}

TEST(InferenceTest, AllStressesFireCritical) {
    const FuzzyInferenceSystem fis = margin_system();
    const std::vector<double> inputs{0.9, 0.9, 1.45};
    const auto act = fis.activations(inputs);
    ASSERT_EQ(act.size(), 3u);
    EXPECT_DOUBLE_EQ(act[2], 1.0);  // critical fully active
    EXPECT_DOUBLE_EQ(act[0], 0.0);  // safe inactive
    EXPECT_GT(fis.infer(inputs), 0.7);
}

TEST(InferenceTest, BenignInputsStaySafe) {
    const FuzzyInferenceSystem fis = margin_system();
    const std::vector<double> inputs{0.1, 0.1, 2.0};
    EXPECT_LT(fis.infer(inputs), 0.3);
}

TEST(InferenceTest, MinAndSemantics) {
    const FuzzyInferenceSystem fis = margin_system();
    // toggle high = 1, conflicts high = 0.5, supply low = 1
    // -> critical activation = min = 0.5.
    const std::vector<double> inputs{0.9, 0.45, 1.45};
    const auto act = fis.activations(inputs);
    EXPECT_DOUBLE_EQ(act[2], 0.5);
}

TEST(InferenceTest, RuleWeightScalesActivation) {
    LinguisticVariable in("in", 0.0, 1.0);
    in.add_term("on", MembershipFunction::shoulder_right(0.0, 0.1));
    LinguisticVariable out("out", 0.0, 1.0);
    out.add_term("yes", MembershipFunction::shoulder_right(0.5, 1.0));
    FuzzyInferenceSystem fis({in}, out);
    fis.add_rule({{"in", "on"}}, "yes", /*weight=*/0.4);
    const std::vector<double> inputs{0.9};
    EXPECT_DOUBLE_EQ(fis.activations(inputs)[0], 0.4);
}

TEST(InferenceTest, MaxAggregationAcrossRules) {
    LinguisticVariable in("in", 0.0, 1.0);
    in.add_term("a", MembershipFunction::shoulder_left(0.4, 0.6));
    in.add_term("b", MembershipFunction::shoulder_right(0.4, 0.6));
    LinguisticVariable out("out", 0.0, 1.0);
    out.add_term("y", MembershipFunction::triangular(0.0, 0.5, 1.0));
    FuzzyInferenceSystem fis({in}, out);
    fis.add_rule({{"in", "a"}}, "y", 0.3);
    fis.add_rule({{"in", "b"}}, "y", 0.8);
    // At 0.5 both terms are 0.5: activations 0.3*... careful: weight
    // multiplies strength; strengths are 0.5 -> 0.15 and 0.4; max = 0.4.
    const std::vector<double> inputs{0.5};
    EXPECT_DOUBLE_EQ(fis.activations(inputs)[0], 0.4);
}

TEST(InferenceTest, UnknownNamesThrow) {
    FuzzyInferenceSystem fis = margin_system();
    EXPECT_THROW(fis.add_rule({{"nope", "high"}}, "safe"),
                 std::invalid_argument);
    EXPECT_THROW(fis.add_rule({{"toggle", "nope"}}, "safe"),
                 std::invalid_argument);
    EXPECT_THROW(fis.add_rule({{"toggle", "high"}}, "nope"),
                 std::invalid_argument);
}

TEST(InferenceTest, RuleCountTracks) {
    const FuzzyInferenceSystem fis = margin_system();
    EXPECT_EQ(fis.rule_count(), 3u);
    EXPECT_EQ(fis.input_count(), 3u);
    EXPECT_EQ(fis.output().name(), "risk");
}

TEST(InferenceTest, NoFiringRulesGiveMidpoint) {
    LinguisticVariable in("in", 0.0, 1.0);
    in.add_term("on", MembershipFunction::shoulder_right(0.8, 0.9));
    LinguisticVariable out("out", 0.0, 2.0);
    out.add_term("y", MembershipFunction::triangular(0.0, 0.5, 1.0));
    FuzzyInferenceSystem fis({in}, out);
    fis.add_rule({{"in", "on"}}, "y");
    const std::vector<double> inputs{0.1};
    EXPECT_DOUBLE_EQ(fis.infer(inputs), 1.0);  // domain midpoint
}

}  // namespace
}  // namespace cichar::fuzzy
