#include "fuzzy/variable.hpp"

#include <gtest/gtest.h>

namespace cichar::fuzzy {
namespace {

LinguisticVariable temperature() {
    LinguisticVariable v("temp", 0.0, 100.0);
    v.add_term("cold", MembershipFunction::shoulder_left(20.0, 40.0));
    v.add_term("warm", MembershipFunction::triangular(20.0, 50.0, 80.0));
    v.add_term("hot", MembershipFunction::shoulder_right(60.0, 80.0));
    return v;
}

TEST(VariableTest, TermLookup) {
    const LinguisticVariable v = temperature();
    EXPECT_EQ(v.term_count(), 3u);
    EXPECT_EQ(v.term_index("warm"), 1u);
    EXPECT_EQ(v.term_index("missing"), LinguisticVariable::npos);
    EXPECT_EQ(v.term(2).name, "hot");
}

TEST(VariableTest, FuzzifyDegrees) {
    const LinguisticVariable v = temperature();
    const auto degrees = v.fuzzify(30.0);
    ASSERT_EQ(degrees.size(), 3u);
    EXPECT_DOUBLE_EQ(degrees[0], 0.5);   // cold falling
    EXPECT_NEAR(degrees[1], 1.0 / 3.0, 1e-12);  // warm rising
    EXPECT_DOUBLE_EQ(degrees[2], 0.0);
}

TEST(VariableTest, BestTermAtExtremes) {
    const LinguisticVariable v = temperature();
    EXPECT_EQ(v.best_term(0.0), 0u);
    EXPECT_EQ(v.best_term(50.0), 1u);
    EXPECT_EQ(v.best_term(95.0), 2u);
}

TEST(VariableTest, DefuzzifySingleTermCentroid) {
    LinguisticVariable v("x", 0.0, 10.0);
    v.add_term("mid", MembershipFunction::triangular(4.0, 5.0, 6.0));
    const std::vector<double> act{1.0};
    EXPECT_NEAR(v.defuzzify(act, 1001), 5.0, 0.01);
}

TEST(VariableTest, DefuzzifyWeightsTerms) {
    LinguisticVariable v("x", 0.0, 10.0);
    v.add_term("low", MembershipFunction::triangular(1.0, 2.0, 3.0));
    v.add_term("high", MembershipFunction::triangular(7.0, 8.0, 9.0));
    const std::vector<double> low_only{1.0, 0.0};
    const std::vector<double> high_only{0.0, 1.0};
    const std::vector<double> both{1.0, 1.0};
    EXPECT_NEAR(v.defuzzify(low_only, 1001), 2.0, 0.05);
    EXPECT_NEAR(v.defuzzify(high_only, 1001), 8.0, 0.05);
    EXPECT_NEAR(v.defuzzify(both, 1001), 5.0, 0.05);
}

TEST(VariableTest, DefuzzifyPartialActivationPullsCentroid) {
    LinguisticVariable v("x", 0.0, 10.0);
    v.add_term("low", MembershipFunction::triangular(1.0, 2.0, 3.0));
    v.add_term("high", MembershipFunction::triangular(7.0, 8.0, 9.0));
    const std::vector<double> skewed{0.2, 1.0};
    EXPECT_GT(v.defuzzify(skewed, 1001), 6.0);
}

TEST(VariableTest, DefuzzifyZeroActivationsMidpoint) {
    LinguisticVariable v("x", 2.0, 8.0);
    v.add_term("t", MembershipFunction::triangular(3.0, 4.0, 5.0));
    const std::vector<double> none{0.0};
    EXPECT_DOUBLE_EQ(v.defuzzify(none), 5.0);
}

TEST(VariableTest, DefuzzifyClampsActivations) {
    LinguisticVariable v("x", 0.0, 10.0);
    v.add_term("t", MembershipFunction::triangular(4.0, 5.0, 6.0));
    const std::vector<double> overdriven{7.5};  // clamped to 1
    EXPECT_NEAR(v.defuzzify(overdriven, 1001), 5.0, 0.01);
}

}  // namespace
}  // namespace cichar::fuzzy
