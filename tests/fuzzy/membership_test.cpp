#include "fuzzy/membership.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cichar::fuzzy {
namespace {

TEST(MembershipTest, TriangularShape) {
    const auto mf = MembershipFunction::triangular(0.0, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(mf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(0.5), 0.5);
    EXPECT_DOUBLE_EQ(mf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(1.5), 0.5);
    EXPECT_DOUBLE_EQ(mf(2.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(3.0), 0.0);
    EXPECT_DOUBLE_EQ(mf.peak(), 1.0);
}

TEST(MembershipTest, TrapezoidShape) {
    const auto mf = MembershipFunction::trapezoid(0.0, 1.0, 2.0, 4.0);
    EXPECT_DOUBLE_EQ(mf(0.5), 0.5);
    EXPECT_DOUBLE_EQ(mf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(1.5), 1.0);
    EXPECT_DOUBLE_EQ(mf(2.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(3.0), 0.5);
    EXPECT_DOUBLE_EQ(mf(4.0), 0.0);
    EXPECT_DOUBLE_EQ(mf.peak(), 1.5);
}

TEST(MembershipTest, GaussianShape) {
    const auto mf = MembershipFunction::gaussian(5.0, 1.0);
    EXPECT_DOUBLE_EQ(mf(5.0), 1.0);
    EXPECT_NEAR(mf(6.0), std::exp(-0.5), 1e-12);
    EXPECT_NEAR(mf(4.0), mf(6.0), 1e-12);  // symmetric
    EXPECT_LT(mf(9.0), 0.001);
    EXPECT_DOUBLE_EQ(mf.peak(), 5.0);
}

TEST(MembershipTest, ShoulderLeft) {
    const auto mf = MembershipFunction::shoulder_left(1.0, 2.0);
    EXPECT_DOUBLE_EQ(mf(0.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(1.5), 0.5);
    EXPECT_DOUBLE_EQ(mf(2.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(5.0), 0.0);
}

TEST(MembershipTest, ShoulderRight) {
    const auto mf = MembershipFunction::shoulder_right(1.0, 2.0);
    EXPECT_DOUBLE_EQ(mf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(mf(1.5), 0.5);
    EXPECT_DOUBLE_EQ(mf(2.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(5.0), 1.0);
}

TEST(MembershipTest, DegenerateTriangleStep) {
    // Zero-width ramps behave as steps rather than dividing by zero.
    const auto mf = MembershipFunction::triangular(1.0, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(mf(1.0), 1.0);
    EXPECT_DOUBLE_EQ(mf(0.5), 0.0);
}

TEST(MembershipTest, RangeAlwaysUnitInterval) {
    const auto shapes = {
        MembershipFunction::triangular(0.0, 0.5, 1.0),
        MembershipFunction::trapezoid(0.0, 0.2, 0.8, 1.0),
        MembershipFunction::gaussian(0.5, 0.2),
        MembershipFunction::shoulder_left(0.3, 0.6),
        MembershipFunction::shoulder_right(0.4, 0.7),
    };
    for (const auto& mf : shapes) {
        for (double x = -1.0; x <= 2.0; x += 0.01) {
            const double v = mf(x);
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
    }
}

TEST(MembershipTest, ComplementaryRampsSumToOne) {
    // A falling shoulder and a rising shoulder over the same ramp
    // partition unity — the property the WCR coder relies on.
    const auto down = MembershipFunction::shoulder_left(0.7, 0.9);
    const auto up = MembershipFunction::shoulder_right(0.7, 0.9);
    for (double x = 0.0; x <= 1.3; x += 0.005) {
        ASSERT_NEAR(down(x) + up(x), 1.0, 1e-12) << x;
    }
}

}  // namespace
}  // namespace cichar::fuzzy
