#include "ate/measurement_log.hpp"

#include <sstream>

namespace cichar::ate {

void MeasurementLog::set_phase(std::string phase) {
    phase_ = std::move(phase);
}

void MeasurementLog::record(std::uint64_t cycles, double seconds) {
    by_phase_[phase_].add(cycles, seconds);
    total_.add(cycles, seconds);
}

PhaseCounters MeasurementLog::phase_counters(const std::string& phase) const {
    const auto it = by_phase_.find(phase);
    return it != by_phase_.end() ? it->second : PhaseCounters{};
}

std::vector<std::string> MeasurementLog::phases() const {
    std::vector<std::string> names;
    names.reserve(by_phase_.size());
    for (const auto& [name, counters] : by_phase_) names.push_back(name);
    return names;
}

void MeasurementLog::merge(const MeasurementLog& other) {
    for (const auto& [name, counters] : other.by_phase_) {
        by_phase_[name].merge(counters);
    }
    total_.merge(other.total_);
}

void MeasurementLog::reset() {
    by_phase_.clear();
    total_ = PhaseCounters{};
}

namespace {

void save_counters(std::string& out, const PhaseCounters& counters) {
    util::put_u64(out, counters.applications);
    util::put_u64(out, counters.vector_cycles);
    util::put_double(out, counters.tester_seconds);
}

PhaseCounters load_counters(util::ByteReader& in) {
    PhaseCounters counters;
    counters.applications = in.get_u64();
    counters.vector_cycles = in.get_u64();
    counters.tester_seconds = in.get_double();
    return counters;
}

}  // namespace

void MeasurementLog::save(std::string& out) const {
    util::put_string(out, phase_);
    util::put_u64(out, by_phase_.size());
    for (const auto& [name, counters] : by_phase_) {
        util::put_string(out, name);
        save_counters(out, counters);
    }
    save_counters(out, total_);
}

void MeasurementLog::load(util::ByteReader& in) {
    MeasurementLog loaded;
    loaded.phase_ = in.get_string();
    const std::uint64_t count = in.get_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string name = in.get_string();
        loaded.by_phase_[std::move(name)] = load_counters(in);
    }
    loaded.total_ = load_counters(in);
    *this = std::move(loaded);
}

std::string MeasurementLog::report() const {
    std::ostringstream out;
    out << "tester activity by phase:\n";
    for (const auto& [name, c] : by_phase_) {
        out << "  " << name << ": " << c.applications << " measurements, "
            << c.vector_cycles << " cycles, " << c.tester_seconds << " s\n";
    }
    out << "  TOTAL: " << total_.applications << " measurements, "
        << total_.vector_cycles << " cycles, " << total_.tester_seconds
        << " s\n";
    return out.str();
}

}  // namespace cichar::ate
