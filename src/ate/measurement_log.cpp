#include "ate/measurement_log.hpp"

#include <sstream>

namespace cichar::ate {

void MeasurementLog::set_phase(std::string phase) {
    phase_ = std::move(phase);
}

void MeasurementLog::record(std::uint64_t cycles, double seconds) {
    by_phase_[phase_].add(cycles, seconds);
    total_.add(cycles, seconds);
}

PhaseCounters MeasurementLog::phase_counters(const std::string& phase) const {
    const auto it = by_phase_.find(phase);
    return it != by_phase_.end() ? it->second : PhaseCounters{};
}

std::vector<std::string> MeasurementLog::phases() const {
    std::vector<std::string> names;
    names.reserve(by_phase_.size());
    for (const auto& [name, counters] : by_phase_) names.push_back(name);
    return names;
}

void MeasurementLog::merge(const MeasurementLog& other) {
    for (const auto& [name, counters] : other.by_phase_) {
        by_phase_[name].merge(counters);
    }
    total_.merge(other.total_);
}

void MeasurementLog::reset() {
    by_phase_.clear();
    total_ = PhaseCounters{};
}

std::string MeasurementLog::report() const {
    std::ostringstream out;
    out << "tester activity by phase:\n";
    for (const auto& [name, c] : by_phase_) {
        out << "  " << name << ": " << c.applications << " measurements, "
            << c.vector_cycles << " cycles, " << c.tester_seconds << " s\n";
    }
    out << "  TOTAL: " << total_.applications << " measurements, "
        << total_.vector_cycles << " cycles, " << total_.tester_seconds
        << " s\n";
    return out.str();
}

}  // namespace cichar::ate
