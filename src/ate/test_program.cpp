#include "ate/test_program.hpp"

namespace cichar::ate {

void ProductionTestProgram::add_step(ProductionStep step) {
    steps_.push_back(std::move(step));
}

ProductionOutcome ProductionTestProgram::run(Tester& tester,
                                             bool stop_on_first_fail) const {
    PhaseScope phase(tester.log(), "production");
    ProductionOutcome outcome;
    outcome.pass = true;
    for (std::size_t i = 0; i < steps_.size(); ++i) {
        const ProductionStep& step = steps_[i];
        ++outcome.steps_run;
        const bool ok = step.functional
                            ? tester.run_functional(step.test).pass()
                            : tester.apply(step.test, step.parameter,
                                           step.limit);
        if (!ok) {
            outcome.pass = false;
            if (outcome.failed_step == ProductionOutcome::npos) {
                outcome.failed_step = i;
            }
            if (stop_on_first_fail) break;
        }
    }
    return outcome;
}

}  // namespace cichar::ate
