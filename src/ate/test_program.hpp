// Production test program: the other half of the paper's opening
// distinction. "Production testing determines if the device meets its
// design specification and, if it does not, stops testing on first fail,
// bins the device and goes on to the next device." A ProductionTestProgram
// is an ordered list of (test, parameter, limit) screens compiled from
// characterization results and executed with stop-on-first-fail binning.
#pragma once

#include <string>
#include <vector>

#include "ate/parameter.hpp"
#include "ate/tester.hpp"

namespace cichar::ate {

/// One production screen. Parametric steps apply `test` with `parameter`
/// forced to `limit`; functional steps run the pattern at its own
/// conditions and require zero miscompares.
struct ProductionStep {
    std::string name;
    testgen::Test test;
    Parameter parameter;
    double limit = 0.0;
    bool functional = false;
};

/// Outcome of screening one device.
struct ProductionOutcome {
    bool pass = false;
    std::size_t steps_run = 0;
    /// Index of the first failing step; npos when the device passed.
    std::size_t failed_step = npos;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Bin statistics over a lot of devices.
struct BinningSummary {
    std::size_t devices = 0;
    std::size_t passed = 0;
    /// Fail count per step index (first-fail binning).
    std::vector<std::size_t> fails_per_step;

    [[nodiscard]] double yield() const noexcept {
        return devices == 0 ? 0.0
                            : static_cast<double>(passed) /
                                  static_cast<double>(devices);
    }
};

class ProductionTestProgram {
public:
    void add_step(ProductionStep step);

    [[nodiscard]] std::size_t step_count() const noexcept {
        return steps_.size();
    }
    [[nodiscard]] const ProductionStep& step(std::size_t i) const noexcept {
        return steps_[i];
    }

    /// Screens one device (the tester's DUT). Stops on the first fail by
    /// default, exactly like production; `stop_on_first_fail = false`
    /// runs everything (characterization-style data logging).
    [[nodiscard]] ProductionOutcome run(Tester& tester,
                                        bool stop_on_first_fail = true) const;

    /// Screens a batch of devices, first-fail binning.
    template <typename DeviceRange>
    [[nodiscard]] BinningSummary screen(DeviceRange& devices,
                                        TesterOptions tester_options = {}) const {
        BinningSummary summary;
        summary.fails_per_step.assign(steps_.size(), 0);
        for (auto& device : devices) {
            Tester tester(device, tester_options);
            const ProductionOutcome outcome = run(tester);
            ++summary.devices;
            if (outcome.pass) {
                ++summary.passed;
            } else {
                ++summary.fails_per_step[outcome.failed_step];
            }
        }
        return summary;
    }

private:
    std::vector<ProductionStep> steps_;
};

}  // namespace cichar::ate
