#include "ate/search_until_trip.hpp"

#include <cmath>

#include "util/telemetry.hpp"

namespace cichar::ate {

namespace {

void record_search_outcome(const SearchResult& result, bool window_hit) {
    if (!util::telemetry::metrics_enabled()) return;
    namespace telem = util::telemetry;
    static auto& hits = telem::Registry::instance().counter(
        "cichar_search_window_hits_total");
    static auto& fallbacks = telem::Registry::instance().counter(
        "cichar_search_full_fallbacks_total");
    static auto& probes =
        telem::Registry::instance().counter("cichar_search_probes_total");
    (window_hit ? hits : fallbacks).add();
    probes.add(result.measurements);
}

}  // namespace

double SearchUntilTrip::offset_after(std::size_t iterations) const noexcept {
    const auto it = static_cast<double>(iterations);
    switch (options_.growth) {
        case SearchFactorGrowth::kLinear:
            return options_.search_factor * it;
        case SearchFactorGrowth::kTriangular:
            return options_.search_factor * it * (it + 1.0) * 0.5;
    }
    return options_.search_factor * it;
}

SearchResult SearchUntilTrip::find(const Oracle& oracle,
                                   const Parameter& parameter) const {
    SearchResult result;
    const double res = std::max(parameter.resolution, 1e-12);
    const double toward_fail = parameter.toward_fail();

    const double start = parameter.clamp(parameter.quantize(rtp_));
    const bool start_passes = oracle(start);
    result.probe(start, start_passes);

    // Eq. (3)/(4): pass at RTP -> step toward the fail region (+SF);
    // fail at RTP -> step back toward the pass region (-SF).
    const double direction = start_passes ? toward_fail : -toward_fail;

    double previous = start;
    bool flipped = false;
    double flip_setting = 0.0;
    for (std::size_t it = 1; it <= options_.max_iterations; ++it) {
        const double setting =
            parameter.clamp(parameter.quantize(start + direction * offset_after(it)));
        if (setting == previous) break;  // clamped at the range edge
        const bool pass = oracle(setting);
        result.probe(setting, pass);
        if (pass != start_passes) {
            flipped = true;
            flip_setting = setting;
            break;
        }
        previous = setting;
    }

    if (!flipped) {
        // The trip point drifted out of the characterization range (or the
        // iteration budget is too small): report the best-known pass.
        if (start_passes) result.trip_point = previous;
        result.found = false;
        record_search_outcome(result, /*window_hit=*/false);
        return result;
    }

    double pass_bound = start_passes ? previous : flip_setting;
    double fail_bound = start_passes ? flip_setting : previous;

    if (options_.refine) {
        while (std::abs(fail_bound - pass_bound) > res) {
            const double mid =
                detail::split_between(parameter, pass_bound, fail_bound);
            if (std::isnan(mid)) break;
            const bool pass = oracle(mid);
            result.probe(mid, pass);
            if (pass) {
                pass_bound = mid;
            } else {
                fail_bound = mid;
            }
        }
    }
    result.trip_point = pass_bound;
    result.found = true;
    record_search_outcome(result, /*window_hit=*/true);
    return result;
}

ReferenceSearch make_reference_search(const Oracle& first_oracle,
                                      const Parameter& parameter,
                                      const TripPointSearch& initial,
                                      SearchUntilTrip::Options options) {
    SearchResult first = initial.find(first_oracle, parameter);
    double rtp = first.trip_point;
    if (!first.found || std::isnan(rtp)) {
        // Degenerate first test: fall back to mid-range so followers can
        // still hunt outward in both directions.
        rtp = 0.5 * (parameter.search_start + parameter.search_end);
    }
    return ReferenceSearch{std::move(first),
                           SearchUntilTrip(options, parameter.quantize(rtp))};
}

}  // namespace cichar::ate
