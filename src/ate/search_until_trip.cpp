#include "ate/search_until_trip.hpp"

#include <cmath>

#include "ate/search_task.hpp"

namespace cichar::ate {

double SearchUntilTrip::offset_after(const Options& options,
                                     std::size_t iterations) noexcept {
    const auto it = static_cast<double>(iterations);
    switch (options.growth) {
        case SearchFactorGrowth::kLinear:
            return options.search_factor * it;
        case SearchFactorGrowth::kTriangular:
            return options.search_factor * it * (it + 1.0) * 0.5;
    }
    return options.search_factor * it;
}

SearchResult SearchUntilTrip::find(const Oracle& oracle,
                                   const Parameter& parameter) const {
    // The blocking entry point is a thin loop over the same resumable
    // task the async pipeline drives, so both paths probe identically.
    SearchUntilTripTask task(options_, rtp_, parameter);
    return run_search_task(task, oracle);
}

ReferenceSearch make_reference_search(const Oracle& first_oracle,
                                      const Parameter& parameter,
                                      const TripPointSearch& initial,
                                      SearchUntilTrip::Options options) {
    SearchResult first = initial.find(first_oracle, parameter);
    double rtp = first.trip_point;
    if (!first.found || std::isnan(rtp)) {
        // Degenerate first test: fall back to mid-range so followers can
        // still hunt outward in both directions.
        rtp = 0.5 * (parameter.search_start + parameter.search_end);
    }
    return ReferenceSearch{std::move(first),
                           SearchUntilTrip(options, parameter.quantize(rtp))};
}

}  // namespace cichar::ate
