// Resumable trip-point searches. The blocking TripPointSearch::find
// loops call the oracle inline; a TripSearchTask inverts that control
// flow into an explicit state machine that *yields* the next setting to
// measure and is stepped forward by complete(pass). The async pipeline
// parks one task per in-flight trip search and feeds each completion
// back as it harvests; the blocking find() implementations for
// SuccessiveApproximation and SearchUntilTrip are themselves thin loops
// over the same tasks (run_search_task), so the synchronous and
// asynchronous paths share one stepping engine and produce identical
// probe sequences by construction.
#pragma once

#include <cstdint>
#include <memory>

#include "ate/search.hpp"
#include "ate/search_until_trip.hpp"

namespace cichar::ate {

/// One trip search, suspended between measurements. Protocol:
///   while (!task.done()) { bool p = measure(task.pending_setting());
///                          task.complete(p); }
///   SearchResult r = task.take_result();
/// Every completion is recorded into the result trace exactly as the
/// blocking search would have recorded its oracle call.
class TripSearchTask {
public:
    virtual ~TripSearchTask() = default;

    [[nodiscard]] bool done() const noexcept { return done_; }

    /// The setting the search wants measured next. Valid only while
    /// !done().
    [[nodiscard]] double pending_setting() const noexcept { return request_; }

    /// Feeds the pass/fail outcome of the pending probe and advances the
    /// machine to its next request (or to done).
    void complete(bool pass) {
        result_.probe(request_, pass);
        advance(pass);
    }

    [[nodiscard]] const SearchResult& result() const noexcept {
        return result_;
    }
    [[nodiscard]] SearchResult take_result() noexcept {
        return std::move(result_);
    }

protected:
    /// Consumes the outcome of the probe at `request_`; must either call
    /// request() with the next setting or finish().
    virtual void advance(bool pass) = 0;

    void request(double setting) noexcept { request_ = setting; }
    void finish() noexcept { done_ = true; }

    SearchResult result_;

private:
    double request_ = 0.0;
    bool done_ = false;
};

/// Drives a task to completion against a blocking oracle — the engine
/// behind the synchronous find() entry points.
[[nodiscard]] SearchResult run_search_task(TripSearchTask& task,
                                           const Oracle& oracle);

/// SuccessiveApproximation::find as a state machine (drift-sensing
/// binary search: periodic pass-bound rechecks with backoff recovery).
/// The parameter is borrowed and must outlive the task.
class SuccessiveApproximationTask final : public TripSearchTask {
public:
    SuccessiveApproximationTask(const SuccessiveApproximation::Options& options,
                                const Parameter& parameter);

private:
    void advance(bool pass) override;
    /// Top of the blocking while loop: exit checks, then either a
    /// periodic recheck or a bisection probe.
    void next_iteration();
    void issue_mid();
    void conclude();

    enum class Stage : std::uint8_t {
        kStart,          ///< probing the pass-side endpoint
        kEnd,            ///< probing the fail-side endpoint
        kRecheck,        ///< re-verifying the current pass bound
        kBackoffVerify,  ///< probing the widened pass bound after drift
        kMid,            ///< bisection probe
    };

    SuccessiveApproximation::Options options_;
    const Parameter* parameter_;
    Stage stage_ = Stage::kStart;
    double res_ = 0.0;
    double dir_ = 0.0;
    double pass_bound_ = 0.0;
    double fail_bound_ = 0.0;
};

/// SearchUntilTrip::find as a state machine (outward steps from RTP with
/// a growing search factor, then bisection refinement). The parameter is
/// borrowed and must outlive the task.
class SearchUntilTripTask final : public TripSearchTask {
public:
    SearchUntilTripTask(const SearchUntilTrip::Options& options,
                        double reference_trip_point,
                        const Parameter& parameter);

private:
    void advance(bool pass) override;
    void issue_step();
    void begin_refine();
    void issue_refine();
    void miss();
    void found();

    enum class Stage : std::uint8_t {
        kStart,   ///< probing RTP itself
        kStep,    ///< stepping outward by SF(IT)
        kRefine,  ///< bisecting the flip bracket
    };

    SearchUntilTrip::Options options_;
    const Parameter* parameter_;
    Stage stage_ = Stage::kStart;
    double res_ = 0.0;
    double start_ = 0.0;
    bool start_passes_ = false;
    double direction_ = 0.0;
    double previous_ = 0.0;
    std::size_t iteration_ = 0;
    double pass_bound_ = 0.0;
    double fail_bound_ = 0.0;
};

}  // namespace cichar::ate
