#include "ate/parameter.hpp"

#include <algorithm>
#include <cmath>

namespace cichar::ate {

double Parameter::characterization_range() const noexcept {
    return std::abs(search_end - search_start);
}

double Parameter::pass_side() const noexcept {
    return fail_high ? std::min(search_start, search_end)
                     : std::max(search_start, search_end);
}

double Parameter::fail_side() const noexcept {
    return fail_high ? std::max(search_start, search_end)
                     : std::min(search_start, search_end);
}

double Parameter::toward_fail() const noexcept {
    return fail_high ? 1.0 : -1.0;
}

double Parameter::quantize(double setting) const noexcept {
    if (resolution <= 0.0) return setting;
    return std::round(setting / resolution) * resolution;
}

double Parameter::clamp(double setting) const noexcept {
    const double lo = std::min(search_start, search_end);
    const double hi = std::max(search_start, search_end);
    return std::clamp(setting, lo, hi);
}

Parameter Parameter::data_valid_time() {
    Parameter p;
    p.name = "T_DQ";
    p.unit = "ns";
    p.kind = device::ParameterKind::kDataValidTime;
    p.spec = 20.0;
    p.spec_type = SpecType::kMinLimit;
    p.fail_high = true;   // large strobe settings exceed the valid window
    p.search_start = 15.0;
    p.search_end = 45.0;
    p.resolution = 0.1;
    return p;
}

Parameter Parameter::max_frequency() {
    Parameter p;
    p.name = "Fmax";
    p.unit = "MHz";
    p.kind = device::ParameterKind::kMaxFrequency;
    p.spec = 100.0;
    p.spec_type = SpecType::kMinLimit;
    p.fail_high = true;
    p.search_start = 60.0;
    p.search_end = 160.0;
    p.resolution = 0.5;
    return p;
}

Parameter Parameter::min_vdd() {
    Parameter p;
    p.name = "Vmin";
    p.unit = "V";
    p.kind = device::ParameterKind::kMinVdd;
    p.spec = 1.60;
    p.spec_type = SpecType::kMaxLimit;
    p.fail_high = false;  // low supply fails; search downward from 2.2 V
    p.search_start = 2.2;
    p.search_end = 1.0;
    p.resolution = 0.005;
    return p;
}

}  // namespace cichar::ate
