// Asynchronous queue-pair layer over Tester, in the style of an SPDK
// submission-ring/completion-queue: the caller submits measurement
// requests (bounded ring, one callback each), keeps doing CPU work —
// decoding chromosomes, consulting caches, scoring — and harvests
// completions when they ripen. Under emulated hardware latency
// (TesterOptions::realtime_fraction) a request is *ripe* at
//
//     max(CPU evaluation finished, submit time + LatencyModel deadline)
//
// so the modeled tester I/O elapses concurrently with everything else
// instead of being slept inline by each worker. Completions may ripen
// out of submission order; the caller owns ordering (the optimizer
// reduces in submission order regardless of harvest order, which is what
// keeps async results byte-identical to the blocking path).
//
// Threading contract: submit/poll/wait/drain are called from ONE owner
// thread. CPU evaluation runs on the borrowed ThreadPool (or inline at
// submit when no pool is given); completion callbacks always run on the
// owner thread, inside poll()/wait(), and may themselves submit
// follow-up requests — a harvested completion has already freed its ring
// slot, so a 1:1 resubmission never overflows the ring. With shared
// credits the same guarantee holds: a harvested request's credit (or
// floor slot) is retained by this ring until the harvest's callbacks have
// run, so a sibling ring can never steal the capacity a resubmission
// relies on; only the surplus is donated back afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "ate/latency_model.hpp"
#include "ate/tester.hpp"
#include "util/thread_pool.hpp"

namespace cichar::ate {

/// A lot-wide pool of donatable inflight credits shared by several
/// AsyncTester rings (one ring per site = one ordering domain). Each ring
/// keeps a guaranteed floor of `AsyncTesterOptions::guaranteed_depth`
/// requests it may always have in flight — progress never depends on
/// another site — and borrows one credit per request beyond the floor, so
/// idle sites donate their unused depth to busy ones. Purely a depth
/// throttle: it never changes which measurements run or how completions
/// are ordered, so results are byte-identical at any credit count.
///
/// Thread safety: try_acquire/release are lock-free and called from every
/// owner thread; the object must outlive all rings pointing at it.
class SharedRingCredits {
public:
    explicit SharedRingCredits(std::size_t credits)
        : capacity_(credits), available_(credits) {}

    [[nodiscard]] bool try_acquire() noexcept;
    void release(std::size_t n) noexcept;

    [[nodiscard]] std::size_t available() const noexcept {
        return available_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    std::size_t capacity_;
    std::atomic<std::size_t> available_;
};

struct AsyncTesterOptions {
    /// Submission-ring capacity: the maximum number of requests in flight.
    std::size_t queue_depth = 16;
    /// Deadline source for the emulated tester latency — build it from the
    /// *original* TesterOptions. The testers driven through the queue
    /// should be constructed with `replica_options()` (emulation stripped)
    /// so workers never sleep the latency a deadline already models.
    LatencyModel latency{};
    /// Optional shared inflight budget (borrowed, not owned; must outlive
    /// the ring). nullptr = this ring owns its full queue_depth, exactly
    /// the pre-sharing behavior.
    SharedRingCredits* shared_credits = nullptr;
    /// In-flight requests this ring may hold without borrowing a shared
    /// credit. At least 1, or a ring could be starved into a livelock by
    /// its siblings.
    std::size_t guaranteed_depth = 1;
};

/// One harvested completion, handed to the request's callback.
struct AsyncCompletion {
    std::uint64_t id = 0;
    bool pass = false;  ///< parametric requests
    device::FunctionalResult functional{};
    bool is_functional = false;
    /// Exception thrown by the measurement, if any; the callback decides
    /// whether to rethrow.
    std::exception_ptr error;
};

class AsyncTester {
public:
    using CompletionFn = std::function<void(const AsyncCompletion&)>;

    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        /// Completions harvested after a later-submitted request.
        std::uint64_t reordered = 0;
    };

    explicit AsyncTester(AsyncTesterOptions options,
                         util::ThreadPool* pool = nullptr);

    /// Waits for outstanding CPU evaluations (borrowed testers/tests must
    /// stay alive until then) and drops their callbacks un-invoked.
    ~AsyncTester();

    AsyncTester(const AsyncTester&) = delete;
    AsyncTester& operator=(const AsyncTester&) = delete;

    /// TesterOptions for replicas measured through this queue: identical
    /// timing model (ledger unchanged) with the inline latency emulation
    /// stripped — the queue's completion deadlines carry it instead.
    [[nodiscard]] static TesterOptions replica_options(TesterOptions options) {
        options.realtime_fraction = 0.0;
        return options;
    }

    /// Submits one parametric measurement (Tester::apply). Returns false
    /// when the ring is full — harvest first. `tester`, `test` and
    /// `parameter` are borrowed until the completion is harvested.
    [[nodiscard]] bool submit(std::uint64_t id, Tester& tester,
                              const testgen::Test& test,
                              const Parameter& parameter, double setting,
                              CompletionFn on_complete);

    /// Submits one functional run (Tester::run_functional).
    [[nodiscard]] bool submit_functional(std::uint64_t id, Tester& tester,
                                         const testgen::Test& test,
                                         CompletionFn on_complete);

    /// Harvests every ripe completion (callbacks run on this thread, in
    /// submission order among the ripe set). Returns the harvest count.
    std::size_t poll();

    /// Blocks until at least one completion is ripe, then harvests like
    /// poll(). Returns immediately (0) when nothing is in flight.
    std::size_t wait();

    /// Harvests until the ring is empty.
    void drain();

    /// Abandons the ring: waits for outstanding CPU evaluations (so no
    /// worker still touches a borrowed tester/test) and drops their
    /// callbacks un-invoked. For unwinding after a completion callback
    /// threw; a drained queue quiesces as a no-op.
    void quiesce();

    [[nodiscard]] std::size_t in_flight() const;
    [[nodiscard]] bool can_submit() const;
    [[nodiscard]] Stats stats() const;
    [[nodiscard]] const AsyncTesterOptions& options() const noexcept {
        return options_;
    }

private:
    using Clock = std::chrono::steady_clock;

    struct Request {
        std::uint64_t id = 0;
        std::uint64_t seq = 0;
        CompletionFn on_complete;
        Clock::time_point deadline{};
        bool eval_done = false;
        Clock::time_point eval_done_at{};
        bool is_functional = false;
        bool pass = false;
        device::FunctionalResult functional{};
        std::exception_ptr error;
        /// True when this request borrowed a shared credit (as opposed to
        /// occupying a guaranteed floor slot).
        bool credited = false;
    };

    /// Reserves a ring slot and returns the recycled-or-new request, or
    /// nullptr when the ring is full. The caller runs the evaluation
    /// (inline or on the pool) and then calls finish_eval().
    [[nodiscard]] std::shared_ptr<Request> admit(std::uint64_t id,
                                                 bool is_functional,
                                                 double modeled_seconds,
                                                 CompletionFn on_complete);
    void finish_eval(Request& req);
    [[nodiscard]] bool dispatch_to_pool() const noexcept;
    std::size_t harvest(bool block);

    AsyncTesterOptions options_;
    util::ThreadPool* pool_;
    mutable std::mutex mutex_;
    std::condition_variable ripe_cv_;
    /// Eval-completion event count, readable without `mutex_`: the owner
    /// poll-spins on it before paying a futex sleep (poll-mode first, like
    /// a real completion queue).
    std::atomic<std::uint64_t> done_events_{0};
    /// True only while the owner is parked in `ripe_cv_`; workers skip the
    /// notify syscall otherwise (guarded by `mutex_`).
    bool owner_waiting_ = false;
    std::deque<std::shared_ptr<Request>> ring_;
    /// Owner-thread-only request recycling and harvest scratch: at queue
    /// depths of a few dozen, per-probe allocation would be a measurable
    /// slice of a microsecond-scale evaluation.
    std::vector<std::shared_ptr<Request>> free_list_;
    std::vector<std::shared_ptr<Request>> ripe_scratch_;
    std::vector<unsigned char> reorder_scratch_;
    std::uint64_t next_seq_ = 0;
    std::int64_t max_harvested_seq_ = -1;
    Stats stats_;
    // --- shared-credit accounting (all guarded by mutex_; meaningful
    // only when options_.shared_credits != nullptr) -------------------
    /// In-flight requests occupying guaranteed floor slots.
    std::size_t floor_used_ = 0;
    /// Credits acquired by can_submit() and not yet consumed by admit().
    /// Mutable because can_submit() is const; owner-thread only, like the
    /// scratch vectors. Released when the ring goes idle or blocks.
    mutable std::size_t cached_credits_ = 0;
    /// Credits of harvested requests, held through the callback phase so
    /// 1:1 resubmissions can never lose their capacity to a sibling ring.
    std::size_t reserved_credits_ = 0;
};

}  // namespace cichar::ate
