// Measurement datalog: testers can record every applied measurement (test
// name, parameter, forced setting, pass/fail) for offline analysis — the
// industry's "datalogging" mode. Off by default (it costs memory);
// characterization debug flows and the shmoo CSV exports turn it on.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cichar::ate {

/// One datalogged measurement.
struct DatalogEntry {
    std::string test_name;
    std::string parameter_name;
    double setting = 0.0;
    bool pass = false;
    /// True for functional pattern executions (setting is meaningless).
    bool functional = false;
};

/// Bounded in-memory datalog. When full, the oldest entries are dropped
/// (ring behaviour) so long campaigns cannot exhaust memory.
class Datalog {
public:
    explicit Datalog(std::size_t capacity = 65536) : capacity_(capacity) {}

    [[nodiscard]] bool enabled() const noexcept { return enabled_; }
    void set_enabled(bool enabled) noexcept { enabled_ = enabled; }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    /// Total records offered, including dropped ones.
    [[nodiscard]] std::uint64_t total_recorded() const noexcept {
        return total_;
    }

    /// Records one entry (no-op while disabled).
    void record(DatalogEntry entry);

    /// Oldest-first access.
    [[nodiscard]] const DatalogEntry& entry(std::size_t i) const;

    void clear();

    /// CSV export (header + oldest-first rows).
    void write_csv(std::ostream& out) const;

private:
    std::size_t capacity_;
    bool enabled_ = false;
    std::uint64_t total_ = 0;
    std::vector<DatalogEntry> entries_;  ///< ring storage
    std::size_t head_ = 0;               ///< index of the oldest entry
};

}  // namespace cichar::ate
