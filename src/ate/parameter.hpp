// Characterization parameter descriptor: which DUT parameter is searched,
// its specified limit, the generous starting range (S1..S2 in the paper's
// Fig. 3), the tester resolution, and the orientation of the pass/fail
// regions (eq. 3 vs eq. 4).
#pragma once

#include <string>

#include "device/dut.hpp"

namespace cichar::ate {

/// Which side of the measured value the specification bounds.
enum class SpecType : std::uint8_t {
    kMinLimit,  ///< values below `spec` violate it (WCR eq. 6, min |vmin/va|)
    kMaxLimit,  ///< values above `spec` violate it (WCR eq. 5, max |va/vmax|)
};

/// Full description of one searchable parameter.
struct Parameter {
    std::string name;
    std::string unit;
    device::ParameterKind kind = device::ParameterKind::kDataValidTime;
    double spec = 0.0;           ///< specified limit (vmin or vmax)
    SpecType spec_type = SpecType::kMinLimit;
    /// True when the fail region lies above the pass region (paper's
    /// "P < F": pass at 100 MHz, fail at 110 MHz). False for parameters
    /// like minimum supply voltage where low settings fail.
    bool fail_high = true;
    double search_start = 0.0;   ///< S1: generous range start (pass side)
    double search_end = 0.0;     ///< S2: generous range end (fail side)
    double resolution = 0.0;     ///< tester edge resolution

    /// Characterization range CR = |S2 - S1|.
    [[nodiscard]] double characterization_range() const noexcept;

    /// The boundary value on the pass side / fail side of the range.
    [[nodiscard]] double pass_side() const noexcept;
    [[nodiscard]] double fail_side() const noexcept;

    /// Signed step direction from pass region toward fail region.
    [[nodiscard]] double toward_fail() const noexcept;

    /// Rounds a setting to the tester resolution grid.
    [[nodiscard]] double quantize(double setting) const noexcept;

    /// Clamps a setting into [min(S1,S2), max(S1,S2)].
    [[nodiscard]] double clamp(double setting) const noexcept;

    /// Paper experiment: data output valid time, spec 20 ns (min limit),
    /// strobe searched over a generous 15..45 ns range at 0.1 ns.
    [[nodiscard]] static Parameter data_valid_time();

    /// Max operating frequency, spec 100 MHz (min limit), 60..160 MHz.
    [[nodiscard]] static Parameter max_frequency();

    /// Min operating supply, spec 1.60 V (max limit), fail region low:
    /// searching *down* from a passing supply (exercises eq. 4).
    [[nodiscard]] static Parameter min_vdd();
};

}  // namespace cichar::ate
