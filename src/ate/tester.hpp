// The modeled industrial ATE. Owns the connection to one DUT, applies
// tests at forced parameter settings, quantizes settings to the tester's
// edge resolution, and ledgers every measurement.
#pragma once

#include <functional>

#include "ate/datalog.hpp"
#include "ate/fault_injector.hpp"
#include "ate/latency_model.hpp"
#include "ate/measurement_log.hpp"
#include "ate/parameter.hpp"
#include "device/dut.hpp"
#include "testgen/test.hpp"

namespace cichar::ate {

/// Tester timing model for the ledger.
struct TesterOptions {
    double setup_seconds_per_measurement = 5e-4;  ///< relay/level setup
    /// When > 0, overrides the test's own clock period for time accounting.
    double cycle_seconds = 0.0;
    /// When > 0, each measurement also *blocks the calling thread* for
    /// `modeled seconds * realtime_fraction`, emulating the physical
    /// tester's I/O latency. A single-site run is rate-limited by this
    /// wait; a multi-site lot overlaps the waits across sites — exactly
    /// the economics that justify multi-site ATE. Off (0) by default so
    /// simulations run at CPU speed.
    double realtime_fraction = 0.0;
};

/// Pass/fail oracle for one (test, parameter) pair. Search algorithms are
/// written against this signature, independent of the tester.
using Oracle = std::function<bool(double setting)>;

class Tester {
public:
    /// The tester borrows the DUT; the DUT must outlive the tester.
    explicit Tester(device::DeviceUnderTest& dut, TesterOptions options = {});

    /// Applies `test` with `parameter` forced to `setting` (quantized to
    /// the parameter resolution). Records the measurement.
    [[nodiscard]] bool apply(const testgen::Test& test,
                             const Parameter& parameter, double setting);

    /// Runs the pattern functionally at its own conditions (also ledgered).
    [[nodiscard]] device::FunctionalResult run_functional(
        const testgen::Test& test);

    /// Binds (test, parameter) into a counting pass/fail oracle. The
    /// returned callable borrows this tester and the test.
    [[nodiscard]] Oracle oracle(const testgen::Test& test,
                                const Parameter& parameter);

    /// Idles the DUT (cooling pause between devices/tests).
    void settle();

    [[nodiscard]] MeasurementLog& log() noexcept { return log_; }
    [[nodiscard]] const MeasurementLog& log() const noexcept { return log_; }

    /// Optional per-measurement datalog (disabled by default; enable with
    /// `datalog().set_enabled(true)`).
    [[nodiscard]] Datalog& datalog() noexcept { return datalog_; }
    [[nodiscard]] const Datalog& datalog() const noexcept { return datalog_; }

    [[nodiscard]] device::DeviceUnderTest& dut() noexcept { return *dut_; }
    [[nodiscard]] const device::DeviceUnderTest& dut() const noexcept {
        return *dut_;
    }

    /// Timing model, e.g. to construct identically-configured replica
    /// testers for parallel measurement.
    [[nodiscard]] const TesterOptions& options() const noexcept {
        return options_;
    }

    /// The latency model derived from the options: modeled seconds for the
    /// ledger plus the emulated-hardware wait. Mutable so tests can install
    /// a fake-clock sleep hook; the async path reads its own copy instead.
    [[nodiscard]] LatencyModel& latency_model() noexcept { return latency_; }
    [[nodiscard]] const LatencyModel& latency_model() const noexcept {
        return latency_;
    }

    /// Attaches a fault source consulted on every parametric measurement
    /// (nullptr detaches; the injector must outlive the tester). With no
    /// injector — or one whose profile has no enabled fault — apply() is
    /// byte-identical to the uninstrumented tester.
    void attach_fault_injector(FaultInjector* injector) noexcept {
        injector_ = injector;
    }
    [[nodiscard]] FaultInjector* fault_injector() const noexcept {
        return injector_;
    }

private:
    void record(const testgen::Test& test);

    device::DeviceUnderTest* dut_;
    TesterOptions options_;
    LatencyModel latency_;
    MeasurementLog log_;
    Datalog datalog_;
    FaultInjector* injector_ = nullptr;
};

}  // namespace cichar::ate
