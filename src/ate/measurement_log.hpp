// Measurement cost accounting. Characterization time is the paper's
// central practical constraint; every pattern application on the tester is
// ledgered here per named phase so benches can report "measurements per
// trip point" and total simulated tester time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/binio.hpp"

namespace cichar::ate {

/// Counters for one phase (e.g. "learning", "ga", "shmoo").
struct PhaseCounters {
    std::uint64_t applications = 0;   ///< pattern applications (measurements)
    std::uint64_t vector_cycles = 0;  ///< total tester vector cycles driven
    double tester_seconds = 0.0;      ///< modeled tester time

    void add(std::uint64_t cycles, double seconds) noexcept {
        ++applications;
        vector_cycles += cycles;
        tester_seconds += seconds;
    }
    void merge(const PhaseCounters& other) noexcept {
        applications += other.applications;
        vector_cycles += other.vector_cycles;
        tester_seconds += other.tester_seconds;
    }
};

/// Per-phase ledger of tester activity.
class MeasurementLog {
public:
    /// Switches the active phase; a new phase starts at zero.
    void set_phase(std::string phase);
    [[nodiscard]] const std::string& phase() const noexcept { return phase_; }

    /// Records one measurement in the active phase.
    void record(std::uint64_t cycles, double seconds);

    [[nodiscard]] const PhaseCounters& total() const noexcept { return total_; }
    [[nodiscard]] PhaseCounters phase_counters(const std::string& phase) const;
    [[nodiscard]] std::vector<std::string> phases() const;

    /// Folds another ledger into this one: counters of same-named phases
    /// combine, new phases are adopted. The phase set stays name-ordered,
    /// so merging logs in any grouping with the same multiset of phases
    /// yields an identical ledger (lot aggregation relies on this). The
    /// active phase of `other` is ignored; ours is kept.
    void merge(const MeasurementLog& other);

    void reset();

    /// Checkpoint serialization: active phase, every phase's counters,
    /// and the running total.
    void save(std::string& out) const;
    void load(util::ByteReader& in);

    /// Formatted multi-line report of all phases plus the total.
    [[nodiscard]] std::string report() const;

private:
    std::string phase_ = "default";
    std::map<std::string, PhaseCounters> by_phase_;
    PhaseCounters total_;
};

/// RAII phase scope: restores the previous phase on destruction.
class PhaseScope {
public:
    PhaseScope(MeasurementLog& log, std::string phase)
        : log_(&log), previous_(log.phase()) {
        log_->set_phase(std::move(phase));
    }
    ~PhaseScope() { log_->set_phase(previous_); }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

private:
    MeasurementLog* log_;
    std::string previous_;
};

}  // namespace cichar::ate
