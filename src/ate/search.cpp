#include "ate/search.hpp"

#include <algorithm>
#include <cmath>

#include "ate/search_task.hpp"

namespace cichar::ate {

namespace detail {

double split_between(const Parameter& p, double a, double b) {
    const double mid = p.quantize(0.5 * (a + b));
    if (mid == a || mid == b) return std::numeric_limits<double>::quiet_NaN();
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    if (mid <= lo || mid >= hi) return std::numeric_limits<double>::quiet_NaN();
    return mid;
}

}  // namespace detail

namespace {
using detail::split_between;
}  // namespace

SearchResult LinearSearch::find(const Oracle& oracle,
                                const Parameter& parameter) const {
    SearchResult result;
    const double step =
        step_ > 0.0 ? step_ : std::max(parameter.resolution, 1e-12);
    const double dir = parameter.toward_fail();
    const double fail_side = parameter.fail_side();

    double setting = parameter.pass_side();
    double last_pass = std::numeric_limits<double>::quiet_NaN();
    const auto max_steps = static_cast<std::size_t>(
        parameter.characterization_range() / step + 2.0);

    for (std::size_t i = 0; i <= max_steps; ++i) {
        const bool pass = oracle(setting);
        result.probe(setting, pass);
        if (!pass) {
            if (!std::isnan(last_pass)) {
                result.trip_point = last_pass;
                result.found = true;
            }
            return result;  // fail with no prior pass: no trip in range
        }
        last_pass = setting;
        const double next = setting + dir * step;
        // Pass region extends to the end of the range: no trip found.
        if (dir > 0.0 ? next > fail_side : next < fail_side) break;
        setting = next;
    }
    result.trip_point = last_pass;
    result.found = false;
    return result;
}

SearchResult BinarySearch::find(const Oracle& oracle,
                                const Parameter& parameter) const {
    SearchResult result;
    const double res = std::max(parameter.resolution, 1e-12);
    double pass_bound = parameter.pass_side();
    double fail_bound = parameter.fail_side();

    const bool start_passes = oracle(pass_bound);
    result.probe(pass_bound, start_passes);
    if (!start_passes) return result;  // whole range fails

    const bool end_passes = oracle(fail_bound);
    result.probe(fail_bound, end_passes);
    if (end_passes) return result;  // whole range passes: no crossover

    while (std::abs(fail_bound - pass_bound) > res) {
        const double mid = split_between(parameter, pass_bound, fail_bound);
        if (std::isnan(mid)) break;
        const bool pass = oracle(mid);
        result.probe(mid, pass);
        if (pass) {
            pass_bound = mid;
        } else {
            fail_bound = mid;
        }
    }
    result.trip_point = pass_bound;
    result.found = true;
    return result;
}

SearchResult SuccessiveApproximation::find(const Oracle& oracle,
                                           const Parameter& parameter) const {
    // Drift sensing (periodic pass-bound rechecks with backoff recovery)
    // lives in the resumable task; the blocking entry point just steps it
    // against the oracle, so sync and async probe sequences are one code
    // path.
    SuccessiveApproximationTask task(options_, parameter);
    return run_search_task(task, oracle);
}

}  // namespace cichar::ate
