// Deterministic ATE fault injection. Real testers exhibit contact faults,
// transient noise spikes, measurement timeouts, and whole-site dropouts;
// this module reproduces those failure modes from a seeded profile so a
// given (seed, profile) replays the exact fault sequence — which is what
// makes fault-tolerance testable: the retry/screening policy can be
// asserted to recover the fault-free answer byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ate/parameter.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"

namespace cichar::ate {

/// Configurable fault mix. All rates are per-measurement probabilities.
struct FaultProfile {
    /// P(transient disturbance on one reading): Gaussian wobble of the
    /// forced level, occasionally a full spike.
    double transient_rate = 0.0;
    /// Transient sigma as a fraction of the parameter's characterization
    /// range (spikes draw uniformly over +-CR/2 instead).
    double transient_span_fraction = 0.02;
    /// P(a stuck/open contact episode begins). During an episode every
    /// reading returns the same bogus outcome regardless of the setting.
    double stuck_rate = 0.0;
    /// Measurements one stuck episode lasts.
    std::uint32_t stuck_duration = 5;
    /// P(the measurement times out; the attempt costs tester time and
    /// must be retried).
    double timeout_rate = 0.0;
    /// P(the whole site dies on this measurement and stays dead).
    double site_death_rate = 0.0;
    /// Seed of the fault stream. Independent of the device/measurement
    /// seeds, so the same campaign can be replayed with faults on or off.
    std::uint64_t seed = 0x0FA17ULL;

    [[nodiscard]] bool operator==(const FaultProfile&) const = default;

    /// True when any fault can ever fire; false means the injector is
    /// a strict no-op and the measurement path is byte-identical to an
    /// uninstrumented tester.
    [[nodiscard]] bool any() const noexcept;

    /// No faults at all (the default).
    [[nodiscard]] static FaultProfile none() noexcept;
    /// Only transient noise at `rate`.
    [[nodiscard]] static FaultProfile transient_only(
        double rate, std::uint64_t seed = 0x0FA17ULL) noexcept;
    /// A realistic mixed profile: transients, occasional stuck contacts
    /// and timeouts, very rare site death.
    [[nodiscard]] static FaultProfile moderate(
        std::uint64_t seed = 0x0FA17ULL) noexcept;

    /// Parses a CLI spec. Accepted forms:
    ///   "off" | "none"                  -> none()
    ///   "transient" | "transient:0.05"  -> transient_only(rate)
    ///   "moderate"                      -> moderate()
    ///   "transient=0.05,stuck=0.01,timeout=0.02,death=0.001,
    ///    span=0.02,stuck-len=5,seed=42" (any subset, any order)
    /// Returns nullopt on a malformed spec.
    [[nodiscard]] static std::optional<FaultProfile> parse(
        std::string_view spec);

    /// Compact "transient=0.05 stuck=0.01 ..." summary (only nonzero
    /// knobs; "off" when none).
    [[nodiscard]] std::string describe() const;
};

/// What the injector actually did, for reports and the lot datalog.
struct InjectionStats {
    std::uint64_t measurements = 0;       ///< readings seen by the injector
    std::uint64_t transients = 0;         ///< perturbed readings
    std::uint64_t stuck_measurements = 0; ///< readings with forced outcome
    std::uint64_t stuck_episodes = 0;     ///< distinct contact episodes
    std::uint64_t timeouts = 0;
    std::uint64_t site_deaths = 0;

    [[nodiscard]] bool operator==(const InjectionStats&) const = default;

    /// Total faulted readings (everything except clean measurements).
    [[nodiscard]] std::uint64_t injected() const noexcept {
        return transients + stuck_measurements + timeouts + site_deaths;
    }
    void merge(const InjectionStats& other) noexcept;

    /// Checkpoint serialization (hunt and lot resume blobs).
    void save(std::string& out) const;
    [[nodiscard]] static InjectionStats load(util::ByteReader& in);
};

/// A measurement attempt that timed out; costs tester time, retryable.
class MeasurementTimeout : public std::runtime_error {
public:
    MeasurementTimeout() : std::runtime_error("ATE measurement timeout") {}
};

/// The site's contact/electronics died; no further measurement on this
/// tester can succeed.
class SiteDeadError : public std::runtime_error {
public:
    SiteDeadError() : std::runtime_error("ATE site dead") {}
};

/// Per-tester fault source. Attach to a Tester (or a replica) via
/// Tester::attach_fault_injector; each replica gets its own fork so
/// parallel schedules cannot perturb the fault sequence.
class FaultInjector {
public:
    explicit FaultInjector(FaultProfile profile);

    /// Outcome of consulting the injector for one reading.
    struct Decision {
        bool forced = false;          ///< outcome overridden (stuck contact)
        bool forced_outcome = false;  ///< the override, when forced
        double setting_offset = 0.0;  ///< transient wobble on the level
    };

    /// Draws the fate of one parametric reading. Throws
    /// MeasurementTimeout / SiteDeadError for those faults; a dead site
    /// throws SiteDeadError on every subsequent call.
    [[nodiscard]] Decision on_measurement(const Parameter& parameter);

    /// Child injector with an independent deterministic fault stream
    /// (fresh contact state, its own stats). Advances this injector's
    /// stream by one draw — fork in submission order.
    [[nodiscard]] FaultInjector fork(std::uint64_t salt);

    [[nodiscard]] const FaultProfile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] const InjectionStats& stats() const noexcept {
        return stats_;
    }
    [[nodiscard]] bool dead() const noexcept { return dead_; }

    /// Folds a child's stats back into this injector's ledger.
    void absorb_stats(const InjectionStats& stats) noexcept;

    /// Serializes the dynamic state (fault stream position, contact
    /// episode, death flag, stats); the profile itself is configuration
    /// and travels with the checkpoint fingerprint instead.
    void save(std::string& out) const;
    void load(util::ByteReader& in);

private:
    FaultProfile profile_;
    util::Rng rng_;
    std::uint32_t stuck_remaining_ = 0;
    bool stuck_outcome_ = false;
    bool dead_ = false;
    InjectionStats stats_;
};

}  // namespace cichar::ate
