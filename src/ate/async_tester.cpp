#include "ate/async_tester.hpp"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "util/telemetry.hpp"

namespace cichar::ate {

namespace {

void telem_inflight(std::size_t in_flight) {
    if (!util::telemetry::metrics_enabled()) return;
    static auto& gauge = util::telemetry::Registry::instance().gauge(
        "cichar_ate_async_inflight");
    gauge.set(static_cast<double>(in_flight));
}

void telem_harvest(double wait_ns, bool reordered) {
    if (!util::telemetry::metrics_enabled()) return;
    namespace telem = util::telemetry;
    // Time a ripe completion sat in the queue before the owner harvested
    // it — the submission-loop's reaction latency, in nanoseconds.
    static constexpr double kWaitBounds[] = {1e3, 1e4, 1e5, 1e6,
                                             1e7, 1e8, 1e9};
    static auto& wait = telem::Registry::instance().histogram(
        "cichar_ate_async_queue_wait_ns", kWaitBounds);
    static auto& reorders = telem::Registry::instance().counter(
        "cichar_ate_async_completions_reordered_total");
    wait.observe(std::max(0.0, wait_ns));
    if (reordered) reorders.add();
}

/// One bounded poll-spin: ~tens of microseconds. Completions at zero
/// emulated latency arrive microseconds apart, so spinning through the
/// gap is far cheaper than a futex sleep/wake round trip per probe —
/// except on a single-CPU machine, where the spin would steal the core
/// the worker needs to finish the eval; there we park immediately.
int spin_iterations() {
    static const int iterations =
        std::thread::hardware_concurrency() > 1 ? 20000 : 0;
    return iterations;
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

void telem_shared_credits(const SharedRingCredits& credits) {
    if (!util::telemetry::metrics_enabled()) return;
    static auto& in_use = util::telemetry::Registry::instance().gauge(
        "cichar_ate_shared_ring_credits_in_use");
    in_use.set(static_cast<double>(credits.capacity() - credits.available()));
}

}  // namespace

bool SharedRingCredits::try_acquire() noexcept {
    std::size_t current = available_.load(std::memory_order_relaxed);
    while (current > 0) {
        if (available_.compare_exchange_weak(current, current - 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
            telem_shared_credits(*this);
            return true;
        }
    }
    return false;
}

void SharedRingCredits::release(std::size_t n) noexcept {
    if (n == 0) return;
    available_.fetch_add(n, std::memory_order_release);
    telem_shared_credits(*this);
}

AsyncTester::AsyncTester(AsyncTesterOptions options, util::ThreadPool* pool)
    : options_(options), pool_(pool) {
    if (options_.queue_depth == 0) options_.queue_depth = 1;
    if (options_.guaranteed_depth == 0) options_.guaranteed_depth = 1;
}

AsyncTester::~AsyncTester() { quiesce(); }

void AsyncTester::quiesce() {
    std::size_t give_back = 0;
    {
        std::unique_lock lock(mutex_);
        owner_waiting_ = true;
        ripe_cv_.wait(lock, [&] {
            return std::all_of(ring_.begin(), ring_.end(),
                               [](const auto& r) { return r->eval_done; });
        });
        owner_waiting_ = false;
        for (const auto& r : ring_) {
            if (r->credited) ++give_back;
        }
        give_back += cached_credits_ + reserved_credits_;
        cached_credits_ = 0;
        reserved_credits_ = 0;
        floor_used_ = 0;
        ring_.clear();
    }
    if (options_.shared_credits != nullptr) {
        options_.shared_credits->release(give_back);
    }
}

std::shared_ptr<AsyncTester::Request> AsyncTester::admit(
    std::uint64_t id, bool is_functional, double modeled_seconds,
    CompletionFn on_complete) {
    std::shared_ptr<Request> req;
    if (!free_list_.empty()) {
        req = std::move(free_list_.back());
        free_list_.pop_back();
    } else {
        req = std::make_shared<Request>();
    }
    req->id = id;
    req->is_functional = is_functional;
    req->on_complete = std::move(on_complete);
    req->eval_done = false;
    req->pass = false;
    req->functional = {};
    req->error = nullptr;
    const double inflight = options_.latency.inflight_seconds(modeled_seconds);
    // Zero emulated latency: ripe as soon as evaluated, no clock read.
    req->deadline = inflight > 0.0
                        ? Clock::now() +
                              std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(inflight))
                        : Clock::time_point::min();
    {
        std::lock_guard lock(mutex_);
        if (ring_.size() >= options_.queue_depth) {
            free_list_.push_back(std::move(req));
            return nullptr;
        }
        // Shared-budget admission: the floor is always ours; beyond it,
        // consume a credit already in hand (cached by can_submit, or
        // reserved by the harvest that is re-running this request's
        // chain) before competing for a fresh one.
        req->credited = false;
        if (options_.shared_credits != nullptr &&
            floor_used_ >= options_.guaranteed_depth) {
            if (cached_credits_ > 0) {
                --cached_credits_;
            } else if (reserved_credits_ > 0) {
                --reserved_credits_;
            } else if (!options_.shared_credits->try_acquire()) {
                free_list_.push_back(std::move(req));
                return nullptr;
            }
            req->credited = true;
        } else if (options_.shared_credits != nullptr) {
            ++floor_used_;
        }
        req->seq = next_seq_++;
        ring_.push_back(req);
        ++stats_.submitted;
        telem_inflight(ring_.size());
    }
    return req;
}

void AsyncTester::finish_eval(Request& req) {
    bool wake;
    {
        std::lock_guard lock(mutex_);
        req.eval_done = true;
        if (util::telemetry::metrics_enabled()) {
            req.eval_done_at = Clock::now();
        }
        wake = owner_waiting_;
    }
    done_events_.fetch_add(1, std::memory_order_release);
    if (wake) ripe_cv_.notify_all();
}

bool AsyncTester::dispatch_to_pool() const noexcept {
    // Per-probe pool dispatch only pays off when evaluations can truly
    // run concurrently: with one pool worker — or one physical CPU —
    // it adds two context switches per probe and overlaps nothing, so
    // run the eval inline. The emulated tester latency is carried by
    // completion deadlines either way (inline evals never sleep it),
    // and the completion still flows through harvest, so ordering
    // semantics are identical.
    static const bool multi_cpu = std::thread::hardware_concurrency() > 1;
    return pool_ != nullptr && pool_->thread_count() > 1 && multi_cpu;
}

bool AsyncTester::submit(std::uint64_t id, Tester& tester,
                         const testgen::Test& test, const Parameter& parameter,
                         double setting, CompletionFn on_complete) {
    const double modeled = options_.latency.modeled_seconds(
        static_cast<std::uint64_t>(test.pattern.size()),
        test.conditions.clock_period_ns);
    const std::shared_ptr<Request> req =
        admit(id, /*is_functional=*/false, modeled, std::move(on_complete));
    if (!req) return false;
    if (dispatch_to_pool()) {
        pool_->submit([this, req, tester = &tester, test = &test,
                       parameter = &parameter, setting] {
            try {
                req->pass = tester->apply(*test, *parameter, setting);
            } catch (...) {
                req->error = std::current_exception();
            }
            finish_eval(*req);
        });
    } else {
        try {
            req->pass = tester.apply(test, parameter, setting);
        } catch (...) {
            req->error = std::current_exception();
        }
        finish_eval(*req);
    }
    return true;
}

bool AsyncTester::submit_functional(std::uint64_t id, Tester& tester,
                                    const testgen::Test& test,
                                    CompletionFn on_complete) {
    const double modeled = options_.latency.modeled_seconds(
        static_cast<std::uint64_t>(test.pattern.size()),
        test.conditions.clock_period_ns);
    const std::shared_ptr<Request> req =
        admit(id, /*is_functional=*/true, modeled, std::move(on_complete));
    if (!req) return false;
    if (dispatch_to_pool()) {
        pool_->submit([this, req, tester = &tester, test = &test] {
            try {
                req->functional = tester->run_functional(*test);
            } catch (...) {
                req->error = std::current_exception();
            }
            finish_eval(*req);
        });
    } else {
        try {
            req->functional = tester.run_functional(test);
        } catch (...) {
            req->error = std::current_exception();
        }
        finish_eval(*req);
    }
    return true;
}

std::size_t AsyncTester::harvest(bool block) {
    // Owner-thread scratch, reused across harvests. A completion callback
    // may submit, but never poll/wait (harvest is not reentrant).
    std::vector<std::shared_ptr<Request>>& ripe = ripe_scratch_;
    std::vector<unsigned char>& reordered = reorder_scratch_;
    ripe.clear();
    reordered.clear();
    std::size_t give_back = 0;
    {
        std::unique_lock lock(mutex_);
        // About to (possibly) park: stop hoarding credits can_submit
        // speculatively acquired — a sibling ring can use them now.
        if (block) {
            give_back += cached_credits_;
            cached_credits_ = 0;
        }
        for (;;) {
            const auto now = Clock::now();
            // The ring is scanned front-to-back, so among the ripe set
            // completions are delivered in submission order.
            for (auto it = ring_.begin(); it != ring_.end();) {
                if ((*it)->eval_done && (*it)->deadline <= now) {
                    // A credited request's capacity moves to the reserved
                    // pot (not back to the shared pool) until this
                    // harvest's callbacks are done — 1:1 resubmissions
                    // must never race siblings for it.
                    if ((*it)->credited) {
                        (*it)->credited = false;
                        ++reserved_credits_;
                    } else if (options_.shared_credits != nullptr) {
                        --floor_used_;
                    }
                    ripe.push_back(std::move(*it));
                    it = ring_.erase(it);
                } else {
                    ++it;
                }
            }
            if (!ripe.empty() || !block || ring_.empty()) break;
            bool any_done = false;
            auto earliest = Clock::time_point::max();
            for (const auto& r : ring_) {
                if (r->eval_done) {
                    any_done = true;
                    earliest = std::min(earliest, r->deadline);
                }
            }
            // An evaluated request ripens at its deadline; an unevaluated
            // one will announce itself when its worker finishes.
            if (any_done) {
                owner_waiting_ = true;
                ripe_cv_.wait_until(lock, earliest);
                owner_waiting_ = false;
            } else {
                // Poll-mode first: spin through the microsecond gap to the
                // next completion; park in the condition variable only when
                // the spin budget runs out (workers skip the notify unless
                // we are actually parked).
                const std::uint64_t seen =
                    done_events_.load(std::memory_order_acquire);
                lock.unlock();
                bool progressed = false;
                for (int i = 0, n = spin_iterations(); i < n; ++i) {
                    if (done_events_.load(std::memory_order_acquire) != seen) {
                        progressed = true;
                        break;
                    }
                    cpu_relax();
                }
                lock.lock();
                if (!progressed) {
                    owner_waiting_ = true;
                    ripe_cv_.wait(lock, [&] {
                        return done_events_.load(std::memory_order_acquire) !=
                               seen;
                    });
                    owner_waiting_ = false;
                }
            }
        }
        const auto harvested_at = Clock::now();
        stats_.completed += ripe.size();
        reordered.reserve(ripe.size());
        for (const auto& r : ripe) {
            const bool out_of_order =
                static_cast<std::int64_t>(r->seq) < max_harvested_seq_;
            if (out_of_order) {
                ++stats_.reordered;
            } else {
                max_harvested_seq_ = static_cast<std::int64_t>(r->seq);
            }
            reordered.push_back(out_of_order ? 1 : 0);
            const auto ready_at = std::max(r->eval_done_at, r->deadline);
            telem_harvest(static_cast<double>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  harvested_at - ready_at)
                                  .count()),
                          out_of_order);
        }
        telem_inflight(ring_.size());
    }
    const std::size_t count = ripe.size();
    // Callbacks run unlocked so they can resubmit. A throwing callback
    // abandons the rest of this harvest batch (the run is unwinding).
    for (std::size_t i = 0; i < count; ++i) {
        Request& r = *ripe[i];
        AsyncCompletion completion;
        completion.id = r.id;
        completion.pass = r.pass;
        completion.functional = r.functional;
        completion.is_functional = r.is_functional;
        completion.error = r.error;
        r.on_complete(completion);
    }
    // Recycle requests nobody else still references (a pool worker may
    // hold its copy a beat longer; those are simply freed by the last
    // release instead).
    for (auto& r : ripe) {
        if (r && r.use_count() == 1) {
            r->on_complete = nullptr;
            r->error = nullptr;
            free_list_.push_back(std::move(r));
        }
    }
    ripe.clear();
    if (options_.shared_credits != nullptr) {
        // Callbacks have run (and consumed whatever reserved capacity
        // their resubmissions needed); donate the surplus back, plus any
        // speculative credits if the ring has gone idle.
        std::lock_guard lock(mutex_);
        give_back += reserved_credits_;
        reserved_credits_ = 0;
        if (ring_.empty()) {
            give_back += cached_credits_;
            cached_credits_ = 0;
        }
    }
    if (give_back > 0 && options_.shared_credits != nullptr) {
        options_.shared_credits->release(give_back);
    }
    return count;
}

std::size_t AsyncTester::poll() { return harvest(/*block=*/false); }

std::size_t AsyncTester::wait() { return harvest(/*block=*/true); }

void AsyncTester::drain() {
    while (in_flight() > 0) (void)wait();
}

std::size_t AsyncTester::in_flight() const {
    std::lock_guard lock(mutex_);
    return ring_.size();
}

bool AsyncTester::can_submit() const {
    std::lock_guard lock(mutex_);
    if (ring_.size() >= options_.queue_depth) return false;
    if (options_.shared_credits == nullptr) return true;
    if (floor_used_ < options_.guaranteed_depth) return true;
    if (cached_credits_ + reserved_credits_ > 0) return true;
    // Speculatively acquire and cache one credit so the can_submit ->
    // submit window cannot be raced by a sibling ring (the optimizer
    // treats a failed submit after a positive can_submit as a logic
    // error). The cache is returned when the ring blocks or goes idle.
    if (options_.shared_credits->try_acquire()) {
        ++cached_credits_;
        return true;
    }
    return false;
}

AsyncTester::Stats AsyncTester::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

}  // namespace cichar::ate
