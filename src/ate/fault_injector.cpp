#include "ate/fault_injector.hpp"

#include <charconv>
#include <sstream>

#include "util/telemetry.hpp"

namespace cichar::ate {
namespace {

// Mirrors per-instance InjectionStats increments (still authoritative
// for checkpoints) into the process-wide registry.
void telem_fault(const char* name) {
    if (!util::telemetry::metrics_enabled()) return;
    util::telemetry::Registry::instance().counter(name).add();
}

bool parse_double(std::string_view text, double& value) {
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

bool parse_u64(std::string_view text, std::uint64_t& value) {
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    return ec == std::errc{} && ptr == end;
}

bool valid_rate(double rate) { return rate >= 0.0 && rate <= 1.0; }

}  // namespace

bool FaultProfile::any() const noexcept {
    return transient_rate > 0.0 || stuck_rate > 0.0 || timeout_rate > 0.0 ||
           site_death_rate > 0.0;
}

FaultProfile FaultProfile::none() noexcept { return FaultProfile{}; }

FaultProfile FaultProfile::transient_only(double rate,
                                          std::uint64_t seed) noexcept {
    FaultProfile profile;
    profile.transient_rate = rate;
    profile.seed = seed;
    return profile;
}

FaultProfile FaultProfile::moderate(std::uint64_t seed) noexcept {
    FaultProfile profile;
    profile.transient_rate = 0.03;
    profile.stuck_rate = 0.002;
    profile.timeout_rate = 0.01;
    profile.site_death_rate = 0.0;
    profile.seed = seed;
    return profile;
}

std::optional<FaultProfile> FaultProfile::parse(std::string_view spec) {
    if (spec.empty() || spec == "off" || spec == "none") {
        return FaultProfile::none();
    }
    if (spec == "moderate") return FaultProfile::moderate();
    if (spec == "transient") return FaultProfile::transient_only(0.05);
    if (spec.starts_with("transient:")) {
        double rate = 0.0;
        if (!parse_double(spec.substr(10), rate) || !valid_rate(rate)) {
            return std::nullopt;
        }
        return FaultProfile::transient_only(rate);
    }

    FaultProfile profile;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view item = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) return std::nullopt;
        const std::string_view key = item.substr(0, eq);
        const std::string_view value = item.substr(eq + 1);
        double rate = 0.0;
        if (key == "transient") {
            if (!parse_double(value, rate) || !valid_rate(rate)) {
                return std::nullopt;
            }
            profile.transient_rate = rate;
        } else if (key == "stuck") {
            if (!parse_double(value, rate) || !valid_rate(rate)) {
                return std::nullopt;
            }
            profile.stuck_rate = rate;
        } else if (key == "timeout") {
            if (!parse_double(value, rate) || !valid_rate(rate)) {
                return std::nullopt;
            }
            profile.timeout_rate = rate;
        } else if (key == "death") {
            if (!parse_double(value, rate) || !valid_rate(rate)) {
                return std::nullopt;
            }
            profile.site_death_rate = rate;
        } else if (key == "span") {
            if (!parse_double(value, rate) || rate < 0.0) return std::nullopt;
            profile.transient_span_fraction = rate;
        } else if (key == "stuck-len") {
            std::uint64_t length = 0;
            if (!parse_u64(value, length) || length == 0 ||
                length > 1'000'000) {
                return std::nullopt;
            }
            profile.stuck_duration = static_cast<std::uint32_t>(length);
        } else if (key == "seed") {
            std::uint64_t seed = 0;
            if (!parse_u64(value, seed)) return std::nullopt;
            profile.seed = seed;
        } else {
            return std::nullopt;
        }
    }
    return profile;
}

std::string FaultProfile::describe() const {
    if (!any()) return "off";
    std::ostringstream out;
    const char* sep = "";
    if (transient_rate > 0.0) {
        out << sep << "transient=" << transient_rate;
        sep = " ";
    }
    if (stuck_rate > 0.0) {
        out << sep << "stuck=" << stuck_rate;
        sep = " ";
    }
    if (timeout_rate > 0.0) {
        out << sep << "timeout=" << timeout_rate;
        sep = " ";
    }
    if (site_death_rate > 0.0) {
        out << sep << "death=" << site_death_rate;
        sep = " ";
    }
    out << sep << "seed=" << seed;
    return out.str();
}

void InjectionStats::merge(const InjectionStats& other) noexcept {
    measurements += other.measurements;
    transients += other.transients;
    stuck_measurements += other.stuck_measurements;
    stuck_episodes += other.stuck_episodes;
    timeouts += other.timeouts;
    site_deaths += other.site_deaths;
}

void InjectionStats::save(std::string& out) const {
    util::put_u64(out, measurements);
    util::put_u64(out, transients);
    util::put_u64(out, stuck_measurements);
    util::put_u64(out, stuck_episodes);
    util::put_u64(out, timeouts);
    util::put_u64(out, site_deaths);
}

InjectionStats InjectionStats::load(util::ByteReader& in) {
    InjectionStats stats;
    stats.measurements = in.get_u64();
    stats.transients = in.get_u64();
    stats.stuck_measurements = in.get_u64();
    stats.stuck_episodes = in.get_u64();
    stats.timeouts = in.get_u64();
    stats.site_deaths = in.get_u64();
    return stats;
}

FaultInjector::FaultInjector(FaultProfile profile)
    : profile_(profile), rng_(profile.seed) {}

FaultInjector::Decision FaultInjector::on_measurement(
    const Parameter& parameter) {
    if (dead_) throw SiteDeadError{};
    ++stats_.measurements;
    telem_fault("cichar_fault_injector_measurements_total");
    Decision decision;

    // Fixed draw discipline: death, timeout, contact, transient. The
    // decision sequence depends only on the profile and the stream
    // position, never on the setting being measured.
    if (profile_.site_death_rate > 0.0 &&
        rng_.bernoulli(profile_.site_death_rate)) {
        dead_ = true;
        ++stats_.site_deaths;
        telem_fault("cichar_fault_site_deaths_total");
        throw SiteDeadError{};
    }
    if (profile_.timeout_rate > 0.0 && rng_.bernoulli(profile_.timeout_rate)) {
        ++stats_.timeouts;
        telem_fault("cichar_fault_timeouts_total");
        throw MeasurementTimeout{};
    }
    if (stuck_remaining_ > 0) {
        --stuck_remaining_;
        ++stats_.stuck_measurements;
        telem_fault("cichar_fault_stuck_measurements_total");
        decision.forced = true;
        decision.forced_outcome = stuck_outcome_;
        return decision;
    }
    if (profile_.stuck_rate > 0.0 && rng_.bernoulli(profile_.stuck_rate)) {
        // Open contact (forced fail) or short (forced pass), for the whole
        // episode.
        stuck_outcome_ = rng_.bernoulli(0.5);
        stuck_remaining_ = profile_.stuck_duration > 0
                               ? profile_.stuck_duration - 1
                               : 0;
        ++stats_.stuck_episodes;
        ++stats_.stuck_measurements;
        telem_fault("cichar_fault_stuck_episodes_total");
        telem_fault("cichar_fault_stuck_measurements_total");
        decision.forced = true;
        decision.forced_outcome = stuck_outcome_;
        return decision;
    }
    if (profile_.transient_rate > 0.0 &&
        rng_.bernoulli(profile_.transient_rate)) {
        ++stats_.transients;
        telem_fault("cichar_fault_transients_total");
        const double span = parameter.characterization_range() *
                            profile_.transient_span_fraction;
        if (rng_.bernoulli(0.2)) {
            // Full spike: the forced level lands anywhere in +-CR/2.
            decision.setting_offset =
                rng_.uniform(-0.5, 0.5) * parameter.characterization_range();
        } else {
            decision.setting_offset = rng_.normal(0.0, span);
        }
    }
    return decision;
}

FaultInjector FaultInjector::fork(std::uint64_t salt) {
    FaultProfile child_profile = profile_;
    child_profile.seed = rng_.fork(salt)();
    return FaultInjector(child_profile);
}

void FaultInjector::absorb_stats(const InjectionStats& stats) noexcept {
    stats_.merge(stats);
}

void FaultInjector::save(std::string& out) const {
    util::put_rng(out, rng_);
    util::put_u32(out, stuck_remaining_);
    util::put_bool(out, stuck_outcome_);
    util::put_bool(out, dead_);
    util::put_u64(out, stats_.measurements);
    util::put_u64(out, stats_.transients);
    util::put_u64(out, stats_.stuck_measurements);
    util::put_u64(out, stats_.stuck_episodes);
    util::put_u64(out, stats_.timeouts);
    util::put_u64(out, stats_.site_deaths);
}

void FaultInjector::load(util::ByteReader& in) {
    rng_ = in.get_rng();
    stuck_remaining_ = in.get_u32();
    stuck_outcome_ = in.get_bool();
    dead_ = in.get_bool();
    stats_.measurements = in.get_u64();
    stats_.transients = in.get_u64();
    stats_.stuck_measurements = in.get_u64();
    stats_.stuck_episodes = in.get_u64();
    stats_.timeouts = in.get_u64();
    stats_.site_deaths = in.get_u64();
}

}  // namespace cichar::ate
