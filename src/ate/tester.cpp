#include "ate/tester.hpp"

#include "util/telemetry.hpp"

namespace cichar::ate {

Tester::Tester(device::DeviceUnderTest& dut, TesterOptions options)
    : dut_(&dut),
      options_(options),
      latency_(options.setup_seconds_per_measurement, options.cycle_seconds,
               options.realtime_fraction) {}

void Tester::record(const testgen::Test& test) {
    const auto cycles = static_cast<std::uint64_t>(test.pattern.size());
    const double seconds =
        latency_.modeled_seconds(cycles, test.conditions.clock_period_ns);
    log_.record(cycles, seconds);
    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& measurements = telem::Registry::instance().counter(
            "cichar_ate_measurements_total");
        static auto& vector_cycles = telem::Registry::instance().counter(
            "cichar_ate_vector_cycles_total");
        static auto& tester_seconds = telem::Registry::instance().gauge(
            "cichar_ate_tester_seconds_total");
        measurements.add();
        vector_cycles.add(cycles);
        tester_seconds.add(seconds);
    }
    // Emulated hardware latency; only the wall clock is affected, the
    // ledger above stays identical with the emulation on or off.
    if (latency_.emulated()) latency_.block(latency_.inflight_seconds(seconds));
}

bool Tester::apply(const testgen::Test& test, const Parameter& parameter,
                   double setting) {
    record(test);
    const double quantized = parameter.quantize(setting);
    bool pass = false;
    if (injector_ != nullptr && injector_->profile().any()) {
        // The attempt above is already ledgered, so a thrown timeout /
        // site death still costs tester time — like real hardware.
        const FaultInjector::Decision fate =
            injector_->on_measurement(parameter);
        if (fate.forced) {
            pass = fate.forced_outcome;
        } else {
            pass = dut_->passes(
                test, parameter.kind,
                parameter.quantize(quantized + fate.setting_offset));
        }
    } else {
        pass = dut_->passes(test, parameter.kind, quantized);
    }
    if (datalog_.enabled()) {
        datalog_.record(DatalogEntry{test.name, parameter.name, quantized,
                                     pass, false});
    }
    return pass;
}

device::FunctionalResult Tester::run_functional(const testgen::Test& test) {
    record(test);
    const device::FunctionalResult result = dut_->run_functional(test);
    if (datalog_.enabled()) {
        datalog_.record(
            DatalogEntry{test.name, "functional", 0.0, result.pass(), true});
    }
    return result;
}

Oracle Tester::oracle(const testgen::Test& test, const Parameter& parameter) {
    return [this, &test, parameter](double setting) {
        return apply(test, parameter, setting);
    };
}

void Tester::settle() { dut_->settle(); }

}  // namespace cichar::ate
