#include "ate/tester.hpp"

#include <chrono>
#include <thread>

#include "util/telemetry.hpp"

namespace cichar::ate {

Tester::Tester(device::DeviceUnderTest& dut, TesterOptions options)
    : dut_(&dut), options_(options) {}

void Tester::record(const testgen::Test& test) {
    const double cycle_s = options_.cycle_seconds > 0.0
                               ? options_.cycle_seconds
                               : test.conditions.clock_period_ns * 1e-9;
    const auto cycles = static_cast<std::uint64_t>(test.pattern.size());
    const double seconds = options_.setup_seconds_per_measurement +
                           static_cast<double>(cycles) * cycle_s;
    log_.record(cycles, seconds);
    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& measurements = telem::Registry::instance().counter(
            "cichar_ate_measurements_total");
        static auto& vector_cycles = telem::Registry::instance().counter(
            "cichar_ate_vector_cycles_total");
        static auto& tester_seconds = telem::Registry::instance().gauge(
            "cichar_ate_tester_seconds_total");
        measurements.add();
        vector_cycles.add(cycles);
        tester_seconds.add(seconds);
    }
    if (options_.realtime_fraction > 0.0) {
        // Emulated hardware latency; only the wall clock is affected, the
        // ledger above stays identical with the emulation on or off.
        std::this_thread::sleep_for(std::chrono::duration<double>(
            seconds * options_.realtime_fraction));
    }
}

bool Tester::apply(const testgen::Test& test, const Parameter& parameter,
                   double setting) {
    record(test);
    const double quantized = parameter.quantize(setting);
    bool pass = false;
    if (injector_ != nullptr && injector_->profile().any()) {
        // The attempt above is already ledgered, so a thrown timeout /
        // site death still costs tester time — like real hardware.
        const FaultInjector::Decision fate =
            injector_->on_measurement(parameter);
        if (fate.forced) {
            pass = fate.forced_outcome;
        } else {
            pass = dut_->passes(
                test, parameter.kind,
                parameter.quantize(quantized + fate.setting_offset));
        }
    } else {
        pass = dut_->passes(test, parameter.kind, quantized);
    }
    if (datalog_.enabled()) {
        datalog_.record(DatalogEntry{test.name, parameter.name, quantized,
                                     pass, false});
    }
    return pass;
}

device::FunctionalResult Tester::run_functional(const testgen::Test& test) {
    record(test);
    const device::FunctionalResult result = dut_->run_functional(test);
    if (datalog_.enabled()) {
        datalog_.record(
            DatalogEntry{test.name, "functional", 0.0, result.pass(), true});
    }
    return result;
}

Oracle Tester::oracle(const testgen::Test& test, const Parameter& parameter) {
    return [this, &test, parameter](double setting) {
        return apply(test, parameter, setting);
    };
}

void Tester::settle() { dut_->settle(); }

}  // namespace cichar::ate
