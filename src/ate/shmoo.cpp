#include "ate/shmoo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/statistics.hpp"

namespace cichar::ate {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

ShmooGrid::ShmooGrid(std::vector<double> x_values,
                     std::vector<double> vdd_values, std::string y_label)
    : x_(std::move(x_values)),
      vdd_(std::move(vdd_values)),
      y_label_(std::move(y_label)),
      counts_(x_.size() * vdd_.size(), 0) {}

std::uint32_t ShmooGrid::pass_count(std::size_t ix,
                                    std::size_t iy) const noexcept {
    return counts_[iy * x_.size() + ix];
}

void ShmooGrid::add_pass(std::size_t ix, std::size_t iy) noexcept {
    ++counts_[iy * x_.size() + ix];
}

char ShmooGrid::symbol(std::size_t ix, std::size_t iy) const noexcept {
    const std::uint32_t count = pass_count(ix, iy);
    if (tests_ == 0 || count == 0) return '.';
    if (count == tests_) return '*';
    const auto bucket = 1 + (9 * count) / (tests_ + 1);
    return static_cast<char>('0' + std::min<std::uint32_t>(
                                        9, static_cast<std::uint32_t>(bucket)));
}

std::string ShmooGrid::render(const Parameter& parameter) const {
    std::ostringstream out;
    out << "Shmoo: " << y_label_ << " vs " << parameter.name << " setting ("
        << parameter.unit << ", X), " << tests_ << " tests overlapped\n";
    out << "  '*' all tests pass, '.' all fail, 1-9 partial pass (band)\n";
    // Vdd descending top to bottom, like a bench shmoo.
    for (std::size_t r = 0; r < vdd_.size(); ++r) {
        const std::size_t iy = vdd_.size() - 1 - r;
        out << util::fixed(vdd_[iy], 2) << " |";
        for (std::size_t ix = 0; ix < x_.size(); ++ix) {
            out << symbol(ix, iy);
        }
        out << '\n';
    }
    out << "     +" << std::string(x_.size(), '-') << '\n';
    // Spec marker on the X axis.
    std::string marker(x_.size(), ' ');
    if (!x_.empty() && x_.size() > 1) {
        const double lo = x_.front();
        const double hi = x_.back();
        if (parameter.spec >= std::min(lo, hi) &&
            parameter.spec <= std::max(lo, hi)) {
            const auto pos = static_cast<std::size_t>(
                std::lround((parameter.spec - lo) / (hi - lo) *
                            static_cast<double>(x_.size() - 1)));
            marker[std::min(pos, x_.size() - 1)] = '^';
        }
    }
    out << "      " << marker << " (^ spec " << parameter.spec << ' '
        << parameter.unit << ")\n";
    out << "      X: " << util::fixed(x_.front(), 1) << " .. "
        << util::fixed(x_.back(), 1) << ' ' << parameter.unit << '\n';
    return out.str();
}

void ShmooGrid::write_csv(std::ostream& out) const {
    util::CsvWriter csv(out);
    std::vector<std::string> header;
    header.emplace_back("vdd_v");
    for (const double x : x_) header.push_back(util::format_double(x));
    csv.row(header);
    for (std::size_t iy = 0; iy < vdd_.size(); ++iy) {
        std::vector<double> row;
        row.reserve(x_.size());
        for (std::size_t ix = 0; ix < x_.size(); ++ix) {
            row.push_back(static_cast<double>(pass_count(ix, iy)));
        }
        csv.labeled_row(util::format_double(vdd_[iy]), row);
    }
}

ShmooGrid ShmooPlotter::run(Tester& tester, const Parameter& parameter,
                            std::span<const testgen::Test> tests) const {
    assert(options_.x_steps >= 2 && options_.vdd_steps >= 1);
    ShmooGrid grid(
        util::linspace(options_.x_min, options_.x_max, options_.x_steps),
        util::linspace(options_.vdd_min, options_.vdd_max, options_.vdd_steps),
        options_.y_axis == ShmooYAxis::kVdd ? "Vdd (V, Y)"
                                            : "Temperature (C, Y)");
    const auto& x = grid.x_values();
    const auto& vdd = grid.vdd_values();
    const std::size_t n = x.size();
    PhaseScope phase(tester.log(), "shmoo");

    for (const testgen::Test& original : tests) {
        grid.bump_tests();
        testgen::Test test = original;  // Y axis overrides the supply
        std::vector<double> row_boundaries(vdd.size(), kNaN);

        for (std::size_t iy = 0; iy < vdd.size(); ++iy) {
            if (options_.y_axis == ShmooYAxis::kVdd) {
                test.conditions.vdd_volts = vdd[iy];
            } else {
                test.conditions.temperature_c = vdd[iy];
            }
            const auto pass_at = [&](std::size_t ix) {
                return tester.apply(test, parameter, x[ix]);
            };

            if (options_.exhaustive) {
                // Scan every cell; boundary = pass cell adjacent to the
                // first fail seen from the pass side.
                std::ptrdiff_t last_pass = -1;
                for (std::size_t ix = 0; ix < n; ++ix) {
                    if (pass_at(ix)) {
                        grid.add_pass(ix, iy);
                        last_pass = static_cast<std::ptrdiff_t>(ix);
                    }
                }
                if (last_pass >= 0) {
                    row_boundaries[iy] = x[static_cast<std::size_t>(last_pass)];
                }
                continue;
            }

            // Fast shmoo: the row is monotone in the searched parameter,
            // so bisect the boundary index (standard ATE practice).
            const std::size_t pass_end = parameter.fail_high ? 0 : n - 1;
            const std::size_t fail_end = parameter.fail_high ? n - 1 : 0;
            if (!pass_at(pass_end)) continue;  // whole row fails
            if (pass_at(fail_end)) {
                for (std::size_t ix = 0; ix < n; ++ix) grid.add_pass(ix, iy);
                row_boundaries[iy] = x[fail_end];
                continue;
            }
            std::size_t ip = pass_end;
            std::size_t ifail = fail_end;
            while (ip != ifail && (ip > ifail ? ip - ifail : ifail - ip) > 1) {
                const std::size_t mid = (ip + ifail) / 2;
                if (pass_at(mid)) {
                    ip = mid;
                } else {
                    ifail = mid;
                }
            }
            row_boundaries[iy] = x[ip];
            if (parameter.fail_high) {
                for (std::size_t ix = 0; ix <= ip; ++ix) grid.add_pass(ix, iy);
            } else {
                for (std::size_t ix = ip; ix < n; ++ix) grid.add_pass(ix, iy);
            }
        }
        grid.record_boundaries(std::move(row_boundaries));
    }
    return grid;
}

}  // namespace cichar::ate
