#include "ate/datalog.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace cichar::ate {

void Datalog::record(DatalogEntry entry) {
    if (!enabled_ || capacity_ == 0) return;
    ++total_;
    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(entry));
        return;
    }
    // Ring: overwrite the oldest.
    entries_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
}

const DatalogEntry& Datalog::entry(std::size_t i) const {
    if (i >= entries_.size()) {
        throw std::out_of_range("Datalog::entry index out of range");
    }
    return entries_[(head_ + i) % entries_.size()];
}

void Datalog::clear() {
    entries_.clear();
    head_ = 0;
    total_ = 0;
}

void Datalog::write_csv(std::ostream& out) const {
    util::CsvWriter csv(out);
    csv.row({"test", "parameter", "setting", "result", "kind"});
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const DatalogEntry& e = entry(i);
        csv.row(std::vector<std::string>{
            e.test_name, e.parameter_name, util::format_double(e.setting),
            e.pass ? "PASS" : "FAIL",
            e.functional ? "functional" : "parametric"});
    }
}

}  // namespace cichar::ate
