// Conventional single trip point search algorithms (paper section 1):
// linear search, binary search, and successive approximation. Each finds
// the pass/fail boundary of one parameter for one test, reporting the trip
// point and the number of measurements it cost.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "ate/parameter.hpp"
#include "ate/tester.hpp"

namespace cichar::ate {

/// One probed setting and its outcome.
struct SearchPoint {
    double setting = 0.0;
    bool pass = false;
};

/// Outcome of a trip point search.
struct SearchResult {
    /// Pass-side boundary estimate (the device pass closest to the fail
    /// region, within one resolution step). NaN when not found.
    double trip_point = std::numeric_limits<double>::quiet_NaN();
    bool found = false;
    std::size_t measurements = 0;
    /// Every probed point in order (for search-trace figures).
    std::vector<SearchPoint> trace;

    void probe(double setting, bool pass) {
        trace.push_back({setting, pass});
        ++measurements;
    }
};

/// Interface shared by all trip point searches.
class TripPointSearch {
public:
    virtual ~TripPointSearch() = default;

    /// Runs the search against a pass/fail oracle.
    [[nodiscard]] virtual SearchResult find(const Oracle& oracle,
                                            const Parameter& parameter) const = 0;

    [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Steps from the pass side toward the fail side at a fixed resolution.
/// Accurate but expensive: O(range / resolution) measurements.
class LinearSearch final : public TripPointSearch {
public:
    /// Uses the parameter's own resolution when `step` <= 0.
    explicit LinearSearch(double step = 0.0) : step_(step) {}

    [[nodiscard]] SearchResult find(const Oracle& oracle,
                                    const Parameter& parameter) const override;
    [[nodiscard]] const char* name() const noexcept override {
        return "linear";
    }

private:
    double step_;
};

/// Divide-by-two between the last known pass and last known fail.
/// O(log2(range / resolution)) measurements; assumes a stable boundary.
class BinarySearch final : public TripPointSearch {
public:
    [[nodiscard]] SearchResult find(const Oracle& oracle,
                                    const Parameter& parameter) const override;
    [[nodiscard]] const char* name() const noexcept override {
        return "binary";
    }
};

/// Binary-style search that re-verifies its pass bound as it narrows, so a
/// drifting parameter (device heating) shifts the window instead of
/// corrupting the result — the ATE-recommended method in the paper.
class SuccessiveApproximation final : public TripPointSearch {
public:
    struct Options {
        /// Re-measure the current pass bound every `recheck_every` probes.
        std::size_t recheck_every = 3;
        /// Abort after this many probes (drift pathology guard).
        std::size_t max_measurements = 200;
    };

    SuccessiveApproximation() = default;
    explicit SuccessiveApproximation(Options options) : options_(options) {}

    [[nodiscard]] SearchResult find(const Oracle& oracle,
                                    const Parameter& parameter) const override;
    [[nodiscard]] const char* name() const noexcept override {
        return "successive-approximation";
    }

private:
    Options options_;
};

namespace detail {
/// Midpoint of (a, b) on the parameter's resolution grid, strictly inside
/// the open interval; NaN when the interval cannot be split further.
[[nodiscard]] double split_between(const Parameter& parameter, double a,
                                   double b);
}  // namespace detail

}  // namespace cichar::ate
