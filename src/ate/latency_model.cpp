#include "ate/latency_model.hpp"

#include <chrono>
#include <thread>

namespace cichar::ate {

void LatencyModel::block(double seconds) const {
    if (seconds <= 0.0) return;
    if (sleep_) {
        sleep_(seconds);
        return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace cichar::ate
