#include "ate/search_task.hpp"

#include <cmath>

#include "util/telemetry.hpp"

namespace cichar::ate {

namespace {

// Window-hit accounting for search-until-trip outcomes (shared with the
// blocking find(), which now runs on the same task).
void record_search_outcome(const SearchResult& result, bool window_hit) {
    if (!util::telemetry::metrics_enabled()) return;
    namespace telem = util::telemetry;
    static auto& hits = telem::Registry::instance().counter(
        "cichar_search_window_hits_total");
    static auto& fallbacks = telem::Registry::instance().counter(
        "cichar_search_full_fallbacks_total");
    static auto& probes =
        telem::Registry::instance().counter("cichar_search_probes_total");
    (window_hit ? hits : fallbacks).add();
    probes.add(result.measurements);
}

}  // namespace

SearchResult run_search_task(TripSearchTask& task, const Oracle& oracle) {
    while (!task.done()) task.complete(oracle(task.pending_setting()));
    return task.take_result();
}

// ---- SuccessiveApproximationTask ------------------------------------

SuccessiveApproximationTask::SuccessiveApproximationTask(
    const SuccessiveApproximation::Options& options,
    const Parameter& parameter)
    : options_(options), parameter_(&parameter) {
    res_ = std::max(parameter.resolution, 1e-12);
    dir_ = parameter.toward_fail();
    pass_bound_ = parameter.pass_side();
    fail_bound_ = parameter.fail_side();
    request(pass_bound_);
}

void SuccessiveApproximationTask::advance(bool pass) {
    switch (stage_) {
        case Stage::kStart:
            if (!pass) {
                finish();  // whole range fails
                return;
            }
            stage_ = Stage::kEnd;
            request(fail_bound_);
            return;
        case Stage::kEnd:
            if (pass) {
                finish();  // whole range passes: no crossover
                return;
            }
            next_iteration();
            return;
        case Stage::kRecheck: {
            if (pass) {
                // The pass bound holds; this iteration proceeds straight
                // to its bisection probe, like the blocking loop.
                issue_mid();
                return;
            }
            // Drift: widen the window toward the pass side and verify.
            const double backoff = std::max(
                8.0 * res_, 2.0 * std::abs(fail_bound_ - pass_bound_));
            fail_bound_ = pass_bound_;
            pass_bound_ = parameter_->clamp(pass_bound_ - dir_ * backoff);
            if (pass_bound_ == fail_bound_) {
                finish();
                return;
            }
            stage_ = Stage::kBackoffVerify;
            request(pass_bound_);
            return;
        }
        case Stage::kBackoffVerify:
            if (!pass) {
                finish();  // pass region lost
                return;
            }
            next_iteration();
            return;
        case Stage::kMid: {
            const double mid = pending_setting();
            if (pass) {
                pass_bound_ = mid;
            } else {
                fail_bound_ = mid;
            }
            next_iteration();
            return;
        }
    }
}

void SuccessiveApproximationTask::next_iteration() {
    if (!(std::abs(fail_bound_ - pass_bound_) > res_ &&
          result_.measurements < options_.max_measurements)) {
        conclude();
        return;
    }
    if (options_.recheck_every != 0 &&
        result_.measurements % options_.recheck_every == 0) {
        stage_ = Stage::kRecheck;
        request(pass_bound_);
        return;
    }
    issue_mid();
}

void SuccessiveApproximationTask::issue_mid() {
    const double mid =
        detail::split_between(*parameter_, pass_bound_, fail_bound_);
    if (std::isnan(mid)) {
        conclude();
        return;
    }
    stage_ = Stage::kMid;
    request(mid);
}

void SuccessiveApproximationTask::conclude() {
    result_.trip_point = pass_bound_;
    result_.found = true;
    finish();
}

// ---- SearchUntilTripTask --------------------------------------------

SearchUntilTripTask::SearchUntilTripTask(
    const SearchUntilTrip::Options& options, double reference_trip_point,
    const Parameter& parameter)
    : options_(options), parameter_(&parameter) {
    res_ = std::max(parameter.resolution, 1e-12);
    start_ = parameter.clamp(parameter.quantize(reference_trip_point));
    request(start_);
}

void SearchUntilTripTask::advance(bool pass) {
    switch (stage_) {
        case Stage::kStart:
            start_passes_ = pass;
            // Eq. (3)/(4): pass at RTP -> step toward the fail region
            // (+SF); fail at RTP -> step back toward the pass region.
            direction_ = pass ? parameter_->toward_fail()
                              : -parameter_->toward_fail();
            previous_ = start_;
            iteration_ = 1;
            issue_step();
            return;
        case Stage::kStep: {
            const double setting = pending_setting();
            if (pass != start_passes_) {
                pass_bound_ = start_passes_ ? previous_ : setting;
                fail_bound_ = start_passes_ ? setting : previous_;
                begin_refine();
                return;
            }
            previous_ = setting;
            ++iteration_;
            issue_step();
            return;
        }
        case Stage::kRefine: {
            const double mid = pending_setting();
            if (pass) {
                pass_bound_ = mid;
            } else {
                fail_bound_ = mid;
            }
            issue_refine();
            return;
        }
    }
}

void SearchUntilTripTask::issue_step() {
    if (iteration_ > options_.max_iterations) {
        miss();
        return;
    }
    const double setting = parameter_->clamp(parameter_->quantize(
        start_ +
        direction_ * SearchUntilTrip::offset_after(options_, iteration_)));
    if (setting == previous_) {
        miss();  // clamped at the range edge
        return;
    }
    stage_ = Stage::kStep;
    request(setting);
}

void SearchUntilTripTask::begin_refine() {
    if (!options_.refine) {
        found();
        return;
    }
    issue_refine();
}

void SearchUntilTripTask::issue_refine() {
    if (!(std::abs(fail_bound_ - pass_bound_) > res_)) {
        found();
        return;
    }
    const double mid =
        detail::split_between(*parameter_, pass_bound_, fail_bound_);
    if (std::isnan(mid)) {
        found();
        return;
    }
    stage_ = Stage::kRefine;
    request(mid);
}

void SearchUntilTripTask::miss() {
    // The trip point drifted out of the characterization range (or the
    // iteration budget is too small): report the best-known pass.
    if (start_passes_) result_.trip_point = previous_;
    result_.found = false;
    record_search_outcome(result_, /*window_hit=*/false);
    finish();
}

void SearchUntilTripTask::found() {
    result_.trip_point = pass_bound_;
    result_.found = true;
    record_search_outcome(result_, /*window_hit=*/true);
    finish();
}

}  // namespace cichar::ate
