// Tester latency model shared by the synchronous and asynchronous
// measurement paths. The modeled per-measurement seconds (relay/level
// setup + vector cycles) feed the ledger either way; what differs is how
// the emulated hardware latency (`realtime_fraction`) is *spent*: the
// blocking Tester sleeps it inline, while AsyncTester turns it into a
// completion deadline and keeps the CPU busy underneath. Computing both
// numbers in one place keeps the two paths ledger- and wall-clock
// consistent, and the injectable sleep hook lets unit tests run the
// emulated path against a fake clock.
#pragma once

#include <cstdint>
#include <functional>

namespace cichar::ate {

class LatencyModel {
public:
    /// Replaces the real `sleep_for` in `block()`; receives the seconds
    /// that would have been slept. For fake-clock unit tests.
    using SleepFn = std::function<void(double seconds)>;

    LatencyModel() = default;
    LatencyModel(double setup_seconds, double cycle_seconds_override,
                 double realtime_fraction)
        : setup_seconds_(setup_seconds),
          cycle_seconds_override_(cycle_seconds_override),
          realtime_fraction_(realtime_fraction) {}

    /// Modeled tester time for one measurement: setup plus `cycles` at the
    /// test's clock period (or the configured override). Ledger currency —
    /// identical whether latency emulation is on or off.
    [[nodiscard]] double modeled_seconds(std::uint64_t cycles,
                                         double clock_period_ns) const noexcept {
        const double cycle_s = cycle_seconds_override_ > 0.0
                                   ? cycle_seconds_override_
                                   : clock_period_ns * 1e-9;
        return setup_seconds_ + static_cast<double>(cycles) * cycle_s;
    }

    /// Wall-clock seconds a request of `modeled` tester-seconds keeps the
    /// (emulated) hardware busy: the sync path sleeps this, the async path
    /// schedules its completion deadline this far out.
    [[nodiscard]] double inflight_seconds(double modeled) const noexcept {
        return modeled * realtime_fraction_;
    }

    [[nodiscard]] bool emulated() const noexcept {
        return realtime_fraction_ > 0.0;
    }
    [[nodiscard]] double realtime_fraction() const noexcept {
        return realtime_fraction_;
    }

    /// Blocks the calling thread for `seconds` (no-op when <= 0), through
    /// the test hook when one is installed.
    void block(double seconds) const;

    void set_sleep(SleepFn fn) { sleep_ = std::move(fn); }

private:
    double setup_seconds_ = 5e-4;
    double cycle_seconds_override_ = 0.0;
    double realtime_fraction_ = 0.0;
    SleepFn sleep_;  // empty = real std::this_thread::sleep_for
};

}  // namespace cichar::ate
