// "Search until trip point" (paper section 4, Fig. 3): the key measurement
// -speed contribution. The first test pays for a full-range search and
// yields the reference trip point RTP (eq. 2). Every subsequent test
// starts *at* RTP and steps outward with a growing search factor SF(IT)
// until the state flips (eqs. 3/4), because properly designed devices vary
// only in a narrow band around RTP — so the full characterization range CR
// never needs to be re-searched.
#pragma once

#include <memory>

#include "ate/search.hpp"

namespace cichar::ate {

/// Search-factor schedule: the offset from RTP after IT iterations.
enum class SearchFactorGrowth : std::uint8_t {
    kLinear,      ///< offset = SF * IT
    kTriangular,  ///< offset = SF * IT*(IT+1)/2 (accelerating)
};

class SearchUntilTrip final : public TripPointSearch {
public:
    struct Options {
        /// Base search factor resolution SF (parameter units per step),
        /// e.g. 1 MHz or 0.2 ns; programmable per the paper.
        double search_factor = 0.2;
        SearchFactorGrowth growth = SearchFactorGrowth::kTriangular;
        /// Refine the final bracket down to the parameter resolution with
        /// bisection (costs ~log2(SF_last/resolution) extra measurements).
        bool refine = true;
        std::size_t max_iterations = 64;
    };

    /// `reference_trip_point` is RTP from eq. (2); typically the result of
    /// a full-range SuccessiveApproximation on the first test.
    SearchUntilTrip(Options options, double reference_trip_point)
        : options_(options), rtp_(reference_trip_point) {}

    [[nodiscard]] double reference_trip_point() const noexcept { return rtp_; }
    [[nodiscard]] const Options& options() const noexcept { return options_; }

    /// Searches outward from RTP. `found == false` only when the trip
    /// point left the characterization range entirely.
    [[nodiscard]] SearchResult find(const Oracle& oracle,
                                    const Parameter& parameter) const override;

    [[nodiscard]] const char* name() const noexcept override {
        return "search-until-trip";
    }

    /// Convenience for the multi-trip flow: updates RTP to track slow
    /// drift of the population of trip points (optional; the paper keeps
    /// the first RTP, which is the default behaviour elsewhere).
    void set_reference(double rtp) noexcept { rtp_ = rtp; }

    /// Search-factor schedule: offset from RTP after `iterations` steps.
    /// Shared with the resumable SearchUntilTripTask.
    [[nodiscard]] static double offset_after(const Options& options,
                                             std::size_t iterations) noexcept;

private:
    Options options_;
    double rtp_;
};

/// Runs the full first-test flow: full-range `initial` search to get RTP
/// (eq. 2), returning both the result and a ready-to-use SearchUntilTrip.
struct ReferenceSearch {
    SearchResult first_result;
    SearchUntilTrip follower;
};

[[nodiscard]] ReferenceSearch make_reference_search(
    const Oracle& first_oracle, const Parameter& parameter,
    const TripPointSearch& initial, SearchUntilTrip::Options options);

}  // namespace cichar::ate
