// Shmoo plotting: 2-D pass/fail maps of parameter setting (X) versus
// supply voltage (Y). The paper's Fig. 8 overlays 1000 tests in a single
// shmoo so the test-to-test spread of the trip point becomes visible as a
// band; ShmooGrid counts passes per cell to render exactly that.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "ate/parameter.hpp"
#include "ate/tester.hpp"

namespace cichar::ate {

/// What the Y axis overrides in each test's conditions.
enum class ShmooYAxis : std::uint8_t { kVdd, kTemperature };

struct ShmooOptions {
    double x_min = 18.0;          ///< parameter setting axis start
    double x_max = 40.0;
    std::size_t x_steps = 45;
    ShmooYAxis y_axis = ShmooYAxis::kVdd;
    double vdd_min = 1.4;         ///< Y axis range (supply V, or deg C for
    double vdd_max = 2.2;         ///< a temperature shmoo)
    std::size_t vdd_steps = 17;
    /// Exhaustive scans apply every cell; the default "fast shmoo" finds
    /// each row's boundary by bisection over the X grid (standard ATE
    /// practice — the row is monotone in the searched parameter).
    bool exhaustive = false;
};

/// Result grid; cell (ix, iy) counts how many tests passed there.
class ShmooGrid {
public:
    ShmooGrid(std::vector<double> x_values, std::vector<double> vdd_values,
              std::string y_label = "Vdd (V, Y)");

    [[nodiscard]] std::size_t x_steps() const noexcept { return x_.size(); }
    [[nodiscard]] std::size_t vdd_steps() const noexcept { return vdd_.size(); }
    [[nodiscard]] const std::vector<double>& x_values() const noexcept {
        return x_;
    }
    [[nodiscard]] const std::vector<double>& vdd_values() const noexcept {
        return vdd_;
    }
    [[nodiscard]] const std::string& y_label() const noexcept {
        return y_label_;
    }
    [[nodiscard]] std::size_t tests() const noexcept { return tests_; }

    [[nodiscard]] std::uint32_t pass_count(std::size_t ix,
                                           std::size_t iy) const noexcept;

    /// Per-test trip point (X units) at each vdd row; NaN when the row has
    /// no crossover. Indexed [test][iy].
    [[nodiscard]] const std::vector<std::vector<double>>& boundaries()
        const noexcept {
        return boundaries_;
    }

    /// Character for one cell: '*' all tests pass, '.' none, '1'..'9'
    /// proportional partial pass (the Fig. 8 "band").
    [[nodiscard]] char symbol(std::size_t ix, std::size_t iy) const noexcept;

    /// ASCII rendering, Vdd descending top-to-bottom, with axis labels.
    [[nodiscard]] std::string render(const Parameter& parameter) const;

    /// CSV: header row of X values, one row per Vdd with pass counts.
    void write_csv(std::ostream& out) const;

    // Mutation interface used by ShmooPlotter.
    void add_pass(std::size_t ix, std::size_t iy) noexcept;
    void bump_tests() noexcept { ++tests_; }
    void record_boundaries(std::vector<double> per_row) {
        boundaries_.push_back(std::move(per_row));
    }

private:
    std::vector<double> x_;
    std::vector<double> vdd_;
    std::string y_label_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::vector<double>> boundaries_;
    std::size_t tests_ = 0;
};

/// Drives the tester over the grid for a set of tests.
class ShmooPlotter {
public:
    explicit ShmooPlotter(ShmooOptions options = {}) : options_(options) {}

    [[nodiscard]] const ShmooOptions& options() const noexcept {
        return options_;
    }

    /// Runs all tests over the grid. The tests' own Vdd is overridden by
    /// the Y axis; everything else (pattern, temperature, ...) is kept.
    [[nodiscard]] ShmooGrid run(Tester& tester, const Parameter& parameter,
                                std::span<const testgen::Test> tests) const;

private:
    ShmooOptions options_;
};

}  // namespace cichar::ate
