#include "store/ledger.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "store/ledger_payloads.hpp"
#include "util/binio.hpp"
#include "util/crash_point.hpp"

namespace fs = std::filesystem;

namespace cichar::store {
namespace {

struct SegmentFile {
    std::uint64_t index = 0;
    fs::path path;
};

/// Segment files of `directory`, ascending by index. Foreign names
/// (quarantine/, temp files, user droppings) are ignored.
std::vector<SegmentFile> list_segments(const fs::path& directory) {
    std::vector<SegmentFile> segments;
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(directory, ec)) {
        if (!entry.is_regular_file()) continue;
        const auto index =
            parse_segment_file_name(entry.path().filename().string());
        if (!index) continue;
        segments.push_back({*index, entry.path()});
    }
    std::sort(segments.begin(), segments.end(),
              [](const SegmentFile& a, const SegmentFile& b) {
                  return a.index < b.index;
              });
    return segments;
}

/// Moves `path`'s bytes into quarantine/ under a fresh name; returns
/// false when the copy could not be made durable.
bool quarantine_file(const fs::path& ledger_dir, const fs::path& path,
                     const std::string& contents) {
    const fs::path quarantine = ledger_dir / "quarantine";
    std::error_code ec;
    fs::create_directories(quarantine, ec);
    if (ec) return false;
    fs::path target = quarantine / path.filename();
    for (int attempt = 1; fs::exists(target); ++attempt) {
        target = quarantine /
                 (path.filename().string() + "." + std::to_string(attempt));
    }
    return util::atomic_write_file(target.string(), contents);
}

/// Re-encodes a scan's surviving records under a fresh header —
/// recovery's repaired segment image.
std::string rebuild_segment(const SegmentScan& scan) {
    std::string out = encode_segment_header(scan.segment_index);
    for (const LedgerRecord& record : scan.records) {
        encode_record(out, record);
    }
    return out;
}

/// Tolerant whole-ledger read used by the offline tools: every valid
/// record in every segment, plus human-readable findings for all the
/// bytes that were not.
struct LedgerScan {
    std::vector<LedgerRecord> records;
    std::vector<std::string> issues;
    std::size_t segments = 0;
};

LedgerScan scan_ledger(const std::string& directory) {
    LedgerScan result;
    if (!fs::is_directory(directory)) {
        result.issues.push_back("not a ledger directory: " + directory);
        return result;
    }
    std::uint64_t last_index = 0;
    bool have_index = false;
    for (const SegmentFile& segment : list_segments(directory)) {
        const std::string name = segment.path.filename().string();
        const auto contents = util::read_file(segment.path.string());
        if (!contents) {
            result.issues.push_back(name + ": unreadable");
            continue;
        }
        ++result.segments;
        const SegmentScan scan = scan_segment(*contents);
        if (!scan.header_ok) {
            result.issues.push_back(name + ": bad segment header");
            continue;
        }
        if (scan.segment_index != segment.index) {
            result.issues.push_back(
                name + ": header index " +
                std::to_string(scan.segment_index) +
                " does not match the file name");
        }
        if (have_index && scan.segment_index == last_index) {
            result.issues.push_back(name + ": duplicate segment index");
        }
        last_index = scan.segment_index;
        have_index = true;
        if (scan.torn_bytes > 0) {
            result.issues.push_back(name + ": torn tail of " +
                                    std::to_string(scan.torn_bytes) +
                                    " bytes");
        }
        if (scan.corrupt_spans > 0) {
            result.issues.push_back(
                name + ": " + std::to_string(scan.corrupt_spans) +
                " corrupt span(s), " + std::to_string(scan.corrupt_bytes) +
                " bytes");
        }
        result.records.insert(result.records.end(), scan.records.begin(),
                              scan.records.end());
    }
    return result;
}

/// Decodes one record's payload through its type codec; returns the
/// failure message, if any.
std::optional<std::string> payload_issue(const LedgerRecord& record) {
    try {
        switch (record.type) {
            case RecordType::kCampaignBegin:
                (void)decode_campaign_begin(record.payload);
                break;
            case RecordType::kMeasurementSummary:
                (void)decode_measurement_summary(record.payload);
                break;
            case RecordType::kTripRecord:
                (void)decode_trip_record(record.payload);
                break;
            case RecordType::kWorstCaseEntry:
                (void)decode_worst_case_entry(record.payload);
                break;
            case RecordType::kSnapshotRef:
                (void)decode_snapshot_ref(record.payload);
                break;
            case RecordType::kCampaignEnd:
                (void)decode_campaign_end(record.payload);
                break;
        }
    } catch (const std::exception& error) {
        return std::string(error.what());
    }
    return std::nullopt;
}

std::string campaign_hex(std::uint64_t campaign) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (std::size_t i = 0; i < 16; ++i) {
        out[15 - i] = digits[(campaign >> (4 * i)) & 0xF];
    }
    return out;
}

/// Sorts, dedups, and re-packs `records` into `out_directory` — the one
/// canonical byte image of a record multiset (compact and merge share
/// it, which is what makes them comparable).
CompactStats write_canonical(std::vector<LedgerRecord> records,
                             const std::string& out_directory,
                             std::size_t segment_capacity_bytes) {
    CompactStats stats;
    stats.input_records = records.size();
    std::sort(records.begin(), records.end(), record_less);
    records.erase(std::unique(records.begin(), records.end()),
                  records.end());
    stats.output_records = records.size();
    stats.duplicates_dropped = stats.input_records - stats.output_records;

    std::error_code ec;
    fs::create_directories(out_directory, ec);
    if (ec) {
        throw std::runtime_error("ledger compact: cannot create " +
                                 out_directory);
    }
    if (!list_segments(out_directory).empty()) {
        throw std::runtime_error("ledger compact: output " + out_directory +
                                 " already holds segments");
    }

    std::uint64_t index = 0;
    std::string segment = encode_segment_header(index);
    const auto flush = [&]() {
        const fs::path path =
            fs::path(out_directory) / segment_file_name(index);
        if (!util::atomic_write_file(path.string(), segment)) {
            throw std::runtime_error("ledger compact: cannot write " +
                                     path.string());
        }
        ++stats.segments_written;
    };
    for (const LedgerRecord& record : records) {
        std::string encoded;
        encode_record(encoded, record);
        if (segment.size() > kSegmentHeaderSize &&
            segment.size() + encoded.size() > segment_capacity_bytes) {
            flush();
            segment = encode_segment_header(++index);
        }
        segment.append(encoded);
    }
    flush();  // always emit at least seg-000000, even when empty
    return stats;
}

}  // namespace

Ledger Ledger::open(LedgerOptions options) {
    Ledger ledger;
    ledger.options_ = std::move(options);
    const fs::path directory(ledger.options_.directory);
    std::error_code ec;
    fs::create_directories(directory, ec);
    if (ec) {
        throw std::runtime_error("ledger: cannot create directory " +
                                 directory.string());
    }

    bool have_active = false;
    for (const SegmentFile& segment : list_segments(directory)) {
        const auto contents = util::read_file(segment.path.string());
        if (!contents) {
            throw std::runtime_error("ledger: cannot read " +
                                     segment.path.string());
        }
        const SegmentScan scan = scan_segment(*contents);
        if (!scan.header_ok) {
            // Headerless bytes hold no recoverable records; preserve
            // them for forensics and drop the segment.
            if (!quarantine_file(directory, segment.path, *contents) ||
                !fs::remove(segment.path, ec) || ec) {
                throw std::runtime_error("ledger: cannot quarantine " +
                                         segment.path.string());
            }
            ++ledger.recovery_.quarantined_segments;
            ledger.recovery_.quarantined_bytes += contents->size();
            continue;
        }
        if (!scan.clean()) {
            if (scan.corrupt_spans > 0) {
                // Bit rot between valid records: keep the original
                // bytes, then rewrite the segment from the survivors.
                if (!quarantine_file(directory, segment.path, *contents)) {
                    throw std::runtime_error("ledger: cannot quarantine " +
                                             segment.path.string());
                }
                ledger.recovery_.corrupt_spans += scan.corrupt_spans;
                ledger.recovery_.quarantined_bytes += scan.corrupt_bytes;
            }
            if (scan.torn_bytes > 0) {
                ++ledger.recovery_.torn_tails;
                ledger.recovery_.truncated_bytes += scan.torn_bytes;
            }
            if (!util::atomic_write_file(segment.path.string(),
                                         rebuild_segment(scan))) {
                throw std::runtime_error("ledger: cannot repair " +
                                         segment.path.string());
            }
        }
        ++ledger.recovery_.segments;
        for (const LedgerRecord& record : scan.records) {
            ledger.keys_.insert({record.campaign,
                                 static_cast<std::uint32_t>(record.type),
                                 record.sequence});
            ledger.records_.push_back(record);
        }
        ledger.active_index_ = scan.segment_index;
        ledger.active_path_ = segment.path.string();
        ledger.active_size_ = scan.valid_prefix -
                              (scan.corrupt_spans > 0 ? scan.corrupt_bytes : 0);
        have_active = true;
    }
    ledger.recovery_.records = ledger.records_.size();
    if (!have_active) {
        ledger.rotate_to(0);
        ledger.recovery_.segments = 1;
    }
    return ledger;
}

void Ledger::rotate_to(std::uint64_t segment_index) {
    const fs::path path = fs::path(options_.directory) /
                          segment_file_name(segment_index);
    const std::string header = encode_segment_header(segment_index);
    if (!util::atomic_write_file(path.string(), header)) {
        throw std::runtime_error("ledger: cannot create segment " +
                                 path.string());
    }
    CICHAR_CRASH_POINT("store.ledger.post_rotate");
    active_index_ = segment_index;
    active_path_ = path.string();
    active_size_ = header.size();
}

void Ledger::append(LedgerRecord record) {
    keys_.insert({record.campaign, static_cast<std::uint32_t>(record.type),
                  record.sequence});
    pending_.push_back(std::move(record));
}

bool Ledger::append_if_absent(LedgerRecord record) {
    if (contains(record.campaign, record.type, record.sequence)) return false;
    append(std::move(record));
    return true;
}

bool Ledger::contains(std::uint64_t campaign, RecordType type,
                      std::uint64_t sequence) const noexcept {
    return keys_.count({campaign, static_cast<std::uint32_t>(type),
                        sequence}) != 0;
}

std::size_t Ledger::campaign_records(std::uint64_t campaign) const noexcept {
    const auto first = keys_.lower_bound({campaign, 0, 0});
    const auto last = keys_.upper_bound(
        {campaign, std::numeric_limits<std::uint32_t>::max(),
         std::numeric_limits<std::uint64_t>::max()});
    return static_cast<std::size_t>(std::distance(first, last));
}

void Ledger::commit() {
    if (pending_.empty()) return;
    std::string batch;
    for (const LedgerRecord& record : pending_) {
        encode_record(batch, record);
    }
    if (active_size_ > kSegmentHeaderSize &&
        active_size_ + batch.size() > options_.segment_capacity_bytes) {
        rotate_to(active_index_ + 1);
    }
    CICHAR_CRASH_POINT("store.ledger.pre_commit");
    if (!util::append_file(active_path_, batch, options_.sync)) {
        throw std::runtime_error("ledger: commit failed on " + active_path_);
    }
    CICHAR_CRASH_POINT("store.ledger.post_commit");
    active_size_ += batch.size();
    for (LedgerRecord& record : pending_) {
        records_.push_back(std::move(record));
    }
    pending_.clear();
}

VerifyResult verify_ledger(const std::string& directory) {
    VerifyResult result;
    LedgerScan scan = scan_ledger(directory);
    result.segments = scan.segments;
    result.records = scan.records.size();
    result.issues = std::move(scan.issues);

    struct CampaignTally {
        std::size_t records = 0;
        std::size_t end_markers = 0;
        std::uint64_t declared = 0;
    };
    std::map<std::uint64_t, CampaignTally> campaigns;
    std::set<std::tuple<std::uint64_t, std::uint32_t, std::uint64_t>> keys;
    for (const LedgerRecord& record : scan.records) {
        if (const auto issue = payload_issue(record)) {
            result.issues.push_back(std::string(to_string(record.type)) +
                                    " seq " +
                                    std::to_string(record.sequence) + ": " +
                                    *issue);
        }
        if (!keys.insert({record.campaign,
                          static_cast<std::uint32_t>(record.type),
                          record.sequence})
                 .second) {
            result.issues.push_back(
                "duplicate record key (campaign " +
                campaign_hex(record.campaign) + ", " +
                to_string(record.type) + ", seq " +
                std::to_string(record.sequence) + ")");
        }
        CampaignTally& tally = campaigns[record.campaign];
        ++tally.records;
        if (record.type == RecordType::kCampaignEnd) {
            ++tally.end_markers;
            try {
                tally.declared =
                    decode_campaign_end(record.payload).record_count;
            } catch (const std::exception&) {
                // already reported by payload_issue above
            }
        }
    }
    result.campaigns = campaigns.size();
    for (const auto& [campaign, tally] : campaigns) {
        if (tally.end_markers == 0) continue;
        ++result.complete_campaigns;
        if (tally.end_markers > 1) {
            result.issues.push_back("campaign " + campaign_hex(campaign) +
                                    ": " +
                                    std::to_string(tally.end_markers) +
                                    " end markers");
        } else if (tally.records - 1 != tally.declared) {
            result.issues.push_back(
                "campaign " + campaign_hex(campaign) + ": end marker claims " +
                std::to_string(tally.declared) + " records, found " +
                std::to_string(tally.records - 1));
        }
    }
    result.ok = result.issues.empty();
    return result;
}

std::string inspect_ledger(const std::string& directory) {
    std::ostringstream out;
    std::size_t total_records = 0;
    std::vector<std::string> segment_lines;
    for (const SegmentFile& segment : list_segments(directory)) {
        const auto contents = util::read_file(segment.path.string());
        if (!contents) continue;
        const SegmentScan scan = scan_segment(*contents);
        std::ostringstream line;
        line << "  " << segment.path.filename().string() << "  bytes="
             << contents->size() << " records=" << scan.records.size();
        if (!scan.header_ok) line << " [bad header]";
        if (scan.torn_bytes > 0) line << " [torn=" << scan.torn_bytes << "]";
        if (scan.corrupt_bytes > 0) {
            line << " [corrupt=" << scan.corrupt_bytes << "]";
        }
        segment_lines.push_back(line.str());
        total_records += scan.records.size();
    }
    const LedgerScan scan = scan_ledger(directory);
    out << "ledger " << directory << ": " << segment_lines.size()
        << " segment(s), " << total_records << " record(s)\n";
    for (const std::string& line : segment_lines) out << line << '\n';

    std::map<std::uint64_t, std::map<RecordType, std::size_t>> campaigns;
    std::map<std::uint64_t, std::string> fingerprints;
    for (const LedgerRecord& record : scan.records) {
        ++campaigns[record.campaign][record.type];
        if (record.type == RecordType::kCampaignBegin) {
            try {
                fingerprints[record.campaign] =
                    decode_campaign_begin(record.payload).fingerprint;
            } catch (const std::exception&) {
            }
        }
    }
    for (const auto& [campaign, types] : campaigns) {
        out << "campaign " << campaign_hex(campaign);
        const auto fp = fingerprints.find(campaign);
        if (fp != fingerprints.end()) out << " (" << fp->second << ")";
        out << ":";
        for (const auto& [type, count] : types) {
            out << ' ' << to_string(type) << '=' << count;
        }
        out << (types.count(RecordType::kCampaignEnd) ? " [complete]"
                                                      : " [open]")
            << '\n';
    }
    for (const std::string& issue : scan.issues) {
        out << "issue: " << issue << '\n';
    }
    return out.str();
}

CompactStats compact_ledger(const std::string& directory,
                            const std::string& out_directory,
                            std::size_t segment_capacity_bytes) {
    LedgerScan scan = scan_ledger(directory);
    CompactStats stats = write_canonical(std::move(scan.records),
                                         out_directory,
                                         segment_capacity_bytes);
    stats.issues = std::move(scan.issues);
    return stats;
}

CompactStats merge_ledgers(const std::vector<std::string>& directories,
                           const std::string& out_directory,
                           std::size_t segment_capacity_bytes) {
    std::vector<LedgerRecord> records;
    std::vector<std::string> issues;
    for (const std::string& directory : directories) {
        LedgerScan scan = scan_ledger(directory);
        records.insert(records.end(),
                       std::make_move_iterator(scan.records.begin()),
                       std::make_move_iterator(scan.records.end()));
        for (std::string& issue : scan.issues) {
            issues.push_back(directory + ": " + std::move(issue));
        }
    }
    CompactStats stats = write_canonical(std::move(records), out_directory,
                                         segment_capacity_bytes);
    stats.issues = std::move(issues);
    return stats;
}

}  // namespace cichar::store
