// Append-only campaign ledger (the durable sink `--ledger DIR` hangs off
// hunt and lot runs). A ledger is a directory of CILEDG1 segment files
// plus an optional quarantine/ subdirectory recovery fills:
//
//   ledger/
//     seg-000000.ledg        sealed segments, never rewritten
//     seg-000001.ledg        the active tail, fsync'd group commits
//     quarantine/            originals of segments recovery had to repair
//
// Writes are group commits: append() buffers records, commit() encodes
// the batch, appends it to the active segment with one write + fsync,
// and rotates to a fresh segment when the active one is full. A crash
// at any instant therefore loses at most the uncommitted batch and can
// tear only the final record of the file — exactly what recovery
// repairs.
//
// Ledger::open() runs recovery: every segment is scanned
// (store::scan_segment); a torn tail is truncated back to the last valid
// record, and a segment with corrupt *middles* (bit rot between valid
// records) has its original bytes preserved under quarantine/ before the
// segment is rewritten from its surviving records. Open always yields a
// ledger that verify_ledger() passes.
//
// Byte-identity contract: records are keyed (campaign, type, sequence)
// with producer-assigned deterministic sequences, so compact_ledger()
// and merge_ledgers() — sort by record_less, drop exact duplicates,
// re-pack into fixed-capacity segments — map any append interleaving,
// crash/resume history, or shard split of the same campaign to the same
// output bytes. `cichar merge --out X --ledgers A B` equals
// `cichar ledger compact` of the single-process run.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "store/ledger_format.hpp"

namespace cichar::store {

struct LedgerOptions {
    std::string directory;
    /// Rotate the active segment once its size reaches this many bytes.
    /// Compaction packs output segments against the same capacity, so
    /// every ledger of one deployment splits identically.
    std::size_t segment_capacity_bytes = 1ULL << 20;
    /// fsync every commit (the durability point). Tests may turn this
    /// off for speed; the CLI never does.
    bool sync = true;
};

/// What Ledger::open() found and repaired.
struct RecoveryStats {
    std::size_t segments = 0;         ///< segments surviving recovery
    std::size_t records = 0;          ///< valid records loaded
    std::size_t torn_tails = 0;       ///< segments truncated
    std::size_t truncated_bytes = 0;  ///< torn bytes removed
    std::size_t corrupt_spans = 0;    ///< quarantined middle spans
    std::size_t quarantined_bytes = 0;
    /// Segments whose header was unreadable; moved wholesale to
    /// quarantine/ (their records are unrecoverable).
    std::size_t quarantined_segments = 0;

    [[nodiscard]] bool clean() const noexcept {
        return torn_tails == 0 && corrupt_spans == 0 &&
               quarantined_segments == 0;
    }
};

class Ledger {
public:
    /// Opens (creating if needed) the ledger directory and runs
    /// recovery. Throws std::runtime_error when the directory cannot be
    /// created or a repair write fails.
    [[nodiscard]] static Ledger open(LedgerOptions options);

    /// Buffers a record for the next commit().
    void append(LedgerRecord record);

    /// Buffers `record` unless its (campaign, type, sequence) key is
    /// already committed or pending; returns whether it was added.
    /// Resume paths lean on this to re-offer every record idempotently.
    bool append_if_absent(LedgerRecord record);

    /// Group-commits the buffered records: one append + fsync on the
    /// active segment, rotating first when it is full. No-op when the
    /// buffer is empty. Throws std::runtime_error when the write fails
    /// (buffered records stay pending).
    void commit();

    [[nodiscard]] const RecoveryStats& recovery() const noexcept {
        return recovery_;
    }
    [[nodiscard]] const std::vector<LedgerRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::size_t pending() const noexcept {
        return pending_.size();
    }
    [[nodiscard]] bool contains(std::uint64_t campaign, RecordType type,
                                std::uint64_t sequence) const noexcept;
    /// Committed + pending records keyed to `campaign` (what a campaign
    /// end marker should declare).
    [[nodiscard]] std::size_t campaign_records(
        std::uint64_t campaign) const noexcept;
    [[nodiscard]] const std::string& directory() const noexcept {
        return options_.directory;
    }

private:
    Ledger() = default;

    void rotate_to(std::uint64_t segment_index);

    LedgerOptions options_;
    RecoveryStats recovery_;
    std::vector<LedgerRecord> records_;  ///< committed, append order
    std::set<std::tuple<std::uint64_t, std::uint32_t, std::uint64_t>> keys_;
    std::vector<LedgerRecord> pending_;
    std::uint64_t active_index_ = 0;
    std::string active_path_;
    std::size_t active_size_ = 0;
};

// ---------------------------------------------------------------------
// Offline tools (cichar ledger verify | inspect | compact, cichar merge
// --ledgers). All read-only except compact/merge outputs.

/// Strict integrity check result.
struct VerifyResult {
    bool ok = false;
    std::size_t segments = 0;
    std::size_t records = 0;
    std::size_t campaigns = 0;
    std::size_t complete_campaigns = 0;  ///< campaigns with an end marker
    /// Human-readable findings; empty iff ok.
    std::vector<std::string> issues;
};

/// Verifies every segment scans clean (no torn tail, no corrupt span,
/// indices unique and matching file names), every payload decodes, and
/// every end-marked campaign's record count matches its marker.
[[nodiscard]] VerifyResult verify_ledger(const std::string& directory);

/// Rendered multi-line summary: per-segment byte/record counts, then
/// per-campaign record-type totals.
[[nodiscard]] std::string inspect_ledger(const std::string& directory);

struct CompactStats {
    std::size_t input_records = 0;
    std::size_t output_records = 0;
    std::size_t duplicates_dropped = 0;
    std::size_t segments_written = 0;
    /// Findings from tolerant input scans (torn/corrupt bytes skipped).
    std::vector<std::string> issues;
};

/// Canonically rewrites `directory` into `out_directory`: tolerant scan,
/// sort by record_less, drop exact duplicates, re-pack. Throws
/// std::runtime_error when the output cannot be written or is non-empty.
CompactStats compact_ledger(const std::string& directory,
                            const std::string& out_directory,
                            std::size_t segment_capacity_bytes = 1ULL << 20);

/// Union-compacts several ledgers into one canonical output; the result
/// is byte-identical to compact_ledger of a single ledger holding the
/// same record multiset (how shard ledgers fuse).
CompactStats merge_ledgers(const std::vector<std::string>& directories,
                           const std::string& out_directory,
                           std::size_t segment_capacity_bytes = 1ULL << 20);

}  // namespace cichar::store
