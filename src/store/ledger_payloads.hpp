// Typed payload codecs for the campaign ledger. Each RecordType has one
// payload struct with an encode (struct -> bytes) and a decode (bytes ->
// struct, throwing std::runtime_error on truncation or out-of-range
// fields, in the util::ByteReader style). Payloads carry values only —
// never wall-clock times, absolute paths, or thread/scheduling artifacts
// — so a crashed-and-resumed campaign converges on the exact bytes the
// uninterrupted campaign would have written (the compaction byte-identity
// contract in ledger_format.hpp rests on this).
#pragma once

#include <cstdint>
#include <string>

#include "ate/measurement_log.hpp"
#include "core/database.hpp"
#include "core/dsv.hpp"

namespace cichar::store {

/// RecordType::kCampaignBegin, sequence 0: which run this campaign is.
struct CampaignBeginPayload {
    std::string fingerprint;  ///< full checkpoint fingerprint string
    std::uint64_t seed = 0;

    [[nodiscard]] bool operator==(const CampaignBeginPayload&) const = default;
};

/// RecordType::kMeasurementSummary: one phase's tester cost counters.
struct MeasurementSummaryPayload {
    std::string phase;
    ate::PhaseCounters counters;

    [[nodiscard]] bool operator==(
        const MeasurementSummaryPayload& other) const {
        return phase == other.phase &&
               counters.applications == other.counters.applications &&
               counters.vector_cycles == other.counters.vector_cycles &&
               counters.tester_seconds == other.counters.tester_seconds;
    }
};

/// RecordType::kTripRecord: the measured worst-case trip point of one
/// (site, parameter) pair. Single-process hunts use site 0.
struct TripRecordPayload {
    std::uint64_t site = 0;
    std::string parameter;
    double margin_risk = 0.0;
    core::TripPointRecord record;

    [[nodiscard]] bool operator==(const TripRecordPayload& other) const {
        return site == other.site && parameter == other.parameter &&
               margin_risk == other.margin_risk &&
               record.test_name == other.record.test_name &&
               record.trip_point == other.record.trip_point &&
               record.wcr == other.record.wcr &&
               record.wcr_class == other.record.wcr_class &&
               record.found == other.record.found &&
               record.measurements == other.record.measurements;
    }
};

/// RecordType::kWorstCaseEntry: one worst-case database entry, recipe
/// and conditions included so the stored test re-expands bit-exactly.
struct WorstCaseEntryPayload {
    core::WorstCaseEntry entry;

    [[nodiscard]] bool operator==(const WorstCaseEntryPayload& other) const {
        return entry.name == other.entry.name &&
               entry.recipe == other.entry.recipe &&
               entry.conditions == other.entry.conditions &&
               entry.trip_point == other.entry.trip_point &&
               entry.wcr == other.entry.wcr &&
               entry.wcr_class == other.entry.wcr_class;
    }
};

/// RecordType::kSnapshotRef: checksummed pointer to a sidecar artifact
/// (a report, database, or committee file the campaign also wrote).
/// `name` is a basename, never a path — ledgers from different working
/// directories must stay byte-identical.
struct SnapshotRefPayload {
    std::string kind;  ///< "report", "database", "committee", ...
    std::string name;  ///< artifact basename
    std::uint64_t checksum = 0;  ///< util::checksum64 of the artifact bytes

    [[nodiscard]] bool operator==(const SnapshotRefPayload&) const = default;
};

/// RecordType::kCampaignEnd: the campaign completed; `record_count` is
/// the number of ledger records the campaign emitted before this one, so
/// verify can prove the campaign's record set is whole.
struct CampaignEndPayload {
    std::uint64_t record_count = 0;

    [[nodiscard]] bool operator==(const CampaignEndPayload&) const = default;
};

[[nodiscard]] std::string encode_campaign_begin(
    const CampaignBeginPayload& payload);
[[nodiscard]] CampaignBeginPayload decode_campaign_begin(
    const std::string& payload);

[[nodiscard]] std::string encode_measurement_summary(
    const MeasurementSummaryPayload& payload);
[[nodiscard]] MeasurementSummaryPayload decode_measurement_summary(
    const std::string& payload);

[[nodiscard]] std::string encode_trip_record(const TripRecordPayload& payload);
[[nodiscard]] TripRecordPayload decode_trip_record(const std::string& payload);

[[nodiscard]] std::string encode_worst_case_entry(
    const WorstCaseEntryPayload& payload);
[[nodiscard]] WorstCaseEntryPayload decode_worst_case_entry(
    const std::string& payload);

[[nodiscard]] std::string encode_snapshot_ref(
    const SnapshotRefPayload& payload);
[[nodiscard]] SnapshotRefPayload decode_snapshot_ref(
    const std::string& payload);

[[nodiscard]] std::string encode_campaign_end(
    const CampaignEndPayload& payload);
[[nodiscard]] CampaignEndPayload decode_campaign_end(
    const std::string& payload);

}  // namespace cichar::store
