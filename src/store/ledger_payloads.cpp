#include "store/ledger_payloads.hpp"

#include <stdexcept>

#include "util/binio.hpp"

namespace cichar::store {
namespace {

void require_end(const util::ByteReader& in, const char* what) {
    if (!in.at_end()) {
        throw std::runtime_error(std::string("ledger payload: trailing bytes "
                                             "after ") +
                                 what);
    }
}

void put_recipe(std::string& out, const testgen::PatternRecipe& recipe) {
    util::put_u32(out, recipe.cycles);
    util::put_double(out, recipe.write_fraction);
    util::put_double(out, recipe.nop_fraction);
    util::put_double(out, recipe.burst_length);
    util::put_double(out, recipe.row_locality);
    util::put_double(out, recipe.bank_conflict_bias);
    util::put_double(out, recipe.alternating_data_bias);
    util::put_double(out, recipe.solid_data_bias);
    util::put_double(out, recipe.toggle_bias);
    util::put_double(out, recipe.control_activity);
    util::put_u64(out, recipe.seed);
}

testgen::PatternRecipe get_recipe(util::ByteReader& in) {
    testgen::PatternRecipe recipe;
    recipe.cycles = in.get_u32();
    recipe.write_fraction = in.get_double();
    recipe.nop_fraction = in.get_double();
    recipe.burst_length = in.get_double();
    recipe.row_locality = in.get_double();
    recipe.bank_conflict_bias = in.get_double();
    recipe.alternating_data_bias = in.get_double();
    recipe.solid_data_bias = in.get_double();
    recipe.toggle_bias = in.get_double();
    recipe.control_activity = in.get_double();
    recipe.seed = in.get_u64();
    return recipe;
}

void put_conditions(std::string& out, const testgen::TestConditions& c) {
    util::put_double(out, c.vdd_volts);
    util::put_double(out, c.temperature_c);
    util::put_double(out, c.clock_period_ns);
    util::put_double(out, c.output_load_pf);
}

testgen::TestConditions get_conditions(util::ByteReader& in) {
    testgen::TestConditions c;
    c.vdd_volts = in.get_double();
    c.temperature_c = in.get_double();
    c.clock_period_ns = in.get_double();
    c.output_load_pf = in.get_double();
    return c;
}

ga::WcrClass get_wcr_class(util::ByteReader& in) {
    const std::uint64_t raw = in.get_u64();
    if (raw > static_cast<std::uint64_t>(ga::WcrClass::kFail)) {
        throw std::runtime_error("ledger payload: bad wcr class");
    }
    return static_cast<ga::WcrClass>(raw);
}

}  // namespace

std::string encode_campaign_begin(const CampaignBeginPayload& payload) {
    std::string out;
    util::put_string(out, payload.fingerprint);
    util::put_u64(out, payload.seed);
    return out;
}

CampaignBeginPayload decode_campaign_begin(const std::string& payload) {
    util::ByteReader in(payload);
    CampaignBeginPayload decoded;
    decoded.fingerprint = in.get_string();
    decoded.seed = in.get_u64();
    require_end(in, "campaign-begin");
    return decoded;
}

std::string encode_measurement_summary(
    const MeasurementSummaryPayload& payload) {
    std::string out;
    util::put_string(out, payload.phase);
    util::put_u64(out, payload.counters.applications);
    util::put_u64(out, payload.counters.vector_cycles);
    util::put_double(out, payload.counters.tester_seconds);
    return out;
}

MeasurementSummaryPayload decode_measurement_summary(
    const std::string& payload) {
    util::ByteReader in(payload);
    MeasurementSummaryPayload decoded;
    decoded.phase = in.get_string();
    decoded.counters.applications = in.get_u64();
    decoded.counters.vector_cycles = in.get_u64();
    decoded.counters.tester_seconds = in.get_double();
    require_end(in, "measurement-summary");
    return decoded;
}

std::string encode_trip_record(const TripRecordPayload& payload) {
    std::string out;
    util::put_u64(out, payload.site);
    util::put_string(out, payload.parameter);
    util::put_double(out, payload.margin_risk);
    payload.record.save(out);
    return out;
}

TripRecordPayload decode_trip_record(const std::string& payload) {
    util::ByteReader in(payload);
    TripRecordPayload decoded;
    decoded.site = in.get_u64();
    decoded.parameter = in.get_string();
    decoded.margin_risk = in.get_double();
    decoded.record = core::TripPointRecord::load(in);
    require_end(in, "trip-record");
    return decoded;
}

std::string encode_worst_case_entry(const WorstCaseEntryPayload& payload) {
    std::string out;
    util::put_string(out, payload.entry.name);
    put_recipe(out, payload.entry.recipe);
    put_conditions(out, payload.entry.conditions);
    util::put_double(out, payload.entry.trip_point);
    util::put_double(out, payload.entry.wcr);
    util::put_u64(out, static_cast<std::uint64_t>(payload.entry.wcr_class));
    return out;
}

WorstCaseEntryPayload decode_worst_case_entry(const std::string& payload) {
    util::ByteReader in(payload);
    WorstCaseEntryPayload decoded;
    decoded.entry.name = in.get_string();
    decoded.entry.recipe = get_recipe(in);
    decoded.entry.conditions = get_conditions(in);
    decoded.entry.trip_point = in.get_double();
    decoded.entry.wcr = in.get_double();
    decoded.entry.wcr_class = get_wcr_class(in);
    require_end(in, "worst-case-entry");
    return decoded;
}

std::string encode_snapshot_ref(const SnapshotRefPayload& payload) {
    std::string out;
    util::put_string(out, payload.kind);
    util::put_string(out, payload.name);
    util::put_u64(out, payload.checksum);
    return out;
}

SnapshotRefPayload decode_snapshot_ref(const std::string& payload) {
    util::ByteReader in(payload);
    SnapshotRefPayload decoded;
    decoded.kind = in.get_string();
    decoded.name = in.get_string();
    decoded.checksum = in.get_u64();
    require_end(in, "snapshot-ref");
    return decoded;
}

std::string encode_campaign_end(const CampaignEndPayload& payload) {
    std::string out;
    util::put_u64(out, payload.record_count);
    return out;
}

CampaignEndPayload decode_campaign_end(const std::string& payload) {
    util::ByteReader in(payload);
    CampaignEndPayload decoded;
    decoded.record_count = in.get_u64();
    require_end(in, "campaign-end");
    return decoded;
}

}  // namespace cichar::store
