// On-disk format of the append-only campaign ledger (log-structured, in
// the ZNS spirit: fixed-header segments of length-prefixed, checksummed
// records; the only mutation ever applied to a sealed byte is recovery
// truncating a torn tail).
//
// Segment file ("seg-000000.ledg", "seg-000001.ledg", ...):
//
//   magic "CILEDG1\n" (8) | u32 version | u64 segment_index      [20 bytes]
//   record*                                                      [append-only]
//
// Record:
//
//   u32 record magic "CILR" | u32 type | u64 campaign | u64 sequence
//   | u64 payload_size | payload bytes
//   | u64 checksum64(type..payload encoded bytes)                [+40 bytes]
//
// `campaign` is checksum64 of the producing run's fingerprint string, so
// one ledger directory can interleave many campaigns and a reader can
// still do exact (campaign, type, sequence) lookups. `sequence` is
// assigned by the producer deterministically (site/entry indices, not
// wall clock), which is what makes compaction canonical: sorting the
// record set yields the same bytes no matter how commits interleaved or
// how often a run was killed and resumed.
//
// The recovery scan walks records in order. A record that fails its
// checksum (or frames an implausible length) is skipped and the scanner
// resynchronizes on the next record magic; bad bytes *followed by* a
// valid record are a corrupt middle (quarantined), bad bytes running to
// end-of-file are a torn tail (truncated to the last valid record).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cichar::store {

inline constexpr std::string_view kSegmentMagic = "CILEDG1\n";  // 8 bytes
inline constexpr std::uint32_t kLedgerVersion = 1;
inline constexpr std::uint32_t kRecordMagic = 0x524C4943;  // "CILR" LE
inline constexpr std::size_t kSegmentHeaderSize = 20;
/// Record bytes before the payload (magic, type, campaign, sequence,
/// payload size).
inline constexpr std::size_t kRecordHeaderSize = 32;
/// Anything framed longer than this is treated as corruption.
inline constexpr std::uint64_t kMaxRecordPayload = 1ULL << 26;

/// Typed payloads carried by the ledger (docs/FORMATS.md has each
/// payload's schema).
enum class RecordType : std::uint32_t {
    kCampaignBegin = 1,    ///< fingerprint + seed, sequence 0
    kMeasurementSummary = 2,  ///< one phase's tester cost counters
    kTripRecord = 3,       ///< measured trip point of one (site, parameter)
    kWorstCaseEntry = 4,   ///< worst-case test database entry
    kSnapshotRef = 5,      ///< checksummed pointer to a sidecar artifact
    kCampaignEnd = 6,      ///< campaign completed; record count inside
};

[[nodiscard]] const char* to_string(RecordType type) noexcept;
[[nodiscard]] bool is_valid_record_type(std::uint32_t raw) noexcept;

/// One ledger record, fully decoded.
struct LedgerRecord {
    RecordType type = RecordType::kCampaignBegin;
    std::uint64_t campaign = 0;  ///< checksum64(campaign fingerprint)
    std::uint64_t sequence = 0;  ///< producer-assigned, deterministic
    std::string payload;

    [[nodiscard]] bool operator==(const LedgerRecord&) const = default;
};

/// Canonical compaction order: (campaign, sequence, type, payload).
/// Strict-weak and total over distinct records, so any multiset of
/// records has exactly one sorted byte image.
[[nodiscard]] bool record_less(const LedgerRecord& a,
                               const LedgerRecord& b) noexcept;

/// Serializes the 20-byte segment header.
[[nodiscard]] std::string encode_segment_header(std::uint64_t segment_index);

/// Appends one encoded record to `out`.
void encode_record(std::string& out, const LedgerRecord& record);

/// Scan result for one segment's bytes.
struct SegmentScan {
    bool header_ok = false;
    std::uint64_t segment_index = 0;
    std::vector<LedgerRecord> records;
    /// Byte length of the valid prefix (header + every record up to and
    /// including the last valid one, with any quarantined middles still
    /// counted — this is the truncation point for torn-tail recovery).
    std::size_t valid_prefix = 0;
    /// Bytes after `valid_prefix` (a torn tail when > 0).
    std::size_t torn_bytes = 0;
    /// Corrupt bytes *between* valid records (quarantined middles).
    std::size_t corrupt_bytes = 0;
    /// Distinct corrupt spans skipped by the resynchronizing scanner.
    std::size_t corrupt_spans = 0;

    [[nodiscard]] bool clean() const noexcept {
        return header_ok && torn_bytes == 0 && corrupt_bytes == 0;
    }
};

/// Walks `contents` (one whole segment file). Never throws; every
/// malformed byte lands in torn_bytes or corrupt_bytes.
[[nodiscard]] SegmentScan scan_segment(std::string_view contents);

/// "seg-000042.ledg" for index 42.
[[nodiscard]] std::string segment_file_name(std::uint64_t segment_index);

/// Inverse of segment_file_name; nullopt for foreign names.
[[nodiscard]] std::optional<std::uint64_t> parse_segment_file_name(
    std::string_view name);

}  // namespace cichar::store
