#include "store/ledger_format.hpp"

#include <algorithm>
#include <cstdio>

#include "util/binio.hpp"

namespace cichar::store {
namespace {

std::uint32_t read_u32(std::string_view data, std::size_t pos) noexcept {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
    }
    return value;
}

std::uint64_t read_u64(std::string_view data, std::size_t pos) noexcept {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
    }
    return value;
}

/// The 4 magic bytes as they appear in the file (little-endian u32).
std::string record_magic_bytes() {
    std::string m;
    util::put_u32(m, kRecordMagic);
    return m;
}

}  // namespace

const char* to_string(RecordType type) noexcept {
    switch (type) {
        case RecordType::kCampaignBegin: return "campaign-begin";
        case RecordType::kMeasurementSummary: return "measurement-summary";
        case RecordType::kTripRecord: return "trip-record";
        case RecordType::kWorstCaseEntry: return "worst-case-entry";
        case RecordType::kSnapshotRef: return "snapshot-ref";
        case RecordType::kCampaignEnd: return "campaign-end";
    }
    return "?";
}

bool is_valid_record_type(std::uint32_t raw) noexcept {
    return raw >= static_cast<std::uint32_t>(RecordType::kCampaignBegin) &&
           raw <= static_cast<std::uint32_t>(RecordType::kCampaignEnd);
}

bool record_less(const LedgerRecord& a, const LedgerRecord& b) noexcept {
    if (a.campaign != b.campaign) return a.campaign < b.campaign;
    if (a.sequence != b.sequence) return a.sequence < b.sequence;
    if (a.type != b.type) return a.type < b.type;
    return a.payload < b.payload;
}

std::string encode_segment_header(std::uint64_t segment_index) {
    std::string out;
    out.reserve(kSegmentHeaderSize);
    out.append(kSegmentMagic);
    util::put_u32(out, kLedgerVersion);
    util::put_u64(out, segment_index);
    return out;
}

void encode_record(std::string& out, const LedgerRecord& record) {
    util::put_u32(out, kRecordMagic);
    const std::size_t body_start = out.size();
    util::put_u32(out, static_cast<std::uint32_t>(record.type));
    util::put_u64(out, record.campaign);
    util::put_u64(out, record.sequence);
    util::put_u64(out, record.payload.size());
    out.append(record.payload);
    const std::string_view body(out.data() + body_start,
                                out.size() - body_start);
    util::put_u64(out, util::checksum64(body));
}

SegmentScan scan_segment(std::string_view contents) {
    SegmentScan scan;
    if (contents.size() < kSegmentHeaderSize ||
        contents.substr(0, kSegmentMagic.size()) != kSegmentMagic ||
        read_u32(contents, kSegmentMagic.size()) != kLedgerVersion) {
        // Unrecognizable header: the whole file is one torn span.
        scan.torn_bytes = contents.size();
        return scan;
    }
    scan.header_ok = true;
    scan.segment_index = read_u64(contents, kSegmentMagic.size() + 4);
    scan.valid_prefix = kSegmentHeaderSize;

    const std::string magic = record_magic_bytes();
    std::size_t pos = kSegmentHeaderSize;
    std::size_t bad_start = std::string_view::npos;  // open corrupt span

    const auto finish_with_tail = [&]() {
        // Everything after the last valid record — an open corrupt span
        // included — runs to end-of-file, so it is a torn tail, not a
        // quarantinable middle.
        scan.torn_bytes = contents.size() - scan.valid_prefix;
    };

    while (pos < contents.size()) {
        const std::size_t remaining = contents.size() - pos;
        bool bad = false;
        if (remaining < kRecordHeaderSize) {
            finish_with_tail();
            return scan;
        }
        if (read_u32(contents, pos) != kRecordMagic) {
            bad = true;
        } else {
            const std::uint32_t raw_type = read_u32(contents, pos + 4);
            const std::uint64_t payload_size = read_u64(contents, pos + 24);
            if (!is_valid_record_type(raw_type) ||
                payload_size > kMaxRecordPayload) {
                bad = true;
            } else if (remaining <
                       kRecordHeaderSize + payload_size + 8) {
                // Well-formed header whose frame runs off the end. The
                // classic torn group commit — unless the length field
                // itself is the corrupt byte and valid records still
                // follow, so resynchronize like any other bad record;
                // when no later record parses this still ends as a tail.
                bad = true;
            } else {
                const std::string_view body =
                    contents.substr(pos + 4, 28 + payload_size);
                const std::uint64_t stored = read_u64(
                    contents,
                    pos + kRecordHeaderSize +
                        static_cast<std::size_t>(payload_size));
                if (stored != util::checksum64(body)) {
                    bad = true;
                } else {
                    if (bad_start != std::string_view::npos) {
                        scan.corrupt_bytes += pos - bad_start;
                        ++scan.corrupt_spans;
                        bad_start = std::string_view::npos;
                    }
                    LedgerRecord record;
                    record.type = static_cast<RecordType>(raw_type);
                    record.campaign = read_u64(contents, pos + 8);
                    record.sequence = read_u64(contents, pos + 16);
                    record.payload = std::string(contents.substr(
                        pos + kRecordHeaderSize,
                        static_cast<std::size_t>(payload_size)));
                    scan.records.push_back(std::move(record));
                    pos += kRecordHeaderSize +
                           static_cast<std::size_t>(payload_size) + 8;
                    scan.valid_prefix = pos;
                }
            }
        }
        if (bad) {
            if (bad_start == std::string_view::npos) bad_start = pos;
            // Resynchronize on the next record magic; a flipped length
            // or type only loses one record, not the segment.
            const std::size_t next = contents.find(magic, pos + 1);
            if (next == std::string_view::npos) {
                finish_with_tail();
                return scan;
            }
            pos = next;
        }
    }
    if (bad_start != std::string_view::npos) {
        finish_with_tail();
    }
    return scan;
}

std::string segment_file_name(std::uint64_t segment_index) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "seg-%06llu.ledg",
                  static_cast<unsigned long long>(segment_index));
    return buffer;
}

std::optional<std::uint64_t> parse_segment_file_name(std::string_view name) {
    if (name.size() != 15 || name.substr(0, 4) != "seg-" ||
        name.substr(10) != ".ledg") {
        return std::nullopt;
    }
    std::uint64_t index = 0;
    for (std::size_t i = 4; i < 10; ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return std::nullopt;
        index = index * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return index;
}

}  // namespace cichar::store
