#include "nn/ga_trainer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cichar::nn {

std::vector<double> flatten_weights(const Mlp& net) {
    std::vector<double> flat;
    flat.reserve(net.parameter_count());
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
        const Layer& layer = net.layer(l);
        flat.insert(flat.end(), layer.weights.begin(), layer.weights.end());
        flat.insert(flat.end(), layer.biases.begin(), layer.biases.end());
    }
    return flat;
}

void restore_weights(Mlp& net, std::span<const double> flat) {
    assert(flat.size() == net.parameter_count());
    std::size_t offset = 0;
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
        Layer& layer = net.layer(l);
        std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                    layer.weights.size(), layer.weights.begin());
        offset += layer.weights.size();
        std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                    layer.biases.size(), layer.biases.begin());
        offset += layer.biases.size();
    }
}

namespace {

struct WeightIndividual {
    std::vector<double> genes;
    double mse = std::numeric_limits<double>::infinity();
};

}  // namespace

TrainReport GaTrainer::train(Mlp& net, const Dataset& train_set,
                             const Dataset& validation_set,
                             util::Rng& rng) const {
    assert(!train_set.empty());
    assert(options_.population >= 2);
    assert(options_.elite < options_.population);

    const std::size_t genome = net.parameter_count();
    Mlp scratch = net;  // evaluation workspace

    const auto evaluate = [&](WeightIndividual& individual) {
        restore_weights(scratch, individual.genes);
        individual.mse = evaluate_mse(scratch, train_set);
    };

    // Initial population: the incoming net plus random perturbations.
    std::vector<WeightIndividual> population(options_.population);
    population[0].genes = flatten_weights(net);
    for (std::size_t i = 1; i < population.size(); ++i) {
        population[i].genes.resize(genome);
        for (double& g : population[i].genes) {
            g = rng.uniform(-options_.weight_limit, options_.weight_limit);
        }
    }
    for (WeightIndividual& individual : population) evaluate(individual);

    const auto by_mse = [](const WeightIndividual& a,
                           const WeightIndividual& b) {
        return a.mse < b.mse;
    };
    const auto tournament_pick = [&]() -> const WeightIndividual& {
        const WeightIndividual* best = nullptr;
        for (std::size_t t = 0; t < options_.tournament; ++t) {
            const WeightIndividual& c = population[rng.index(population.size())];
            if (best == nullptr || c.mse < best->mse) best = &c;
        }
        return *best;
    };

    TrainReport report;
    for (std::size_t gen = 0; gen < options_.generations; ++gen) {
        std::sort(population.begin(), population.end(), by_mse);
        EpochStats stats;
        stats.train_mse = population.front().mse;
        restore_weights(scratch, population.front().genes);
        stats.validation_mse = evaluate_mse(scratch, validation_set);
        report.history.push_back(stats);
        ++report.epochs_run;
        if (stats.train_mse < options_.target_train_mse) break;

        std::vector<WeightIndividual> next;
        next.reserve(population.size());
        for (std::size_t e = 0; e < options_.elite; ++e) {
            next.push_back(population[e]);
        }
        while (next.size() < population.size()) {
            WeightIndividual child;
            if (rng.bernoulli(options_.crossover_rate)) {
                const WeightIndividual& a = tournament_pick();
                const WeightIndividual& b = tournament_pick();
                child.genes.resize(genome);
                // Blend crossover: child weight = convex mix of parents,
                // standard for real-coded weight evolution.
                for (std::size_t g = 0; g < genome; ++g) {
                    const double alpha = rng.uniform();
                    child.genes[g] =
                        alpha * a.genes[g] + (1.0 - alpha) * b.genes[g];
                }
            } else {
                child.genes = tournament_pick().genes;
            }
            for (double& g : child.genes) {
                if (rng.bernoulli(options_.mutation_rate)) {
                    g = std::clamp(g + rng.normal(0.0, options_.mutation_sigma),
                                   -options_.weight_limit,
                                   options_.weight_limit);
                }
            }
            evaluate(child);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }

    std::sort(population.begin(), population.end(), by_mse);
    restore_weights(net, population.front().genes);
    report.final_train_mse = evaluate_mse(net, train_set);
    report.final_validation_mse = evaluate_mse(net, validation_set);
    report.learned = report.final_train_mse <= options_.learnability_mse;
    report.generalizes =
        validation_set.empty()
            ? report.learned
            : report.final_validation_mse <= options_.generalization_mse;
    return report;
}

}  // namespace cichar::nn
