// Neural network training by genetic algorithm — the paper's reference
// [13] (van Rooij, Jain & Johnson, "Neural Network Training Using Genetic
// Algorithms"). A real-coded GA evolves the flattened weight vector with
// fitness = negative training MSE. Gradient-free: useful when the
// activation is non-differentiable or as a backprop baseline (see
// bench_ablation_* and the nn tests).
#pragma once

#include "nn/trainer.hpp"

namespace cichar::nn {

struct GaTrainOptions {
    std::size_t population = 30;
    std::size_t generations = 80;
    double weight_limit = 3.0;     ///< genes live in [-limit, limit]
    double crossover_rate = 0.9;
    double mutation_rate = 0.10;   ///< per-weight probability
    double mutation_sigma = 0.25;  ///< Gaussian step
    std::size_t elite = 2;
    std::size_t tournament = 3;
    /// Stop early when training MSE falls below this.
    double target_train_mse = 1e-4;
    /// Learnability / generalization thresholds (as in TrainOptions).
    double learnability_mse = 0.02;
    double generalization_mse = 0.04;
};

/// Evolves the weights of `net` in place. The report's `epochs_run` counts
/// generations; history records the best individual's MSE per generation.
class GaTrainer {
public:
    GaTrainer() = default;
    explicit GaTrainer(GaTrainOptions options) : options_(options) {}

    [[nodiscard]] const GaTrainOptions& options() const noexcept {
        return options_;
    }

    TrainReport train(Mlp& net, const Dataset& train_set,
                      const Dataset& validation_set, util::Rng& rng) const;

private:
    GaTrainOptions options_;
};

/// Weight-vector flattening helpers (also used by tests).
[[nodiscard]] std::vector<double> flatten_weights(const Mlp& net);
void restore_weights(Mlp& net, std::span<const double> flat);

}  // namespace cichar::nn
