// NN voting machine (paper Fig. 4 step 1): multiple MLPs trained on
// different subsets of the training tests vote in parallel on unknown
// inputs; classification confidence is "determined by averaging the mean
// error for each network (i.e. consistency check)".
//
// Training really is parallel here: each member depends only on its own
// pre-forked RNG stream (rng.fork(m + 1)), so members train concurrently
// on a thread pool with bit-identical results at any `jobs` count.
#pragma once

#include <vector>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace cichar::nn {

struct CommitteeOptions {
    std::size_t members = 5;
    /// Fraction of the training set each member sees (distinct subsets).
    double subset_fraction = 0.7;
    std::vector<std::size_t> hidden_layers = {24, 12};
    Activation hidden_activation = Activation::kTanh;
    Activation output_activation = Activation::kSigmoid;
    TrainOptions train;
    /// Worker threads for member training: 1 = serial (default),
    /// 0 = one per hardware thread. Results are identical at any value.
    std::size_t jobs = 1;
};

/// Prediction with vote bookkeeping.
struct VoteResult {
    std::vector<double> mean_output;   ///< averaged member outputs
    std::size_t majority_class = 0;    ///< argmax vote across members
    double agreement = 0.0;            ///< fraction voting with majority
    double dispersion = 0.0;           ///< mean stddev across outputs
};

/// Reusable buffers for allocation-free vote(); one per thread.
struct VoteScratch {
    ForwardScratch forward;
    std::vector<std::vector<double>> outputs;
    std::vector<std::size_t> class_votes;
};

/// Reusable buffers for batched committee scoring; one per thread. The
/// candidate feature matrix is packed once and reused across every
/// member's forward_batch_packed call.
struct BatchVoteScratch {
    BatchScratch forward;
    std::vector<double> packed;          ///< [input][batch], shared by members
    std::vector<double> member_outputs;  ///< members × [output][batch]
    std::vector<std::size_t> class_votes;
};

class VotingCommittee {
public:
    VotingCommittee() = default;

    [[nodiscard]] std::size_t member_count() const noexcept {
        return members_.size();
    }
    [[nodiscard]] const Mlp& member(std::size_t i) const noexcept {
        return members_[i];
    }
    [[nodiscard]] const std::vector<double>& member_validation_errors()
        const noexcept {
        return validation_errors_;
    }

    /// Paper's consistency check: mean of the members' validation MSEs.
    [[nodiscard]] double mean_validation_error() const noexcept;

    /// Trains `options.members` nets on distinct subsets (in parallel when
    /// options.jobs != 1). Returns one TrainReport per member.
    std::vector<TrainReport> train(const Dataset& train_set,
                                   const Dataset& validation_set,
                                   const CommitteeOptions& options,
                                   util::Rng& rng);

    /// Averaged member outputs.
    [[nodiscard]] std::vector<double> predict(std::span<const double> x) const;

    /// Allocation-free prediction into `mean` (resized to output width).
    void predict(std::span<const double> x, ForwardScratch& scratch,
                 std::vector<double>& mean) const;

    /// Parallel vote with agreement statistics.
    [[nodiscard]] VoteResult vote(std::span<const double> x) const;

    /// Allocation-free vote into `result`.
    void vote(std::span<const double> x, VoteScratch& scratch,
              VoteResult& result) const;

    /// Batched prediction over `batch` row-major sample vectors. `means`
    /// is resized to batch * output width, sample-major: sample b's mean
    /// output o lands at [b * width + o]. Per-sample member accumulation
    /// order matches predict(), so results are bit-identical to the
    /// scalar path at any batch size.
    void predict_batch(std::span<const double> xs, std::size_t batch,
                       BatchVoteScratch& scratch,
                       std::vector<double>& means) const;

    /// Batched vote over `batch` row-major sample vectors; `results` is
    /// resized to `batch`. Every statistic (mean, majority, agreement,
    /// dispersion) is accumulated in the same order as the scalar vote(),
    /// so each entry is bit-identical to vote() on that sample.
    void vote_batch(std::span<const double> xs, std::size_t batch,
                    BatchVoteScratch& scratch,
                    std::vector<VoteResult>& results) const;

    // Serialization hooks (weights_io).
    void set_members(std::vector<Mlp> members,
                     std::vector<double> validation_errors);

private:
    std::vector<Mlp> members_;
    std::vector<double> validation_errors_;
};

}  // namespace cichar::nn
