#include "nn/dataset.hpp"

#include <algorithm>
#include <cassert>

namespace cichar::nn {

void Dataset::add(std::vector<double> input, std::vector<double> target) {
    if (inputs_.empty() && input_width_ == 0 && target_width_ == 0) {
        input_width_ = input.size();
        target_width_ = target.size();
    }
    assert(input.size() == input_width_);
    assert(target.size() == target_width_);
    inputs_.push_back(std::move(input));
    targets_.push_back(std::move(target));
}

void Dataset::append(const Dataset& other) {
    assert(other.empty() || other.input_width() == input_width_ ||
           inputs_.empty());
    for (std::size_t i = 0; i < other.size(); ++i) {
        add(std::vector<double>(other.input(i).begin(), other.input(i).end()),
            std::vector<double>(other.target(i).begin(),
                                other.target(i).end()));
    }
}

void Normalizer::fit(const Dataset& data) {
    assert(!data.empty());
    const std::size_t width = data.input_width();
    lo_.assign(width, 0.0);
    hi_.assign(width, 0.0);
    for (std::size_t f = 0; f < width; ++f) {
        lo_[f] = data.input(0)[f];
        hi_[f] = data.input(0)[f];
    }
    for (std::size_t i = 1; i < data.size(); ++i) {
        const auto x = data.input(i);
        for (std::size_t f = 0; f < width; ++f) {
            lo_[f] = std::min(lo_[f], x[f]);
            hi_[f] = std::max(hi_[f], x[f]);
        }
    }
}

std::vector<double> Normalizer::apply(std::span<const double> x) const {
    assert(x.size() == lo_.size());
    std::vector<double> out(x.size());
    for (std::size_t f = 0; f < x.size(); ++f) {
        out[f] = hi_[f] == lo_[f] ? 0.5 : (x[f] - lo_[f]) / (hi_[f] - lo_[f]);
    }
    return out;
}

void Normalizer::restore(std::vector<double> lo, std::vector<double> hi) {
    assert(lo.size() == hi.size());
    lo_ = std::move(lo);
    hi_ = std::move(hi);
}

std::pair<Dataset, Dataset> split(const Dataset& data, double train_fraction,
                                  util::Rng& rng) {
    assert(train_fraction > 0.0 && train_fraction <= 1.0);
    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(std::span<std::size_t>(order));

    const auto n_train = static_cast<std::size_t>(
        train_fraction * static_cast<double>(data.size()) + 0.5);
    Dataset train(data.input_width(), data.target_width());
    Dataset validation(data.input_width(), data.target_width());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::size_t idx = order[i];
        Dataset& dest = i < n_train ? train : validation;
        dest.add(std::vector<double>(data.input(idx).begin(),
                                     data.input(idx).end()),
                 std::vector<double>(data.target(idx).begin(),
                                     data.target(idx).end()));
    }
    return {std::move(train), std::move(validation)};
}

Dataset subset(const Dataset& data, double fraction, util::Rng& rng) {
    assert(fraction > 0.0 && fraction <= 1.0);
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               fraction * static_cast<double>(data.size()) + 0.5));
    const auto picks =
        rng.sample_without_replacement(std::min(n, data.size()), data.size());
    Dataset out(data.input_width(), data.target_width());
    for (const std::size_t idx : picks) {
        out.add(std::vector<double>(data.input(idx).begin(),
                                    data.input(idx).end()),
                std::vector<double>(data.target(idx).begin(),
                                    data.target(idx).end()));
    }
    return out;
}

}  // namespace cichar::nn
