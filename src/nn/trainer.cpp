#include "nn/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cichar::nn {

namespace {

/// Samples per batched-evaluation tile. Dataset rows are individually
/// allocated, so evaluation packs each tile feature-major right before
/// the batched forward.
constexpr std::size_t kEvalTile = 64;

void pack_dataset_tile(const Dataset& data, std::size_t first,
                       std::size_t count, std::vector<double>& packed) {
    packed.resize(data.input_width() * count);
    for (std::size_t b = 0; b < count; ++b) {
        const std::span<const double> in = data.input(first + b);
        for (std::size_t f = 0; f < in.size(); ++f) {
            packed[f * count + b] = in[f];
        }
    }
}

}  // namespace

double evaluate_mse(const Mlp& net, const Dataset& data) {
    if (data.empty()) return 0.0;
    BatchScratch scratch;
    std::vector<double> packed;
    const std::size_t width = net.output_size();
    double total = 0.0;
    // The error sum still runs sample-ascending, output-ascending — the
    // same order as the scalar loop — so the MSE is bit-identical.
    for (std::size_t s0 = 0; s0 < data.size(); s0 += kEvalTile) {
        const std::size_t tile = std::min(kEvalTile, data.size() - s0);
        pack_dataset_tile(data, s0, tile, packed);
        const std::span<const double> out =
            net.forward_batch_packed(packed, tile, scratch);
        for (std::size_t b = 0; b < tile; ++b) {
            const auto target = data.target(s0 + b);
            for (std::size_t o = 0; o < width; ++o) {
                const double e = out[o * tile + b] - target[o];
                total += e * e;
            }
        }
    }
    return total / (static_cast<double>(data.size()) *
                    static_cast<double>(net.output_size()));
}

double evaluate_class_accuracy(const Mlp& net, const Dataset& data) {
    if (data.empty()) return 0.0;
    BatchScratch scratch;
    std::vector<double> packed;
    const std::size_t width = net.output_size();
    std::size_t correct = 0;
    for (std::size_t s0 = 0; s0 < data.size(); s0 += kEvalTile) {
        const std::size_t tile = std::min(kEvalTile, data.size() - s0);
        pack_dataset_tile(data, s0, tile, packed);
        const std::span<const double> out =
            net.forward_batch_packed(packed, tile, scratch);
        for (std::size_t b = 0; b < tile; ++b) {
            const auto target = data.target(s0 + b);
            std::size_t best = 0;
            for (std::size_t o = 1; o < width; ++o) {
                if (out[o * tile + b] > out[best * tile + b]) best = o;
            }
            const auto target_argmax = static_cast<std::size_t>(
                std::max_element(target.begin(), target.end()) -
                target.begin());
            if (best == target_argmax) ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

namespace {

/// Momentum buffers matching the MLP weight layout.
struct Velocity {
    std::vector<std::vector<double>> weights;
    std::vector<std::vector<double>> biases;

    explicit Velocity(const Mlp& net) {
        weights.reserve(net.layer_count());
        biases.reserve(net.layer_count());
        for (std::size_t l = 0; l < net.layer_count(); ++l) {
            weights.emplace_back(net.layer(l).weights.size(), 0.0);
            biases.emplace_back(net.layer(l).biases.size(), 0.0);
        }
    }
};

/// Every buffer one SGD pass needs, allocated once per train() call so
/// the per-sample step stays off the allocator.
struct SgdScratch {
    explicit SgdScratch(const Mlp& net) : velocity(net) {}

    Velocity velocity;
    std::vector<std::vector<double>> trace;
    std::vector<double> delta;
    std::vector<double> prev_delta;
};

/// One backprop step on a single sample; returns the sample's SSE.
double sgd_step(Mlp& net, std::span<const double> input,
                std::span<const double> target, double lr, double momentum,
                SgdScratch& scratch) {
    net.forward_trace(input, scratch.trace);
    const std::vector<double>& output = scratch.trace.back();

    // Output deltas for MSE loss: delta = (y - t) * act'(y).
    std::vector<double>& delta = scratch.delta;
    delta.resize(output.size());
    double sse = 0.0;
    {
        const Layer& last = net.layer(net.layer_count() - 1);
        for (std::size_t o = 0; o < output.size(); ++o) {
            const double err = output[o] - target[o];
            sse += err * err;
            delta[o] = err;
        }
        scale_by_activation_derivative(last.activation, output, delta);
    }

    // Backward pass layer by layer.
    for (std::size_t li = net.layer_count(); li-- > 0;) {
        Layer& layer = net.layer(li);
        const std::vector<double>& layer_in = scratch.trace[li];
        const bool propagate = li > 0;
        std::vector<double>& prev_delta = scratch.prev_delta;
        if (propagate) prev_delta.assign(layer.in, 0.0);

        auto& vw = scratch.velocity.weights[li];
        auto& vb = scratch.velocity.biases[li];
        for (std::size_t o = 0; o < layer.out; ++o) {
            const double d = delta[o];
            const std::size_t row = o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) {
                if (propagate) prev_delta[i] += layer.weights[row + i] * d;
                const double grad = d * layer_in[i];
                vw[row + i] = momentum * vw[row + i] - lr * grad;
                layer.weights[row + i] += vw[row + i];
            }
            vb[o] = momentum * vb[o] - lr * d;
            layer.biases[o] += vb[o];
        }
        if (propagate) {
            const Layer& below = net.layer(li - 1);
            scale_by_activation_derivative(below.activation, layer_in,
                                           prev_delta);
            delta.swap(prev_delta);
        }
    }
    return sse;
}

}  // namespace

TrainReport Trainer::train(Mlp& net, const Dataset& train_set,
                           const Dataset& validation_set,
                           util::Rng& rng) const {
    assert(!train_set.empty());
    assert(train_set.input_width() == net.input_size());
    assert(train_set.target_width() == net.output_size());

    TrainReport report;
    SgdScratch scratch(net);
    std::vector<std::size_t> order(train_set.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    double lr = options_.learning_rate;
    double best_val = std::numeric_limits<double>::infinity();
    Mlp best_net = net;
    std::size_t stale_epochs = 0;

    const double denom = static_cast<double>(train_set.size()) *
                         static_cast<double>(net.output_size());

    for (std::size_t epoch = 0; epoch < options_.max_epochs; ++epoch) {
        rng.shuffle(std::span<std::size_t>(order));
        double sse = 0.0;
        for (const std::size_t s : order) {
            sse += sgd_step(net, train_set.input(s), train_set.target(s), lr,
                            options_.momentum, scratch);
        }
        lr *= options_.lr_decay;

        EpochStats stats;
        stats.train_mse = sse / denom;
        stats.validation_mse = evaluate_mse(net, validation_set);
        report.history.push_back(stats);
        ++report.epochs_run;

        if (!validation_set.empty()) {
            if (stats.validation_mse < best_val) {
                best_val = stats.validation_mse;
                best_net = net;
                stale_epochs = 0;
            } else {
                ++stale_epochs;
                if (options_.patience != 0 && stale_epochs >= options_.patience) {
                    break;
                }
            }
        }
        if (stats.train_mse < options_.target_train_mse) break;
    }

    if (!validation_set.empty() &&
        best_val < std::numeric_limits<double>::infinity()) {
        net = best_net;
    }
    report.final_train_mse = evaluate_mse(net, train_set);
    report.final_validation_mse = evaluate_mse(net, validation_set);
    report.learned = report.final_train_mse <= options_.learnability_mse;
    report.generalizes = validation_set.empty()
                             ? report.learned
                             : report.final_validation_mse <=
                                   options_.generalization_mse;
    return report;
}

}  // namespace cichar::nn
