#include "nn/weights_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/binio.hpp"
#include "util/csv.hpp"

namespace cichar::nn {
namespace {

constexpr const char* kMlpMagic = "cichar-mlp";
constexpr const char* kCommitteeMagic = "cichar-committee";
constexpr int kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
    throw std::runtime_error("weight file malformed: " + what);
}

Activation parse_activation(const std::string& token) {
    if (token == "sigmoid") return Activation::kSigmoid;
    if (token == "tanh") return Activation::kTanh;
    if (token == "relu") return Activation::kRelu;
    if (token == "linear") return Activation::kLinear;
    malformed("unknown activation '" + token + "'");
}

void expect_token(std::istream& in, const char* expected) {
    std::string token;
    if (!(in >> token) || token != expected) {
        malformed(std::string("expected '") + expected + "', got '" + token +
                  "'");
    }
}

double read_double(std::istream& in) {
    double v = 0.0;
    if (!(in >> v)) malformed("expected a number");
    return v;
}

std::size_t read_size(std::istream& in) {
    long long v = 0;
    if (!(in >> v) || v < 0) malformed("expected a non-negative integer");
    return static_cast<std::size_t>(v);
}

}  // namespace

void save_mlp(std::ostream& out, const Mlp& net) {
    out << kMlpMagic << ' ' << kVersion << '\n';
    out << "layers " << net.layer_count() << '\n';
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
        const Layer& layer = net.layer(l);
        out << "layer " << layer.in << ' ' << layer.out << ' '
            << to_string(layer.activation) << '\n';
        out << "w";
        for (const double w : layer.weights) {
            out << ' ' << util::format_double(w);
        }
        out << "\nb";
        for (const double b : layer.biases) {
            out << ' ' << util::format_double(b);
        }
        out << '\n';
    }
    if (!out) throw std::ios_base::failure("save_mlp: stream write failed");
}

Mlp load_mlp(std::istream& in) {
    expect_token(in, kMlpMagic);
    if (read_size(in) != static_cast<std::size_t>(kVersion)) {
        malformed("unsupported mlp version");
    }
    expect_token(in, "layers");
    const std::size_t layer_count = read_size(in);
    if (layer_count == 0 || layer_count > 64) malformed("bad layer count");

    // Reconstruct via sizes, then overwrite weights.
    std::vector<std::size_t> ins;
    std::vector<std::size_t> outs;
    std::vector<Activation> acts;
    std::vector<std::vector<double>> weights;
    std::vector<std::vector<double>> biases;
    for (std::size_t l = 0; l < layer_count; ++l) {
        expect_token(in, "layer");
        const std::size_t lin = read_size(in);
        const std::size_t lout = read_size(in);
        std::string act;
        if (!(in >> act)) malformed("missing activation");
        if (lin == 0 || lout == 0 || lin > 100000 || lout > 100000) {
            malformed("bad layer shape");
        }
        ins.push_back(lin);
        outs.push_back(lout);
        acts.push_back(parse_activation(act));

        expect_token(in, "w");
        std::vector<double> w(lin * lout);
        for (double& v : w) v = read_double(in);
        weights.push_back(std::move(w));

        expect_token(in, "b");
        std::vector<double> b(lout);
        for (double& v : b) v = read_double(in);
        biases.push_back(std::move(b));

        if (l > 0 && ins[l] != outs[l - 1]) malformed("layer shape mismatch");
    }

    std::vector<std::size_t> sizes;
    sizes.push_back(ins.front());
    for (const std::size_t o : outs) sizes.push_back(o);
    Mlp net(sizes, Activation::kTanh, Activation::kSigmoid);
    for (std::size_t l = 0; l < layer_count; ++l) {
        Layer& layer = net.layer(l);
        layer.activation = acts[l];
        layer.weights = std::move(weights[l]);
        layer.biases = std::move(biases[l]);
    }
    return net;
}

void save_committee(std::ostream& out, const VotingCommittee& committee) {
    out << kCommitteeMagic << ' ' << kVersion << '\n';
    out << "members " << committee.member_count() << '\n';
    out << "val_errors";
    for (const double e : committee.member_validation_errors()) {
        out << ' ' << util::format_double(e);
    }
    out << '\n';
    for (std::size_t m = 0; m < committee.member_count(); ++m) {
        save_mlp(out, committee.member(m));
    }
}

VotingCommittee load_committee(std::istream& in) {
    expect_token(in, kCommitteeMagic);
    if (read_size(in) != static_cast<std::size_t>(kVersion)) {
        malformed("unsupported committee version");
    }
    expect_token(in, "members");
    const std::size_t count = read_size(in);
    if (count == 0 || count > 1024) malformed("bad member count");
    expect_token(in, "val_errors");
    std::vector<double> errors(count);
    for (double& e : errors) e = read_double(in);
    std::vector<Mlp> members;
    members.reserve(count);
    for (std::size_t m = 0; m < count; ++m) members.push_back(load_mlp(in));

    VotingCommittee committee;
    committee.set_members(std::move(members), std::move(errors));
    return committee;
}

void save_committee_file(const std::string& path,
                         const VotingCommittee& committee) {
    std::ostringstream out;
    save_committee(out, committee);
    // Atomic publish: a crash mid-save must never tear a committee a
    // later session would try to load.
    if (!util::atomic_write_file(path, out.str())) {
        throw std::ios_base::failure("cannot write committee: " + path);
    }
}

VotingCommittee load_committee_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::ios_base::failure("cannot open for read: " + path);
    return load_committee(in);
}

}  // namespace cichar::nn
