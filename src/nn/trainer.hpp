// Online SGD backprop trainer with the paper's "iterative network
// learnability and generalization check" (Fig. 4 step 4): after training,
// the report says whether the net learned the training set and whether it
// generalizes to held-out tests; if not, the caller gathers more data and
// goes back to step 1.
#pragma once

#include <vector>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace cichar::nn {

struct TrainOptions {
    std::size_t max_epochs = 400;
    double learning_rate = 0.1;
    double momentum = 0.9;
    /// Multiplies the learning rate each epoch (1.0 = constant).
    double lr_decay = 0.995;
    /// Stop early when training MSE falls below this.
    double target_train_mse = 1e-4;
    /// Early-stop patience: epochs without validation improvement
    /// (0 disables validation-based early stopping).
    std::size_t patience = 40;
    /// Learnability threshold: training MSE must end below this.
    double learnability_mse = 0.02;
    /// Generalization threshold: validation MSE must end below this.
    double generalization_mse = 0.04;
};

/// Per-epoch history entry.
struct EpochStats {
    double train_mse = 0.0;
    double validation_mse = 0.0;
};

/// Outcome of one training run.
struct TrainReport {
    std::size_t epochs_run = 0;
    double final_train_mse = 0.0;
    double final_validation_mse = 0.0;
    bool learned = false;      ///< train MSE below learnability threshold
    bool generalizes = false;  ///< validation MSE below threshold
    std::vector<EpochStats> history;
};

/// Mean squared error of `net` over `data` (0 for an empty set).
[[nodiscard]] double evaluate_mse(const Mlp& net, const Dataset& data);

/// Fraction of samples whose argmax output matches the argmax target
/// (classification view of fuzzy-coded targets). 0 for an empty set.
[[nodiscard]] double evaluate_class_accuracy(const Mlp& net,
                                             const Dataset& data);

class Trainer {
public:
    explicit Trainer(TrainOptions options = TrainOptions{})
        : options_(options) {}

    [[nodiscard]] const TrainOptions& options() const noexcept {
        return options_;
    }

    /// Trains in place with per-sample SGD (shuffled each epoch). The best
    /// validation-MSE weights are restored at the end when a validation
    /// set is provided.
    TrainReport train(Mlp& net, const Dataset& train_set,
                      const Dataset& validation_set, util::Rng& rng) const;

private:
    TrainOptions options_;
};

}  // namespace cichar::nn
