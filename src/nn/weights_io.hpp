// NN weight file serialization (paper Fig. 4 step 5: "a NN weight file is
// generated. This file will be used in classification task of worst case
// test based on only software computation"). Plain text, versioned,
// round-trip exact via shortest-round-trip double formatting.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/committee.hpp"
#include "nn/mlp.hpp"

namespace cichar::nn {

/// Writes one MLP. Throws std::ios_base::failure on stream errors.
void save_mlp(std::ostream& out, const Mlp& net);

/// Reads one MLP. Throws std::runtime_error on malformed input.
[[nodiscard]] Mlp load_mlp(std::istream& in);

/// Writes a committee (members + validation errors).
void save_committee(std::ostream& out, const VotingCommittee& committee);

/// Reads a committee. Throws std::runtime_error on malformed input.
[[nodiscard]] VotingCommittee load_committee(std::istream& in);

/// File-path conveniences.
void save_committee_file(const std::string& path,
                         const VotingCommittee& committee);
[[nodiscard]] VotingCommittee load_committee_file(const std::string& path);

}  // namespace cichar::nn
