// Supervised dataset utilities for the characterization learner: storage,
// min-max normalization, train/validation splitting, and bootstrap
// subsets for the committee ("multiple NNs are trained on different
// subsets of the training input tests").
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace cichar::nn {

/// In-memory supervised dataset (row-major sample vectors).
class Dataset {
public:
    Dataset() = default;
    Dataset(std::size_t input_width, std::size_t target_width)
        : input_width_(input_width), target_width_(target_width) {}

    [[nodiscard]] std::size_t size() const noexcept { return inputs_.size(); }
    [[nodiscard]] bool empty() const noexcept { return inputs_.empty(); }
    [[nodiscard]] std::size_t input_width() const noexcept {
        return input_width_;
    }
    [[nodiscard]] std::size_t target_width() const noexcept {
        return target_width_;
    }

    /// Adds one sample; widths must match (first add fixes them if the
    /// dataset was default-constructed).
    void add(std::vector<double> input, std::vector<double> target);

    [[nodiscard]] std::span<const double> input(std::size_t i) const noexcept {
        return inputs_[i];
    }
    [[nodiscard]] std::span<const double> target(std::size_t i) const noexcept {
        return targets_[i];
    }

    /// Merges all samples of `other` (widths must match).
    void append(const Dataset& other);

private:
    std::size_t input_width_ = 0;
    std::size_t target_width_ = 0;
    std::vector<std::vector<double>> inputs_;
    std::vector<std::vector<double>> targets_;
};

/// Per-feature min-max normalizer mapping inputs to [0, 1]. Degenerate
/// features (min == max) map to 0.5.
class Normalizer {
public:
    /// Fits on the dataset's inputs. Dataset must be non-empty.
    void fit(const Dataset& data);

    [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }
    [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;

    [[nodiscard]] const std::vector<double>& lo() const noexcept { return lo_; }
    [[nodiscard]] const std::vector<double>& hi() const noexcept { return hi_; }

    /// Rebuilds from stored bounds (weight-file load path).
    void restore(std::vector<double> lo, std::vector<double> hi);

private:
    std::vector<double> lo_;
    std::vector<double> hi_;
};

/// Random split into (train, validation); `train_fraction` in (0, 1].
[[nodiscard]] std::pair<Dataset, Dataset> split(const Dataset& data,
                                                double train_fraction,
                                                util::Rng& rng);

/// Bootstrap subset: `fraction` of the samples drawn *without*
/// replacement — each committee member sees a different random subset.
[[nodiscard]] Dataset subset(const Dataset& data, double fraction,
                             util::Rng& rng);

}  // namespace cichar::nn
