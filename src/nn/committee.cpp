#include "nn/committee.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cichar::nn {

double VotingCommittee::mean_validation_error() const noexcept {
    if (validation_errors_.empty()) return 0.0;
    double sum = 0.0;
    for (const double e : validation_errors_) sum += e;
    return sum / static_cast<double>(validation_errors_.size());
}

std::vector<TrainReport> VotingCommittee::train(const Dataset& train_set,
                                                const Dataset& validation_set,
                                                const CommitteeOptions& options,
                                                util::Rng& rng) {
    assert(options.members >= 1);
    members_.clear();
    validation_errors_.clear();

    std::vector<std::size_t> sizes;
    sizes.push_back(train_set.input_width());
    for (const std::size_t h : options.hidden_layers) sizes.push_back(h);
    sizes.push_back(train_set.target_width());

    Trainer trainer(options.train);
    std::vector<TrainReport> reports;
    reports.reserve(options.members);

    for (std::size_t m = 0; m < options.members; ++m) {
        util::Rng member_rng = rng.fork(m + 1);
        const Dataset member_data =
            options.subset_fraction >= 1.0
                ? train_set
                : subset(train_set, options.subset_fraction, member_rng);
        Mlp net(sizes, options.hidden_activation, options.output_activation);
        net.init_weights(member_rng);
        reports.push_back(
            trainer.train(net, member_data, validation_set, member_rng));
        validation_errors_.push_back(reports.back().final_validation_mse);
        members_.push_back(std::move(net));
    }
    return reports;
}

std::vector<double> VotingCommittee::predict(std::span<const double> x) const {
    assert(!members_.empty());
    std::vector<double> mean(members_.front().output_size(), 0.0);
    for (const Mlp& net : members_) {
        const std::vector<double> out = net.forward(x);
        for (std::size_t o = 0; o < out.size(); ++o) mean[o] += out[o];
    }
    for (double& v : mean) v /= static_cast<double>(members_.size());
    return mean;
}

VoteResult VotingCommittee::vote(std::span<const double> x) const {
    assert(!members_.empty());
    const std::size_t width = members_.front().output_size();
    VoteResult result;
    result.mean_output.assign(width, 0.0);

    std::vector<std::vector<double>> outputs;
    outputs.reserve(members_.size());
    std::vector<std::size_t> class_votes(width, 0);
    for (const Mlp& net : members_) {
        outputs.push_back(net.forward(x));
        const auto& out = outputs.back();
        for (std::size_t o = 0; o < width; ++o) {
            result.mean_output[o] += out[o];
        }
        const auto argmax = static_cast<std::size_t>(
            std::max_element(out.begin(), out.end()) - out.begin());
        ++class_votes[argmax];
    }
    for (double& v : result.mean_output) {
        v /= static_cast<double>(members_.size());
    }

    const auto majority = static_cast<std::size_t>(
        std::max_element(class_votes.begin(), class_votes.end()) -
        class_votes.begin());
    result.majority_class = majority;
    result.agreement = static_cast<double>(class_votes[majority]) /
                       static_cast<double>(members_.size());

    double dispersion = 0.0;
    for (std::size_t o = 0; o < width; ++o) {
        double var = 0.0;
        for (const auto& out : outputs) {
            const double d = out[o] - result.mean_output[o];
            var += d * d;
        }
        dispersion += std::sqrt(var / static_cast<double>(outputs.size()));
    }
    result.dispersion = dispersion / static_cast<double>(width);
    return result;
}

void VotingCommittee::set_members(std::vector<Mlp> members,
                                  std::vector<double> validation_errors) {
    assert(members.size() == validation_errors.size());
    members_ = std::move(members);
    validation_errors_ = std::move(validation_errors);
}

}  // namespace cichar::nn
