#include "nn/committee.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.hpp"

namespace cichar::nn {

double VotingCommittee::mean_validation_error() const noexcept {
    if (validation_errors_.empty()) return 0.0;
    double sum = 0.0;
    for (const double e : validation_errors_) sum += e;
    return sum / static_cast<double>(validation_errors_.size());
}

std::vector<TrainReport> VotingCommittee::train(const Dataset& train_set,
                                                const Dataset& validation_set,
                                                const CommitteeOptions& options,
                                                util::Rng& rng) {
    assert(options.members >= 1);
    members_.assign(options.members, Mlp{});
    validation_errors_.assign(options.members, 0.0);

    std::vector<std::size_t> sizes;
    sizes.push_back(train_set.input_width());
    for (const std::size_t h : options.hidden_layers) sizes.push_back(h);
    sizes.push_back(train_set.target_width());

    // Pre-fork every member's stream on the calling thread; from here on a
    // member's result depends only on its own Rng, so scheduling cannot
    // perturb anything.
    std::vector<util::Rng> member_rngs;
    member_rngs.reserve(options.members);
    for (std::size_t m = 0; m < options.members; ++m) {
        member_rngs.push_back(rng.fork(m + 1));
    }

    const Trainer trainer(options.train);
    std::vector<TrainReport> reports(options.members);

    const auto train_member = [&](std::size_t m) {
        util::Rng member_rng = member_rngs[m];
        const Dataset member_data =
            options.subset_fraction >= 1.0
                ? train_set
                : subset(train_set, options.subset_fraction, member_rng);
        Mlp net(sizes, options.hidden_activation, options.output_activation);
        net.init_weights(member_rng);
        reports[m] = trainer.train(net, member_data, validation_set, member_rng);
        validation_errors_[m] = reports[m].final_validation_mse;
        members_[m] = std::move(net);
    };

    if (options.jobs == 1 || options.members == 1) {
        for (std::size_t m = 0; m < options.members; ++m) train_member(m);
    } else {
        util::ThreadPool pool(options.jobs);
        for (std::size_t m = 0; m < options.members; ++m) {
            pool.submit([&train_member, m] { train_member(m); });
        }
        pool.wait();
    }
    return reports;
}

void VotingCommittee::predict(std::span<const double> x,
                              ForwardScratch& scratch,
                              std::vector<double>& mean) const {
    assert(!members_.empty());
    mean.assign(members_.front().output_size(), 0.0);
    for (const Mlp& net : members_) {
        const std::span<const double> out = net.forward(x, scratch);
        for (std::size_t o = 0; o < out.size(); ++o) mean[o] += out[o];
    }
    for (double& v : mean) v /= static_cast<double>(members_.size());
}

std::vector<double> VotingCommittee::predict(std::span<const double> x) const {
    ForwardScratch scratch;
    std::vector<double> mean;
    predict(x, scratch, mean);
    return mean;
}

void VotingCommittee::vote(std::span<const double> x, VoteScratch& scratch,
                           VoteResult& result) const {
    assert(!members_.empty());
    const std::size_t width = members_.front().output_size();
    result.mean_output.assign(width, 0.0);

    scratch.outputs.resize(members_.size());
    scratch.class_votes.assign(width, 0);
    for (std::size_t m = 0; m < members_.size(); ++m) {
        const std::span<const double> fwd =
            members_[m].forward(x, scratch.forward);
        scratch.outputs[m].assign(fwd.begin(), fwd.end());
        const auto& out = scratch.outputs[m];
        for (std::size_t o = 0; o < width; ++o) {
            result.mean_output[o] += out[o];
        }
        const auto argmax = static_cast<std::size_t>(
            std::max_element(out.begin(), out.end()) - out.begin());
        ++scratch.class_votes[argmax];
    }
    for (double& v : result.mean_output) {
        v /= static_cast<double>(members_.size());
    }

    const auto majority = static_cast<std::size_t>(
        std::max_element(scratch.class_votes.begin(),
                         scratch.class_votes.end()) -
        scratch.class_votes.begin());
    result.majority_class = majority;
    result.agreement = static_cast<double>(scratch.class_votes[majority]) /
                       static_cast<double>(members_.size());

    double dispersion = 0.0;
    for (std::size_t o = 0; o < width; ++o) {
        double var = 0.0;
        for (const auto& out : scratch.outputs) {
            const double d = out[o] - result.mean_output[o];
            var += d * d;
        }
        dispersion += std::sqrt(var / static_cast<double>(scratch.outputs.size()));
    }
    result.dispersion = dispersion / static_cast<double>(width);
}

void VotingCommittee::predict_batch(std::span<const double> xs,
                                    std::size_t batch,
                                    BatchVoteScratch& scratch,
                                    std::vector<double>& means) const {
    assert(!members_.empty());
    const std::size_t width = members_.front().output_size();
    means.assign(batch * width, 0.0);
    if (batch == 0) return;
    pack_batch(xs, batch, members_.front().input_size(), scratch.packed);
    for (const Mlp& net : members_) {
        const std::span<const double> out =
            net.forward_batch_packed(scratch.packed, batch, scratch.forward);
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t o = 0; o < width; ++o) {
                means[b * width + o] += out[o * batch + b];
            }
        }
    }
    for (double& v : means) v /= static_cast<double>(members_.size());
}

void VotingCommittee::vote_batch(std::span<const double> xs, std::size_t batch,
                                 BatchVoteScratch& scratch,
                                 std::vector<VoteResult>& results) const {
    assert(!members_.empty());
    const std::size_t width = members_.front().output_size();
    const std::size_t members = members_.size();
    results.resize(batch);
    if (batch == 0) return;

    // One packed feature matrix feeds every member's batched forward.
    pack_batch(xs, batch, members_.front().input_size(), scratch.packed);
    scratch.member_outputs.resize(members * width * batch);
    for (std::size_t m = 0; m < members; ++m) {
        const std::span<const double> out = members_[m].forward_batch_packed(
            scratch.packed, batch, scratch.forward);
        std::copy(out.begin(), out.end(),
                  scratch.member_outputs.begin() +
                      static_cast<std::ptrdiff_t>(m * width * batch));
    }

    // Per-sample statistics in the exact accumulation order of the
    // scalar vote(): members ascending, first-max-wins argmaxes.
    scratch.class_votes.resize(width);
    for (std::size_t b = 0; b < batch; ++b) {
        VoteResult& result = results[b];
        result.mean_output.assign(width, 0.0);
        std::fill(scratch.class_votes.begin(), scratch.class_votes.end(),
                  std::size_t{0});
        for (std::size_t m = 0; m < members; ++m) {
            const double* out =
                scratch.member_outputs.data() + m * width * batch;
            std::size_t best = 0;
            double best_value = out[b];
            for (std::size_t o = 0; o < width; ++o) {
                const double v = out[o * batch + b];
                result.mean_output[o] += v;
                if (v > best_value) {
                    best_value = v;
                    best = o;
                }
            }
            ++scratch.class_votes[best];
        }
        for (double& v : result.mean_output) {
            v /= static_cast<double>(members);
        }

        std::size_t majority = 0;
        for (std::size_t o = 1; o < width; ++o) {
            if (scratch.class_votes[o] > scratch.class_votes[majority]) {
                majority = o;
            }
        }
        result.majority_class = majority;
        result.agreement = static_cast<double>(scratch.class_votes[majority]) /
                           static_cast<double>(members);

        double dispersion = 0.0;
        for (std::size_t o = 0; o < width; ++o) {
            double var = 0.0;
            for (std::size_t m = 0; m < members; ++m) {
                const double d =
                    scratch.member_outputs[m * width * batch + o * batch + b] -
                    result.mean_output[o];
                var += d * d;
            }
            dispersion += std::sqrt(var / static_cast<double>(members));
        }
        result.dispersion = dispersion / static_cast<double>(width);
    }
}

VoteResult VotingCommittee::vote(std::span<const double> x) const {
    VoteScratch scratch;
    VoteResult result;
    vote(x, scratch, result);
    return result;
}

void VotingCommittee::set_members(std::vector<Mlp> members,
                                  std::vector<double> validation_errors) {
    assert(members.size() == validation_errors.size());
    members_ = std::move(members);
    validation_errors_ = std::move(validation_errors);
}

}  // namespace cichar::nn
