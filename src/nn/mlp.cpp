#include "nn/mlp.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

// Explicit SIMD microkernel for the batch-major layer loops. Enabled on
// x86-64 GCC/Clang unless CICHAR_NO_BATCH_SIMD is defined; the AVX2 body
// is selected at runtime only when the CPU reports AVX2, so the default
// (baseline-arch) build stays portable. The microkernel uses separate
// multiply and add — never FMA — so each lane executes the exact
// operation sequence of the scalar path and results stay bit-identical.
// When the whole build enables FMA contraction (-march with __FMA__), the
// microkernel is skipped: the generic kernel then contracts under the
// same flags as the scalar path, keeping the two paths consistent.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(__FMA__) && !defined(CICHAR_NO_BATCH_SIMD)
#define CICHAR_BATCH_AVX2 1
#include <immintrin.h>
#endif

namespace cichar::nn {

namespace {

// ---------------------------------------------------------------------
// Deterministic transcendental activations. libm's tanh/exp are scalar
// entry points the batch engine cannot vectorize, and their results are
// not reproducible across libm versions. These replacements use plain
// IEEE-754 arithmetic only (mul/add/sub/div plus exponent bit assembly),
// so the *identical* operation sequence runs either in scalar code or in
// one SIMD lane — which is what keeps the batched forward bit-identical
// to the scalar forward. Accuracy is ~1e-13 relative (degree-11 Taylor
// core on |r| <= ln2/2), far below any trained committee's noise floor.
// Inputs are assumed finite (activations of finite weights and features).

constexpr double kExpLog2e = 1.4426950408889634;          // log2(e)
constexpr double kExpLn2Hi = 6.93147180369123816490e-01;  // ln2 head, 33 bits
constexpr double kExpLn2Lo = 1.90821492927058770002e-10;  // ln2 - head
constexpr double kExpShift = 6755399441055744.0;          // 1.5 * 2^52
/// |x| clamp: exp(±708) stays comfortably inside normal double range.
constexpr double kExpMax = 708.0;

inline double det_exp(double x) noexcept {
    double cl = x < -kExpMax ? -kExpMax : x;
    cl = cl > kExpMax ? kExpMax : cl;
    // Round k = cl * log2(e) to nearest-even by pushing it into the
    // 2^52 mantissa window; the low bits of the raw pattern are the
    // integer k, and subtracting the shift recovers it as a double.
    const double kd = cl * kExpLog2e + kExpShift;
    const std::int64_t ki = std::bit_cast<std::int64_t>(kd);
    const double k = kd - kExpShift;
    // Cody–Waite: r = cl - k*ln2, |r| <= ln2/2; k*head is exact.
    double r = cl - k * kExpLn2Hi;
    r -= k * kExpLn2Lo;
    // exp(r) Taylor core, Horner, coefficients 1/n!.
    double p = 2.505210838544172e-8;
    p = p * r + 2.755731922398589e-7;
    p = p * r + 2.7557319223985893e-6;
    p = p * r + 2.48015873015873e-5;
    p = p * r + 1.984126984126984e-4;
    p = p * r + 1.3888888888888889e-3;
    p = p * r + 8.333333333333333e-3;
    p = p * r + 4.1666666666666664e-2;
    p = p * r + 1.6666666666666666e-1;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k assembled directly into the exponent field.
    const double scale = std::bit_cast<double>((ki + 1023) << 52);
    return p * scale;
}

inline double det_tanh(double x) noexcept {
    const double e2 = det_exp(2.0 * x);
    return (e2 - 1.0) / (e2 + 1.0);
}

inline double det_sigmoid(double x) noexcept {
    return 1.0 / (1.0 + det_exp(-x));
}

#if defined(CICHAR_BATCH_AVX2)
// SIMD lanes run the exact det_exp operation sequence: max/min clamps
// mirror the scalar ternaries value-for-value on finite input, and every
// arithmetic step is the same IEEE operation, so each lane's result is
// bit-identical to the scalar call.
__attribute__((target("avx2"))) inline __m256d det_exp_avx2(
    __m256d x) noexcept {
    const __m256d shift = _mm256_set1_pd(kExpShift);
    __m256d cl = _mm256_max_pd(x, _mm256_set1_pd(-kExpMax));
    cl = _mm256_min_pd(cl, _mm256_set1_pd(kExpMax));
    const __m256d kd =
        _mm256_add_pd(_mm256_mul_pd(cl, _mm256_set1_pd(kExpLog2e)), shift);
    const __m256i ki = _mm256_castpd_si256(kd);
    const __m256d k = _mm256_sub_pd(kd, shift);
    __m256d r =
        _mm256_sub_pd(cl, _mm256_mul_pd(k, _mm256_set1_pd(kExpLn2Hi)));
    r = _mm256_sub_pd(r, _mm256_mul_pd(k, _mm256_set1_pd(kExpLn2Lo)));
    // Same Horner ladder as det_exp (a lambda would lose the target
    // attribute, hence the macro).
#define CICHAR_DET_EXP_STEP(c) \
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(c))
    __m256d p = _mm256_set1_pd(2.505210838544172e-8);
    CICHAR_DET_EXP_STEP(2.755731922398589e-7);
    CICHAR_DET_EXP_STEP(2.7557319223985893e-6);
    CICHAR_DET_EXP_STEP(2.48015873015873e-5);
    CICHAR_DET_EXP_STEP(1.984126984126984e-4);
    CICHAR_DET_EXP_STEP(1.3888888888888889e-3);
    CICHAR_DET_EXP_STEP(8.333333333333333e-3);
    CICHAR_DET_EXP_STEP(4.1666666666666664e-2);
    CICHAR_DET_EXP_STEP(1.6666666666666666e-1);
    CICHAR_DET_EXP_STEP(0.5);
    CICHAR_DET_EXP_STEP(1.0);
    CICHAR_DET_EXP_STEP(1.0);
#undef CICHAR_DET_EXP_STEP
    const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
        _mm256_add_epi64(ki, _mm256_set1_epi64x(1023)), 52));
    return _mm256_mul_pd(p, scale);
}

__attribute__((target("avx2"))) void tanh_span_avx2(double* v,
                                                    std::size_t n) noexcept {
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d two = _mm256_set1_pd(2.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d e2 =
            det_exp_avx2(_mm256_mul_pd(two, _mm256_loadu_pd(v + i)));
        _mm256_storeu_pd(v + i, _mm256_div_pd(_mm256_sub_pd(e2, one),
                                              _mm256_add_pd(e2, one)));
    }
    for (; i < n; ++i) v[i] = det_tanh(v[i]);
}

__attribute__((target("avx2"))) void sigmoid_span_avx2(
    double* v, std::size_t n) noexcept {
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d sign = _mm256_set1_pd(-0.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d e =
            det_exp_avx2(_mm256_xor_pd(_mm256_loadu_pd(v + i), sign));
        _mm256_storeu_pd(v + i, _mm256_div_pd(one, _mm256_add_pd(one, e)));
    }
    for (; i < n; ++i) v[i] = det_sigmoid(v[i]);
}
#endif

void tanh_span_generic(double* v, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) v[i] = det_tanh(v[i]);
}

void sigmoid_span_generic(double* v, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) v[i] = det_sigmoid(v[i]);
}

using ActSpanKernel = void (*)(double*, std::size_t) noexcept;

/// Resolved once at startup, like the affine kernel below: both bodies
/// are bit-identical, the choice only affects speed.
const ActSpanKernel g_tanh_span =
#if defined(CICHAR_BATCH_AVX2)
    __builtin_cpu_supports("avx2") ? tanh_span_avx2 :
#endif
                                   tanh_span_generic;

const ActSpanKernel g_sigmoid_span =
#if defined(CICHAR_BATCH_AVX2)
    __builtin_cpu_supports("avx2") ? sigmoid_span_avx2 :
#endif
                                   sigmoid_span_generic;

}  // namespace

const char* to_string(Activation a) noexcept {
    switch (a) {
        case Activation::kSigmoid: return "sigmoid";
        case Activation::kTanh: return "tanh";
        case Activation::kRelu: return "relu";
        case Activation::kLinear: return "linear";
    }
    return "?";
}

double activate(Activation a, double x) noexcept {
    switch (a) {
        case Activation::kSigmoid: return det_sigmoid(x);
        case Activation::kTanh: return det_tanh(x);
        case Activation::kRelu: return x > 0.0 ? x : 0.0;
        case Activation::kLinear: return x;
    }
    return x;
}

double activate_derivative(Activation a, double y) noexcept {
    switch (a) {
        case Activation::kSigmoid: return y * (1.0 - y);
        case Activation::kTanh: return 1.0 - y * y;
        case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
        case Activation::kLinear: return 1.0;
    }
    return 1.0;
}

void activate_span(Activation a, std::span<double> values) noexcept {
    switch (a) {
        case Activation::kSigmoid:
            g_sigmoid_span(values.data(), values.size());
            return;
        case Activation::kTanh:
            g_tanh_span(values.data(), values.size());
            return;
        case Activation::kRelu:
            for (double& v : values) v = v > 0.0 ? v : 0.0;
            return;
        case Activation::kLinear: return;
    }
}

void scale_by_activation_derivative(Activation a, std::span<const double> y,
                                    std::span<double> delta) noexcept {
    assert(y.size() == delta.size());
    switch (a) {
        case Activation::kSigmoid:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                delta[i] *= y[i] * (1.0 - y[i]);
            }
            return;
        case Activation::kTanh:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                delta[i] *= 1.0 - y[i] * y[i];
            }
            return;
        case Activation::kRelu:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                if (!(y[i] > 0.0)) delta[i] = 0.0;
            }
            return;
        case Activation::kLinear: return;
    }
}

namespace {

/// out = act(W in + b) for one layer; `in`/`out` must not alias.
void layer_forward(const Layer& layer, const double* in, double* out) noexcept {
    for (std::size_t o = 0; o < layer.out; ++o) {
        double sum = layer.biases[o];
        const double* row = &layer.weights[o * layer.in];
        for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * in[i];
        out[o] = sum;
    }
    activate_span(layer.activation, std::span<double>(out, layer.out));
}

// ---------------------------------------------------------------------
// Batch-major layer kernel: affine part of out[o][b] = b_o + sum_i
// w[o][i] * in[i][b] over a tile of `cols` sample columns. Row r of a
// matrix starts at base + r * stride. The inner loop runs over the
// contiguous column (sample) dimension, so it vectorizes — and because
// lanes are whole samples, SIMD never reorders any single sample's
// accumulation: sample b still starts at the bias and adds w_i * x_i in
// ascending i, exactly like the scalar layer_forward. That is the whole
// bit-identity argument. It is also why the batch path is much faster
// than the per-sample dot product even without SIMD: the scalar
// accumulator is a serial FP dependency chain (IEEE addition cannot be
// reassociated), while the batch columns are independent accumulators.

void layer_affine_batch_generic(const Layer& layer, const double* in,
                                double* out, std::size_t stride,
                                std::size_t cols) noexcept {
    for (std::size_t o = 0; o < layer.out; ++o) {
        double* row_out = out + o * stride;
        std::fill(row_out, row_out + cols, layer.biases[o]);
        const double* wrow = &layer.weights[o * layer.in];
        for (std::size_t i = 0; i < layer.in; ++i) {
            const double w = wrow[i];
            const double* xin = in + i * stride;
            for (std::size_t b = 0; b < cols; ++b) row_out[b] += w * xin[b];
        }
    }
}

#if defined(CICHAR_BATCH_AVX2)
// Register-blocked: 16 columns (4 vectors) of output row `o` live in
// registers across the whole ascending-i weight loop and are stored
// exactly once, instead of reloading the accumulator row from memory for
// every weight. Each column still computes bias + sum_i w_i * x_i in
// ascending i with separate mul and add, so the kernel stays
// bit-identical to the generic body and to the scalar layer_forward.
__attribute__((target("avx2"))) void layer_affine_batch_avx2(
    const Layer& layer, const double* in, double* out, std::size_t stride,
    std::size_t cols) noexcept {
    for (std::size_t o = 0; o < layer.out; ++o) {
        double* row_out = out + o * stride;
        const double* wrow = &layer.weights[o * layer.in];
        const __m256d bias = _mm256_set1_pd(layer.biases[o]);
        std::size_t b = 0;
        for (; b + 16 <= cols; b += 16) {
            __m256d a0 = bias;
            __m256d a1 = bias;
            __m256d a2 = bias;
            __m256d a3 = bias;
            const double* col = in + b;
            for (std::size_t i = 0; i < layer.in; ++i) {
                const __m256d w = _mm256_set1_pd(wrow[i]);
                const double* xin = col + i * stride;
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(w, _mm256_loadu_pd(xin)));
                a1 = _mm256_add_pd(a1,
                                   _mm256_mul_pd(w, _mm256_loadu_pd(xin + 4)));
                a2 = _mm256_add_pd(a2,
                                   _mm256_mul_pd(w, _mm256_loadu_pd(xin + 8)));
                a3 = _mm256_add_pd(a3,
                                   _mm256_mul_pd(w, _mm256_loadu_pd(xin + 12)));
            }
            _mm256_storeu_pd(row_out + b, a0);
            _mm256_storeu_pd(row_out + b + 4, a1);
            _mm256_storeu_pd(row_out + b + 8, a2);
            _mm256_storeu_pd(row_out + b + 12, a3);
        }
        for (; b + 4 <= cols; b += 4) {
            __m256d acc = bias;
            const double* col = in + b;
            for (std::size_t i = 0; i < layer.in; ++i) {
                acc = _mm256_add_pd(
                    acc, _mm256_mul_pd(_mm256_set1_pd(wrow[i]),
                                       _mm256_loadu_pd(col + i * stride)));
            }
            _mm256_storeu_pd(row_out + b, acc);
        }
        for (; b < cols; ++b) {
            double sum = layer.biases[o];
            for (std::size_t i = 0; i < layer.in; ++i) {
                sum += wrow[i] * in[b + i * stride];
            }
            row_out[b] = sum;
        }
    }
}
#endif

using LayerAffineKernel = void (*)(const Layer&, const double*, double*,
                                   std::size_t, std::size_t) noexcept;

LayerAffineKernel select_layer_kernel() noexcept {
#if defined(CICHAR_BATCH_AVX2)
    if (__builtin_cpu_supports("avx2")) return layer_affine_batch_avx2;
#endif
    return layer_affine_batch_generic;
}

/// Resolved once at startup; both bodies are bit-identical, so the
/// choice only affects speed.
const LayerAffineKernel g_layer_affine_batch = select_layer_kernel();

/// Columns per tile of the batch forward: a tile's activations for the
/// widest layers stay L1-resident across the whole layer stack.
constexpr std::size_t kBatchTileCols = 128;

}  // namespace

void pack_batch(std::span<const double> xs, std::size_t batch,
                std::size_t width, std::vector<double>& packed) {
    assert(xs.size() == batch * width);
    packed.resize(batch * width);
    for (std::size_t b = 0; b < batch; ++b) {
        const double* row = xs.data() + b * width;
        for (std::size_t f = 0; f < width; ++f) {
            packed[f * batch + b] = row[f];
        }
    }
}

Mlp::Mlp(std::span<const std::size_t> sizes, Activation hidden,
         Activation output) {
    assert(sizes.size() >= 2);
    layers_.reserve(sizes.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        Layer layer;
        layer.in = sizes[i];
        layer.out = sizes[i + 1];
        layer.activation = (i + 2 == sizes.size()) ? output : hidden;
        layer.weights.assign(layer.in * layer.out, 0.0);
        layer.biases.assign(layer.out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

void Mlp::init_weights(util::Rng& rng) {
    for (Layer& layer : layers_) {
        const double limit =
            std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
        for (double& w : layer.weights) w = rng.uniform(-limit, limit);
        for (double& b : layer.biases) b = 0.0;
    }
}

std::size_t Mlp::input_size() const noexcept {
    return layers_.empty() ? 0 : layers_.front().in;
}

std::size_t Mlp::output_size() const noexcept {
    return layers_.empty() ? 0 : layers_.back().out;
}

std::size_t Mlp::parameter_count() const noexcept {
    std::size_t count = 0;
    for (const Layer& layer : layers_) {
        count += layer.weights.size() + layer.biases.size();
    }
    return count;
}

std::span<const double> Mlp::forward(std::span<const double> x,
                                     ForwardScratch& scratch) const {
    assert(x.size() == input_size());
    scratch.current.assign(x.begin(), x.end());
    for (const Layer& layer : layers_) {
        scratch.next.resize(layer.out);
        layer_forward(layer, scratch.current.data(), scratch.next.data());
        scratch.current.swap(scratch.next);
    }
    return scratch.current;
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
    ForwardScratch scratch;
    (void)forward(x, scratch);
    return std::move(scratch.current);
}

std::span<const double> Mlp::forward_batch_packed(
    std::span<const double> packed, std::size_t batch,
    BatchScratch& scratch) const {
    assert(packed.size() == input_size() * batch);
    scratch.batch = batch;
    scratch.width = output_size();
    if (layers_.empty() || batch == 0) {
        scratch.current.assign(packed.begin(), packed.end());
        scratch.width = batch == 0 ? output_size() : input_size();
        return scratch.current;
    }

    std::size_t widest = 0;
    for (const Layer& layer : layers_) widest = std::max(widest, layer.out);
    scratch.current.resize(widest * batch);
    scratch.next.resize(widest * batch);

    // Column tiles run the whole layer stack while a tile's activations
    // are cache-hot. The ping-pong parity is chosen so the final layer
    // always lands in `current` (rows are `batch`-strided, so tile
    // columns of consecutive rows line up across tiles).
    const std::size_t layer_count = layers_.size();
    for (std::size_t b0 = 0; b0 < batch; b0 += kBatchTileCols) {
        const std::size_t cols = std::min(kBatchTileCols, batch - b0);
        const double* in = packed.data() + b0;
        for (std::size_t li = 0; li < layer_count; ++li) {
            const Layer& layer = layers_[li];
            const bool into_current = (layer_count - 1 - li) % 2 == 0;
            double* out =
                (into_current ? scratch.current : scratch.next).data() + b0;
            g_layer_affine_batch(layer, in, out, batch, cols);
            for (std::size_t o = 0; o < layer.out; ++o) {
                activate_span(layer.activation,
                              std::span<double>(out + o * batch, cols));
            }
            in = out;
        }
    }
    return std::span<const double>(scratch.current.data(),
                                   output_size() * batch);
}

std::span<const double> Mlp::forward_batch(std::span<const double> xs,
                                           std::size_t batch,
                                           BatchScratch& scratch) const {
    pack_batch(xs, batch, input_size(), scratch.packed);
    return forward_batch_packed(scratch.packed, batch, scratch);
}

void Mlp::forward_trace(std::span<const double> x,
                        std::vector<std::vector<double>>& trace) const {
    assert(x.size() == input_size());
    trace.resize(layers_.size() + 1);
    trace[0].assign(x.begin(), x.end());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer& layer = layers_[li];
        trace[li + 1].resize(layer.out);
        layer_forward(layer, trace[li].data(), trace[li + 1].data());
    }
}

std::vector<std::vector<double>> Mlp::forward_trace(
    std::span<const double> x) const {
    std::vector<std::vector<double>> trace;
    forward_trace(x, trace);
    return trace;
}

}  // namespace cichar::nn
