#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>

namespace cichar::nn {

const char* to_string(Activation a) noexcept {
    switch (a) {
        case Activation::kSigmoid: return "sigmoid";
        case Activation::kTanh: return "tanh";
        case Activation::kRelu: return "relu";
        case Activation::kLinear: return "linear";
    }
    return "?";
}

double activate(Activation a, double x) noexcept {
    switch (a) {
        case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
        case Activation::kTanh: return std::tanh(x);
        case Activation::kRelu: return x > 0.0 ? x : 0.0;
        case Activation::kLinear: return x;
    }
    return x;
}

double activate_derivative(Activation a, double y) noexcept {
    switch (a) {
        case Activation::kSigmoid: return y * (1.0 - y);
        case Activation::kTanh: return 1.0 - y * y;
        case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
        case Activation::kLinear: return 1.0;
    }
    return 1.0;
}

Mlp::Mlp(std::span<const std::size_t> sizes, Activation hidden,
         Activation output) {
    assert(sizes.size() >= 2);
    layers_.reserve(sizes.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        Layer layer;
        layer.in = sizes[i];
        layer.out = sizes[i + 1];
        layer.activation = (i + 2 == sizes.size()) ? output : hidden;
        layer.weights.assign(layer.in * layer.out, 0.0);
        layer.biases.assign(layer.out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

void Mlp::init_weights(util::Rng& rng) {
    for (Layer& layer : layers_) {
        const double limit =
            std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
        for (double& w : layer.weights) w = rng.uniform(-limit, limit);
        for (double& b : layer.biases) b = 0.0;
    }
}

std::size_t Mlp::input_size() const noexcept {
    return layers_.empty() ? 0 : layers_.front().in;
}

std::size_t Mlp::output_size() const noexcept {
    return layers_.empty() ? 0 : layers_.back().out;
}

std::size_t Mlp::parameter_count() const noexcept {
    std::size_t count = 0;
    for (const Layer& layer : layers_) {
        count += layer.weights.size() + layer.biases.size();
    }
    return count;
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
    assert(x.size() == input_size());
    std::vector<double> current(x.begin(), x.end());
    std::vector<double> next;
    for (const Layer& layer : layers_) {
        next.assign(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double sum = layer.biases[o];
            const double* row = &layer.weights[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * current[i];
            next[o] = activate(layer.activation, sum);
        }
        current.swap(next);
    }
    return current;
}

std::vector<std::vector<double>> Mlp::forward_trace(
    std::span<const double> x) const {
    assert(x.size() == input_size());
    std::vector<std::vector<double>> trace;
    trace.reserve(layers_.size() + 1);
    trace.emplace_back(x.begin(), x.end());
    for (const Layer& layer : layers_) {
        const std::vector<double>& current = trace.back();
        std::vector<double> next(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double sum = layer.biases[o];
            const double* row = &layer.weights[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * current[i];
            next[o] = activate(layer.activation, sum);
        }
        trace.push_back(std::move(next));
    }
    return trace;
}

}  // namespace cichar::nn
