#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>

namespace cichar::nn {

const char* to_string(Activation a) noexcept {
    switch (a) {
        case Activation::kSigmoid: return "sigmoid";
        case Activation::kTanh: return "tanh";
        case Activation::kRelu: return "relu";
        case Activation::kLinear: return "linear";
    }
    return "?";
}

double activate(Activation a, double x) noexcept {
    switch (a) {
        case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
        case Activation::kTanh: return std::tanh(x);
        case Activation::kRelu: return x > 0.0 ? x : 0.0;
        case Activation::kLinear: return x;
    }
    return x;
}

double activate_derivative(Activation a, double y) noexcept {
    switch (a) {
        case Activation::kSigmoid: return y * (1.0 - y);
        case Activation::kTanh: return 1.0 - y * y;
        case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
        case Activation::kLinear: return 1.0;
    }
    return 1.0;
}

void activate_span(Activation a, std::span<double> values) noexcept {
    switch (a) {
        case Activation::kSigmoid:
            for (double& v : values) v = 1.0 / (1.0 + std::exp(-v));
            return;
        case Activation::kTanh:
            for (double& v : values) v = std::tanh(v);
            return;
        case Activation::kRelu:
            for (double& v : values) v = v > 0.0 ? v : 0.0;
            return;
        case Activation::kLinear: return;
    }
}

void scale_by_activation_derivative(Activation a, std::span<const double> y,
                                    std::span<double> delta) noexcept {
    assert(y.size() == delta.size());
    switch (a) {
        case Activation::kSigmoid:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                delta[i] *= y[i] * (1.0 - y[i]);
            }
            return;
        case Activation::kTanh:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                delta[i] *= 1.0 - y[i] * y[i];
            }
            return;
        case Activation::kRelu:
            for (std::size_t i = 0; i < delta.size(); ++i) {
                if (!(y[i] > 0.0)) delta[i] = 0.0;
            }
            return;
        case Activation::kLinear: return;
    }
}

namespace {

/// out = act(W in + b) for one layer; `in`/`out` must not alias.
void layer_forward(const Layer& layer, const double* in, double* out) noexcept {
    for (std::size_t o = 0; o < layer.out; ++o) {
        double sum = layer.biases[o];
        const double* row = &layer.weights[o * layer.in];
        for (std::size_t i = 0; i < layer.in; ++i) sum += row[i] * in[i];
        out[o] = sum;
    }
    activate_span(layer.activation, std::span<double>(out, layer.out));
}

}  // namespace

Mlp::Mlp(std::span<const std::size_t> sizes, Activation hidden,
         Activation output) {
    assert(sizes.size() >= 2);
    layers_.reserve(sizes.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        Layer layer;
        layer.in = sizes[i];
        layer.out = sizes[i + 1];
        layer.activation = (i + 2 == sizes.size()) ? output : hidden;
        layer.weights.assign(layer.in * layer.out, 0.0);
        layer.biases.assign(layer.out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

void Mlp::init_weights(util::Rng& rng) {
    for (Layer& layer : layers_) {
        const double limit =
            std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
        for (double& w : layer.weights) w = rng.uniform(-limit, limit);
        for (double& b : layer.biases) b = 0.0;
    }
}

std::size_t Mlp::input_size() const noexcept {
    return layers_.empty() ? 0 : layers_.front().in;
}

std::size_t Mlp::output_size() const noexcept {
    return layers_.empty() ? 0 : layers_.back().out;
}

std::size_t Mlp::parameter_count() const noexcept {
    std::size_t count = 0;
    for (const Layer& layer : layers_) {
        count += layer.weights.size() + layer.biases.size();
    }
    return count;
}

std::span<const double> Mlp::forward(std::span<const double> x,
                                     ForwardScratch& scratch) const {
    assert(x.size() == input_size());
    scratch.current.assign(x.begin(), x.end());
    for (const Layer& layer : layers_) {
        scratch.next.resize(layer.out);
        layer_forward(layer, scratch.current.data(), scratch.next.data());
        scratch.current.swap(scratch.next);
    }
    return scratch.current;
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
    ForwardScratch scratch;
    (void)forward(x, scratch);
    return std::move(scratch.current);
}

void Mlp::forward_trace(std::span<const double> x,
                        std::vector<std::vector<double>>& trace) const {
    assert(x.size() == input_size());
    trace.resize(layers_.size() + 1);
    trace[0].assign(x.begin(), x.end());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer& layer = layers_[li];
        trace[li + 1].resize(layer.out);
        layer_forward(layer, trace[li].data(), trace[li + 1].data());
    }
}

std::vector<std::vector<double>> Mlp::forward_trace(
    std::span<const double> x) const {
    std::vector<std::vector<double>> trace;
    forward_trace(x, trace);
    return trace;
}

}  // namespace cichar::nn
