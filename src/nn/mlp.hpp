// Multilayer perceptron, hand-rolled in the spirit of the paper's era
// (Masters, "Practical Neural Network Recipes in C++" [14]). Dense layers,
// per-layer activation, double precision. Training lives in trainer.hpp.
//
// The forward/backprop hot path is allocation-free: callers thread a
// ForwardScratch (or a caller-owned trace buffer) through the inference
// entry points, so committee voting, MSE evaluation and SGD touch the
// allocator only on the first call. The allocating overloads remain for
// convenience and are implemented on top of the scratch versions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace cichar::nn {

enum class Activation : std::uint8_t { kSigmoid, kTanh, kRelu, kLinear };

[[nodiscard]] const char* to_string(Activation a) noexcept;
[[nodiscard]] double activate(Activation a, double x) noexcept;
/// Derivative expressed in terms of the *activated* output y.
[[nodiscard]] double activate_derivative(Activation a, double y) noexcept;

/// Applies the activation to a whole span. The switch on the activation
/// kind is dispatched once per call, not once per element, which is what
/// the inner loops of forward/backprop want.
void activate_span(Activation a, std::span<double> values) noexcept;

/// delta[i] *= act'(y[i]) for a whole span (backprop through a layer
/// boundary), again with a single activation dispatch.
void scale_by_activation_derivative(Activation a, std::span<const double> y,
                                    std::span<double> delta) noexcept;

/// One dense layer: out = act(W x + b), W stored row-major [out][in].
struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    Activation activation = Activation::kSigmoid;
    std::vector<double> weights;  ///< out * in
    std::vector<double> biases;   ///< out

    [[nodiscard]] double weight(std::size_t o, std::size_t i) const noexcept {
        return weights[o * in + i];
    }
    [[nodiscard]] double& weight(std::size_t o, std::size_t i) noexcept {
        return weights[o * in + i];
    }

    [[nodiscard]] bool operator==(const Layer&) const = default;
};

/// Reusable ping-pong buffers for allocation-free inference. One scratch
/// serves any number of sequential forward() calls on any nets; it grows
/// to the widest layer seen and then stops allocating. Not thread-safe:
/// use one scratch per thread.
struct ForwardScratch {
    std::vector<double> current;
    std::vector<double> next;
};

/// Buffers for batch-major inference. Activations are stored
/// feature-major — row o holds sample values [o * batch, o * batch +
/// batch) — so the layer kernel's inner loop runs contiguously over the
/// batch dimension. Grows to the widest layer seen, then stops
/// allocating. Not thread-safe: one scratch per thread.
struct BatchScratch {
    std::size_t batch = 0;  ///< samples in the last forward_batch call
    std::size_t width = 0;  ///< output rows after the last call
    std::vector<double> packed;   ///< feature-major staging for pack_batch
    std::vector<double> current;  ///< final activations (see layout above)
    std::vector<double> next;     ///< ping-pong partner of `current`
};

/// Transposes `batch` row-major sample vectors of `width` features
/// (sample after sample in `xs`) into feature-major storage: after the
/// call, packed[f * batch + b] == xs[b * width + f].
void pack_batch(std::span<const double> xs, std::size_t batch,
                std::size_t width, std::vector<double>& packed);

class Mlp {
public:
    Mlp() = default;

    /// `sizes` = {inputs, hidden..., outputs}; at least two entries.
    /// Hidden layers use `hidden`, the final layer uses `output`.
    Mlp(std::span<const std::size_t> sizes, Activation hidden,
        Activation output);

    /// Xavier/Glorot-uniform weight initialization.
    void init_weights(util::Rng& rng);

    [[nodiscard]] std::size_t input_size() const noexcept;
    [[nodiscard]] std::size_t output_size() const noexcept;
    [[nodiscard]] std::size_t layer_count() const noexcept {
        return layers_.size();
    }
    [[nodiscard]] const Layer& layer(std::size_t i) const noexcept {
        return layers_[i];
    }
    [[nodiscard]] Layer& layer(std::size_t i) noexcept { return layers_[i]; }

    /// Total trainable parameter count.
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    /// Plain inference.
    [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

    /// Allocation-free inference; the returned span points into `scratch`
    /// and stays valid until the scratch is used again.
    [[nodiscard]] std::span<const double> forward(std::span<const double> x,
                                                  ForwardScratch& scratch) const;

    /// Batch-major inference over `batch` row-major sample vectors
    /// (sample after sample in `xs`, each input_size() wide). Returns the
    /// feature-major output matrix — output o of sample b lives at
    /// [o * batch + b] — pointing into `scratch`. Every sample's
    /// accumulation visits weights in the same order as forward(), so the
    /// result is bit-identical to the scalar path at any batch size.
    [[nodiscard]] std::span<const double> forward_batch(
        std::span<const double> xs, std::size_t batch,
        BatchScratch& scratch) const;

    /// Same, from an already feature-major packed input ([input][batch],
    /// as produced by pack_batch). Lets callers pack one feature matrix
    /// and reuse it across many nets (committee scoring).
    [[nodiscard]] std::span<const double> forward_batch_packed(
        std::span<const double> packed, std::size_t batch,
        BatchScratch& scratch) const;

    /// Inference keeping every layer's activated output (index 0 = input
    /// copy); used by backprop.
    [[nodiscard]] std::vector<std::vector<double>> forward_trace(
        std::span<const double> x) const;

    /// Allocation-free trace into a caller-owned buffer (reused across
    /// calls; resized to layer_count() + 1 levels).
    void forward_trace(std::span<const double> x,
                       std::vector<std::vector<double>>& trace) const;

    [[nodiscard]] bool operator==(const Mlp&) const = default;

private:
    std::vector<Layer> layers_;
};

}  // namespace cichar::nn
