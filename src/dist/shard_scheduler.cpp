#include "dist/shard_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "dist/heartbeat.hpp"
#include "lot/lot_runner.hpp"
#include "util/binio.hpp"
#include "util/log.hpp"
#include "util/subprocess.hpp"
#include "util/telemetry.hpp"

namespace cichar::dist {

namespace fs = std::filesystem;

ShardScheduler::ShardScheduler(ShardSchedulerOptions options)
    : options_(std::move(options)) {}

std::optional<double> heartbeat_age_seconds(const std::string& path) {
    std::error_code ec;
    const fs::file_time_type written = fs::last_write_time(path, ec);
    if (ec) return std::nullopt;
    const auto age = fs::file_time_type::clock::now() - written;
    return std::chrono::duration<double>(age).count();
}

bool shard_checkpoint_complete(const std::string& path,
                               const std::string& lot_fingerprint,
                               std::size_t site_begin, std::size_t site_end) {
    const std::optional<std::string> contents = util::read_file(path);
    if (!contents) return false;
    std::string payload;
    if (!core::decode_checkpoint(*contents, lot_fingerprint, payload)) {
        return false;
    }
    try {
        const std::vector<lot::SiteResult> sites =
            lot::decode_finished_sites(payload);
        std::vector<char> finished(site_end - site_begin, 0);
        for (const lot::SiteResult& site : sites) {
            if (site.site >= site_begin && site.site < site_end) {
                finished[site.site - site_begin] = 1;
            }
        }
        for (const char f : finished) {
            if (!f) return false;
        }
        return true;
    } catch (const std::exception&) {
        return false;  // torn payload: treat as incomplete, reissue
    }
}

namespace {

/// Live bookkeeping for one shard beyond what the manifest persists.
struct ShardTracker {
    util::Subprocess worker;
    std::chrono::steady_clock::time_point attempt_start{};
    bool kill_requested = false;  ///< chaos hook armed for this shard
    bool killed_once = false;     ///< chaos hook already fired
    /// Last heartbeat payload seen and when it last *changed*. With the
    /// enriched "D/T gen=G" payload this distinguishes a worker that is
    /// slow-but-advancing (payload keeps changing even though each write
    /// may be far apart) from one wedged at the same generation.
    std::string last_payload;
    std::chrono::steady_clock::time_point last_payload_change{};
};

struct SchedulerMetrics {
    util::telemetry::Gauge* inflight = nullptr;
    util::telemetry::Counter* launches = nullptr;
    util::telemetry::Counter* reissues = nullptr;
    util::telemetry::Counter* kills = nullptr;

    SchedulerMetrics() {
        if (!util::telemetry::metrics_enabled()) return;
        auto& registry = util::telemetry::Registry::instance();
        inflight = &registry.gauge("cichar_dist_shards_inflight");
        launches = &registry.counter("cichar_dist_shard_launches_total");
        reissues = &registry.counter("cichar_dist_shards_reissued_total");
        kills = &registry.counter("cichar_dist_workers_killed_total");
    }
};

}  // namespace

ShardRunResult ShardScheduler::run(const std::string& lot_fingerprint,
                                   std::size_t sites) const {
    TELEM_SPAN("dist.schedule");
    const auto start = std::chrono::steady_clock::now();
    if (options_.worker_program.empty()) {
        throw std::runtime_error("shard scheduler: no worker program");
    }
    std::error_code ec;
    fs::create_directories(options_.work_dir, ec);
    if (ec) {
        throw std::runtime_error("shard scheduler: cannot create work dir " +
                                 options_.work_dir + ": " + ec.message());
    }

    ShardRunResult result;
    result.manifest = ShardManifest::partition(lot_fingerprint, sites,
                                               options_.shards,
                                               options_.work_dir);
    result.manifest_path = options_.work_dir + "/manifest.bin";
    ShardManifest& manifest = result.manifest;
    const auto persist_manifest = [&] {
        if (!manifest.save(result.manifest_path)) {
            util::log_warn("shard scheduler: cannot write manifest " +
                            result.manifest_path);
        }
    };
    persist_manifest();

    std::vector<ShardTracker> trackers(manifest.shards.size());
    if (options_.kill_shard &&
        *options_.kill_shard < trackers.size()) {
        trackers[*options_.kill_shard].kill_requested = true;
    }
    SchedulerMetrics metrics;

    const std::size_t max_parallel = options_.max_parallel == 0
                                         ? manifest.shards.size()
                                         : options_.max_parallel;
    std::size_t inflight = 0;

    const auto is_complete = [&](const ShardEntry& shard) {
        return shard_checkpoint_complete(shard.checkpoint, lot_fingerprint,
                                         shard.site_begin, shard.site_end);
    };

    const auto launch = [&](std::size_t k) {
        ShardEntry& shard = manifest.shards[k];
        std::vector<std::string> argv;
        argv.push_back(options_.worker_program);
        argv.push_back("lot");
        for (const std::string& arg : options_.worker_args) {
            argv.push_back(arg);
        }
        argv.push_back("--site-range");
        argv.push_back(shard.range_spec());
        argv.push_back("--checkpoint");
        argv.push_back(shard.checkpoint);
        argv.push_back("--heartbeat");
        argv.push_back(shard.heartbeat);
        if (!options_.status_dir.empty()) {
            argv.push_back("--status");
            argv.push_back(options_.status_dir);
            argv.push_back("--status-name");
            argv.push_back("shard_" + std::to_string(k));
        }
        // A prior attempt's checkpoint warm-starts the reissue — but only
        // when it really is this lot's (a stale file from another run
        // would make the worker refuse to start).
        const std::optional<std::string> prior =
            util::read_file(shard.checkpoint);
        if (prior && core::peek_checkpoint_fingerprint(*prior) ==
                         std::optional<std::string>(lot_fingerprint)) {
            argv.push_back("--resume");
            argv.push_back(shard.checkpoint);
        }
        const std::string log_path = options_.work_dir + "/shard_" +
                                     std::to_string(k) + ".log";
        trackers[k].worker = util::Subprocess::start(argv, log_path);
        trackers[k].attempt_start = std::chrono::steady_clock::now();
        trackers[k].last_payload.clear();
        trackers[k].last_payload_change = trackers[k].attempt_start;
        ++shard.attempts;
        shard.state = ShardState::kRunning;
        ++result.launches;
        if (shard.attempts > 1) ++result.reissues;
        ++inflight;
        if (metrics.launches) {
            metrics.launches->add();
            if (shard.attempts > 1) metrics.reissues->add();
            metrics.inflight->set(static_cast<double>(inflight));
        }
        util::log_info("shard " + std::to_string(k) + " [" +
                        shard.range_spec() + "] launched (attempt " +
                        std::to_string(shard.attempts) + ", pid " +
                        std::to_string(trackers[k].worker.pid()) + ")");
        persist_manifest();
    };

    const auto kill_worker = [&](std::size_t k, const std::string& why) {
        trackers[k].worker.kill(SIGKILL);
        trackers[k].worker.wait();
        ++result.kills;
        if (metrics.kills) metrics.kills->add();
        util::log_warn("shard " + std::to_string(k) + " killed: " + why);
    };

    const auto fail_run = [&](std::size_t k) {
        manifest.shards[k].state = ShardState::kFailed;
        for (std::size_t other = 0; other < trackers.size(); ++other) {
            if (manifest.shards[other].state == ShardState::kRunning) {
                kill_worker(other, "aborting run");
                manifest.shards[other].state = ShardState::kPending;
            }
        }
        persist_manifest();
        throw std::runtime_error(
            "shard scheduler: shard " + std::to_string(k) + " [" +
            manifest.shards[k].range_spec() + "] failed after " +
            std::to_string(manifest.shards[k].attempts) +
            " attempts (see " + options_.work_dir + "/shard_" +
            std::to_string(k) + ".log)");
    };

    while (!manifest.complete()) {
        // Reap / police running workers.
        for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
            ShardEntry& shard = manifest.shards[k];
            if (shard.state != ShardState::kRunning) continue;
            ShardTracker& tracker = trackers[k];

            // Chaos hook: kill the worker once it has demonstrably done
            // work (its checkpoint exists), so the reissue resumes a
            // genuinely partial shard.
            if (tracker.kill_requested && !tracker.killed_once &&
                tracker.worker.running() &&
                util::read_file(shard.checkpoint).has_value()) {
                tracker.killed_once = true;
                kill_worker(k, "chaos kill (--kill-shard)");
            }

            // Straggler: heartbeat (or, before the first heartbeat, the
            // launch itself) too old. The enriched payload ("D/T gen=G")
            // additionally counts as progress whenever its *content*
            // advances, so a slow-but-advancing worker whose writes are
            // far apart is never mistaken for a wedged one.
            if (options_.heartbeat_timeout_seconds > 0.0 &&
                tracker.worker.running()) {
                const auto now = std::chrono::steady_clock::now();
                const std::optional<double> age =
                    heartbeat_age_seconds(shard.heartbeat);
                double silent =
                    age.value_or(std::chrono::duration<double>(
                                     now - tracker.attempt_start)
                                     .count());
                const std::optional<std::string> payload =
                    util::read_file(shard.heartbeat);
                if (payload && parse_heartbeat(*payload)) {
                    if (*payload != tracker.last_payload) {
                        tracker.last_payload = *payload;
                        tracker.last_payload_change = now;
                    }
                    const double since_advance =
                        std::chrono::duration<double>(
                            now - tracker.last_payload_change)
                            .count();
                    silent = std::min(silent, since_advance);
                }
                if (silent > options_.heartbeat_timeout_seconds) {
                    kill_worker(k, "no heartbeat for " +
                                       std::to_string(silent) + " s");
                }
            }

            const std::optional<util::ExitStatus> status =
                tracker.worker.poll();
            if (!status) continue;
            --inflight;
            if (metrics.inflight) {
                metrics.inflight->set(static_cast<double>(inflight));
            }
            if (is_complete(shard)) {
                shard.state = ShardState::kDone;
                util::log_info("shard " + std::to_string(k) + " done (" +
                                status->describe() + ")");
                persist_manifest();
                continue;
            }
            util::log_warn("shard " + std::to_string(k) +
                            " incomplete (worker " + status->describe() +
                            ")");
            if (shard.attempts >= options_.max_attempts) fail_run(k);
            shard.state = ShardState::kPending;
            persist_manifest();
        }

        // Fill free slots, lowest shard index first (reissues included —
        // they re-enter as kPending).
        for (std::size_t k = 0;
             k < manifest.shards.size() && inflight < max_parallel; ++k) {
            if (manifest.shards[k].state == ShardState::kPending) {
                // A shard whose checkpoint already covers its range needs
                // no worker at all (a crashed coordinator restarting).
                if (is_complete(manifest.shards[k])) {
                    manifest.shards[k].state = ShardState::kDone;
                    persist_manifest();
                    continue;
                }
                launch(k);
            }
        }

        if (!manifest.complete()) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options_.poll_interval_seconds));
        }
    }

    // Fuse the shard checkpoints into the single-process-identical blob.
    std::vector<std::string> blobs;
    blobs.reserve(manifest.shards.size());
    for (const ShardEntry& shard : manifest.shards) {
        const std::optional<std::string> blob =
            util::read_file(shard.checkpoint);
        if (!blob) {
            throw std::runtime_error(
                "shard scheduler: lost checkpoint " + shard.checkpoint);
        }
        blobs.push_back(*blob);
    }
    result.merged_blob =
        merge_shard_checkpoints(blobs, lot_fingerprint, &result.merge);
    result.merged_path = options_.work_dir + "/merged.ckpt";
    if (!util::atomic_write_file(result.merged_path, result.merged_blob)) {
        throw std::runtime_error("shard scheduler: cannot write " +
                                 result.merged_path);
    }
    persist_manifest();

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& total =
            telem::Registry::instance().gauge("cichar_dist_shards_total");
        total.set(static_cast<double>(manifest.shards.size()));
    }
    return result;
}

}  // namespace cichar::dist
