#include "dist/shard_merge.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/trip_cache.hpp"
#include "lot/lot_runner.hpp"
#include "util/binio.hpp"
#include "util/telemetry.hpp"

namespace cichar::dist {

std::string merge_shard_checkpoints(const std::vector<std::string>& blobs,
                                    std::string_view expected_fingerprint,
                                    MergeStats* stats) {
    TELEM_SPAN("dist.merge");
    const auto start = std::chrono::steady_clock::now();
    if (blobs.empty()) {
        throw std::runtime_error("merge: no shard checkpoints given");
    }

    std::string fingerprint(expected_fingerprint);
    // Site index -> distilled result. A std::map keeps the fused payload
    // in site order, which is exactly the order a single-process
    // checkpoint writes — the byte-identity contract.
    std::map<std::size_t, lot::SiteResult> fused;
    std::size_t empty_shards = 0;
    for (std::size_t b = 0; b < blobs.size(); ++b) {
        const std::string shard_name = "shard " + std::to_string(b);
        const std::optional<std::string> blob_fingerprint =
            core::peek_checkpoint_fingerprint(blobs[b]);
        if (!blob_fingerprint) {
            throw std::runtime_error(
                "merge: " + shard_name +
                " is not a cichar checkpoint (bad magic or truncated)");
        }
        if (fingerprint.empty()) fingerprint = *blob_fingerprint;
        if (*blob_fingerprint != fingerprint) {
            throw std::runtime_error(
                "merge: " + shard_name +
                " was written by a different lot configuration\n  expected: " +
                fingerprint + "\n  found:    " + *blob_fingerprint);
        }
        std::string payload;
        if (!core::decode_checkpoint(blobs[b], fingerprint, payload)) {
            throw std::runtime_error("merge: " + shard_name +
                                     " failed its checksum (corrupt blob)");
        }
        const std::vector<lot::SiteResult> sites =
            lot::decode_finished_sites(payload);
        if (sites.empty()) ++empty_shards;
        for (lot::SiteResult site : sites) {
            const std::size_t index = site.site;
            if (!fused.emplace(index, std::move(site)).second) {
                throw std::runtime_error(
                    "merge: site " + std::to_string(index) + " appears in " +
                    shard_name +
                    " and an earlier shard (overlapping site ranges)");
            }
        }
    }

    std::vector<lot::SiteResult> ordered;
    ordered.reserve(fused.size());
    for (auto& [index, site] : fused) ordered.push_back(std::move(site));
    const std::string merged = core::encode_checkpoint(
        fingerprint, lot::encode_finished_sites(ordered));

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (stats) {
        stats->shards = blobs.size();
        stats->sites = ordered.size();
        stats->empty_shards = empty_shards;
        stats->merge_seconds = seconds;
    }
    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& merges = telem::Registry::instance().counter(
            "cichar_dist_merges_total");
        static auto& merged_sites = telem::Registry::instance().counter(
            "cichar_dist_merged_sites_total");
        static auto& merge_seconds = telem::Registry::instance().gauge(
            "cichar_dist_merge_seconds");
        merges.add();
        merged_sites.add(ordered.size());
        merge_seconds.set(seconds);
    }
    return merged;
}

std::string merge_trip_cache_files(const std::vector<std::string>& in_paths,
                                   const std::string& out_path) {
    if (in_paths.empty()) {
        throw std::runtime_error("merge: no trip-cache files given");
    }
    std::string identity;
    std::vector<core::TripPointCache> caches;
    caches.reserve(in_paths.size());
    std::size_t total_entries = 0;
    for (const std::string& path : in_paths) {
        std::ifstream peek(path, std::ios::binary);
        if (!peek) {
            throw std::runtime_error("merge: cannot read " + path);
        }
        const std::optional<std::string> file_identity =
            core::TripPointCache::peek_identity(peek);
        if (!file_identity) {
            throw std::runtime_error("merge: " + path +
                                     " is not a cichar trip cache");
        }
        if (identity.empty()) identity = *file_identity;
        if (*file_identity != identity) {
            throw std::runtime_error(
                "merge: " + path +
                " holds a different device identity\n  expected: " + identity +
                "\n  found:    " + *file_identity);
        }
        std::ifstream in(path, std::ios::binary);
        core::TripPointCache cache(1u << 20);
        if (!cache.load(in, identity)) {
            throw std::runtime_error("merge: " + path +
                                     " failed its checksum (corrupt cache)");
        }
        total_entries += cache.size();
        caches.push_back(std::move(cache));
    }

    core::TripPointCache merged(std::max<std::size_t>(total_entries, 1));
    for (const core::TripPointCache& cache : caches) {
        merged.merge_from(cache);
    }
    std::ostringstream body;
    if (!merged.save(body, identity)) {
        throw std::runtime_error("merge: cannot serialize merged cache");
    }
    if (!util::atomic_write_file(out_path, body.str())) {
        throw std::runtime_error("merge: cannot write " + out_path);
    }
    return identity;
}

}  // namespace cichar::dist
