#include "dist/heartbeat.hpp"

#include <cstdint>

namespace cichar::dist {
namespace {

/// Parses a run of digits at `pos`; false when none are there.
bool parse_number(std::string_view text, std::size_t& pos,
                  std::uint64_t& out) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return false;
    }
    std::uint64_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
        ++pos;
    }
    out = value;
    return true;
}

}  // namespace

std::optional<HeartbeatInfo> parse_heartbeat(std::string_view payload) {
    while (!payload.empty() &&
           (payload.back() == '\n' || payload.back() == '\r' ||
            payload.back() == ' ')) {
        payload.remove_suffix(1);
    }
    HeartbeatInfo info;
    std::size_t pos = 0;
    std::uint64_t done = 0;
    if (!parse_number(payload, pos, done)) return std::nullopt;
    info.sites_done = static_cast<std::size_t>(done);
    if (pos == payload.size()) return info;  // legacy bare "0"
    if (payload[pos] == '/') {
        ++pos;
        std::uint64_t total = 0;
        if (!parse_number(payload, pos, total)) return std::nullopt;
        info.sites_total = static_cast<std::size_t>(total);
    }
    if (pos == payload.size()) return info;  // legacy "D/T"
    if (payload.substr(pos, 5) != " gen=") return std::nullopt;
    pos += 5;
    std::uint64_t generation = 0;
    if (!parse_number(payload, pos, generation)) return std::nullopt;
    if (pos != payload.size()) return std::nullopt;
    info.generation = generation;
    info.has_generation = true;
    return info;
}

std::string format_heartbeat(std::size_t sites_done, std::size_t sites_total,
                             std::uint64_t generation) {
    return std::to_string(sites_done) + "/" + std::to_string(sites_total) +
           " gen=" + std::to_string(generation) + "\n";
}

}  // namespace cichar::dist
