// Heartbeat progress payload. Workers historically wrote bare
// "done/total" counters whose only signal was the file's mtime; the
// enriched payload appends the cumulative GA generation tick count:
//
//   "D/T gen=G\n"
//
// so the scheduler (and FleetView) can distinguish a worker that is
// slow-but-advancing inside a long site hunt from one wedged at the
// same generation. Readers stay backward compatible: "0", "D/T", and
// the enriched form all parse, and mtime-based heartbeat_age_seconds
// keeps working unchanged on every variant.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cichar::dist {

struct HeartbeatInfo {
    std::size_t sites_done = 0;
    std::size_t sites_total = 0;
    /// Cumulative GA generation ticks across the worker's sites.
    std::uint64_t generation = 0;
    bool has_generation = false;

    [[nodiscard]] bool operator==(const HeartbeatInfo&) const = default;
};

/// Parses a heartbeat payload ("0", "D/T", or "D/T gen=G", trailing
/// newline optional). nullopt on junk — the caller then falls back to
/// mtime-only liveness.
[[nodiscard]] std::optional<HeartbeatInfo> parse_heartbeat(
    std::string_view payload);

/// Renders the enriched payload workers write.
[[nodiscard]] std::string format_heartbeat(std::size_t sites_done,
                                           std::size_t sites_total,
                                           std::uint64_t generation);

}  // namespace cichar::dist
