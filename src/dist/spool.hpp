// Spool-directory campaign coordinator — the first step from CLI tool to
// long-lived service. Clients drop plain-text campaign request files
// into `<spool>/incoming/`; the coordinator admits them under a queue
// bound, orders them by priority, executes one campaign at a time
// (results stay deterministic — requests never share mutable state), and
// files the artifacts:
//
//   <spool>/incoming/NAME.req    queued requests (clients write here)
//   <spool>/active/NAME.req      the request currently executing
//   <spool>/done/NAME.report     finished campaign reports
//   <spool>/failed/NAME.err      parse/execution failures
//   <spool>/rejected/NAME.err    admission-control rejections
//
// Execution is pluggable (CampaignExecutor), so the policy layer is unit
// testable without spawning worker processes; the CLI wires in a real
// executor that runs single-process lots in-process and sharded lots
// through the ShardScheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace cichar::dist {

/// One parsed campaign request (format: docs/FORMATS.md). Unknown keys
/// and malformed values are parse errors — a service must not guess.
struct CampaignRequest {
    std::string name;          ///< request file stem (artifact naming)
    std::string kind = "lot";  ///< only "lot" today
    /// Higher runs first; ties break on name (ascending) so a scan is
    /// deterministic regardless of directory iteration order.
    std::int64_t priority = 0;
    std::size_t shards = 1;  ///< 1 = in-process, N > 1 = shard scheduler
    std::size_t sites = 8;
    std::size_t jobs = 1;
    std::uint64_t seed = 2005;
    std::size_t tests = 80;
    std::size_t generations = 15;
    std::string params = "tdq";        ///< "tdq" | "all"
    std::string fault_profile;         ///< empty = off
    std::string policy;                ///< "" (auto) | "on" | "off"

    /// Parses the `cichar-campaign-request 1` text format. Throws
    /// std::runtime_error naming the offending line on any problem.
    [[nodiscard]] static CampaignRequest parse(const std::string& text,
                                               std::string name);

    /// Inverse of parse() (round-trips exactly; used by tests and by
    /// tools that enqueue requests programmatically).
    [[nodiscard]] std::string render() const;
};

struct SpoolOptions {
    std::string root;  ///< spool directory (subdirs created on demand)
    /// Admission control: a scan holding more than this many parseable
    /// requests rejects the excess from the low-priority end.
    std::size_t max_queue = 16;
    /// Stop after this many executed/failed campaigns (0 = unlimited).
    std::size_t max_requests = 0;
    /// Exit once the queue is empty instead of polling forever.
    bool drain = false;
    double poll_interval_seconds = 0.5;
};

/// Runs one campaign, returning the report text; throws on failure.
using CampaignExecutor =
    std::function<std::string(const CampaignRequest&)>;

class SpoolCoordinator {
public:
    SpoolCoordinator(SpoolOptions options, CampaignExecutor executor);

    struct Stats {
        std::uint64_t executed = 0;
        std::uint64_t failed = 0;    ///< parse or executor failures
        std::uint64_t rejected = 0;  ///< admission control
        /// Filesystem operations (claim rename, cleanup removes) that
        /// failed for a reason other than the benign lost-claim race;
        /// each is also logged. Non-zero means the spool directories
        /// need operator attention (permissions, disk).
        std::uint64_t fs_errors = 0;
    };

    /// Serves the spool until drained (`drain`), the request cap is hit,
    /// or forever. Throws std::runtime_error when the spool root cannot
    /// be prepared.
    Stats run();

    /// One scan-and-execute step (at most one campaign); exposed for
    /// tests and single-shot maintenance. Returns true when any request
    /// was processed or rejected.
    bool step(Stats& stats);

private:
    /// Creates the spool subdirectories (idempotent); throws on failure.
    void ensure_layout() const;

    SpoolOptions options_;
    CampaignExecutor executor_;
};

}  // namespace cichar::dist
