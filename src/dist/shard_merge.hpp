// Shard-artifact fusion behind `cichar merge`. Two artifact kinds:
//
// * Lot shard checkpoints — each worker's core::checkpoint envelope
//   holding its finished-site payload (distilled trip records, risk,
//   health counters, and MeasurementLog ledger: the partial LotReport
//   state). merge_shard_checkpoints() fuses disjoint site sets into one
//   envelope that is byte-identical to the checkpoint a single-process
//   run of the whole lot would have written — the determinism contract
//   the distributed service rests on.
//
// * Persistent trip caches (CICHTPC2) — per-shard warm-start caches
//   fused entry-wise so a follow-up hunt starts warm across the union.
//
// All validation is strict: fingerprint/identity mismatches, overlapping
// site ranges, and corrupt blobs throw instead of producing a silently
// wrong artifact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cichar::dist {

/// What a merge did — rendered by the CLI and mirrored into telemetry.
struct MergeStats {
    std::size_t shards = 0;        ///< input blobs fused
    std::size_t sites = 0;         ///< finished sites in the output
    std::size_t empty_shards = 0;  ///< inputs that carried no finished site
    double merge_seconds = 0.0;    ///< wall clock (reporting only)
};

/// Fuses per-shard lot checkpoint files (raw file contents, envelope
/// included) into one enveloped blob. Every input must carry the same
/// lot fingerprint (`expected_fingerprint` when non-empty, otherwise the
/// first blob's); site sets must be disjoint. An input with zero
/// finished sites is legal (a shard that was killed before its first
/// site) and counted in `stats.empty_shards`. Output sites are ordered
/// by site index — byte-identical to a single-process checkpoint of the
/// same finished set. Throws std::runtime_error on empty input, a blob
/// that fails envelope/payload decoding, a fingerprint mismatch, or a
/// duplicate site.
[[nodiscard]] std::string merge_shard_checkpoints(
    const std::vector<std::string>& blobs,
    std::string_view expected_fingerprint = {}, MergeStats* stats = nullptr);

/// Loads every CICHTPC2 trip-cache file, requires one common device
/// identity across them, fuses entries in argument order (a later
/// shard's record wins a key collision), and atomically writes the
/// merged cache to `out_path`. Returns the shared identity. Throws
/// std::runtime_error on unreadable/corrupt inputs, identity mismatch,
/// or a failed write.
std::string merge_trip_cache_files(const std::vector<std::string>& in_paths,
                                   const std::string& out_path);

}  // namespace cichar::dist
