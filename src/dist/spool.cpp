#include "dist/spool.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/binio.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace cichar::dist {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kRequestHeader = "cichar-campaign-request 1";

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
    try {
        std::size_t consumed = 0;
        const std::uint64_t parsed = std::stoull(value, &consumed);
        if (consumed != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw std::runtime_error("campaign request: bad " + key + " value '" +
                                 value + "'");
    }
}

std::int64_t parse_i64(const std::string& value, const std::string& key) {
    try {
        std::size_t consumed = 0;
        const std::int64_t parsed = std::stoll(value, &consumed);
        if (consumed != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw std::runtime_error("campaign request: bad " + key + " value '" +
                                 value + "'");
    }
}

}  // namespace

CampaignRequest CampaignRequest::parse(const std::string& text,
                                       std::string name) {
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kRequestHeader) {
        throw std::runtime_error(
            "campaign request: missing 'cichar-campaign-request 1' header");
    }
    CampaignRequest request;
    request.name = std::move(name);
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t space = line.find(' ');
        const std::string key = line.substr(0, space);
        const std::string value =
            space == std::string::npos ? "" : line.substr(space + 1);
        if (value.empty()) {
            throw std::runtime_error("campaign request: key '" + key +
                                     "' has no value");
        }
        if (key == "kind") {
            if (value != "lot") {
                throw std::runtime_error(
                    "campaign request: unsupported kind '" + value + "'");
            }
            request.kind = value;
        } else if (key == "priority") {
            request.priority = parse_i64(value, key);
        } else if (key == "shards") {
            request.shards =
                static_cast<std::size_t>(parse_u64(value, key));
            if (request.shards == 0) {
                throw std::runtime_error(
                    "campaign request: shards must be >= 1");
            }
        } else if (key == "sites") {
            request.sites = static_cast<std::size_t>(parse_u64(value, key));
        } else if (key == "jobs") {
            request.jobs = static_cast<std::size_t>(parse_u64(value, key));
        } else if (key == "seed") {
            request.seed = parse_u64(value, key);
        } else if (key == "tests") {
            request.tests = static_cast<std::size_t>(parse_u64(value, key));
        } else if (key == "generations") {
            request.generations =
                static_cast<std::size_t>(parse_u64(value, key));
        } else if (key == "params") {
            if (value != "tdq" && value != "all") {
                throw std::runtime_error(
                    "campaign request: params must be tdq or all");
            }
            request.params = value;
        } else if (key == "fault-profile") {
            request.fault_profile = value == "off" ? "" : value;
        } else if (key == "policy") {
            if (value != "on" && value != "off") {
                throw std::runtime_error(
                    "campaign request: policy must be on or off");
            }
            request.policy = value;
        } else {
            throw std::runtime_error("campaign request: unknown key '" + key +
                                     "'");
        }
    }
    if (request.sites == 0) {
        throw std::runtime_error("campaign request: sites must be >= 1");
    }
    if (request.shards > request.sites) {
        throw std::runtime_error(
            "campaign request: more shards than sites");
    }
    return request;
}

std::string CampaignRequest::render() const {
    std::ostringstream out;
    out << kRequestHeader << "\n"
        << "kind " << kind << "\n"
        << "priority " << priority << "\n"
        << "shards " << shards << "\n"
        << "sites " << sites << "\n"
        << "jobs " << jobs << "\n"
        << "seed " << seed << "\n"
        << "tests " << tests << "\n"
        << "generations " << generations << "\n"
        << "params " << params << "\n"
        << "fault-profile "
        << (fault_profile.empty() ? "off" : fault_profile) << "\n";
    if (!policy.empty()) out << "policy " << policy << "\n";
    return out.str();
}

SpoolCoordinator::SpoolCoordinator(SpoolOptions options,
                                   CampaignExecutor executor)
    : options_(std::move(options)), executor_(std::move(executor)) {}

namespace {

struct PendingRequest {
    std::string stem;  ///< file name without .req
    std::string path;
    CampaignRequest request;
};

void file_text(const std::string& path, const std::string& text) {
    if (!util::atomic_write_file(path, text)) {
        util::log_warn("spool: cannot write " + path);
    }
}

}  // namespace

void SpoolCoordinator::ensure_layout() const {
    const fs::path root(options_.root);
    std::error_code ec;
    for (const char* sub :
         {"incoming", "active", "done", "failed", "rejected"}) {
        fs::create_directories(root / sub, ec);
        if (ec) {
            throw std::runtime_error("spool: cannot create " +
                                     (root / sub).string() + ": " +
                                     ec.message());
        }
    }
}

bool SpoolCoordinator::step(Stats& stats) {
    ensure_layout();
    const fs::path root(options_.root);
    const fs::path incoming = root / "incoming";

    // Scan: parse every queued request (malformed ones fail immediately
    // and leave the queue), then order by (priority desc, name asc).
    std::vector<PendingRequest> queue;
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(incoming, ec)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".req") {
            continue;
        }
        const std::string stem = entry.path().stem().string();
        const std::optional<std::string> text =
            util::read_file(entry.path().string());
        if (!text) continue;  // torn mid-write; next scan sees it whole
        try {
            PendingRequest pending;
            pending.stem = stem;
            pending.path = entry.path().string();
            pending.request = CampaignRequest::parse(*text, stem);
            queue.push_back(std::move(pending));
        } catch (const std::exception& e) {
            file_text((root / "failed" / (stem + ".err")).string(),
                      std::string(e.what()) + "\n");
            if (!fs::remove(entry.path(), ec) && ec) {
                ++stats.fs_errors;
                util::log_warn("spool: cannot remove malformed " + stem +
                               ": " + ec.message());
            }
            ++stats.failed;
            util::log_warn("spool: request " + stem + " malformed: " +
                           e.what());
        }
    }
    std::sort(queue.begin(), queue.end(),
              [](const PendingRequest& a, const PendingRequest& b) {
                  if (a.request.priority != b.request.priority) {
                      return a.request.priority > b.request.priority;
                  }
                  return a.stem < b.stem;
              });

    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& depth =
            telem::Registry::instance().gauge("cichar_serve_queue_depth");
        depth.set(static_cast<double>(queue.size()));
    }

    // Admission control: shed load from the low-priority end, loudly.
    bool acted = false;
    while (queue.size() > options_.max_queue) {
        const PendingRequest& shed = queue.back();
        file_text((root / "rejected" / (shed.stem + ".err")).string(),
                  "admission control: queue holds " +
                      std::to_string(queue.size()) + " requests, limit is " +
                      std::to_string(options_.max_queue) + "\n");
        if (!fs::remove(shed.path, ec) && ec) {
            ++stats.fs_errors;
            util::log_warn("spool: cannot remove shed " + shed.stem + ": " +
                           ec.message());
        }
        ++stats.rejected;
        acted = true;
        util::log_warn("spool: rejected " + shed.stem +
                       " (queue over limit)");
        if (util::telemetry::metrics_enabled()) {
            namespace telem = util::telemetry;
            static auto& rejected = telem::Registry::instance().counter(
                "cichar_serve_rejected_total");
            rejected.add();
        }
        queue.pop_back();
    }
    if (queue.empty()) return acted;

    // Execute the winner.
    const PendingRequest& next = queue.front();
    const fs::path active = root / "active" / (next.stem + ".req");
    fs::rename(next.path, active, ec);
    if (ec) {
        if (ec == std::errc::no_such_file_or_directory) {
            // Another process claimed it; not an error.
            return acted;
        }
        // Any other rename failure (permissions, disk, cross-device
        // spool root) would silently re-poll the same request forever —
        // surface it instead.
        ++stats.fs_errors;
        util::log_warn("spool: cannot claim " + next.stem + ": " +
                       ec.message());
        return acted;
    }
    util::log_info("spool: executing " + next.stem + " (priority " +
                   std::to_string(next.request.priority) + ", " +
                   std::to_string(next.request.shards) + " shard(s))");
    const auto start = std::chrono::steady_clock::now();
    try {
        const std::string report = executor_(next.request);
        file_text((root / "done" / (next.stem + ".report")).string(), report);
        ++stats.executed;
        if (util::telemetry::metrics_enabled()) {
            namespace telem = util::telemetry;
            static auto& executed = telem::Registry::instance().counter(
                "cichar_serve_requests_total");
            static auto& campaign_seconds = telem::Registry::instance().gauge(
                "cichar_serve_campaign_seconds");
            executed.add();
            campaign_seconds.set(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
        }
    } catch (const std::exception& e) {
        file_text((root / "failed" / (next.stem + ".err")).string(),
                  std::string(e.what()) + "\n");
        ++stats.failed;
        util::log_warn("spool: campaign " + next.stem + " failed: " +
                       e.what());
        if (util::telemetry::metrics_enabled()) {
            namespace telem = util::telemetry;
            static auto& failed = telem::Registry::instance().counter(
                "cichar_serve_failed_total");
            failed.add();
        }
    }
    if (!fs::remove(active, ec) && ec) {
        // A stuck active file shadows the stem forever (re-submissions
        // of the same name would collide) — loud, not silent.
        ++stats.fs_errors;
        util::log_warn("spool: cannot clear active " + next.stem + ": " +
                       ec.message());
    }
    return true;
}

SpoolCoordinator::Stats SpoolCoordinator::run() {
    ensure_layout();
    Stats stats;
    while (true) {
        const bool acted = step(stats);
        if (options_.max_requests > 0 &&
            stats.executed + stats.failed >= options_.max_requests) {
            break;
        }
        if (!acted) {
            if (options_.drain) break;
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options_.poll_interval_seconds));
        }
    }
    return stats;
}

}  // namespace cichar::dist
