#include "dist/shard_manifest.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "util/binio.hpp"

namespace cichar::dist {

const char* to_string(ShardState state) noexcept {
    switch (state) {
        case ShardState::kPending: return "pending";
        case ShardState::kRunning: return "running";
        case ShardState::kDone: return "done";
        case ShardState::kFailed: return "failed";
    }
    return "?";
}

std::string ShardEntry::range_spec() const {
    return std::to_string(site_begin) + ":" + std::to_string(site_end);
}

ShardManifest ShardManifest::partition(std::string lot_fingerprint,
                                       std::size_t sites,
                                       std::size_t shard_count,
                                       const std::string& work_dir) {
    if (shard_count == 0 || shard_count > sites) {
        throw std::invalid_argument(
            "shard manifest: shard count must be in [1, sites], got " +
            std::to_string(shard_count) + " for " + std::to_string(sites) +
            " sites");
    }
    ShardManifest manifest;
    manifest.lot_fingerprint = std::move(lot_fingerprint);
    manifest.sites = sites;
    manifest.shards.reserve(shard_count);
    const std::size_t base = sites / shard_count;
    const std::size_t remainder = sites % shard_count;
    std::size_t next = 0;
    for (std::size_t k = 0; k < shard_count; ++k) {
        ShardEntry shard;
        shard.index = k;
        shard.site_begin = next;
        next += base + (k < remainder ? 1 : 0);
        shard.site_end = next;
        const std::string stem =
            work_dir + "/shard_" + std::to_string(k);
        shard.checkpoint = stem + ".ckpt";
        shard.heartbeat = stem + ".hb";
        manifest.shards.push_back(std::move(shard));
    }
    return manifest;
}

std::string ShardManifest::encode() const {
    std::string payload;
    util::put_u32(payload, kShardManifestVersion);
    util::put_string(payload, lot_fingerprint);
    util::put_u64(payload, sites);
    util::put_u64(payload, shards.size());
    for (const ShardEntry& shard : shards) {
        util::put_u64(payload, shard.index);
        util::put_u64(payload, shard.site_begin);
        util::put_u64(payload, shard.site_end);
        util::put_string(payload, shard.checkpoint);
        util::put_string(payload, shard.heartbeat);
        util::put_u64(payload, shard.attempts);
        util::put_u64(payload, static_cast<std::uint64_t>(shard.state));
    }
    std::string out;
    out.reserve(kShardManifestMagic.size() + payload.size() + 16);
    out.append(kShardManifestMagic);
    util::put_string(out, payload);
    util::put_u64(out, util::checksum64(payload));
    return out;
}

std::optional<ShardManifest> ShardManifest::decode(std::string_view contents) {
    if (contents.size() < kShardManifestMagic.size() ||
        contents.substr(0, kShardManifestMagic.size()) != kShardManifestMagic) {
        return std::nullopt;
    }
    try {
        util::ByteReader outer(contents.substr(kShardManifestMagic.size()));
        const std::string payload = outer.get_string(1ULL << 30);
        const std::uint64_t checksum = outer.get_u64();
        if (!outer.at_end()) return std::nullopt;
        if (checksum != util::checksum64(payload)) return std::nullopt;

        util::ByteReader in(payload);
        if (in.get_u32() != kShardManifestVersion) return std::nullopt;
        ShardManifest manifest;
        manifest.lot_fingerprint = in.get_string();
        manifest.sites = static_cast<std::size_t>(in.get_u64());
        const std::uint64_t count = in.get_u64();
        if (count > manifest.sites) return std::nullopt;
        manifest.shards.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t k = 0; k < count; ++k) {
            ShardEntry shard;
            shard.index = static_cast<std::size_t>(in.get_u64());
            shard.site_begin = static_cast<std::size_t>(in.get_u64());
            shard.site_end = static_cast<std::size_t>(in.get_u64());
            shard.checkpoint = in.get_string();
            shard.heartbeat = in.get_string();
            shard.attempts = in.get_u64();
            const std::uint64_t state = in.get_u64();
            if (state > static_cast<std::uint64_t>(ShardState::kFailed)) {
                return std::nullopt;
            }
            shard.state = static_cast<ShardState>(state);
            if (shard.site_begin >= shard.site_end ||
                shard.site_end > manifest.sites) {
                return std::nullopt;
            }
            manifest.shards.push_back(std::move(shard));
        }
        if (!in.at_end()) return std::nullopt;
        return manifest;
    } catch (const std::exception&) {
        return std::nullopt;  // truncated / malformed
    }
}

bool ShardManifest::save(const std::string& path) const {
    return util::atomic_write_file(path, encode());
}

std::optional<ShardManifest> ShardManifest::load(const std::string& path) {
    const std::optional<std::string> contents = util::read_file(path);
    if (!contents.has_value()) return std::nullopt;
    return decode(*contents);
}

bool ShardManifest::complete() const noexcept {
    return std::all_of(
        shards.begin(), shards.end(),
        [](const ShardEntry& s) { return s.state == ShardState::kDone; });
}

}  // namespace cichar::dist
