// Versioned, checksummed shard manifest — the scheduler's durable record
// of how a lot was partitioned and how far each shard has come. The
// on-disk envelope follows the core/checkpoint idiom:
//
//   magic "CISHMAN1" | payload | checksum64
//
// with the lot fingerprint inside the payload, so a manifest written for
// a different lot configuration (or a torn/bit-flipped file) is refused
// instead of silently steering workers at the wrong shards. The
// scheduler rewrites the manifest atomically on every state transition;
// a crashed coordinator restarts from the last consistent picture.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cichar::dist {

inline constexpr std::string_view kShardManifestMagic = "CISHMAN1";
inline constexpr std::uint32_t kShardManifestVersion = 1;

/// Lifecycle of one shard, persisted so a restarted coordinator (and CI
/// artifact readers) can see exactly where every shard stood.
enum class ShardState : std::uint8_t {
    kPending,  ///< not yet launched
    kRunning,  ///< worker process in flight
    kDone,     ///< checkpoint verified complete for the shard's range
    kFailed,   ///< exhausted its attempts
};

[[nodiscard]] const char* to_string(ShardState state) noexcept;

/// One contiguous site-range shard and its bookkeeping.
struct ShardEntry {
    std::size_t index = 0;       ///< shard number, 0-based
    std::size_t site_begin = 0;  ///< first site (inclusive)
    std::size_t site_end = 0;    ///< last site (exclusive)
    std::string checkpoint;      ///< per-shard checkpoint blob path
    std::string heartbeat;       ///< worker liveness file path
    std::uint64_t attempts = 0;  ///< worker launches so far
    ShardState state = ShardState::kPending;

    [[nodiscard]] std::size_t site_count() const noexcept {
        return site_end - site_begin;
    }
    /// "A:B" as the worker's --site-range operand.
    [[nodiscard]] std::string range_spec() const;
};

/// The whole partition plan plus identity: which lot (fingerprint), how
/// many sites, and every shard's range and progress.
struct ShardManifest {
    std::string lot_fingerprint;
    std::size_t sites = 0;
    std::vector<ShardEntry> shards;

    /// Splits `sites` into `shard_count` contiguous, disjoint,
    /// gap-free ranges (difference in size at most one, earlier shards
    /// take the remainder). Checkpoint/heartbeat paths are derived from
    /// `work_dir` ("<work_dir>/shard_K.ckpt" / ".hb"). Throws
    /// std::invalid_argument when shard_count is 0 or exceeds `sites`.
    [[nodiscard]] static ShardManifest partition(
        std::string lot_fingerprint, std::size_t sites,
        std::size_t shard_count, const std::string& work_dir);

    /// Envelope + payload + checksum, byte-stable for identical state.
    [[nodiscard]] std::string encode() const;

    /// Inverse of encode(). nullopt on bad magic, unsupported version,
    /// checksum mismatch, truncation, or any malformed field — a corrupt
    /// manifest never half-loads. Never throws.
    [[nodiscard]] static std::optional<ShardManifest> decode(
        std::string_view contents);

    /// encode + util::atomic_write_file. Returns success.
    [[nodiscard]] bool save(const std::string& path) const;

    /// Reads + decodes a manifest file; nullopt when missing or corrupt.
    [[nodiscard]] static std::optional<ShardManifest> load(
        const std::string& path);

    /// All shards kDone.
    [[nodiscard]] bool complete() const noexcept;
};

}  // namespace cichar::dist
