// Multi-process shard scheduler: partitions a lot into contiguous
// site-range shards (ShardManifest), spawns one `cichar lot --site-range
// A:B` worker process per shard, monitors them through heartbeat files
// and exit codes, reissues failed or stalled shards from their last
// per-shard checkpoint, and finally fuses the shard checkpoints into one
// blob (shard_merge) that is byte-identical to what a single process
// would have checkpointed.
//
// Fault model: a worker may crash, be SIGKILLed, exit nonzero, stop
// heartbeating (straggler), or exit 0 with an incomplete range (a
// --max-sites stop-and-go worker). Every case is handled the same way:
// the shard is reissued — resuming from its checkpoint when one is
// valid — until it completes or exhausts max_attempts. Because each
// site's streams are pre-committed from the lot seed, a reissued shard
// reproduces exactly the sites a never-killed worker would have.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/shard_manifest.hpp"
#include "dist/shard_merge.hpp"

namespace cichar::dist {

struct ShardSchedulerOptions {
    /// Worker processes the lot is split across.
    std::size_t shards = 2;
    /// Launches per shard before the run is declared failed.
    std::size_t max_attempts = 3;
    /// A running worker whose heartbeat file has not advanced for this
    /// long is treated as a straggler: killed and reissued. 0 disables
    /// straggler detection (exit codes still drive reissue).
    double heartbeat_timeout_seconds = 0.0;
    /// Scheduler poll cadence.
    double poll_interval_seconds = 0.05;
    /// Concurrently running workers; 0 = all shards at once.
    std::size_t max_parallel = 0;
    /// Manifest, per-shard checkpoints, heartbeats, and worker logs live
    /// here (created if missing).
    std::string work_dir = "cichar-shards";
    /// Path of the cichar binary workers are spawned from.
    std::string worker_program;
    /// Base worker argv after "lot" (sites/seed/tests/... flags). The
    /// scheduler appends --site-range/--checkpoint/--heartbeat/--resume.
    std::vector<std::string> worker_args;
    /// Chaos hook for tests/CI: SIGKILL this shard's first worker once
    /// its checkpoint file exists (i.e. genuinely mid-run), forcing the
    /// reissue path deterministically.
    std::optional<std::size_t> kill_shard{};
    /// Directory each worker publishes its live status snapshot into
    /// (appends `--status DIR --status-name shard_K` to the worker argv;
    /// empty = feed off). `cichar status` / `cichar top` fuse these.
    std::string status_dir;
};

/// What one run() did, for reporting and assertions.
struct ShardRunResult {
    ShardManifest manifest;       ///< final state, also persisted on disk
    std::string merged_blob;      ///< fused enveloped checkpoint
    std::string merged_path;      ///< where the fused blob was written
    std::string manifest_path;    ///< persisted manifest location
    MergeStats merge;             ///< fusion statistics
    std::uint64_t launches = 0;   ///< total worker processes spawned
    std::uint64_t reissues = 0;   ///< launches beyond each shard's first
    std::uint64_t kills = 0;      ///< workers the scheduler killed
    double wall_seconds = 0.0;
};

class ShardScheduler {
public:
    explicit ShardScheduler(ShardSchedulerOptions options);

    [[nodiscard]] const ShardSchedulerOptions& options() const noexcept {
        return options_;
    }

    /// Partitions `sites` across the shards, runs the worker fleet to
    /// completion, and fuses the shard checkpoints. Throws
    /// std::runtime_error when a shard exhausts max_attempts (remaining
    /// workers are killed first) or the work directory is unusable.
    [[nodiscard]] ShardRunResult run(const std::string& lot_fingerprint,
                                     std::size_t sites) const;

private:
    ShardSchedulerOptions options_;
};

/// Seconds since `path` was last written; nullopt when the file does not
/// exist (a worker that has not heartbeat yet). Exposed for tests.
[[nodiscard]] std::optional<double> heartbeat_age_seconds(
    const std::string& path);

/// True when a shard's checkpoint file exists, carries the expected lot
/// fingerprint, and marks every site in [site_begin, site_end) finished.
/// Exposed for tests.
[[nodiscard]] bool shard_checkpoint_complete(
    const std::string& path, const std::string& lot_fingerprint,
    std::size_t site_begin, std::size_t site_end);

}  // namespace cichar::dist
