// Margin-risk analyzer: the paper's worked fuzzy sentence — "if A and B
// and C, then D is quite close to the limit of the target device-spec" —
// as a ready-made Mamdani system. It fuses three characterization
// indicators into one spec-margin risk score:
//   * the worst-case ratio of the parameter (how close to the limit),
//   * the committee's vote agreement (how confident the classifier is),
//   * the trip point spread across tests (how test dependent the part is).
#pragma once

#include "fuzzy/inference.hpp"

namespace cichar::fuzzy {

class MarginRiskAnalyzer {
public:
    MarginRiskAnalyzer();

    /// Risk score in [0, 1].
    ///   `wcr`              worst-case ratio, typically 0..1.2
    ///   `agreement`        committee vote agreement, 0..1
    ///   `spread_fraction`  trip spread / characterization range, 0..1
    [[nodiscard]] double risk(double wcr, double agreement,
                              double spread_fraction) const;

    /// Linguistic label of a risk score ("low" / "elevated" / "critical").
    [[nodiscard]] const std::string& label(double risk_score) const;

    [[nodiscard]] const FuzzyInferenceSystem& system() const noexcept {
        return system_;
    }

private:
    FuzzyInferenceSystem system_;
};

}  // namespace cichar::fuzzy
