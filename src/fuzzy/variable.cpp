#include "fuzzy/variable.hpp"

#include <algorithm>
#include <cassert>

namespace cichar::fuzzy {

LinguisticVariable::LinguisticVariable(std::string name, double domain_lo,
                                       double domain_hi)
    : name_(std::move(name)), lo_(domain_lo), hi_(domain_hi) {
    assert(domain_lo < domain_hi);
}

void LinguisticVariable::add_term(std::string term_name,
                                  MembershipFunction membership) {
    terms_.push_back(FuzzyTerm{std::move(term_name), membership});
    // Rebuild the default-resolution defuzzification grid. Grid x values
    // are computed exactly as in defuzzify's loop, so cached memberships
    // match on-the-fly evaluation bit for bit.
    const std::size_t samples = kDefaultDefuzzSamples;
    const double step = (hi_ - lo_) / static_cast<double>(samples - 1);
    grid_.resize(terms_.size() * samples);
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        for (std::size_t s = 0; s < samples; ++s) {
            const double x = lo_ + step * static_cast<double>(s);
            grid_[i * samples + s] = terms_[i].membership(x);
        }
    }
}

std::size_t LinguisticVariable::term_index(std::string_view term_name) const {
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        if (terms_[i].name == term_name) return i;
    }
    return npos;
}

std::vector<double> LinguisticVariable::fuzzify(double x) const {
    std::vector<double> degrees;
    degrees.reserve(terms_.size());
    for (const FuzzyTerm& t : terms_) degrees.push_back(t.membership(x));
    return degrees;
}

std::size_t LinguisticVariable::best_term(double x) const {
    assert(!terms_.empty());
    std::size_t best = 0;
    double best_degree = -1.0;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        const double d = terms_[i].membership(x);
        if (d > best_degree) {
            best_degree = d;
            best = i;
        }
    }
    return best;
}

double LinguisticVariable::defuzzify(std::span<const double> activations,
                                     std::size_t samples) const {
    assert(activations.size() == terms_.size());
    assert(samples >= 2);
    double weighted = 0.0;
    double total = 0.0;
    const double step = (hi_ - lo_) / static_cast<double>(samples - 1);
    if (samples == kDefaultDefuzzSamples &&
        grid_.size() == terms_.size() * samples) {
        // Fast path: membership values come from the add_term cache, and
        // the aggregate mu[s] is built term-by-term over contiguous grid
        // rows (vectorizable min/max). Per grid point the max still folds
        // terms in ascending order, and the weighted/total accumulation
        // below runs in the same ascending-s order as the generic loop,
        // so the result is bit-identical — only the membership function
        // calls are gone. Clamping an activation is loop-invariant, so it
        // is hoisted per term.
        double mu[kDefaultDefuzzSamples] = {};
        for (std::size_t i = 0; i < terms_.size(); ++i) {
            const double a = std::clamp(activations[i], 0.0, 1.0);
            const double* row = grid_.data() + i * samples;
            for (std::size_t s = 0; s < samples; ++s) {
                mu[s] = std::max(mu[s], std::min(a, row[s]));
            }
        }
        for (std::size_t s = 0; s < samples; ++s) {
            const double x = lo_ + step * static_cast<double>(s);
            weighted += mu[s] * x;
            total += mu[s];
        }
    } else {
        for (std::size_t s = 0; s < samples; ++s) {
            const double x = lo_ + step * static_cast<double>(s);
            double mu = 0.0;
            for (std::size_t i = 0; i < terms_.size(); ++i) {
                const double clipped =
                    std::min(std::clamp(activations[i], 0.0, 1.0),
                             terms_[i].membership(x));
                mu = std::max(mu, clipped);
            }
            weighted += mu * x;
            total += mu;
        }
    }
    if (total <= 0.0) return 0.5 * (lo_ + hi_);
    return weighted / total;
}

}  // namespace cichar::fuzzy
