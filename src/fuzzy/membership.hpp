// Fuzzy membership functions (Bezdek [8]): the paper encodes trip point
// measurements as fuzzy variables because "fuzzy logic can describe more
// than one analysis parameter" — a trip point can be simultaneously
// 'weak' to degree 0.6 and 'pass' to degree 0.4.
#pragma once

#include <cstdint>

namespace cichar::fuzzy {

/// Value-type membership function over the reals, range [0, 1].
class MembershipFunction {
public:
    /// Triangle rising a->b, falling b->c.
    [[nodiscard]] static MembershipFunction triangular(double a, double b,
                                                       double c);
    /// Trapezoid rising a->b, flat b->c, falling c->d.
    [[nodiscard]] static MembershipFunction trapezoid(double a, double b,
                                                      double c, double d);
    /// Gaussian bell centered on `mean`.
    [[nodiscard]] static MembershipFunction gaussian(double mean, double sigma);
    /// Left shoulder: 1 below `full`, linear fall to 0 at `zero`.
    [[nodiscard]] static MembershipFunction shoulder_left(double full,
                                                          double zero);
    /// Right shoulder: 0 below `zero`, linear rise to 1 at `full`.
    [[nodiscard]] static MembershipFunction shoulder_right(double zero,
                                                           double full);

    /// Membership degree of `x` in [0, 1].
    [[nodiscard]] double operator()(double x) const noexcept;

    /// Representative (peak) location, used for fast defuzzification.
    [[nodiscard]] double peak() const noexcept;

private:
    enum class Shape : std::uint8_t {
        kTriangular,
        kTrapezoid,
        kGaussian,
        kShoulderLeft,
        kShoulderRight,
    };

    MembershipFunction(Shape shape, double p0, double p1, double p2, double p3)
        : shape_(shape), p_{p0, p1, p2, p3} {}

    Shape shape_;
    double p_[4];
};

}  // namespace cichar::fuzzy
