#include "fuzzy/coding.hpp"

#include <algorithm>
#include <stdexcept>

namespace cichar::fuzzy {

const char* to_string(CodingScheme scheme) noexcept {
    switch (scheme) {
        case CodingScheme::kFuzzy: return "fuzzy";
        case CodingScheme::kNumeric: return "numeric";
    }
    return "?";
}

TripPointCoder::TripPointCoder(CodingScheme scheme, LinguisticVariable variable,
                               double lo, double hi)
    : scheme_(scheme), variable_(std::move(variable)), lo_(lo), hi_(hi) {}

TripPointCoder TripPointCoder::fuzzy_wcr() {
    LinguisticVariable wcr("wcr", 0.0, 1.3);
    // 0.5-crossings at the paper's class boundaries (Fig. 6): pass|weakness
    // at WCR = 0.8, weakness|fail at WCR = 1.0. The rising/falling ramps
    // are complementary, so memberships sum to 1 over the whole axis.
    wcr.add_term("pass", MembershipFunction::shoulder_left(0.7, 0.9));
    wcr.add_term("weakness",
                 MembershipFunction::trapezoid(0.7, 0.9, 0.95, 1.05));
    wcr.add_term("fail", MembershipFunction::shoulder_right(0.95, 1.05));
    return TripPointCoder(CodingScheme::kFuzzy, std::move(wcr), 0.0, 1.3);
}

TripPointCoder TripPointCoder::fuzzy_wcr_fine() {
    LinguisticVariable wcr("wcr-fine", 0.0, 1.3);
    // Triangular partition of unity over the WCR band the device actually
    // produces (~0.5 for benign tests up to >1 for spec violations).
    wcr.add_term("safe", MembershipFunction::shoulder_left(0.50, 0.60));
    wcr.add_term("nominal", MembershipFunction::triangular(0.50, 0.60, 0.70));
    wcr.add_term("elevated", MembershipFunction::triangular(0.60, 0.70, 0.82));
    wcr.add_term("critical", MembershipFunction::triangular(0.70, 0.82, 0.97));
    wcr.add_term("worst", MembershipFunction::shoulder_right(0.82, 0.97));
    return TripPointCoder(CodingScheme::kFuzzy, std::move(wcr), 0.0, 1.3);
}

TripPointCoder TripPointCoder::numeric(double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("numeric coder needs lo < hi");
    LinguisticVariable dummy("numeric", lo, hi);
    return TripPointCoder(CodingScheme::kNumeric, std::move(dummy), lo, hi);
}

std::size_t TripPointCoder::output_count() const noexcept {
    return scheme_ == CodingScheme::kFuzzy ? variable_.term_count() : 1;
}

std::vector<double> TripPointCoder::encode(double value) const {
    if (scheme_ == CodingScheme::kFuzzy) return variable_.fuzzify(value);
    const double t = std::clamp((value - lo_) / (hi_ - lo_), 0.0, 1.0);
    return {t};
}

double TripPointCoder::decode(std::span<const double> outputs) const {
    if (scheme_ == CodingScheme::kFuzzy) return variable_.defuzzify(outputs);
    if (outputs.empty()) return lo_;
    return lo_ + std::clamp(outputs[0], 0.0, 1.0) * (hi_ - lo_);
}

std::size_t TripPointCoder::classify(double value) const {
    if (scheme_ == CodingScheme::kFuzzy) return variable_.best_term(value);
    return 0;
}

const std::string& TripPointCoder::class_name(std::size_t index) const {
    if (scheme_ != CodingScheme::kFuzzy || index >= variable_.term_count()) {
        throw std::out_of_range("class_name: not a fuzzy class index");
    }
    return variable_.term(index).name;
}

const LinguisticVariable& TripPointCoder::variable() const {
    if (scheme_ != CodingScheme::kFuzzy) {
        throw std::logic_error("variable(): numeric coder has no variable");
    }
    return variable_;
}

}  // namespace cichar::fuzzy
