// Mamdani fuzzy inference: "if A and B and C then D is quite close to the
// limit of the target device-spec" (paper section 5). Used to combine
// several characterization indicators into one risk judgment.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fuzzy/variable.hpp"

namespace cichar::fuzzy {

/// One antecedent clause: input variable `var` is term `term`.
struct Clause {
    std::size_t var = 0;
    std::size_t term = 0;
};

/// IF all antecedents THEN output is `consequent_term`, with rule weight.
struct Rule {
    std::vector<Clause> antecedents;
    std::size_t consequent_term = 0;
    double weight = 1.0;
};

/// Multi-input single-output Mamdani system (min-AND, max aggregation,
/// centroid defuzzification).
class FuzzyInferenceSystem {
public:
    FuzzyInferenceSystem(std::vector<LinguisticVariable> inputs,
                         LinguisticVariable output);

    [[nodiscard]] std::size_t input_count() const noexcept {
        return inputs_.size();
    }
    [[nodiscard]] const LinguisticVariable& input(std::size_t i) const noexcept {
        return inputs_[i];
    }
    [[nodiscard]] const LinguisticVariable& output() const noexcept {
        return output_;
    }
    [[nodiscard]] std::size_t rule_count() const noexcept {
        return rules_.size();
    }

    /// Adds a rule by indices. Indices must be in range.
    void add_rule(Rule rule);

    /// Adds a rule by names; throws std::invalid_argument on unknown names.
    /// `antecedents` pairs are (input variable name, term name).
    void add_rule(
        std::initializer_list<std::pair<std::string_view, std::string_view>>
            antecedents,
        std::string_view consequent_term, double weight = 1.0);

    /// Per-term output activations for the given crisp inputs.
    [[nodiscard]] std::vector<double> activations(
        std::span<const double> crisp_inputs) const;

    /// Crisp output via centroid defuzzification.
    [[nodiscard]] double infer(std::span<const double> crisp_inputs) const;

private:
    std::vector<LinguisticVariable> inputs_;
    LinguisticVariable output_;
    std::vector<Rule> rules_;
};

}  // namespace cichar::fuzzy
