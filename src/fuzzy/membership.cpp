#include "fuzzy/membership.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cichar::fuzzy {

MembershipFunction MembershipFunction::triangular(double a, double b,
                                                  double c) {
    assert(a <= b && b <= c);
    return MembershipFunction(Shape::kTriangular, a, b, c, 0.0);
}

MembershipFunction MembershipFunction::trapezoid(double a, double b, double c,
                                                 double d) {
    assert(a <= b && b <= c && c <= d);
    return MembershipFunction(Shape::kTrapezoid, a, b, c, d);
}

MembershipFunction MembershipFunction::gaussian(double mean, double sigma) {
    assert(sigma > 0.0);
    return MembershipFunction(Shape::kGaussian, mean, sigma, 0.0, 0.0);
}

MembershipFunction MembershipFunction::shoulder_left(double full, double zero) {
    assert(full <= zero);
    return MembershipFunction(Shape::kShoulderLeft, full, zero, 0.0, 0.0);
}

MembershipFunction MembershipFunction::shoulder_right(double zero,
                                                      double full) {
    assert(zero <= full);
    return MembershipFunction(Shape::kShoulderRight, zero, full, 0.0, 0.0);
}

namespace {

double rising(double lo, double hi, double x) {
    if (hi == lo) return x >= hi ? 1.0 : 0.0;
    return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

}  // namespace

double MembershipFunction::operator()(double x) const noexcept {
    switch (shape_) {
        case Shape::kTriangular: {
            const double up = rising(p_[0], p_[1], x);
            const double down = 1.0 - rising(p_[1], p_[2], x);
            return std::min(up, down);
        }
        case Shape::kTrapezoid: {
            const double up = rising(p_[0], p_[1], x);
            const double down = 1.0 - rising(p_[2], p_[3], x);
            return std::min(up, down);
        }
        case Shape::kGaussian: {
            const double t = (x - p_[0]) / p_[1];
            return std::exp(-0.5 * t * t);
        }
        case Shape::kShoulderLeft:
            return 1.0 - rising(p_[0], p_[1], x);
        case Shape::kShoulderRight:
            return rising(p_[0], p_[1], x);
    }
    return 0.0;
}

double MembershipFunction::peak() const noexcept {
    switch (shape_) {
        case Shape::kTriangular: return p_[1];
        case Shape::kTrapezoid: return 0.5 * (p_[1] + p_[2]);
        case Shape::kGaussian: return p_[0];
        case Shape::kShoulderLeft: return p_[0];
        case Shape::kShoulderRight: return p_[1];
    }
    return 0.0;
}

}  // namespace cichar::fuzzy
