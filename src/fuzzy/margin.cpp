#include "fuzzy/margin.hpp"

namespace cichar::fuzzy {

namespace {

FuzzyInferenceSystem build_system() {
    LinguisticVariable wcr("wcr", 0.0, 1.2);
    wcr.add_term("safe", MembershipFunction::shoulder_left(0.55, 0.72));
    wcr.add_term("close", MembershipFunction::trapezoid(0.55, 0.72, 0.82, 0.95));
    wcr.add_term("critical", MembershipFunction::shoulder_right(0.82, 0.95));

    LinguisticVariable agreement("agreement", 0.0, 1.0);
    agreement.add_term("low", MembershipFunction::shoulder_left(0.5, 0.8));
    agreement.add_term("high", MembershipFunction::shoulder_right(0.5, 0.8));

    LinguisticVariable spread("spread", 0.0, 1.0);
    spread.add_term("small", MembershipFunction::shoulder_left(0.1, 0.3));
    spread.add_term("large", MembershipFunction::shoulder_right(0.1, 0.3));

    LinguisticVariable risk("risk", 0.0, 1.0);
    risk.add_term("low", MembershipFunction::shoulder_left(0.2, 0.45));
    risk.add_term("elevated", MembershipFunction::trapezoid(0.2, 0.45, 0.55, 0.8));
    risk.add_term("critical", MembershipFunction::shoulder_right(0.55, 0.8));

    FuzzyInferenceSystem fis({wcr, agreement, spread}, risk);
    // The paper's sentence, spelled out:
    fis.add_rule({{"wcr", "critical"}, {"spread", "large"}}, "critical");
    fis.add_rule({{"wcr", "critical"}, {"agreement", "low"}}, "critical");
    fis.add_rule({{"wcr", "critical"}, {"agreement", "high"},
                  {"spread", "small"}},
                 "elevated");
    fis.add_rule({{"wcr", "close"}, {"spread", "large"}}, "elevated");
    fis.add_rule({{"wcr", "close"}, {"agreement", "low"}}, "elevated");
    fis.add_rule({{"wcr", "close"}, {"agreement", "high"},
                  {"spread", "small"}},
                 "low");
    fis.add_rule({{"wcr", "safe"}, {"spread", "large"}}, "elevated",
                 /*weight=*/0.6);
    fis.add_rule({{"wcr", "safe"}}, "low");
    return fis;
}

}  // namespace

MarginRiskAnalyzer::MarginRiskAnalyzer() : system_(build_system()) {}

double MarginRiskAnalyzer::risk(double wcr, double agreement,
                                double spread_fraction) const {
    const double inputs[] = {wcr, agreement, spread_fraction};
    return system_.infer(inputs);
}

const std::string& MarginRiskAnalyzer::label(double risk_score) const {
    return system_.output().term(system_.output().best_term(risk_score)).name;
}

}  // namespace cichar::fuzzy
