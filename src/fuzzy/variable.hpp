// Linguistic variables: a named domain partitioned into fuzzy terms
// ("pass", "weakness", "fail"). Fuzzification turns a crisp measurement
// into term degrees; centroid defuzzification inverts NN class outputs
// back into a crisp value.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzy/membership.hpp"

namespace cichar::fuzzy {

/// One named term of a variable.
struct FuzzyTerm {
    std::string name;
    MembershipFunction membership;
};

class LinguisticVariable {
public:
    LinguisticVariable(std::string name, double domain_lo, double domain_hi);

    void add_term(std::string term_name, MembershipFunction membership);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double domain_lo() const noexcept { return lo_; }
    [[nodiscard]] double domain_hi() const noexcept { return hi_; }
    [[nodiscard]] std::size_t term_count() const noexcept {
        return terms_.size();
    }
    [[nodiscard]] const FuzzyTerm& term(std::size_t i) const noexcept {
        return terms_[i];
    }
    /// Index of the named term, or npos.
    [[nodiscard]] std::size_t term_index(std::string_view term_name) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Membership degrees of `x` in every term (one per term).
    [[nodiscard]] std::vector<double> fuzzify(double x) const;

    /// Index of the term with the highest degree at `x`.
    [[nodiscard]] std::size_t best_term(double x) const;

    /// Grid resolution of the cached default defuzzification.
    static constexpr std::size_t kDefaultDefuzzSamples = 201;

    /// Centroid defuzzification: given per-term activation levels (clipped
    /// Mamdani aggregation, max-combined), integrates over the domain with
    /// `samples` points. Returns the domain midpoint when all activations
    /// are zero. At the default resolution the per-term membership values
    /// on the grid come from a cache built in add_term — the same
    /// function evaluated at the same points, so results are bit-identical
    /// to the uncached loop while skipping ~terms * samples membership
    /// calls per decode (the hot cost of committee candidate scoring).
    [[nodiscard]] double defuzzify(
        std::span<const double> activations,
        std::size_t samples = kDefaultDefuzzSamples) const;

private:
    std::string name_;
    double lo_;
    double hi_;
    std::vector<FuzzyTerm> terms_;
    /// terms x kDefaultDefuzzSamples membership values, term-major.
    std::vector<double> grid_;
};

}  // namespace cichar::fuzzy
