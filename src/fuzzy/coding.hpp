// Trip point value coding for NN training targets (paper Fig. 4 step 3:
// "Trip point value coding using either fuzzy set data or simple numerical
// coding"). The fuzzy coder expresses a measurement as degrees of the
// paper's Fig. 6 classes (pass / weakness / fail over the WCR axis); the
// numeric coder is the plain normalized alternative.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fuzzy/variable.hpp"

namespace cichar::fuzzy {

enum class CodingScheme : std::uint8_t { kFuzzy, kNumeric };

[[nodiscard]] const char* to_string(CodingScheme scheme) noexcept;

/// Encodes crisp WCR (or any scalar) into NN target vectors and decodes
/// NN outputs back to a crisp estimate.
class TripPointCoder {
public:
    /// Fuzzy coding over the WCR axis with the paper's class boundaries:
    /// pass 0..0.8, weakness 0.8..1, fail >1 (0.5-crossings at 0.8 / 1.0,
    /// partition of unity across the overlaps).
    [[nodiscard]] static TripPointCoder fuzzy_wcr();

    /// Finer five-term partition of the WCR axis for NN *training* targets
    /// (safe / nominal / elevated / critical / worst). Random training
    /// tests cluster deep inside the Fig. 6 "pass" band; a three-term
    /// target would collapse them into one constant class and the
    /// committee could not rank candidates. Five overlapping terms keep
    /// the centroid-decoded prediction informative across the band.
    [[nodiscard]] static TripPointCoder fuzzy_wcr_fine();

    /// Numeric coding: single output, min-max normalized over [lo, hi].
    [[nodiscard]] static TripPointCoder numeric(double lo, double hi);

    [[nodiscard]] CodingScheme scheme() const noexcept { return scheme_; }

    /// Width of the target vector (3 for fuzzy_wcr, 1 for numeric).
    [[nodiscard]] std::size_t output_count() const noexcept;

    /// Crisp value -> NN target vector.
    [[nodiscard]] std::vector<double> encode(double value) const;

    /// NN output vector -> crisp estimate (centroid for fuzzy).
    [[nodiscard]] double decode(std::span<const double> outputs) const;

    /// Class index for a crisp value (fuzzy: best term; numeric: 0).
    [[nodiscard]] std::size_t classify(double value) const;

    /// Term/class name for reporting ("pass"/"weakness"/"fail").
    [[nodiscard]] const std::string& class_name(std::size_t index) const;

    /// The underlying variable (fuzzy scheme only; throws otherwise).
    [[nodiscard]] const LinguisticVariable& variable() const;

private:
    TripPointCoder(CodingScheme scheme, LinguisticVariable variable, double lo,
                   double hi);

    CodingScheme scheme_;
    LinguisticVariable variable_;
    double lo_;
    double hi_;
};

}  // namespace cichar::fuzzy
