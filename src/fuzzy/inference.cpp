#include "fuzzy/inference.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace cichar::fuzzy {

FuzzyInferenceSystem::FuzzyInferenceSystem(
    std::vector<LinguisticVariable> inputs, LinguisticVariable output)
    : inputs_(std::move(inputs)), output_(std::move(output)) {}

void FuzzyInferenceSystem::add_rule(Rule rule) {
    for ([[maybe_unused]] const Clause& c : rule.antecedents) {
        assert(c.var < inputs_.size());
        assert(c.term < inputs_[c.var].term_count());
    }
    assert(rule.consequent_term < output_.term_count());
    rules_.push_back(std::move(rule));
}

void FuzzyInferenceSystem::add_rule(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        antecedents,
    std::string_view consequent_term, double weight) {
    Rule rule;
    rule.weight = weight;
    for (const auto& [var_name, term_name] : antecedents) {
        std::size_t var = LinguisticVariable::npos;
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            if (inputs_[i].name() == var_name) {
                var = i;
                break;
            }
        }
        if (var == LinguisticVariable::npos) {
            throw std::invalid_argument("unknown input variable: " +
                                        std::string(var_name));
        }
        const std::size_t term = inputs_[var].term_index(term_name);
        if (term == LinguisticVariable::npos) {
            throw std::invalid_argument("unknown term: " +
                                        std::string(term_name));
        }
        rule.antecedents.push_back(Clause{var, term});
    }
    const std::size_t out_term = output_.term_index(consequent_term);
    if (out_term == LinguisticVariable::npos) {
        throw std::invalid_argument("unknown output term: " +
                                    std::string(consequent_term));
    }
    rule.consequent_term = out_term;
    add_rule(std::move(rule));
}

std::vector<double> FuzzyInferenceSystem::activations(
    std::span<const double> crisp_inputs) const {
    assert(crisp_inputs.size() == inputs_.size());
    std::vector<double> out(output_.term_count(), 0.0);
    for (const Rule& rule : rules_) {
        double strength = 1.0;
        for (const Clause& c : rule.antecedents) {
            strength = std::min(
                strength, inputs_[c.var].term(c.term).membership(
                              crisp_inputs[c.var]));
        }
        strength *= rule.weight;
        out[rule.consequent_term] =
            std::max(out[rule.consequent_term], strength);
    }
    return out;
}

double FuzzyInferenceSystem::infer(std::span<const double> crisp_inputs) const {
    return output_.defuzzify(activations(crisp_inputs));
}

}  // namespace cichar::fuzzy
