#include "lot/lot_runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ate/async_tester.hpp"
#include "core/checkpoint.hpp"
#include "obs/status_board.hpp"
#include "util/binio.hpp"
#include "util/crash_point.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace cichar::lot {
namespace {

obs::SitePhase status_phase(SiteStatus status) noexcept {
    switch (status) {
        case SiteStatus::kCompleted: return obs::SitePhase::kDone;
        case SiteStatus::kQuarantined: return obs::SitePhase::kQuarantined;
        case SiteStatus::kDead: return obs::SitePhase::kDead;
        case SiteStatus::kPending: break;
    }
    return obs::SitePhase::kPending;
}

std::vector<obs::SiteOutcomeEntry> distill_outcomes(const SiteResult& site) {
    std::vector<obs::SiteOutcomeEntry> outcomes;
    outcomes.reserve(site.outcomes.size());
    for (const SiteParameterOutcome& outcome : site.outcomes) {
        obs::SiteOutcomeEntry entry;
        entry.parameter = outcome.parameter.name;
        entry.found = outcome.worst.found;
        entry.trip_point = outcome.worst.trip_point;
        entry.wcr = outcome.worst.wcr;
        entry.margin_risk = outcome.margin_risk;
        outcomes.push_back(std::move(entry));
    }
    return outcomes;
}

}  // namespace

const char* to_string(SiteStatus status) noexcept {
    switch (status) {
        case SiteStatus::kPending: return "pending";
        case SiteStatus::kCompleted: return "ok";
        case SiteStatus::kQuarantined: return "quarantined";
        case SiteStatus::kDead: return "dead";
    }
    return "?";
}

bool LotResult::complete() const noexcept {
    return std::all_of(sites.begin(), sites.end(),
                       [](const SiteResult& s) { return s.finished(); });
}

std::size_t LotResult::finished_sites() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(sites.begin(), sites.end(),
                      [](const SiteResult& s) { return s.finished(); }));
}

LotRunner::LotRunner(LotOptions options) : options_(std::move(options)) {
    if (options_.parameters.empty()) {
        options_.parameters = {ate::Parameter::data_valid_time()};
    }
}

std::string LotRunner::fingerprint() const {
    // Everything that changes per-site results belongs here; `jobs` and
    // the checkpoint knobs do not (results are thread-count independent).
    std::ostringstream out;
    out << "lot:seed=" << options_.seed << ":sites=" << options_.sites
        << ":params=";
    for (const ate::Parameter& parameter : options_.parameters) {
        out << parameter.name << ",";
    }
    out << ":faults=" << options_.faults.describe()
        << ":policy=" << (options_.policy.enabled ? 1 : 0)
        << ":quarantine=" << options_.policy.quarantine_after;
    // Replica-mode site hunts measure on clones instead of in situ, which
    // changes per-site results — but the depth itself (like jobs, the
    // slab size, and ring sharing) does not, so only the on/off bit is
    // fingerprinted and checkpoints resume across any inflight >= 1.
    // Appended conditionally so classic-lot checkpoints keep their
    // pre-replica fingerprint.
    if (options_.inflight > 0) out << ":replica=1";
    return out.str();
}

std::string encode_finished_sites(const std::vector<SiteResult>& sites) {
    std::string out;
    std::uint64_t finished = 0;
    for (const SiteResult& site : sites) {
        if (site.finished()) ++finished;
    }
    util::put_u64(out, finished);
    for (const SiteResult& site : sites) {
        if (!site.finished()) continue;
        util::put_u64(out, site.site);
        util::put_u64(out, static_cast<std::uint64_t>(site.status));
        util::put_double(out, site.max_risk);
        site.faults.save(out);
        site.injected.save(out);
        site.log.save(out);
        util::put_u64(out, site.outcomes.size());
        for (const SiteParameterOutcome& outcome : site.outcomes) {
            util::put_string(out, outcome.parameter.name);
            outcome.worst.save(out);
            util::put_double(out, outcome.margin_risk);
        }
    }
    return out;
}

std::vector<SiteResult> decode_finished_sites(const std::string& payload) {
    // Corruption guard only — real lots are far smaller. A count above it
    // means the length field itself is garbage.
    constexpr std::uint64_t kMaxSites = 1 << 20;
    constexpr std::uint64_t kMaxParameters = 1024;
    util::ByteReader in(payload);
    const std::uint64_t finished = in.get_u64();
    if (finished > kMaxSites) {
        throw std::runtime_error("lot shard payload: absurd site count");
    }
    std::vector<SiteResult> decoded;
    decoded.reserve(static_cast<std::size_t>(finished));
    for (std::uint64_t i = 0; i < finished; ++i) {
        SiteResult site;
        site.site = static_cast<std::size_t>(in.get_u64());
        const std::uint64_t status = in.get_u64();
        if (status == static_cast<std::uint64_t>(SiteStatus::kPending) ||
            status > static_cast<std::uint64_t>(SiteStatus::kDead)) {
            throw std::runtime_error("lot shard payload: bad site status");
        }
        site.status = static_cast<SiteStatus>(status);
        site.max_risk = in.get_double();
        site.faults = core::FaultCounters::load(in);
        site.injected = ate::InjectionStats::load(in);
        site.log.load(in);
        const std::uint64_t outcomes = in.get_u64();
        if (outcomes > kMaxParameters) {
            throw std::runtime_error("lot shard payload: too many parameters");
        }
        site.outcomes.reserve(static_cast<std::size_t>(outcomes));
        for (std::uint64_t p = 0; p < outcomes; ++p) {
            SiteParameterOutcome outcome;
            outcome.parameter.name = in.get_string();
            outcome.worst = core::TripPointRecord::load(in);
            outcome.margin_risk = in.get_double();
            site.outcomes.push_back(std::move(outcome));
        }
        site.restored = true;
        decoded.push_back(std::move(site));
    }
    if (!in.at_end()) {
        throw std::runtime_error("lot shard payload: trailing bytes");
    }
    return decoded;
}

void install_finished_sites(const std::vector<SiteResult>& decoded,
                            const std::vector<ate::Parameter>& parameters,
                            std::vector<SiteResult>& sites) {
    if (decoded.size() > sites.size()) {
        throw std::runtime_error("lot resume: more sites than the lot has");
    }
    for (const SiteResult& entry : decoded) {
        if (entry.site >= sites.size()) {
            throw std::runtime_error("lot resume: site index out of range");
        }
        SiteResult& site = sites[entry.site];
        if (site.finished()) {
            throw std::runtime_error("lot resume: duplicate site");
        }
        if (entry.outcomes.size() > parameters.size()) {
            throw std::runtime_error("lot resume: too many parameters");
        }
        site.status = entry.status;
        site.max_risk = entry.max_risk;
        site.faults = entry.faults;
        site.injected = entry.injected;
        site.log = entry.log;
        site.outcomes.clear();
        site.outcomes.reserve(entry.outcomes.size());
        for (std::size_t p = 0; p < entry.outcomes.size(); ++p) {
            SiteParameterOutcome outcome = entry.outcomes[p];
            if (outcome.parameter.name != parameters[p].name) {
                throw std::runtime_error("lot resume: parameter mismatch");
            }
            outcome.parameter = parameters[p];
            site.outcomes.push_back(std::move(outcome));
        }
        site.restored = true;
    }
}

LotResult LotRunner::run() const {
    LotResult result;
    result.seed = options_.seed;
    result.jobs = options_.jobs;
    result.parameters = options_.parameters;
    result.fault_profile = options_.faults.describe();
    result.policy_enabled = options_.policy.enabled;
    if (options_.sites == 0) return result;

    // Pre-commit all randomness sequentially: wafer sample first, then one
    // forked stream (and, with faults on, one fault injector) per site.
    // Nothing below this point draws from lot_rng or the lot injector, so
    // scheduling cannot perturb any stream — and a resumed lot forks the
    // exact same per-site streams as the interrupted one.
    util::Rng lot_rng(options_.seed);
    const std::vector<device::DieParameters> dies =
        options_.process.sample_wafer(options_.sites, lot_rng);
    std::vector<util::Rng> site_rngs;
    site_rngs.reserve(options_.sites);
    for (std::size_t site = 0; site < options_.sites; ++site) {
        site_rngs.push_back(lot_rng.fork(site + 1));
    }
    const bool faults_on = options_.faults.any();
    std::vector<ate::FaultInjector> site_injectors;
    if (faults_on) {
        ate::FaultInjector lot_injector(options_.faults);
        site_injectors.reserve(options_.sites);
        for (std::size_t site = 0; site < options_.sites; ++site) {
            site_injectors.push_back(lot_injector.fork(site + 1));
        }
    }

    result.sites.resize(options_.sites);
    for (std::size_t site = 0; site < options_.sites; ++site) {
        result.sites[site].site = site;
        result.sites[site].die = dies[site];
    }

    if (!options_.checkpoint.resume_blob.empty()) {
        std::string payload;
        if (!core::decode_checkpoint(options_.checkpoint.resume_blob,
                                     fingerprint(), payload)) {
            throw std::runtime_error(
                "lot resume: checkpoint is corrupt or from a different lot "
                "configuration");
        }
        install_finished_sites(decode_finished_sites(payload),
                               options_.parameters, result.sites);
    }

    const std::size_t range_begin = options_.site_range_begin;
    const std::size_t range_end =
        options_.site_range_end == 0 ? options_.sites : options_.site_range_end;
    if (range_begin >= range_end || range_end > options_.sites) {
        throw std::invalid_argument("lot: bad site range [" +
                                    std::to_string(range_begin) + ", " +
                                    std::to_string(range_end) + ") for " +
                                    std::to_string(options_.sites) + " sites");
    }
    std::vector<std::size_t> to_run;
    for (std::size_t site = range_begin; site < range_end; ++site) {
        if (!result.sites[site].finished()) to_run.push_back(site);
    }
    if (options_.checkpoint.max_sites_per_run > 0 &&
        to_run.size() > options_.checkpoint.max_sites_per_run) {
        to_run.resize(options_.checkpoint.max_sites_per_run);
    }

    if (obs::status_enabled()) {
        // Out-of-band status feed (invisibility contract: no RNG draws,
        // no result mutation — the feed on/off leaves every report,
        // checkpoint, and ledger byte identical).
        obs::StatusBoard::instance().begin_campaign(
            "lot", fingerprint(), options_.seed, options_.sites);
        for (const SiteResult& site : result.sites) {
            if (!site.finished()) continue;
            obs::StatusBoard::instance().site_finished(
                site.site, status_phase(site.status), distill_outcomes(site),
                0.0, site.faults.retried_measurements,
                site.faults.interventions(), /*restored=*/true);
        }
    }

    // Replica-mode hunts: one lot-wide inflight budget, donated between
    // sites (shared_ring), or carved into fixed per-site rings (the
    // ablation configuration). Either way each site's ring stays its own
    // ordering domain, so results match the single-hunt replica path
    // byte for byte at any depth.
    const bool replica_hunts = options_.inflight > 0;
    std::optional<ate::SharedRingCredits> shared_credits;
    std::size_t site_inflight = 0;
    if (replica_hunts) {
        if (options_.shared_ring) {
            // Every site holds a guaranteed floor of 1; only the depth
            // beyond the floors is donatable.
            shared_credits.emplace(options_.inflight > options_.sites
                                       ? options_.inflight - options_.sites
                                       : 0);
            site_inflight = options_.inflight;
        } else {
            site_inflight =
                std::max<std::size_t>(1, options_.inflight / options_.sites);
        }
    }

    // Serializes "mark finished + snapshot the finished set" so the
    // checkpoint sink never observes a half-written SiteResult.
    std::mutex checkpoint_mutex;
    std::vector<char> finished(options_.sites, 0);
    for (std::size_t site = 0; site < options_.sites; ++site) {
        finished[site] = result.sites[site].finished() ? 1 : 0;
    }
    util::ProgressCounter progress(to_run.size());

    const auto characterize_site = [&](std::size_t site) {
        TELEM_SPAN("lot.site");
        const util::LogContext log_ctx("site=" + std::to_string(site));
        const bool observing = obs::status_enabled();
        const auto site_start = std::chrono::steady_clock::now();
        if (observing) obs::StatusBoard::instance().begin_site(site);
        util::Rng rng = site_rngs[site];
        device::MemoryChipOptions chip_options = options_.chip;
        chip_options.seed = rng();  // independent per-site noise stream
        device::MemoryTestChip chip(dies[site], chip_options);
        ate::Tester tester(chip, options_.tester);
        if (faults_on) tester.attach_fault_injector(&site_injectors[site]);

        core::CharacterizerOptions characterizer = options_.characterizer;
        if (replica_hunts) {
            // The site's worker thread owns the hunt ring (one ordering
            // domain); measurements evaluate inline on it, and emulated
            // tester latency rides the completion deadlines — overlapped
            // across sites through the shared budget.
            characterizer.optimizer.parallel.enabled = true;
            characterizer.optimizer.parallel.jobs = 1;
            characterizer.optimizer.parallel.inflight = site_inflight;
            characterizer.optimizer.parallel.replica_slab =
                options_.replica_slab;
            characterizer.optimizer.parallel.shared_credits =
                shared_credits.has_value() ? &*shared_credits : nullptr;
        }
        if (options_.policy.enabled) {
            // Per-site policy seeds, drawn only when the policy is on so
            // a disabled policy leaves the site stream untouched.
            characterizer.learner.trip.policy = options_.policy;
            characterizer.learner.trip.policy.seed = rng();
            characterizer.optimizer.trip.policy = options_.policy;
            characterizer.optimizer.trip.policy.seed = rng();
        }
        if (observing || options_.on_generation) {
            // Progress hook only — installing it never changes the GA
            // trajectory (the optimizer calls it outside the fitness
            // path and ignores its effects).
            characterizer.optimizer.on_generation =
                [this, site](const core::HuntProgress& hunt) {
                    if (obs::status_enabled()) {
                        obs::GenerationPost post;
                        post.generation = hunt.next_generation;
                        post.generations_total = hunt.max_generations;
                        post.evaluations = hunt.evaluations;
                        post.best_wcr = hunt.best_fitness;
                        post.ate_applications = hunt.ate_applications;
                        post.cache_hits = hunt.cache.hits;
                        post.cache_misses = hunt.cache.misses;
                        post.inflight = hunt.inflight;
                        obs::StatusBoard::instance().post_generation(site,
                                                                     post);
                    }
                    if (options_.on_generation) {
                        options_.on_generation(site, hunt);
                    }
                };
        }
        const core::CharacterizationCampaign campaign(
            tester, options_.parameters, characterizer);

        SiteResult& out = result.sites[site];
        try {
            out.campaigns = campaign.run(rng);
            out.status = SiteStatus::kCompleted;
            out.max_risk = 0.0;
            for (const core::ParameterCampaign& c : out.campaigns) {
                SiteParameterOutcome outcome;
                outcome.parameter = c.parameter;
                outcome.worst = c.report.worst_record;
                outcome.margin_risk = c.margin_risk;
                out.outcomes.push_back(std::move(outcome));
                out.max_risk = std::max(out.max_risk, c.margin_risk);
                out.faults.merge(c.learned.faults);
                out.faults.merge(c.report.faults);
            }
        } catch (const ate::SiteDeadError&) {
            out.status = SiteStatus::kDead;
            out.max_risk = 1.0;  // a site with no answer is maximum risk
        } catch (const core::SiteQuarantinedError&) {
            out.status = SiteStatus::kQuarantined;
            out.max_risk = 1.0;
        }
        out.log = tester.log();  // partial ledger survives a dead site
        if (faults_on) out.injected = site_injectors[site].stats();
        if (observing) {
            const double seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              site_start)
                    .count();
            obs::StatusBoard::instance().site_finished(
                site, status_phase(out.status), distill_outcomes(out), seconds,
                out.faults.retried_measurements, out.faults.interventions());
        }

        {
            const std::lock_guard<std::mutex> lock(checkpoint_mutex);
            finished[site] = 1;
            if (options_.checkpoint.save) {
                std::vector<SiteResult> snapshot;
                // The sink sees only sites marked finished under the lock,
                // so concurrent writers' entries are never read mid-write.
                for (std::size_t s = 0; s < options_.sites; ++s) {
                    if (finished[s]) snapshot.push_back(result.sites[s]);
                }
                options_.checkpoint.save(core::encode_checkpoint(
                    fingerprint(), encode_finished_sites(snapshot)));
                CICHAR_CRASH_POINT("lot.runner.post_site_checkpoint");
            }
        }
        const std::size_t done = progress.tick();
        if (util::telemetry::metrics_enabled()) {
            namespace telem = util::telemetry;
            static auto& completed = telem::Registry::instance().counter(
                "cichar_lot_sites_completed_total");
            static auto& in_run = telem::Registry::instance().gauge(
                "cichar_lot_sites_in_run");
            completed.add();
            in_run.set(static_cast<double>(done));
        }
        if (options_.on_progress) options_.on_progress(done, options_.sites);
    };

    if (util::telemetry::metrics_enabled()) {
        namespace telem = util::telemetry;
        static auto& total =
            telem::Registry::instance().gauge("cichar_lot_sites_total");
        total.set(static_cast<double>(options_.sites));
    }
    const auto start = std::chrono::steady_clock::now();
    util::ThreadPool pool(options_.jobs);
    for (const std::size_t site : to_run) {
        pool.submit([&characterize_site, site] { characterize_site(site); });
    }
    pool.wait();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // Merge in site order so the lot ledger is thread-count independent.
    for (const SiteResult& site : result.sites) {
        if (site.finished()) result.merged_log.merge(site.log);
    }
    return result;
}

}  // namespace cichar::lot
