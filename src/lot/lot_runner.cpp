#include "lot/lot_runner.hpp"

#include <algorithm>
#include <chrono>

#include "util/thread_pool.hpp"

namespace cichar::lot {

LotRunner::LotRunner(LotOptions options) : options_(std::move(options)) {
    if (options_.parameters.empty()) {
        options_.parameters = {ate::Parameter::data_valid_time()};
    }
}

LotResult LotRunner::run() const {
    LotResult result;
    result.seed = options_.seed;
    result.jobs = options_.jobs;
    if (options_.sites == 0) return result;

    // Pre-commit all randomness sequentially: wafer sample first, then one
    // forked stream per site. Nothing below this point draws from lot_rng,
    // so scheduling cannot perturb any stream.
    util::Rng lot_rng(options_.seed);
    const std::vector<device::DieParameters> dies =
        options_.process.sample_wafer(options_.sites, lot_rng);
    std::vector<util::Rng> site_rngs;
    site_rngs.reserve(options_.sites);
    for (std::size_t site = 0; site < options_.sites; ++site) {
        site_rngs.push_back(lot_rng.fork(site + 1));
    }

    result.sites.resize(options_.sites);
    util::ProgressCounter progress(options_.sites);

    const auto characterize_site = [&](std::size_t site) {
        util::Rng rng = site_rngs[site];
        device::MemoryChipOptions chip_options = options_.chip;
        chip_options.seed = rng();  // independent per-site noise stream
        device::MemoryTestChip chip(dies[site], chip_options);
        ate::Tester tester(chip, options_.tester);

        const core::CharacterizationCampaign campaign(
            tester, options_.parameters, options_.characterizer);

        SiteResult& out = result.sites[site];
        out.site = site;
        out.die = dies[site];
        out.campaigns = campaign.run(rng);
        out.log = tester.log();
        out.max_risk = 0.0;
        for (const core::ParameterCampaign& c : out.campaigns) {
            out.max_risk = std::max(out.max_risk, c.margin_risk);
        }
        const std::size_t done = progress.tick();
        if (options_.on_progress) options_.on_progress(done, options_.sites);
    };

    const auto start = std::chrono::steady_clock::now();
    util::ThreadPool pool(options_.jobs);
    for (std::size_t site = 0; site < options_.sites; ++site) {
        pool.submit([&characterize_site, site] { characterize_site(site); });
    }
    pool.wait();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // Merge in site order so the lot ledger is thread-count independent.
    for (const SiteResult& site : result.sites) {
        result.merged_log.merge(site.log);
    }
    return result;
}

}  // namespace cichar::lot
