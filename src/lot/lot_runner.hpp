// Multi-site lot characterization engine. Production ATEs characterize a
// wafer lot by running many sites in parallel; this runner samples N dies
// from the process-variation model, gives every site its own DUT + tester
// + forked RNG stream, and executes the full learn + optimize +
// spec-proposal campaign per site on a util::ThreadPool.
//
// Determinism contract: the lot seed fully determines every per-site
// result and the aggregated LotReport, *independent of the thread count*.
// All randomness is pre-committed on the calling thread — the wafer is
// sampled, one Rng per site is forked, and (with faults enabled) one
// FaultInjector per site is forked before any task is submitted — so
// workers never share a stochastic state.
//
// Fault tolerance: an optional FaultProfile gives every site its own
// deterministic fault stream, and an optional MeasurementPolicy screens
// and retries each site's measurements. A site that dies (SiteDeadError)
// or crosses the quarantine limit (SiteQuarantinedError) is recorded with
// its status and partial ledger; the lot completes on the surviving
// sites. With both knobs off the lot is byte-identical to a build that
// predates them.
//
// Crash-safe resume: with a checkpoint sink installed, the runner emits a
// versioned blob after every finished site. A later run handed that blob
// via `resume_blob` restores the finished sites (distilled results: trip
// records, risk, ledger, health) and only characterizes the rest —
// producing a LotReport byte-identical to an uninterrupted lot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ate/fault_injector.hpp"
#include "ate/measurement_log.hpp"
#include "core/campaign.hpp"
#include "core/measurement_policy.hpp"
#include "device/memory_chip.hpp"
#include "device/process.hpp"

namespace cichar::lot {

/// Crash-safe lot resume knobs.
struct LotCheckpointOptions {
    /// Called with a fresh checkpoint blob after every finished site
    /// (from worker threads, serialized internally; persist it with
    /// core::write_checkpoint_file or util::atomic_write_file).
    std::function<void(const std::string&)> save{};
    /// Blob from a previous (interrupted) run of the *same* lot
    /// configuration. Finished sites are restored instead of re-run.
    /// A blob from a different configuration is rejected (throws).
    std::string resume_blob{};
    /// Characterize at most this many *new* sites, then return a partial
    /// LotResult (stop-and-go lots; 0 = no cap). Only meaningful with a
    /// checkpoint sink to carry the finished sites forward.
    std::size_t max_sites_per_run = 0;
};

struct LotOptions {
    /// Dies sampled from the process model (one per site).
    std::size_t sites = 8;
    /// Worker threads; 0 means one per hardware thread.
    std::size_t jobs = 1;
    /// Lot-wide trip searches in flight (0 = classic serial in-situ site
    /// hunts, the pre-replica behavior and the default). >= 1 switches
    /// every site's worst-case hunt to replica evaluation (1 = blocking
    /// replicas, > 1 = the async submission/completion pipeline), and
    /// with `shared_ring` the total depth is pooled lot-wide: each site
    /// keeps its own ring — its ordering domain — with a guaranteed
    /// floor of one in-flight search, and borrows from the shared budget
    /// beyond it, so idle sites donate depth to busy ones. Reports and
    /// checkpoints are byte-identical at any inflight >= 1 x jobs x
    /// replica_slab combination (the 0 -> >=1 switch changes the
    /// measurement discipline and is fingerprinted).
    std::size_t inflight = 0;
    /// Pool the inflight budget across sites (default). false = each
    /// site owns a fixed private ring of inflight/sites depth — the
    /// pre-sharing configuration, kept for ablation; results are
    /// byte-identical either way.
    bool shared_ring = true;
    /// Warm replica slab per site hunt (see HuntParallelOptions):
    /// kAutoSlab sizes automatically, 0 forces cold clones. Only
    /// meaningful with inflight >= 1; never changes results.
    std::size_t replica_slab = core::HuntParallelOptions::kAutoSlab;
    /// Shard primitive: characterize only sites in
    /// [site_range_begin, site_range_end) and leave the rest pending
    /// (site_range_end == 0 means "through the last site"). The whole
    /// wafer is still sampled and every per-site stream still forked, so
    /// a shard's sites are byte-identical to the same sites in a full
    /// run — `cichar merge` fuses shard checkpoints on that guarantee.
    /// Excluded from the fingerprint: all shards of one lot share it.
    std::size_t site_range_begin = 0;
    std::size_t site_range_end = 0;
    /// Master seed; forks one independent stream per site.
    std::uint64_t seed = 2005;
    /// Parameters characterized at every site (empty = T_DQ only).
    std::vector<ate::Parameter> parameters{};
    core::CharacterizerOptions characterizer{};
    device::ProcessVariation process{};
    /// Per-site chip behavior; the noise seed is re-derived per site.
    device::MemoryChipOptions chip{};
    ate::TesterOptions tester{};
    /// ATE fault injection, one independent stream per site (off by
    /// default: the measurement path is byte-identical to an
    /// uninstrumented lot).
    ate::FaultProfile faults{};
    /// Measurement resilience policy applied to every site's learning and
    /// hunt sessions. The per-site policy seed is derived from the site
    /// stream only when enabled, so a disabled policy changes nothing.
    /// Set quarantine_after > 0 so a hopeless site is abandoned instead
    /// of burning its full tester budget.
    core::MeasurementPolicyOptions policy{};
    LotCheckpointOptions checkpoint{};
    /// Invoked after each site completes with (sites done, sites total).
    /// Called from worker threads (already serialized by completion
    /// order); keep it cheap and thread-safe. Site completion order is
    /// scheduling-dependent — results are not.
    std::function<void(std::size_t, std::size_t)> on_progress{};
    /// Observability hook: called after every GA generation of every
    /// site's hunt with (site, progress). Runs on worker threads — keep
    /// it cheap and thread-safe; it cannot steer the lot.
    std::function<void(std::size_t, const core::HuntProgress&)>
        on_generation{};
};

/// How one site's characterization ended.
enum class SiteStatus : std::uint8_t {
    kPending,      ///< not characterized (partial stop-and-go run)
    kCompleted,    ///< full campaign finished
    kQuarantined,  ///< abandoned by the measurement policy
    kDead,         ///< the site's tester electronics died mid-campaign
};

[[nodiscard]] const char* to_string(SiteStatus status) noexcept;

/// Distilled result of one parameter at one site — everything the
/// LotReport needs, small enough to live in a checkpoint (unlike the
/// full ParameterCampaign with its NN committee).
struct SiteParameterOutcome {
    ate::Parameter parameter;
    core::TripPointRecord worst;  ///< the site's worst-case trip record
    double margin_risk = 0.0;     ///< fuzzy-fused risk score in [0, 1]
};

/// Everything one site produced.
struct SiteResult {
    std::size_t site = 0;
    device::DieParameters die;
    SiteStatus status = SiteStatus::kPending;
    /// Distilled per-parameter results (empty when the site died or was
    /// quarantined before finishing). Always populated for finished
    /// sites, whether characterized live or restored from a checkpoint.
    std::vector<SiteParameterOutcome> outcomes;
    /// Full campaigns (NN committees, DSVs, proposals). Populated only
    /// for sites characterized in *this* run — a checkpoint carries the
    /// distilled outcomes, not the committees.
    std::vector<core::ParameterCampaign> campaigns;
    ate::MeasurementLog log;   ///< this site's tester ledger
    double max_risk = 0.0;     ///< worst fuzzy margin risk across parameters
    /// Resilience-policy interventions on this site (learning + hunt).
    core::FaultCounters faults;
    /// Faults the site's injector actually fired (zero with faults off).
    ate::InjectionStats injected;
    /// True when this result was restored from a checkpoint.
    bool restored = false;

    [[nodiscard]] bool finished() const noexcept {
        return status != SiteStatus::kPending;
    }
};

/// Whole-lot outcome, sites in site-index order.
struct LotResult {
    std::uint64_t seed = 0;
    std::size_t jobs = 1;
    /// The lot's parameter list (so the report can name parameters even
    /// when no site survived to characterize them).
    std::vector<ate::Parameter> parameters;
    std::vector<SiteResult> sites;
    ate::MeasurementLog merged_log;  ///< finished-site ledgers, site order
    /// The lot's fault profile ("off" when faults were disabled) and
    /// whether the resilience policy was active — rendered in the report.
    std::string fault_profile = "off";
    bool policy_enabled = false;
    /// Real elapsed time of the parallel section. Reporting only — never
    /// rendered into the deterministic LotReport.
    double wall_seconds = 0.0;

    /// All sites finished (false after a max_sites_per_run partial run).
    [[nodiscard]] bool complete() const noexcept;
    [[nodiscard]] std::size_t finished_sites() const noexcept;
};

class LotRunner {
public:
    LotRunner() = default;
    explicit LotRunner(LotOptions options);

    [[nodiscard]] const LotOptions& options() const noexcept {
        return options_;
    }

    /// The checkpoint fingerprint of this lot configuration; a resume
    /// blob whose fingerprint differs is rejected.
    [[nodiscard]] std::string fingerprint() const;

    /// Samples the lot and characterizes every (remaining) site.
    /// Thread-count independent given the same options (excluding
    /// `jobs`). Throws std::runtime_error when `resume_blob` is set but
    /// corrupt or from a different lot configuration.
    [[nodiscard]] LotResult run() const;

private:
    LotOptions options_;
};

// ---------------------------------------------------------------------
// Shard-checkpoint payload codec. The runner distills every finished
// site into this payload (wrapped in the core::checkpoint envelope);
// `cichar merge` decodes per-shard payloads, fuses the site sets, and
// re-encodes — byte-identical to the payload a single-process run of
// the same lot would have written.

/// Serializes the finished sites of `sites` (pending ones are skipped)
/// in vector order. Only distilled state is kept: status, risk, health
/// counters, ledger, and per-parameter trip records — not committees.
[[nodiscard]] std::string encode_finished_sites(
    const std::vector<SiteResult>& sites);

/// Parses a payload back into standalone SiteResults (every entry
/// finished, `restored` set). Parameter descriptors carry only their
/// names — the caller that knows the lot configuration re-attaches the
/// full descriptors (install_finished_sites does). Throws
/// std::runtime_error on any truncation or malformed field.
[[nodiscard]] std::vector<SiteResult> decode_finished_sites(
    const std::string& payload);

/// Installs decoded entries into a lot's site array, validating site
/// indices, duplicate/finished collisions, and parameter names against
/// `parameters`. Throws std::runtime_error on any mismatch.
void install_finished_sites(const std::vector<SiteResult>& decoded,
                            const std::vector<ate::Parameter>& parameters,
                            std::vector<SiteResult>& sites);

}  // namespace cichar::lot
