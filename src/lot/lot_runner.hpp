// Multi-site lot characterization engine. Production ATEs characterize a
// wafer lot by running many sites in parallel; this runner samples N dies
// from the process-variation model, gives every site its own DUT + tester
// + forked RNG stream, and executes the full learn + optimize +
// spec-proposal campaign per site on a util::ThreadPool.
//
// Determinism contract: the lot seed fully determines every per-site
// result and the aggregated LotReport, *independent of the thread count*.
// All randomness is pre-committed on the calling thread — the wafer is
// sampled and one Rng per site is forked before any task is submitted —
// so workers never share a stochastic state.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ate/measurement_log.hpp"
#include "core/campaign.hpp"
#include "device/memory_chip.hpp"
#include "device/process.hpp"

namespace cichar::lot {

struct LotOptions {
    /// Dies sampled from the process model (one per site).
    std::size_t sites = 8;
    /// Worker threads; 0 means one per hardware thread.
    std::size_t jobs = 1;
    /// Master seed; forks one independent stream per site.
    std::uint64_t seed = 2005;
    /// Parameters characterized at every site (empty = T_DQ only).
    std::vector<ate::Parameter> parameters{};
    core::CharacterizerOptions characterizer{};
    device::ProcessVariation process{};
    /// Per-site chip behavior; the noise seed is re-derived per site.
    device::MemoryChipOptions chip{};
    ate::TesterOptions tester{};
    /// Invoked after each site completes with (sites done, sites total).
    /// Called from worker threads (already serialized by completion
    /// order); keep it cheap and thread-safe. Site completion order is
    /// scheduling-dependent — results are not.
    std::function<void(std::size_t, std::size_t)> on_progress{};
};

/// Everything one site produced.
struct SiteResult {
    std::size_t site = 0;
    device::DieParameters die;
    std::vector<core::ParameterCampaign> campaigns;  ///< one per parameter
    ate::MeasurementLog log;   ///< this site's tester ledger
    double max_risk = 0.0;     ///< worst fuzzy margin risk across parameters
};

/// Whole-lot outcome, sites in site-index order.
struct LotResult {
    std::uint64_t seed = 0;
    std::size_t jobs = 1;
    std::vector<SiteResult> sites;
    ate::MeasurementLog merged_log;  ///< site ledgers merged in site order
    /// Real elapsed time of the parallel section. Reporting only — never
    /// rendered into the deterministic LotReport.
    double wall_seconds = 0.0;
};

class LotRunner {
public:
    LotRunner() = default;
    explicit LotRunner(LotOptions options);

    [[nodiscard]] const LotOptions& options() const noexcept {
        return options_;
    }

    /// Samples the lot and characterizes every site. Thread-count
    /// independent given the same options (excluding `jobs`).
    [[nodiscard]] LotResult run() const;

private:
    LotOptions options_;
};

}  // namespace cichar::lot
